// ao_campaignctl: client for the campaign service (ao_campaignd).
//
// Submits a sweep request over the service's unix socket and tails the
// streamed replies — `record` lines arrive while the campaign is still
// running. Exit status reflects the protocol outcome, so the tool scripts
// cleanly (the CI smoke job is the reference user).
//
//   ao_campaignctl --socket <path> [--request <file>]   submit (stdin
//                                                       without --request)
//                  [--client <id>] [--priority <n>]     queueing identity
//                  [--deadline-ms <n>] [--retries <n>]  resilience knobs
//   ao_campaignctl --socket <path> ping|stats|queue|compact|shutdown
//   ao_campaignctl --socket <path> abort --name <campaign>
//   ao_campaignctl --socket <path> profile [--name <campaign>] [--json]
//   ao_campaignctl --socket <path> metrics               Prometheus scrape
//   ao_campaignctl --socket <path> query [--kind <k>] [--chip <c>]
//                  [--impl <i>] [--size <n> | --size-min <n> --size-max <n>]
//                  [--limit <n>] [--cursor <token>] [--json]
//   ao_campaignctl --socket <path> follow --name <campaign>
//                  [--from <cursor>] [--json]
//   ao_campaignctl --verify-store <file>                offline store check
//
// --socket also accepts host:port for a daemon listening with --tcp on
// another machine. --client/--priority/--deadline-ms/--retries inject the
// matching request lines right after the block's `begin`, so scripts can
// set queueing identity, a wall-clock budget and the shard retry budget
// without editing request files. `abort --name <campaign>` cancels every
// campaign running or queued under that name (docs/service.md). While the service queues the campaign
// behind conflicting ones, `queued <pos>` / `started` events stream
// through verbatim; `queue` lists the waiting campaigns (position, name,
// client, priority, resource mask) without submitting anything.
//
// `profile` replays the daemon's newest retained campaign timeline
// (`--name` picks a campaign by name): `profile-span` / `profile-phase`
// lines verbatim, or — with --json — one "ao-profile/1"-shaped JSON object
// built client-side from those lines, so scripts consume the same schema
// the daemon's --profile-dir artifacts use (docs/observability.md).
//
// `metrics` prints the daemon's Prometheus text exposition verbatim
// (counters/gauges/histograms, names in docs/observability.md's metric
// glossary) up to and including its `# EOF` terminator — pipe it straight
// into a node_exporter textfile or a pushgateway.
//
// `query` runs one indexed, snapshot-isolated page over the daemon's
// result store (grammar in docs/service.md#queries): `query-record` lines
// verbatim plus the `query-page` trailer whose cursor token — unless it is
// `end` — feeds the next page via --cursor. `follow` replays a retained
// campaign's record stream from the store; each `follow-record` line leads
// with the token that resumes AFTER it, so a script that keeps the last
// token it read and reruns with --from never sees a record twice. --json
// wraps either reply in one machine-readable object built client-side.
//
// Submit exits 0 when a `done` reply arrived, 1 on any `error` reply or a
// dropped connection; structured errors (`error <code> ... | line: ...`)
// are summarized on stderr so scripts log which request line was rejected.
// Sharded campaigns stream `shard <i> start/done` events; submit summarizes
// them per shard on stderr after `done`. --verify-store loads the store
// through ResultCache and fails when it is empty or any entry was rejected
// — the round-trip assertion for merged shard stores.

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "orchestrator/result_cache.hpp"
#include "service/socket.hpp"

namespace {

int verify_store(const std::string& path) {
  ao::orchestrator::ResultCache cache;
  const std::size_t loaded = cache.load(path);
  const auto stats = cache.stats();
  std::cout << "store " << path << ": " << loaded << " entries loaded, "
            << stats.load_rejected << " rejected\n";
  if (loaded == 0) {
    std::cerr << "ao_campaignctl: store is empty or unreadable\n";
    return 1;
  }
  if (stats.load_rejected != 0) {
    std::cerr << "ao_campaignctl: store holds corrupt entries\n";
    return 1;
  }
  return 0;
}

/// One parsed `profile-span` reply line, accumulated for --json output.
struct ProfileSpan {
  std::string id;
  std::string parent;
  std::string phase;
  std::string start_ns;
  std::string duration_ns;
  std::string origin;  ///< "" for daemon-local spans ("-" on the wire)
  std::string label;
};

void json_escape(std::ostream& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';  // replies are line-oriented; controls cannot appear
    } else {
      out << c;
    }
  }
}

/// Sends `lines`, then prints every reply. Returns 0 once the terminal
/// reply for `mode` arrives, 1 on `error` or disconnect. `json` (profile
/// mode only) buffers the profile-* lines and prints one JSON object
/// shaped like the daemon's --profile-dir artifacts instead of raw lines.
int converse(ao::service::SocketStream& stream,
             const std::vector<std::string>& lines, const std::string& mode,
             bool json = false) {
  for (const std::string& line : lines) {
    stream << line << '\n';
  }
  stream.flush();

  std::vector<ProfileSpan> profile_spans;
  std::vector<std::string> profile_phases;  // raw profile-phase lines

  // Buffered read-path replies for --json: query keeps the raw entry
  // payloads, follow keeps (resume-token, entry) pairs.
  std::vector<std::string> query_records;
  std::vector<std::pair<std::string, std::string>> follow_records;

  // Per-shard progress surfaced from the service's `shard <i> ...` events:
  // "<records> done" once the shard's done event arrived, "started" before.
  // Printed after `done` AND after an error reply — a failed sharded
  // campaign is exactly when the operator needs to know which shard got
  // how far.
  std::map<std::size_t, std::string> shard_progress;
  const auto print_shard_summary = [&shard_progress] {
    if (shard_progress.empty()) {
      return;
    }
    std::cerr << "ao_campaignctl: " << shard_progress.size() << " shard(s):";
    for (const auto& [index, status] : shard_progress) {
      std::cerr << " shard " << index << ": " << status << ";";
    }
    std::cerr << '\n';
  };

  std::string reply;
  while (std::getline(stream, reply)) {
    std::istringstream words(reply);
    std::string first;
    std::string second;
    words >> first >> second;
    const bool profile_line =
        first == "profile-span" || first == "profile-phase" ||
        first == "profile";
    const bool read_line =
        first == "query-record" || first == "query-page" ||
        first == "follow-record" || (mode == "follow" && first == "follow");
    if (!(json && (profile_line || read_line))) {
      std::cout << reply << '\n';
    }
    if (json && first == "query-record") {
      // "query-record <entry line>" — keep the payload verbatim.
      query_records.push_back(
          reply.size() > 13 ? reply.substr(13) : std::string());
    } else if (json && first == "follow-record") {
      // "follow-record <resume-token> <entry line>"
      std::string rest;
      std::getline(words, rest);
      if (!rest.empty() && rest.front() == ' ') {
        rest.erase(0, 1);
      }
      follow_records.emplace_back(second, rest);
    }
    if (json && first == "profile-span") {
      // "profile-span <id> <parent> <phase> <start-ns> <dur-ns> <origin>
      //  <label...>"
      ProfileSpan span;
      span.id = second;
      words >> span.parent >> span.phase >> span.start_ns >>
          span.duration_ns >> span.origin;
      if (span.origin == "-") {
        span.origin.clear();
      }
      std::getline(words, span.label);
      if (!span.label.empty() && span.label.front() == ' ') {
        span.label.erase(0, 1);
      }
      if (span.label == "-") {
        span.label.clear();
      }
      profile_spans.push_back(std::move(span));
    } else if (json && first == "profile-phase") {
      profile_phases.push_back(reply);
    }
    if (first == "shard") {
      // "shard <i> start ..." | "shard <i> done records <n> ..." |
      // "shard <i> error ..."
      std::size_t index = 0;
      std::string event;
      if (std::istringstream(second) >> index && (words >> event)) {
        if (event == "start") {
          shard_progress[index] = "started";
        } else if (event == "retry") {
          shard_progress[index] = "retrying";
        } else if (event == "lost") {
          shard_progress[index] = "lost";
        } else if (event == "done") {
          std::string records_word;
          std::size_t records = 0;
          if (words >> records_word >> records) {
            shard_progress[index] = std::to_string(records) + " records";
          }
        } else if (event == "error") {
          shard_progress[index] = "failed";
        }
      }
    }
    if (first == "error") {
      // Structured reply: "error <code> <message> [| line: <input>]".
      // Surface the code and the echoed offending line on stderr so a
      // script's log says exactly what was rejected and why.
      std::string detail = reply.substr(reply.find(second) + second.size());
      const std::size_t at = detail.find(" | line: ");
      std::cerr << "ao_campaignctl: rejected (" << second << "):"
                << (at == std::string::npos ? detail : detail.substr(0, at))
                << '\n';
      if (at != std::string::npos) {
        std::cerr << "ao_campaignctl: offending line: "
                  << detail.substr(at + 9) << '\n';
      }
      print_shard_summary();
      return 1;
    }
    if (mode == "submit" && first == "done") {
      print_shard_summary();
      return 0;
    }
    if (mode == "ping" && first == "pong") {
      return 0;
    }
    if (mode == "stats" && first == "stats") {
      return 0;
    }
    if (mode == "profile" && first == "profile") {
      if (!json) {
        return 0;
      }
      // The terminal line carries the campaign identity:
      // "profile campaign <id> name <name> client <client> spans <n>".
      std::string word;
      std::string id = "0";
      std::string name;
      std::string client;
      words.clear();
      words.str(reply);
      words >> word >> word >> id >> word >> name >> word >> client;
      std::cout << "{\n  \"schema\": \"ao-profile/1\",\n  \"campaign\": "
                << "{\"id\": " << (id.empty() ? "0" : id) << ", \"name\": \"";
      json_escape(std::cout, name == "-" ? "" : name);
      std::cout << "\", \"client\": \"";
      json_escape(std::cout, client == "-" ? "" : client);
      std::cout << "\"},\n  \"phases\": {";
      bool first_phase = true;
      for (const std::string& line : profile_phases) {
        // "profile-phase <phase> count <n> total-ns <t> p50-ns <p>
        //  p95-ns <q> max-ns <m>"
        std::istringstream phase_words(line);
        std::string tag;
        std::string phase;
        std::string count;
        std::string total;
        std::string p50;
        std::string p95;
        std::string max;
        phase_words >> tag >> phase >> tag >> count >> tag >> total >> tag >>
            p50 >> tag >> p95 >> tag >> max;
        std::cout << (first_phase ? "\n" : ",\n") << "    \"" << phase
                  << "\": {\"count\": " << count << ", \"total_ns\": " << total
                  << ", \"p50_ns\": " << p50 << ", \"p95_ns\": " << p95
                  << ", \"max_ns\": " << max << "}";
        first_phase = false;
      }
      std::cout << "\n  },\n  \"spans\": [";
      bool first_span = true;
      for (const ProfileSpan& span : profile_spans) {
        std::cout << (first_span ? "\n" : ",\n") << "    {\"id\": " << span.id
                  << ", \"parent\": " << span.parent << ", \"phase\": \""
                  << span.phase << "\", \"start_ns\": " << span.start_ns
                  << ", \"duration_ns\": " << span.duration_ns
                  << ", \"label\": \"";
        json_escape(std::cout, span.label);
        std::cout << "\"";
        if (!span.origin.empty()) {
          std::cout << ", \"origin\": \"";
          json_escape(std::cout, span.origin);
          std::cout << "\"";
        }
        std::cout << "}";
        first_span = false;
      }
      std::cout << "\n  ]\n}\n";
      return 0;
    }
    if (mode == "query" && first == "query-page") {
      if (!json) {
        return 0;
      }
      // "query-page count <n> matched <m> generation <g> read <r>
      //  cursor <token|end>"
      std::string word;
      std::string count;
      std::string matched;
      std::string generation;
      std::string read;
      std::string cursor;
      words.clear();
      words.str(reply);
      words >> word >> word >> count >> word >> matched >> word >>
          generation >> word >> read >> word >> cursor;
      std::cout << "{\n  \"schema\": \"ao-query/1\",\n  \"count\": " << count
                << ",\n  \"matched\": " << matched
                << ",\n  \"generation\": " << generation
                << ",\n  \"read\": " << read << ",\n  \"cursor\": ";
      if (cursor == "end") {
        std::cout << "null";
      } else {
        std::cout << '"';
        json_escape(std::cout, cursor);
        std::cout << '"';
      }
      std::cout << ",\n  \"records\": [";
      bool first_record = true;
      for (const std::string& record : query_records) {
        std::cout << (first_record ? "\n" : ",\n") << "    \"";
        json_escape(std::cout, record);
        std::cout << '"';
        first_record = false;
      }
      std::cout << "\n  ]\n}\n";
      return 0;
    }
    if (mode == "follow" && first == "follow") {
      if (!json) {
        return 0;
      }
      // "follow campaign <id> name <name> records <n> position <p>
      //  cursor <token> state <complete|partial>"
      std::string word;
      std::string id = "0";
      std::string name;
      std::string records;
      std::string position;
      std::string cursor;
      std::string state;
      words.clear();
      words.str(reply);
      words >> word >> word >> id >> word >> name >> word >> records >>
          word >> position >> word >> cursor >> word >> state;
      std::cout << "{\n  \"schema\": \"ao-follow/1\",\n  \"campaign\": "
                << (id.empty() ? "0" : id) << ",\n  \"name\": \"";
      json_escape(std::cout, name);
      std::cout << "\",\n  \"position\": " << position
                << ",\n  \"cursor\": \"";
      json_escape(std::cout, cursor);
      std::cout << "\",\n  \"state\": \"";
      json_escape(std::cout, state);
      std::cout << "\",\n  \"records\": [";
      bool first_record = true;
      for (const auto& [token, entry] : follow_records) {
        std::cout << (first_record ? "\n" : ",\n") << "    {\"cursor\": \"";
        json_escape(std::cout, token);
        std::cout << "\", \"entry\": \"";
        json_escape(std::cout, entry);
        std::cout << "\"}";
        first_record = false;
      }
      std::cout << "\n  ]\n}\n";
      return 0;
    }
    if (mode == "queue" && first == "queue") {
      return 0;
    }
    if (mode == "metrics" && reply == "# EOF") {
      return 0;  // the OpenMetrics terminator closes the exposition
    }
    if ((mode == "compact" || mode == "shutdown" || mode == "abort") &&
        first == "ok" && second == mode) {
      return 0;
    }
  }
  std::cerr << "ao_campaignctl: connection closed before the final reply\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string request_path;
  std::string verify_path;
  std::string client_id;
  std::string priority;
  std::string deadline_ms;
  std::string retries;
  std::string profile_name;
  std::string query_kind;
  std::string query_chip;
  std::string query_impl;
  std::string query_size;
  std::string query_size_min;
  std::string query_size_max;
  std::string query_limit;
  std::string query_cursor;
  std::string follow_from;
  bool json = false;
  std::string command = "submit";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--request") == 0 && i + 1 < argc) {
      request_path = argv[++i];
    } else if (std::strcmp(argv[i], "--client") == 0 && i + 1 < argc) {
      client_id = argv[++i];
    } else if (std::strcmp(argv[i], "--priority") == 0 && i + 1 < argc) {
      priority = argv[++i];
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = argv[++i];
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      retries = argv[++i];
    } else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      profile_name = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--kind") == 0 && i + 1 < argc) {
      query_kind = argv[++i];
    } else if (std::strcmp(argv[i], "--chip") == 0 && i + 1 < argc) {
      query_chip = argv[++i];
    } else if (std::strcmp(argv[i], "--impl") == 0 && i + 1 < argc) {
      query_impl = argv[++i];
    } else if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      query_size = argv[++i];
    } else if (std::strcmp(argv[i], "--size-min") == 0 && i + 1 < argc) {
      query_size_min = argv[++i];
    } else if (std::strcmp(argv[i], "--size-max") == 0 && i + 1 < argc) {
      query_size_max = argv[++i];
    } else if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc) {
      query_limit = argv[++i];
    } else if (std::strcmp(argv[i], "--cursor") == 0 && i + 1 < argc) {
      query_cursor = argv[++i];
    } else if (std::strcmp(argv[i], "--from") == 0 && i + 1 < argc) {
      follow_from = argv[++i];
    } else if (std::strcmp(argv[i], "--verify-store") == 0 && i + 1 < argc) {
      verify_path = argv[++i];
    } else if (argv[i][0] != '-') {
      command = argv[i];
    } else {
      std::cerr << "ao_campaignctl: unknown option " << argv[i] << "\n";
      return 2;
    }
  }

  if (!verify_path.empty()) {
    return verify_store(verify_path);
  }
  if (socket_path.empty()) {
    std::cerr << "usage: ao_campaignctl --socket <path | host:port> "
                 "[--request <file>] [--client <id>] [--priority <n>] "
                 "[--deadline-ms <n>] [--retries <n>]\n"
                 "       ao_campaignctl --socket <path | host:port> "
                 "ping|stats|queue|metrics|compact|shutdown\n"
                 "       ao_campaignctl --socket <path | host:port> "
                 "abort --name <campaign>\n"
                 "       ao_campaignctl --socket <path | host:port> "
                 "profile [--name <campaign>] [--json]\n"
                 "       ao_campaignctl --socket <path | host:port> "
                 "query [--kind <k>] [--chip <c>] [--impl <i>] "
                 "[--size <n> | --size-min <n> --size-max <n>] "
                 "[--limit <n>] [--cursor <token>] [--json]\n"
                 "       ao_campaignctl --socket <path | host:port> "
                 "follow --name <campaign> [--from <cursor>] [--json]\n"
                 "       ao_campaignctl --verify-store <file>\n";
    return 2;
  }

  std::vector<std::string> lines;
  if (command == "submit") {
    std::istream* in = &std::cin;
    std::ifstream file;
    if (!request_path.empty()) {
      file.open(request_path);
      if (!file) {
        std::cerr << "ao_campaignctl: cannot read " << request_path << "\n";
        return 2;
      }
      in = &file;
    }
    std::string line;
    while (std::getline(*in, line)) {
      lines.push_back(line);
      // Queueing identity from the command line, injected right after the
      // block opens (later duplicate lines in the file still win — the
      // parser applies setters in order).
      if (line.rfind("begin", 0) == 0) {
        if (!client_id.empty()) {
          lines.push_back("client " + client_id);
        }
        if (!priority.empty()) {
          lines.push_back("priority " + priority);
        }
        if (!deadline_ms.empty()) {
          lines.push_back("deadline " + deadline_ms);
        }
        if (!retries.empty()) {
          lines.push_back("retries " + retries);
        }
      }
      if (line.rfind("run", 0) == 0) {
        break;  // the block is complete; ignore trailing noise
      }
    }
    if (lines.empty()) {
      std::cerr << "ao_campaignctl: empty request\n";
      return 2;
    }
  } else if (command == "ping" || command == "stats" || command == "queue" ||
             command == "metrics" || command == "compact" ||
             command == "shutdown") {
    lines.push_back(command);
  } else if (command == "abort") {
    if (profile_name.empty()) {
      std::cerr << "ao_campaignctl: abort needs --name <campaign>\n";
      return 2;
    }
    lines.push_back("abort " + profile_name);
  } else if (command == "profile") {
    lines.push_back(profile_name.empty() ? "profile"
                                         : "profile " + profile_name);
  } else if (command == "query") {
    std::string request = "query";
    if (!query_kind.empty()) {
      request += " kind " + query_kind;
    }
    if (!query_chip.empty()) {
      request += " chip " + query_chip;
    }
    if (!query_impl.empty()) {
      request += " impl " + query_impl;
    }
    if (!query_size.empty()) {
      request += " size " + query_size;
    }
    if (!query_size_min.empty()) {
      request += " size-min " + query_size_min;
    }
    if (!query_size_max.empty()) {
      request += " size-max " + query_size_max;
    }
    if (!query_limit.empty()) {
      request += " limit " + query_limit;
    }
    if (!query_cursor.empty()) {
      request += " cursor " + query_cursor;
    }
    lines.push_back(request);
  } else if (command == "follow") {
    if (profile_name.empty()) {
      std::cerr << "ao_campaignctl: follow needs --name <campaign>\n";
      return 2;
    }
    lines.push_back(follow_from.empty()
                        ? "follow " + profile_name
                        : "follow " + profile_name + " from " + follow_from);
  } else {
    std::cerr << "ao_campaignctl: unknown command " << command << "\n";
    return 2;
  }

  const int fd = ao::service::connect_endpoint(socket_path);
  if (fd < 0) {
    std::cerr << "ao_campaignctl: cannot connect to " << socket_path << "\n";
    return 1;
  }
  ao::service::SocketStream stream(fd);
  return converse(stream, lines, command, json);
}
