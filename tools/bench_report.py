#!/usr/bin/env python3
"""Fold timeline-profiler artifacts into a benchmark report and gate on it.

Works with the per-campaign ``*.profile.json`` artifacts the daemon writes
under ``--profile-dir`` (schema ``ao-profile/1``, see docs/observability.md).
Three modes:

  collect   Fold every artifact in a directory into one ``ao-bench/1``
            report (default ``BENCH_service_hotpath.json``). Percentiles are
            recomputed from the raw span durations across all artifacts, not
            averaged from per-artifact percentiles, so the folded numbers are
            exact.

                bench_report.py collect --profile-dir DIR \
                    --out BENCH_service_hotpath.json [--label LABEL] \
                    [--by-origin]

            Distributed profiles carry worker-origin spans (an ``origin``
            key naming the worker that measured them; daemon-side spans
            omit it). They fold into the same top-level ``phases`` table —
            the gate sees one merged timeline. ``--by-origin`` additionally
            writes an ``origins`` object with the same per-phase stats
            split by measuring process (``local`` = the daemon itself),
            which ``compare`` ignores: the breakdown is for humans reading
            the report, not for gating.

  compare   Gate a current report against a baseline. A phase regresses when
            ``(cur - base) / base > threshold`` for any gated metric
            (mean_ns, p95_ns); a value exactly at the threshold passes.
            Metrics whose baseline is below ``--min-ns`` are skipped — the
            noise floor for sub-microsecond phases. ``--counts-only`` checks
            only that the same phases ran with the same span counts (the
            cross-machine mode: timings are not comparable, coverage is);
            ``frame`` and ``flush`` counts vary with record batching, so
            they are checked for presence, not exact count. ``--require
            PHASE`` (repeatable) fails unless PHASE appears in the current
            report — the gate for phases newer than the committed baseline.
            Exit 1 on any regression, with one line per phase explaining it.

                bench_report.py compare BASELINE CURRENT [--threshold 0.15]
                    [--min-ns 200000] [--counts-only] [--require PHASE]

  perturb   Multiply one phase's timings by a factor — the CI negative test
            proves the gate trips by slowing a phase 1.30x and expecting
            compare to fail.

                bench_report.py perturb REPORT --phase execute
                    --factor 1.30 --out SLOWED

``bench_report.py --self-test`` runs the built-in checks (threshold edge
semantics included) and needs no artifacts. Stdlib only.
"""

import argparse
import glob
import json
import math
import os
import sys

BENCH_SCHEMA = "ao-bench/1"
PROFILE_SCHEMA = "ao-profile/1"
GATED_METRICS = ("mean_ns", "p95_ns")

# Phases whose span COUNT is legitimately nondeterministic: `frame` and
# `flush` counts depend on how records coalesce into batched wire frames
# (batch bound + flush deadline against real time). ``--counts-only``
# checks these for presence, not for an exact count — a missing phase is
# still a failure.
VARIABLE_COUNT_PHASES = {"frame", "flush"}


def nearest_rank(sorted_values, p):
    """The profiler's percentile: value at rank ceil(p*n), 1-based, clamped."""
    n = len(sorted_values)
    if n == 0:
        return 0
    rank = min(n, max(1, math.ceil(p * n)))
    return sorted_values[rank - 1]


def fold_spans(spans, durations, origin_durations):
    """Accumulate span durations by phase, and by (origin, phase). A span
    without an ``origin`` key was measured by the daemon itself — it groups
    under ``local``; worker-origin spans group under the worker's name."""
    for span in spans:
        origin = span.get("origin") or "local"
        durations.setdefault(span["phase"], []).append(span["duration_ns"])
        origin_durations.setdefault(origin, {}).setdefault(
            span["phase"], []).append(span["duration_ns"])


def summarize(durations):
    """Exact fold of ``{phase: [duration_ns, ...]}`` into the per-phase
    stats object used by both the top-level and per-origin tables."""
    phases = {}
    for phase in sorted(durations):
        values = sorted(durations[phase])
        total = sum(values)
        phases[phase] = {
            "count": len(values),
            "total_ns": total,
            "mean_ns": total // len(values),
            "p50_ns": nearest_rank(values, 0.50),
            "p95_ns": nearest_rank(values, 0.95),
            "max_ns": values[-1],
        }
    return phases


def fold_artifacts(paths):
    """Fold artifacts into (campaigns, phases, origins). Raises ValueError
    on a schema mismatch."""
    durations = {}
    origin_durations = {}
    campaigns = 0
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            artifact = json.load(handle)
        if artifact.get("schema") != PROFILE_SCHEMA:
            raise ValueError(
                f"{path}: expected schema {PROFILE_SCHEMA!r}, "
                f"got {artifact.get('schema')!r}"
            )
        campaigns += 1
        fold_spans(artifact.get("spans", []), durations, origin_durations)
    origins = {origin: summarize(origin_durations[origin])
               for origin in sorted(origin_durations)}
    return campaigns, summarize(durations), origins


def cmd_collect(args):
    paths = sorted(glob.glob(os.path.join(args.profile_dir, "*.profile.json")))
    if not paths:
        print(f"bench_report: no *.profile.json under {args.profile_dir}",
              file=sys.stderr)
        return 1
    campaigns, phases, origins = fold_artifacts(paths)
    report = {
        "schema": BENCH_SCHEMA,
        "label": args.label,
        "campaigns": campaigns,
        "phases": phases,
    }
    if args.by_origin:
        report["origins"] = origins
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"bench_report: folded {campaigns} campaign(s), "
          f"{len(phases)} phase(s) -> {args.out}")
    return 0


def load_report(path):
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BENCH_SCHEMA!r}, "
            f"got {report.get('schema')!r}"
        )
    return report


def compare_reports(baseline, current, threshold, min_ns, counts_only,
                    require=()):
    """Returns (ok, lines): pass/fail plus one human line per finding.
    ``require`` names phases that must be present in the current report
    (with at least one span) regardless of the baseline — the gate for
    phases newer than the committed baseline."""
    lines = []
    ok = True
    base_phases = baseline.get("phases", {})
    cur_phases = current.get("phases", {})
    for phase in sorted(base_phases):
        base = base_phases[phase]
        cur = cur_phases.get(phase)
        if cur is None:
            ok = False
            lines.append(f"FAIL {phase}: present in baseline, missing now")
            continue
        if counts_only:
            if phase in VARIABLE_COUNT_PHASES:
                # Batching makes these counts timing-dependent; presence is
                # the invariant (absence was caught above).
                lines.append(f"ok   {phase}: count {cur['count']} (variable)")
            elif base["count"] != cur["count"]:
                ok = False
                lines.append(
                    f"FAIL {phase}: span count {base['count']} -> "
                    f"{cur['count']}"
                )
            else:
                lines.append(f"ok   {phase}: count {cur['count']}")
            continue
        phase_ok = True
        for metric in GATED_METRICS:
            base_value = base[metric]
            cur_value = cur[metric]
            if base_value < min_ns:
                continue  # below the noise floor; not gated
            ratio = (cur_value - base_value) / base_value
            if ratio > threshold:
                ok = False
                phase_ok = False
                lines.append(
                    f"FAIL {phase}: {metric} {base_value} -> {cur_value} "
                    f"(+{ratio:.1%} > {threshold:.0%})"
                )
        if phase_ok:
            lines.append(f"ok   {phase}")
    for phase in sorted(set(cur_phases) - set(base_phases)):
        lines.append(f"note {phase}: new phase, not gated")
    for phase in require:
        cur = cur_phases.get(phase)
        if cur is None or cur.get("count", 0) == 0:
            ok = False
            lines.append(f"FAIL {phase}: required phase missing from the "
                         f"current report")
        elif phase not in base_phases:
            lines.append(f"ok   {phase}: required phase present "
                         f"(count {cur['count']})")
    return ok, lines


def cmd_compare(args):
    baseline = load_report(args.baseline)
    current = load_report(args.current)
    ok, lines = compare_reports(baseline, current, args.threshold,
                                args.min_ns, args.counts_only,
                                require=args.require)
    for line in lines:
        print(line)
    if not ok:
        print(f"bench_report: regression against {args.baseline} "
              f"(threshold {args.threshold:.0%})", file=sys.stderr)
        return 1
    print("bench_report: no regression")
    return 0


def cmd_perturb(args):
    report = load_report(args.report)
    phase = report.get("phases", {}).get(args.phase)
    if phase is None:
        print(f"bench_report: phase {args.phase!r} not in {args.report}",
              file=sys.stderr)
        return 1
    for metric in ("total_ns", "mean_ns", "p50_ns", "p95_ns", "max_ns"):
        phase[metric] = int(phase[metric] * args.factor)
    report["label"] = (report.get("label") or "bench") + (
        f"+perturb:{args.phase}x{args.factor}")
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"bench_report: {args.phase} x{args.factor} -> {args.out}")
    return 0


def self_test():
    def report(phases):
        return {"schema": BENCH_SCHEMA, "phases": phases}

    def phase(mean, p95, count=10):
        return {"count": count, "total_ns": mean * count, "mean_ns": mean,
                "p50_ns": mean, "p95_ns": p95, "max_ns": p95}

    base = report({"execute": phase(1_000_000, 2_000_000)})

    # Exactly at the threshold passes: +15.0% is not > 15%.
    ok, _ = compare_reports(
        base, report({"execute": phase(1_150_000, 2_300_000)}),
        threshold=0.15, min_ns=0, counts_only=False)
    assert ok, "a regression of exactly the threshold must pass"

    # Just above fails.
    ok, lines = compare_reports(
        base, report({"execute": phase(1_160_000, 2_000_000)}),
        threshold=0.15, min_ns=0, counts_only=False)
    assert not ok, "a regression above the threshold must fail"
    assert any("mean_ns" in line for line in lines)

    # An improvement passes.
    ok, _ = compare_reports(
        base, report({"execute": phase(500_000, 1_000_000)}),
        threshold=0.15, min_ns=0, counts_only=False)
    assert ok, "an improvement must pass"

    # Below the noise floor is not gated even when wildly slower.
    ok, _ = compare_reports(
        report({"frame": phase(1_000, 2_000)}),
        report({"frame": phase(9_000, 9_000)}),
        threshold=0.15, min_ns=200_000, counts_only=False)
    assert ok, "phases under --min-ns must not gate"

    # A missing phase fails.
    ok, _ = compare_reports(base, report({}), threshold=0.15, min_ns=0,
                            counts_only=False)
    assert not ok, "a phase that disappeared must fail"

    # counts-only: timing ignored, count mismatch caught.
    ok, _ = compare_reports(
        base, report({"execute": phase(9_000_000, 9_000_000)}),
        threshold=0.15, min_ns=0, counts_only=True)
    assert ok, "counts-only must ignore timings"
    ok, _ = compare_reports(
        base, report({"execute": phase(1_000_000, 2_000_000, count=9)}),
        threshold=0.15, min_ns=0, counts_only=True)
    assert not ok, "counts-only must catch a count mismatch"

    # counts-only: frame/flush counts vary with batching — presence is the
    # invariant, an exact-count mismatch is not a failure...
    ok, lines = compare_reports(
        report({"frame": phase(1_000, 2_000, count=48),
                "flush": phase(1_000, 2_000, count=20)}),
        report({"frame": phase(1_000, 2_000, count=7),
                "flush": phase(1_000, 2_000, count=3)}),
        threshold=0.15, min_ns=0, counts_only=True)
    assert ok, "variable-count phases must not gate on exact counts"
    assert any("variable" in line for line in lines)
    # ...but a variable-count phase that disappeared entirely still fails.
    ok, _ = compare_reports(
        report({"frame": phase(1_000, 2_000, count=48)}), report({}),
        threshold=0.15, min_ns=0, counts_only=True)
    assert not ok, "a missing variable-count phase must still fail"

    # --require gates presence of phases newer than the baseline.
    ok, lines = compare_reports(
        base, report({"execute": phase(1_000_000, 2_000_000),
                      "plan": phase(1_000, 2_000, count=2)}),
        threshold=0.15, min_ns=0, counts_only=True, require=["plan"])
    assert ok, "a present required phase must pass"
    assert any("required phase present" in line for line in lines)
    ok, lines = compare_reports(
        base, report({"execute": phase(1_000_000, 2_000_000)}),
        threshold=0.15, min_ns=0, counts_only=True, require=["plan"])
    assert not ok, "a missing required phase must fail"
    assert any("required phase missing" in line for line in lines)

    # nearest_rank matches the profiler's convention.
    assert nearest_rank([1, 2, 3, 4], 0.50) == 2
    assert nearest_rank([1, 2, 3, 4], 0.95) == 4
    assert nearest_rank([7], 0.50) == 7
    assert nearest_rank([], 0.95) == 0

    # Distributed artifacts: origin-less spans fold under "local", worker
    # spans under the worker's name, and both feed the merged phase table.
    durations, origin_durations = {}, {}
    fold_spans(
        [
            {"phase": "execute", "duration_ns": 100},
            {"phase": "execute", "duration_ns": 300, "origin": "w1"},
            {"phase": "serialize", "duration_ns": 50, "origin": "w1"},
            {"phase": "execute", "duration_ns": 200, "origin": "w2"},
        ],
        durations, origin_durations)
    merged = summarize(durations)
    assert merged["execute"]["count"] == 3
    assert merged["execute"]["total_ns"] == 600
    assert sorted(origin_durations) == ["local", "w1", "w2"]
    assert summarize(origin_durations["w1"])["execute"]["mean_ns"] == 300
    assert summarize(origin_durations["local"])["execute"]["count"] == 1
    assert "serialize" not in origin_durations["local"]

    print("bench_report: self-test ok")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in checks and exit")
    sub = parser.add_subparsers(dest="mode")

    collect = sub.add_parser("collect")
    collect.add_argument("--profile-dir", required=True)
    collect.add_argument("--out", default="BENCH_service_hotpath.json")
    collect.add_argument("--label", default="service-hotpath")
    collect.add_argument("--by-origin", action="store_true",
                         help="add a per-origin phase breakdown (origins "
                              "object) to the report; not gated by compare")

    compare = sub.add_parser("compare")
    compare.add_argument("baseline")
    compare.add_argument("current")
    compare.add_argument("--threshold", type=float, default=0.15)
    compare.add_argument("--min-ns", type=int, default=200_000,
                         help="baseline values below this are not gated")
    compare.add_argument("--counts-only", action="store_true")
    compare.add_argument("--require", action="append", default=[],
                         metavar="PHASE",
                         help="fail unless PHASE appears in the current "
                              "report (repeatable); gates phases newer than "
                              "the baseline")

    perturb = sub.add_parser("perturb")
    perturb.add_argument("report")
    perturb.add_argument("--phase", required=True)
    perturb.add_argument("--factor", type=float, default=1.30)
    perturb.add_argument("--out", required=True)

    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if args.mode == "collect":
        return cmd_collect(args)
    if args.mode == "compare":
        return cmd_compare(args)
    if args.mode == "perturb":
        return cmd_perturb(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
