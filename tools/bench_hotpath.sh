#!/usr/bin/env bash
# Scripted service hot path for the perf-telemetry gate.
#
# Boots ao_campaignd with --profile-dir, connects two remote ao_worker
# processes, and runs the three campaigns that between them light up every
# gated phase:
#   - an UNSHARDED mixed-kind campaign (queue-wait/admission/schedule/
#     execute/serialize on the in-process path),
#   - a SHARDED remote campaign (shard/transport/frame/merge over the
#     worker sockets),
#   - an unsharded REPLAY of the sharded campaign under a new name/client —
#     same content, so the schedule phase exercises the plan-cache hit path
#     (and the warm result cache serves the records without the workers).
# Then folds the daemon's per-campaign *.profile.json artifacts into one
# ao-bench/1 report with tools/bench_report.py.
#
#   tools/bench_hotpath.sh <build-dir> <scratch-dir> <out.json>
#
# The scratch dir is created (and should be empty); artifacts land in
# <scratch-dir>/profile. CI runs this twice and gates run 2 against run 1
# with bench_report.py compare (docs/observability.md).

set -euo pipefail

BUILD_DIR=${1:?usage: bench_hotpath.sh <build-dir> <scratch-dir> <out.json>}
SCRATCH=${2:?usage: bench_hotpath.sh <build-dir> <scratch-dir> <out.json>}
OUT=${3:?usage: bench_hotpath.sh <build-dir> <scratch-dir> <out.json>}
BUILD_DIR=$(cd "$BUILD_DIR" && pwd)
TOOLS_DIR=$(cd "$(dirname "$0")" && pwd)

mkdir -p "$SCRATCH/profile" "$SCRATCH/shards"
SOCK="$SCRATCH/ao.sock"

cleanup() {
  # The daemon owns the workers' sessions; kill whatever is still up.
  [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true
  [ -n "${W1_PID:-}" ] && kill "$W1_PID" 2>/dev/null || true
  [ -n "${W2_PID:-}" ] && kill "$W2_PID" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

"$BUILD_DIR/ao_campaignd" --socket "$SOCK" --shard-dir "$SCRATCH/shards" \
  --profile-dir "$SCRATCH/profile" &
DAEMON_PID=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "bench_hotpath: daemon never bound $SOCK" >&2; exit 1; }

"$BUILD_DIR/ao_worker" --connect "$SOCK" --name bench-w1 &
W1_PID=$!
"$BUILD_DIR/ao_worker" --connect "$SOCK" --name bench-w2 &
W2_PID=$!
for _ in $(seq 100); do
  "$BUILD_DIR/ao_campaignctl" --socket "$SOCK" stats \
    | grep -q 'workers 2' && break
  sleep 0.1
done

# Campaign 1: unsharded — the in-process scheduler path (execute/serialize).
cat > "$SCRATCH/hot-inproc.txt" <<'EOF'
begin hot-inproc
chips m1,m3
impls cpu-single,gpu-mps
sizes 32,64
repetitions 3
stream 1,2 2 1024
gpu-stream 2 1024
precision 24
ane 32
fp64emu 24
sme 32
power 0.25
workers 2
run
EOF
"$BUILD_DIR/ao_campaignctl" --socket "$SOCK" --request "$SCRATCH/hot-inproc.txt" \
  > "$SCRATCH/hot-inproc.log"
grep -q '^done campaign ' "$SCRATCH/hot-inproc.log"

# Campaign 2: sharded over the two remote workers — shard/transport/frame/
# merge. Different name and sizes so the warm cache can't serve it whole.
cat > "$SCRATCH/hot-sharded.txt" <<'EOF'
begin hot-sharded
chips m1,m3
impls cpu-single,gpu-mps
sizes 48,96
repetitions 3
stream 1,2 2 2048
gpu-stream 2 2048
precision 32
ane 48
fp64emu 32
sme 48
power 0.25
workers 2
shards 2
run
EOF
"$BUILD_DIR/ao_campaignctl" --socket "$SOCK" --request "$SCRATCH/hot-sharded.txt" \
  > "$SCRATCH/hot-sharded.log"
grep -q '^done campaign .* shards 2 remote 2$' "$SCRATCH/hot-sharded.log"

# Campaign 3: the sharded campaign replayed unsharded under a new identity.
# Every content line matches hot-sharded — scheduling lines (name, client,
# shards) are outside the plan key — so scheduler checkout reuses the
# compiled expansion (a plan-cache hit on builds that have the cache) and
# the warm result cache serves the records without touching the workers.
cat > "$SCRATCH/hot-replay.txt" <<'EOF'
begin hot-replay
client bench-replayer
chips m1,m3
impls cpu-single,gpu-mps
sizes 48,96
repetitions 3
stream 1,2 2 2048
gpu-stream 2 2048
precision 32
ane 48
fp64emu 32
sme 48
power 0.25
workers 2
run
EOF
"$BUILD_DIR/ao_campaignctl" --socket "$SOCK" --request "$SCRATCH/hot-replay.txt" \
  > "$SCRATCH/hot-replay.log"
grep -q '^done campaign ' "$SCRATCH/hot-replay.log"

# The live timeline surface: a per-phase p50/p95 table for the sharded
# campaign, and the lifetime stats-phase totals.
"$BUILD_DIR/ao_campaignctl" --socket "$SOCK" profile --name hot-sharded \
  | tee "$SCRATCH/profile.log" | grep '^profile-phase ' || true
"$BUILD_DIR/ao_campaignctl" --socket "$SOCK" stats | grep '^stats-phase ' || true

"$BUILD_DIR/ao_campaignctl" --socket "$SOCK" shutdown
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

ls "$SCRATCH/profile/" >&2
# --by-origin: the sharded campaign's worker-measured spans get their own
# per-process breakdown in the report (informational; compare ignores it).
python3 "$TOOLS_DIR/bench_report.py" collect --profile-dir "$SCRATCH/profile" \
  --out "$OUT" --by-origin
