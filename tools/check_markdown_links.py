#!/usr/bin/env python3
"""Checks that relative links in Markdown files resolve.

Usage: check_markdown_links.py [--mentions DOC GLOB]...
                               [--glossary DOC SRC]... FILE [FILE...]

For every inline link or image `[text](target)`:
  - http(s)/mailto targets are skipped (no network in CI);
  - `path#anchor` targets must name an existing file AND a heading in it
    whose GitHub-style slug matches the anchor;
  - bare `#anchor` targets are checked against the current file's headings;
  - plain paths must exist relative to the linking file.

`--mentions DOC GLOB` additionally requires every file matching GLOB
(resolved from the current directory) to be mentioned by basename somewhere
in DOC — this is how CI keeps docs/benchmarks.md covering every
bench/bench_*.cpp binary: adding a bench without documenting its paper
figure fails the docs job.

`--glossary DOC SRC` requires every string literal in SRC's `k...Names`
array initializers (kPhaseNames, kMetricNames, ...) to appear in DOC —
this keeps docs/observability.md's phase glossary in sync with
src/obs/profiler.cpp and its metric glossary in sync with
src/obs/metrics.cpp: renaming or adding a name without documenting it
fails the docs job.

Exit status: 0 when every link resolves and every mention is present,
1 otherwise.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, punctuation dropped."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(m.group(1)) for m in HEADING.finditer(text)}


def check_file(md: Path) -> list:
    errors = []
    text = CODE_FENCE.sub("", md.read_text(encoding="utf-8"))
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        dest = md if not path_part else (md.parent / path_part).resolve()
        if not dest.exists():
            errors.append(f"{md}: broken link -> {target} (no such file)")
            continue
        if anchor and dest.suffix.lower() in (".md", ".markdown"):
            if github_slug(anchor) not in anchors_of(dest):
                errors.append(f"{md}: broken anchor -> {target}")
    return errors


def check_mentions(doc: Path, glob: str) -> list:
    """Every file matching `glob` must appear (by basename) in `doc`."""
    if not doc.exists():
        return [f"{doc}: file not found (--mentions)"]
    matches = sorted(Path(".").glob(glob))
    if not matches:
        return [f"--mentions: no files match '{glob}' (stale check?)"]
    text = doc.read_text(encoding="utf-8")
    errors = []
    for path in matches:
        # Accept a mention of the file name with or without its suffix
        # ("bench_fig1_stream.cpp" or the binary name "bench_fig1_stream").
        if path.name not in text and path.stem not in text:
            errors.append(f"{doc}: does not mention {path} (from '{glob}')")
    return errors


def check_glossary(doc: Path, src: Path) -> list:
    """Every string literal in `src`'s `k...Names` array initializers
    (kPhaseNames for span phases, kMetricNames for metric families) must
    appear in `doc` — the documented glossary may not drift from the code."""
    if not doc.exists():
        return [f"{doc}: file not found (--glossary)"]
    if not src.exists():
        return [f"{src}: file not found (--glossary)"]
    code = src.read_text(encoding="utf-8")
    # Match the `kFooNames = { ... }` declarations only — a later
    # `kFooNames[i]` use must not swallow unrelated code as "names".
    initializers = re.findall(r"k\w+Names\s*=\s*\{(.*?)\}", code, re.DOTALL)
    if not initializers:
        return [f"{src}: no k...Names initializer found (--glossary)"]
    names = [name for body in initializers
             for name in re.findall(r'"([^"]+)"', body)]
    if not names:
        return [f"{src}: k...Names initializers have no string literals"]
    text = doc.read_text(encoding="utf-8")
    return [
        f"{doc}: glossary misses '{name}' (declared in {src})"
        for name in names
        if f"`{name}`" not in text and name not in text
    ]


def main() -> int:
    args = sys.argv[1:]
    mentions = []
    while "--mentions" in args:
        at = args.index("--mentions")
        if len(args) < at + 3:
            print(__doc__)
            return 1
        mentions.append((Path(args[at + 1]), args[at + 2]))
        del args[at : at + 3]
    glossaries = []
    while "--glossary" in args:
        at = args.index("--glossary")
        if len(args) < at + 3:
            print(__doc__)
            return 1
        glossaries.append((Path(args[at + 1]), Path(args[at + 2])))
        del args[at : at + 3]
    if not args and not mentions and not glossaries:
        print(__doc__)
        return 1
    all_errors = []
    for name in args:
        md = Path(name)
        if not md.exists():
            all_errors.append(f"{md}: file not found")
            continue
        all_errors.extend(check_file(md))
    for doc, glob in mentions:
        all_errors.extend(check_mentions(doc, glob))
    for doc, src in glossaries:
        all_errors.extend(check_glossary(doc, src))
    for error in all_errors:
        print(error)
    if not all_errors:
        checked = len(args) + len(mentions) + len(glossaries)
        print(f"OK: {checked} checks, all links resolve and mentions present")
        return 0
    print(f"{len(all_errors)} problems")
    return 1


if __name__ == "__main__":
    sys.exit(main())
