#!/usr/bin/env python3
"""Checks that relative links in Markdown files resolve.

Usage: check_markdown_links.py FILE [FILE...]

For every inline link or image `[text](target)`:
  - http(s)/mailto targets are skipped (no network in CI);
  - `path#anchor` targets must name an existing file AND a heading in it
    whose GitHub-style slug matches the anchor;
  - bare `#anchor` targets are checked against the current file's headings;
  - plain paths must exist relative to the linking file.

Exit status: 0 when every link resolves, 1 otherwise.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, punctuation dropped."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(m.group(1)) for m in HEADING.finditer(text)}


def check_file(md: Path) -> list:
    errors = []
    text = CODE_FENCE.sub("", md.read_text(encoding="utf-8"))
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        dest = md if not path_part else (md.parent / path_part).resolve()
        if not dest.exists():
            errors.append(f"{md}: broken link -> {target} (no such file)")
            continue
        if anchor and dest.suffix.lower() in (".md", ".markdown"):
            if github_slug(anchor) not in anchors_of(dest):
                errors.append(f"{md}: broken anchor -> {target}")
    return errors


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    all_errors = []
    for name in sys.argv[1:]:
        md = Path(name)
        if not md.exists():
            all_errors.append(f"{md}: file not found")
            continue
        all_errors.extend(check_file(md))
    for error in all_errors:
        print(error)
    if not all_errors:
        print(f"OK: {len(sys.argv) - 1} files, all relative links resolve")
        return 0
    print(f"{len(all_errors)} broken links")
    return 1


if __name__ == "__main__":
    sys.exit(main())
