// Campaign sweep: run a multi-chip GEMM benchmark campaign through the
// orchestrator — concurrent scheduling, batched operand allocation, and a
// result cache that services the repeated run without re-measuring.
//
// Build & run:  ./build/example_campaign_sweep [workers]

#include <iostream>

#include "core/ao.hpp"
#include "harness/reporting.hpp"
#include "orchestrator/campaign.hpp"

int main(int argc, char** argv) {
  using namespace ao;

  const std::size_t workers = argc > 1 ? std::stoul(argv[1]) : 4;

  // Campaign options: the paper's five repetitions, functional execution at
  // small sizes (with verification against the reference SGEMM), power
  // sampling on every point.
  harness::GemmExperiment::Options options;
  options.repetitions = 5;

  // A cache shared across campaigns: overlapping sweeps reuse points.
  orchestrator::ResultCache cache(/*capacity=*/4096);

  orchestrator::Campaign campaign;
  campaign.chips({soc::ChipModel::kM1, soc::ChipModel::kM2,
                  soc::ChipModel::kM3, soc::ChipModel::kM4})
      .impls({soc::GemmImpl::kCpuAccelerate, soc::GemmImpl::kGpuCutlass,
              soc::GemmImpl::kGpuMps})
      .sizes({256, 512, 1024, 2048})
      .options(options)
      .cache(&cache)
      .concurrency(workers);

  std::cout << "Campaign: " << campaign.job_count() << " jobs on " << workers
            << " workers\n";
  const auto first = campaign.run();
  std::cout << "First run : " << first.stats.jobs_executed << " executed, "
            << first.stats.cache_hits << " cache hits, "
            << first.stats.batches_allocated << " operand batches, "
            << first.stats.systems_built << " simulated systems, "
            << first.stats.verifications << " verifications\n";

  // The repeated campaign is serviced from the cache: no System is leased,
  // no matrices are allocated.
  const auto second = campaign.run();
  std::cout << "Second run: " << second.stats.jobs_executed << " executed, "
            << second.stats.cache_hits << " cache hits, "
            << second.stats.batches_allocated << " operand batches\n\n";

  // A widened campaign overlaps the cached grid: only new points execute.
  campaign.sizes({256, 512, 1024, 2048, 4096});
  const auto widened = campaign.run();
  std::cout << "Widened   : " << widened.stats.jobs_executed << " executed, "
            << widened.stats.cache_hits << " cache hits\n\n";

  harness::peak_gflops_table(widened.gemm)
      .print(std::cout, "Peak GFLOPS per (chip, implementation)");
  return 0;
}
