// Campaign sweep: run a multi-chip, multi-workload benchmark campaign
// through the orchestrator — concurrent scheduling over all nine JobKinds
// (GEMM measure + verify, CPU and GPU STREAM, mixed-precision study, ANE
// inference, FP64 emulation, SME GEMM, idle power), batched operand
// allocation, and a disk-backed result cache that services repeated points
// within AND across processes.
//
// Build & run:  ./build/example_campaign_sweep [workers] [cache-file]
//                                              [--json] [--expect-disk-hits]
//
// Run it twice with the same cache file: the second process starts with a
// cold in-memory cache, loads the store, and serves every repeated point
// from disk. Pass --expect-disk-hits (the CI smoke test does) to fail the
// run unless the store actually served hits. --json replaces the prose
// report with one machine-readable object on stdout for scripting.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/ao.hpp"
#include "harness/reporting.hpp"
#include "obs/profiler.hpp"
#include "orchestrator/campaign.hpp"

namespace {

bool all_digits(const char* s) {
  for (; *s != '\0'; ++s) {
    if (!std::isdigit(static_cast<unsigned char>(*s))) {
      return false;
    }
  }
  return true;
}

/// One run's summary, straight from the scheduler's CampaignStats — the
/// scheduler already counts hits and misses per cacheable job, so the
/// report never recomputes them from record counts.
struct RunReport {
  const char* label;
  const ao::orchestrator::CampaignResult* result;
};

/// The cache path is the one caller-controlled string in the JSON object.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void print_json(std::ostream& out, std::size_t workers, std::size_t jobs,
                const std::string& cache_path, std::size_t warmed,
                const std::vector<RunReport>& runs,
                const std::vector<ao::obs::Span>& spans) {
  out << "{\n  \"workers\": " << workers << ",\n  \"jobs\": " << jobs
      << ",\n  \"store\": {\"path\": \"" << json_escape(cache_path)
      << "\", \"entries_loaded\": " << warmed << "},\n  \"profile\": {";
  // Per-phase wall time over all three runs, from the attached timeline
  // profiler — the same phase names the service's `profile` command reports.
  bool first_phase = true;
  for (const auto& [phase, ps] : ao::obs::phase_stats(spans)) {
    out << (first_phase ? "" : ", ") << "\"" << ao::obs::phase_name(phase)
        << "\": {\"count\": " << ps.count << ", \"total_ns\": " << ps.total_ns
        << ", \"p50_ns\": " << ps.p50_ns << ", \"p95_ns\": " << ps.p95_ns
        << ", \"max_ns\": " << ps.max_ns << "}";
    first_phase = false;
  }
  out << "},\n  \"runs\": [";
  bool first_run = true;
  for (const RunReport& run : runs) {
    const auto& stats = run.result->stats;
    out << (first_run ? "" : ",") << "\n    {\"label\": \"" << run.label
        << "\", \"executed\": " << stats.jobs_executed
        << ", \"cache_hits\": " << stats.cache_hits
        << ", \"cache_misses\": " << stats.cache_misses
        << ", \"verifications\": " << stats.verifications
        << ", \"batches\": " << stats.batches_allocated
        << ", \"systems\": " << stats.systems_built
        << ", \"records\": {\"gemm\": " << run.result->gemm.size()
        << ", \"stream\": " << run.result->stream.size()
        << ", \"precision\": " << run.result->precision.size()
        << ", \"ane\": " << run.result->ane.size()
        << ", \"fp64emu\": " << run.result->fp64emu.size()
        << ", \"sme\": " << run.result->sme.size()
        << ", \"power\": " << run.result->power.size() << "}}";
    first_run = false;
  }
  out << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ao;

  std::size_t workers = 4;
  std::string cache_path;
  bool expect_disk_hits = false;
  bool json = false;
  bool workers_seen = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--expect-disk-hits") == 0) {
      expect_disk_hits = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (!workers_seen && all_digits(argv[i])) {
      workers = std::stoul(argv[i]);
      workers_seen = true;
    } else {
      cache_path = argv[i];
    }
  }

  // Campaign options: the paper's five repetitions, functional execution at
  // small sizes (with verification against the reference SGEMM), power
  // sampling on every point.
  harness::GemmExperiment::Options options;
  options.repetitions = 5;

  // A cache shared across campaigns — and, given a store file, across
  // processes: warm from the previous run, write-through every new point.
  orchestrator::ResultCache cache(/*capacity=*/4096);
  std::size_t warmed = 0;
  if (!cache_path.empty()) {
    warmed = cache.load(cache_path);
    cache.persist_to(cache_path);
    if (!json) {
      std::cout << "Cache store " << cache_path << ": " << warmed
                << " entries loaded\n";
    }
  }

  // A mixed-kind sweep: every JobKind the orchestrator schedules. The
  // timeline profiler rides along: --json reports per-phase wall time
  // (schedule/execute/serialize/merge) next to the run counters.
  obs::TimelineProfiler profiler;
  orchestrator::Campaign campaign;
  campaign.chips({soc::ChipModel::kM1, soc::ChipModel::kM2,
                  soc::ChipModel::kM3, soc::ChipModel::kM4})
      .impls({soc::GemmImpl::kCpuAccelerate, soc::GemmImpl::kGpuCutlass,
              soc::GemmImpl::kGpuMps})
      .sizes({256, 512, 1024, 2048})
      .options(options)
      .stream_sweep({1, 4, 8}, /*repetitions=*/10)
      .gpu_stream(/*repetitions=*/20)
      .precision_study({128})
      .ane_inference({256})
      .fp64_emulation({128})
      .sme_gemm({256})
      .power_idle(1.0)
      .cache(&cache)
      .profiler(&profiler)
      .concurrency(workers);

  if (!json) {
    std::cout << "Campaign: " << campaign.job_count() << " jobs on "
              << workers << " workers\n";
  }
  const auto first = campaign.run();
  if (!json) {
    std::cout << "First run : " << first.stats.jobs_executed << " executed, "
              << first.stats.cache_hits << " cache hits, "
              << first.stats.cache_misses << " misses, "
              << first.stats.batches_allocated << " operand batches, "
              << first.stats.systems_built << " simulated systems, "
              << first.stats.verifications << " verifications\n";
    std::cout << "  records: " << first.gemm.size() << " gemm, "
              << first.stream.size() << " stream, " << first.precision.size()
              << " precision, " << first.ane.size() << " ane, "
              << first.fp64emu.size() << " fp64emu, " << first.sme.size()
              << " sme, " << first.power.size() << " power\n";
  }

  // The repeated campaign is serviced from the cache: no System is leased,
  // no matrices are allocated.
  const auto second = campaign.run();
  if (!json) {
    std::cout << "Second run: " << second.stats.jobs_executed
              << " executed, " << second.stats.cache_hits << " cache hits, "
              << second.stats.cache_misses << " misses, "
              << second.stats.batches_allocated << " operand batches\n\n";
  }

  // A widened campaign overlaps the cached grid: only new points execute.
  campaign.sizes({256, 512, 1024, 2048, 4096});
  const auto widened = campaign.run();
  if (json) {
    print_json(std::cout, workers, campaign.job_count(), cache_path, warmed,
               {{"first", &first}, {"second", &second}, {"widened", &widened}},
               profiler.snapshot());
  } else {
    std::cout << "Widened   : " << widened.stats.jobs_executed
              << " executed, " << widened.stats.cache_hits << " cache hits, "
              << widened.stats.cache_misses << " misses\n\n";
    harness::peak_gflops_table(widened.gemm)
        .print(std::cout, "Peak GFLOPS per (chip, implementation)");
    if (!cache_path.empty()) {
      std::cout << "\nDisk-warmed points served this process: "
                << first.stats.cache_hits << " (store had " << warmed
                << " entries at startup)\n";
    }
  }
  if (expect_disk_hits && (warmed == 0 || first.stats.cache_hits == 0)) {
    std::cerr << "FAIL: expected the disk store to serve cache hits on a "
                 "cold in-memory cache\n";
    return 1;
  }
  return 0;
}
