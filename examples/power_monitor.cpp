// powermetrics session demo: drives the power-monitor substrate exactly the
// way the paper's framework does (Section 3.3) and prints the raw tool
// output next to the parsed values.

#include <iostream>

#include "core/ao.hpp"

int main() {
  using namespace ao;

  core::System system(soc::ChipModel::kM3);
  std::cout << "powermetrics -i 0 -a 0 -s cpu_power,gpu_power,ane_power "
               "(simulated M3 MacBook Air)\n\n";

  power::PowerMetrics monitor(system.soc(),
                              power::SamplerSet::parse("cpu_power,gpu_power,ane_power"));
  monitor.start();

  // Two-second warm-up, then SIGINFO resets the sampler (paper protocol).
  system.soc().idle(2e9);
  monitor.siginfo();

  // Workload 1: Accelerate GEMM (AMX -> shows up as CPU power).
  auto accelerate =
      gemm::create_gemm(soc::GemmImpl::kCpuAccelerate, system.gemm_context());
  harness::MatrixSet matrices(2048, /*fill=*/false);
  accelerate->multiply(2048, matrices.memory_length(), matrices.left(),
                       matrices.right(), matrices.out(), /*functional=*/false);
  monitor.siginfo();

  // Workload 2: MPS GEMM (shows up as GPU power).
  auto mps = gemm::create_gemm(soc::GemmImpl::kGpuMps, system.gemm_context());
  mps->multiply(2048, matrices.memory_length(), matrices.left(),
                matrices.right(), matrices.out(), /*functional=*/false);
  monitor.siginfo();

  // Workload 3: Neural Engine (shows up as ANE power).
  ane::NeuralEngine engine(system.soc());
  std::vector<float> a(256 * 256, 0.5f);
  std::vector<float> b(256 * 256, 0.5f);
  std::vector<float> c(256 * 256);
  engine.run_gemm_fp16(256, 256, 256, a.data(), b.data(), c.data(),
                       /*functional=*/false);
  monitor.siginfo();

  monitor.stop();

  std::cout << "---- raw tool output ----\n"
            << monitor.output_text() << "-------------------------\n\n";

  const auto samples = power::parse_powermetrics_output(monitor.output_text());
  std::cout << "Parsed " << samples.size() << " samples:\n";
  const char* labels[] = {"warm-up (idle)", "Accelerate/AMX GEMM", "MPS GEMM",
                          "Neural Engine GEMM"};
  for (std::size_t i = 0; i < samples.size(); ++i) {
    std::cout << "  [" << labels[i] << "] cpu=" << samples[i].cpu_mw
              << " mW, gpu=" << samples[i].gpu_mw
              << " mW, ane=" << samples[i].ane_mw
              << " mW, combined=" << samples[i].combined_mw << " mW over "
              << util::format_fixed(samples[i].window_seconds * 1e3, 2)
              << " ms\n";
  }
  std::cout << "\nNote how each workload lights up its own power rail — the "
               "attribution powermetrics gives the paper its Figure 3.\n";
  return 0;
}
