// GEMM shoot-out: the paper's six implementations head to head on one chip,
// with verification, timing, power and efficiency per implementation.
//
// Usage: ./build/examples/gemm_shootout [chip] [n]

#include <iostream>

#include "core/ao.hpp"
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ao;

  const soc::ChipModel model =
      argc > 1 ? soc::chip_model_from_string(argv[1]) : soc::ChipModel::kM2;
  const std::size_t n = argc > 2 ? std::stoul(argv[2]) : 512;

  core::System system(model);
  harness::GemmExperiment::Options opts;
  opts.repetitions = 5;  // the paper's count
  opts.verify_n_max = 512;
  harness::GemmExperiment experiment(system.gemm_context(), opts);

  std::cout << "GEMM shoot-out on " << system.device().name() << ", n=" << n
            << " (5 repetitions, powermetrics piggyback)\n\n";

  util::TablePrinter table({"Implementation", "GFLOPS (best)", "GFLOPS (mean)",
                            "Power (mW)", "GFLOPS/W", "Verified"});
  harness::MatrixSet matrices(n, /*fill=*/true);
  for (const auto kind : soc::kAllGemmImpls) {
    auto impl = gemm::create_gemm(kind, system.gemm_context());
    matrices.clear_out();
    const auto m = experiment.measure(*impl, matrices);
    table.add_row({impl->name(), util::format_fixed(m.best_gflops, 1),
                   util::format_fixed(m.mean_gflops, 1),
                   util::format_fixed(m.power_mw, 0),
                   util::format_fixed(m.gflops_per_watt, 1),
                   m.verified      ? "yes"
                   : m.functional  ? "unchecked"
                                   : "model-only"});
  }
  table.print(std::cout);

  std::cout << "\nThe ordering reproduces Figure 2 at this size; rerun with "
               "n=16384 to see MPS pull away (model-only above the "
               "verification threshold).\n";
  return 0;
}
