// Writing a custom compute shader against the Metal-like API: a SAXPY
// kernel, dispatched the way the paper's Objective-C++ dispatches its MSL
// shaders (library -> pipeline -> command buffer -> encoder -> commit).

#include <iostream>

#include "core/ao.hpp"

namespace {

/// The "MSL source" of our kernel, as a simulator kernel object:
///   kernel void saxpy(device const float* x [[buffer(0)]],
///                     device float* y [[buffer(1)]],
///                     constant float& a [[buffer(2)]],
///                     constant uint& n [[buffer(3)]],
///                     uint gid [[thread_position_in_grid]]) {
///     if (gid < n) y[gid] = a * x[gid] + y[gid];
///   }
ao::metal::Kernel make_saxpy() {
  ao::metal::Kernel k;
  k.name = "saxpy";
  k.body = ao::metal::ThreadKernelFn(
      [](const ao::metal::ArgumentTable& args,
         const ao::metal::ThreadContext& ctx) {
        const auto n = args.value<std::uint32_t>(3);
        const std::uint32_t gid = ctx.thread_position_in_grid.x;
        if (gid >= n) {
          return;
        }
        const float* x = args.buffer_data<float>(0);
        float* y = args.buffer_data<float>(1);
        const auto a = args.value<float>(2);
        y[gid] = a * x[gid] + y[gid];
      });
  // Cost estimate: 2 flops and 12 bytes per element -> generic GPU roofline.
  k.estimator = [](const ao::metal::ArgumentTable& args,
                   const ao::metal::DispatchShape&) {
    const auto n = args.value<std::uint32_t>(3);
    return ao::metal::WorkEstimate::generic(2.0 * n, 12.0 * n);
  };
  return k;
}

}  // namespace

int main() {
  using namespace ao;

  core::System system(soc::ChipModel::kM1);
  metal::Device& device = system.device();
  std::cout << "Custom Metal compute on " << device.name() << " ("
            << device.gpu_core_count() << " GPU cores)\n";

  // Build a library with our kernel and create the pipeline state.
  metal::Library lib("example.metallib");
  lib.add(make_saxpy());
  auto pipeline = device.new_compute_pipeline_state(lib, "saxpy");
  std::cout << "Pipeline: maxTotalThreadsPerThreadgroup="
            << pipeline->max_total_threads_per_threadgroup()
            << ", threadExecutionWidth=" << pipeline->thread_execution_width()
            << "\n";

  // Shared unified-memory buffers, written by the CPU, read by the GPU.
  constexpr std::uint32_t kN = 1 << 20;
  auto x = device.new_buffer(kN * sizeof(float), mem::StorageMode::kShared);
  auto y = device.new_buffer(kN * sizeof(float), mem::StorageMode::kShared);
  auto* px = static_cast<float*>(x->contents());
  auto* py = static_cast<float*>(y->contents());
  for (std::uint32_t i = 0; i < kN; ++i) {
    px[i] = 1.0f;
    py[i] = static_cast<float>(i % 7);
  }

  // Encode and run: y = 2.5 * x + y.
  auto queue = device.new_command_queue();
  auto cmd = queue->command_buffer();
  auto enc = cmd->compute_command_encoder();
  enc->set_compute_pipeline_state(pipeline);
  enc->set_buffer(x.get(), 0, 0);
  enc->set_buffer(y.get(), 0, 1);
  enc->set_value<float>(2.5f, 2);
  enc->set_value<std::uint32_t>(kN, 3);
  enc->dispatch_threads({kN, 1, 1}, {256, 1, 1});
  enc->end_encoding();
  cmd->commit();
  cmd->wait_until_completed();

  // Verify on the CPU through the same shared memory (zero-copy).
  std::size_t errors = 0;
  for (std::uint32_t i = 0; i < kN; ++i) {
    if (py[i] != 2.5f + static_cast<float>(i % 7)) {
      ++errors;
    }
  }
  std::cout << "SAXPY over " << kN << " elements: " << errors << " errors, "
            << util::format_fixed(cmd->gpu_time_ns() / 1e6, 3)
            << " ms simulated GPU time ("
            << util::format_fixed(
                   util::gb_per_s(12.0 * kN, cmd->gpu_time_ns()), 1)
            << " GB/s effective)\n";
  return errors == 0 ? 0 : 1;
}
