// STREAM survey: the paper's Figure-1 measurement on all four chips in one
// program — CPU thread sweep plus GPU run, with functional validation.

#include <iostream>

#include "core/ao.hpp"

int main() {
  using namespace ao;

  std::cout << "STREAM survey across the M-series (methodology of paper "
               "Section 3.1)\n\n";

  for (const auto chip : soc::kAllChipModels) {
    core::System system(chip);
    const auto& spec = system.soc().spec();

    // Functional validation on small arrays first (stream.c's check).
    stream::CpuStream check(system.soc(), 1u << 16);
    std::cout << soc::to_string(chip)
              << ": validation rel. error = " << check.validate() << "\n";

    // CPU: OMP_NUM_THREADS sweep, 10 reps, max kept.
    stream::CpuStream cpu(system.soc());
    const auto sweep = cpu.sweep(10);
    std::cout << "  CPU best (at " << sweep.best_thread_count
              << " threads): " << util::format_fixed(sweep.best_overall_gbs(), 1)
              << " GB/s of " << util::format_fixed(spec.memory_bandwidth_gbs, 0)
              << " GB/s theoretical\n";
    for (std::size_t k = 0; k < 4; ++k) {
      std::cout << "    " << soc::to_string(soc::kAllStreamKernels[k]) << ": "
                << util::format_fixed(sweep.best_gbs_per_kernel[k], 1)
                << " GB/s\n";
    }

    // GPU: 20 reps, max kept.
    stream::GpuStream gpu(system.device());
    const auto run = gpu.run(20);
    std::cout << "  GPU best: " << util::format_fixed(run.best_overall_gbs(), 1)
              << " GB/s\n";
    for (const auto& k : run.kernels) {
      std::cout << "    " << soc::to_string(k.kernel) << ": "
                << util::format_fixed(k.best_gbs, 1) << " GB/s\n";
    }
    std::cout << "\n";
  }

  std::cout << "Reference: GH200 Grace 310 GB/s (81%), Hopper HBM3 3700 GB/s "
               "(94%) — paper Section 5.1.\n";
  return 0;
}
