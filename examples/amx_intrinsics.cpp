// Programming the AMX coprocessor directly, the way the reverse-engineered
// instruction sequences do (paper Section 2.1: "AMX extends the ARM
// instruction set to include undocumented matrix-specific operations, which
// include instructions for loading, processing, and storing matrix data").
//
// Computes a 16x16 outer-product accumulation with explicit AMX_SET / LDX /
// LDY / FMA32 / STZ / AMX_CLR steps, then shows the same math through the
// Accelerate front end (what the paper's Listing-1 path compiles to).

#include <iostream>

#include "core/ao.hpp"

int main() {
  using namespace ao;

  amx::AmxUnit unit;
  unit.set();  // AMX_SET: power the coprocessor on
  std::cout << "AMX register file: " << amx::AmxUnit::kXRegs << " X + "
            << amx::AmxUnit::kYRegs << " Y registers of "
            << amx::AmxUnit::kRegBytes << " B, " << amx::AmxUnit::kZRows
            << " Z rows\n\n";

  // Two 16-float vectors.
  alignas(64) float x[16];
  alignas(64) float y[16];
  for (int i = 0; i < 16; ++i) {
    x[i] = static_cast<float>(i + 1);      // 1..16
    y[i] = static_cast<float>(16 - i);     // 16..1
  }

  // ldx/ldy: 64-byte register loads. fma32: rank-1 update of the Z grid,
  // z[j][i] += x[i]*y[j], with fp32 rows interleaved by 4.
  unit.ldx(0, x);
  unit.ldy(0, y);
  unit.fma32(0, 0);
  unit.fma32(0, 0);  // accumulate a second rank-1 update

  // stz: read back row j of the product grid (row j lives at Z row 4j).
  alignas(64) float row[16];
  unit.stz(0 * 4, row);
  std::cout << "Z[0][0..3] after two fma32: " << row[0] << " " << row[1] << " "
            << row[2] << " " << row[3] << " (expect 2*x[i]*y[0] = 32, 64, 96, "
               "128)\n";
  std::cout << "MACs executed: " << unit.mac_count() << "\n";
  unit.clr();  // AMX_CLR: release the unit

  // The same outer product via the Accelerate clone (rank-1 as a 16x16
  // GEMM with k=1): this is what vDSP/BLAS lower to internally.
  alignas(64) float c[16 * 16] = {};
  accelerate::cblas_sgemm(accelerate::CblasRowMajor, accelerate::CblasNoTrans,
                          accelerate::CblasNoTrans, 16, 16, 1, 2.0f, y, 1, x,
                          16, 0.0f, c, 16);
  std::cout << "cblas_sgemm rank-1 check: C[0][0..3] = " << c[0] << " " << c[1]
            << " " << c[2] << " " << c[3] << "\n";

  const bool match = c[0] == 32.0f && c[1] == 64.0f && c[2] == 96.0f;
  std::cout << (match ? "\nAMX intrinsics and Accelerate agree."
                      : "\nMISMATCH between AMX and Accelerate!")
            << "\n";
  return match ? 0 : 1;
}
