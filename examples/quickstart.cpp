// Quickstart: create a simulated M4, multiply two matrices with Metal
// Performance Shaders, and read performance + power the way the paper does.
//
// Build & run:  ./build/examples/quickstart [chip] [n]

#include <iostream>

#include "core/ao.hpp"

int main(int argc, char** argv) {
  using namespace ao;

  const soc::ChipModel model =
      argc > 1 ? soc::chip_model_from_string(argv[1]) : soc::ChipModel::kM4;
  const std::size_t n = argc > 2 ? std::stoul(argv[2]) : 1024;

  // One fully wired simulated machine: SoC + unified memory + Metal device.
  core::System system(model);
  std::cout << "Device: " << system.device().name() << " ("
            << system.soc().device().device << ", "
            << system.soc().device().memory_gb << " GB unified memory)\n";

  // Page-aligned matrices, uniform [0,1) FP32 — the paper's workload.
  harness::MatrixSet matrices(n, /*fill=*/true);

  // powermetrics protocol: start, warm up, SIGINFO to reset.
  power::PowerMetrics monitor(system.soc(),
                              power::SamplerSet{true, true, true});
  monitor.start();
  system.soc().idle(2e9);
  monitor.siginfo();

  // The multiplication, via the GPU-MPS implementation (Listing 2's path).
  auto mps = gemm::create_gemm(soc::GemmImpl::kGpuMps, system.gemm_context());
  const auto t0 = system.soc().clock().now();
  mps->multiply(n, matrices.memory_length(), matrices.left(), matrices.right(),
                matrices.out(), /*functional=*/n <= 1024);
  const auto elapsed_ns = static_cast<double>(system.soc().clock().now() - t0);

  // SIGINFO to capture, then stop and parse the text output.
  monitor.siginfo();
  monitor.stop();
  const auto samples = power::parse_powermetrics_output(monitor.output_text());

  const double gflops = util::gflops(soc::gemm_flops(n), elapsed_ns);
  const double watts = samples.back().combined_mw / 1e3;
  std::cout << "GEMM n=" << n << " via GPU-MPS:\n"
            << "  simulated time : " << util::format_fixed(elapsed_ns / 1e6, 3)
            << " ms\n"
            << "  performance    : " << util::format_fixed(gflops, 1)
            << " GFLOPS\n"
            << "  power          : " << util::format_fixed(watts, 2) << " W\n"
            << "  efficiency     : "
            << util::format_fixed(gflops / watts, 1) << " GFLOPS/W\n";
  return 0;
}
