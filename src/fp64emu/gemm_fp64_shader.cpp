#include "fp64emu/gemm_fp64_shader.hpp"

#include "fp64emu/double_single.hpp"

namespace ao::fp64emu {

metal::Kernel make_gemm_fp64_emulated() {
  metal::Kernel k;
  k.name = "gemm_fp64_emulated";
  k.body = metal::ThreadKernelFn([](const metal::ArgumentTable& args,
                                    const metal::ThreadContext& ctx) {
    const auto n = args.value<std::uint32_t>(6);
    const std::uint32_t col = ctx.thread_position_in_grid.x;
    const std::uint32_t row = ctx.thread_position_in_grid.y;
    if (row >= n || col >= n) {
      return;
    }
    const float* a_hi = args.buffer_data<float>(0);
    const float* a_lo = args.buffer_data<float>(1);
    const float* b_hi = args.buffer_data<float>(2);
    const float* b_lo = args.buffer_data<float>(3);
    float* c_hi = args.buffer_data<float>(4);
    float* c_lo = args.buffer_data<float>(5);

    DoubleSingle acc;
    for (std::uint32_t kk = 0; kk < n; ++kk) {
      const std::size_t ai = static_cast<std::size_t>(row) * n + kk;
      const std::size_t bi = static_cast<std::size_t>(kk) * n + col;
      acc = ds_fma({a_hi[ai], a_lo[ai]}, {b_hi[bi], b_lo[bi]}, acc);
    }
    const std::size_t ci = static_cast<std::size_t>(row) * n + col;
    c_hi[ci] = acc.hi;
    c_lo[ci] = acc.lo;
  });
  k.estimator = [](const metal::ArgumentTable& args, const metal::DispatchShape&) {
    const auto n = args.value<std::uint32_t>(6);
    const double nd = static_cast<double>(n);
    // n^3 emulated FMAs, each kFlopsPerDsFma FP32 ops; six FP32 planes of
    // traffic. Compute efficiency mirrors the naive FP32 shader's (~0.15 of
    // peak), since the access pattern is identical.
    return metal::WorkEstimate::generic(nd * nd * nd * kFlopsPerDsFma,
                                        6.0 * nd * nd * sizeof(float),
                                        /*efficiency=*/0.15);
  };
  return k;
}

void split_matrix(const double* src, float* hi, float* lo, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const DoubleSingle ds = DoubleSingle::from_double(src[i]);
    hi[i] = ds.hi;
    lo[i] = ds.lo;
  }
}

void join_matrix(const float* hi, const float* lo, double* dst,
                 std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    dst[i] = DoubleSingle{hi[i], lo[i]}.to_double();
  }
}

}  // namespace ao::fp64emu
