#include "fp64emu/gemm_fp64_shader.hpp"

#include "fp64emu/double_single.hpp"
#include "metal/compute_command_encoder.hpp"
#include "metal/device.hpp"

namespace ao::fp64emu {

metal::Kernel make_gemm_fp64_emulated() {
  metal::Kernel k;
  k.name = "gemm_fp64_emulated";
  k.body = metal::ThreadKernelFn([](const metal::ArgumentTable& args,
                                    const metal::ThreadContext& ctx) {
    const auto n = args.value<std::uint32_t>(6);
    const std::uint32_t col = ctx.thread_position_in_grid.x;
    const std::uint32_t row = ctx.thread_position_in_grid.y;
    if (row >= n || col >= n) {
      return;
    }
    const float* a_hi = args.buffer_data<float>(0);
    const float* a_lo = args.buffer_data<float>(1);
    const float* b_hi = args.buffer_data<float>(2);
    const float* b_lo = args.buffer_data<float>(3);
    float* c_hi = args.buffer_data<float>(4);
    float* c_lo = args.buffer_data<float>(5);

    DoubleSingle acc;
    for (std::uint32_t kk = 0; kk < n; ++kk) {
      const std::size_t ai = static_cast<std::size_t>(row) * n + kk;
      const std::size_t bi = static_cast<std::size_t>(kk) * n + col;
      acc = ds_fma({a_hi[ai], a_lo[ai]}, {b_hi[bi], b_lo[bi]}, acc);
    }
    const std::size_t ci = static_cast<std::size_t>(row) * n + col;
    c_hi[ci] = acc.hi;
    c_lo[ci] = acc.lo;
  });
  k.estimator = [](const metal::ArgumentTable& args, const metal::DispatchShape&) {
    const auto n = args.value<std::uint32_t>(6);
    const double nd = static_cast<double>(n);
    // n^3 emulated FMAs, each kFlopsPerDsFma FP32 ops; six FP32 planes of
    // traffic. Compute efficiency mirrors the naive FP32 shader's (~0.15 of
    // peak), since the access pattern is identical.
    return metal::WorkEstimate::generic(nd * nd * nd * kFlopsPerDsFma,
                                        6.0 * nd * nd * sizeof(float),
                                        /*efficiency=*/0.15);
  };
  return k;
}

void split_matrix(const double* src, float* hi, float* lo, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const DoubleSingle ds = DoubleSingle::from_double(src[i]);
    hi[i] = ds.hi;
    lo[i] = ds.lo;
  }
}

void join_matrix(const float* hi, const float* lo, double* dst,
                 std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    dst[i] = DoubleSingle{hi[i], lo[i]}.to_double();
  }
}

std::vector<double> run_emulated_gemm(metal::Device& device, const double* a,
                                      const double* b, std::uint32_t n) {
  const std::size_t count = static_cast<std::size_t>(n) * n;
  const std::size_t bytes = count * sizeof(float);
  auto mk = [&] { return device.new_buffer(bytes, mem::StorageMode::kShared); };
  auto a_hi = mk(), a_lo = mk(), b_hi = mk(), b_lo = mk(), c_hi = mk(),
       c_lo = mk();
  split_matrix(a, static_cast<float*>(a_hi->contents()),
               static_cast<float*>(a_lo->contents()), count);
  split_matrix(b, static_cast<float*>(b_hi->contents()),
               static_cast<float*>(b_lo->contents()), count);

  auto pipeline = device.new_compute_pipeline_state(make_gemm_fp64_emulated());
  auto queue = device.new_command_queue();
  auto cmd = queue->command_buffer();
  auto enc = cmd->compute_command_encoder();
  enc->set_compute_pipeline_state(pipeline);
  metal::Buffer* bufs[] = {a_hi.get(), a_lo.get(), b_hi.get(),
                           b_lo.get(), c_hi.get(), c_lo.get()};
  for (std::size_t s = 0; s < 6; ++s) {
    enc->set_buffer(bufs[s], 0, s);
  }
  enc->set_value<std::uint32_t>(n, 6);
  enc->dispatch_threads({n, n, 1}, {8, 8, 1});
  enc->end_encoding();
  cmd->commit();
  cmd->wait_until_completed();

  std::vector<double> result(count);
  join_matrix(static_cast<const float*>(c_hi->contents()),
              static_cast<const float*>(c_lo->contents()), result.data(),
              count);
  return result;
}

}  // namespace ao::fp64emu
