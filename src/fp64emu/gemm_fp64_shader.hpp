#pragma once

#include <cstdint>
#include <vector>

#include "metal/kernel.hpp"

namespace ao::metal {
class Device;
}

namespace ao::fp64emu {

/// GEMM shader computing in emulated FP64 (double-single arithmetic) on the
/// FP32-only simulated GPU — the extension experiment for the paper's FP64
/// limitation ("the M-Series GPUs lack native FP64 support (which can be
/// emulated)", Section 1; "this might limit their suitability for certain
/// scientific applications requiring double-precision", Section 7).
///
/// Bindings (all FP32 buffers; hi/lo component pairs for the ds format):
///   slot 0: A.hi   slot 1: A.lo
///   slot 2: B.hi   slot 3: B.lo
///   slot 4: C.hi   slot 5: C.lo
///   slot 6: uint32 n
///
/// The work estimate prices each emulated FMA at kFlopsPerDsFma FP32
/// operations on the generic GPU roofline, which produces the ~20x
/// FP32-to-emulated-FP64 throughput gap the technique is known for.
metal::Kernel make_gemm_fp64_emulated();

/// Splits a host FP64 matrix into hi/lo FP32 planes.
void split_matrix(const double* src, float* hi, float* lo, std::size_t count);

/// Reassembles hi/lo planes into FP64.
void join_matrix(const float* hi, const float* lo, double* dst,
                 std::size_t count);

/// The whole emulated-FP64 GEMM round trip on `device` for n x n FP64
/// operands: split into hi/lo planes, dispatch the shader (charging the
/// simulated GPU), join the product back to FP64. The one dispatch sequence
/// the X3 bench and the orchestrator's kFp64Emulation executor share.
std::vector<double> run_emulated_gemm(metal::Device& device, const double* a,
                                      const double* b, std::uint32_t n);

}  // namespace ao::fp64emu
