#include "fp64emu/double_single.hpp"

namespace ao::fp64emu {
namespace {

/// Dekker's splitter for FP32: 2^12 + 1 cleaves a 24-bit significand into
/// two 12-bit halves whose products are exact in FP32.
constexpr float kSplit = 4097.0f;

struct Split {
  float hi;
  float lo;
};

Split split(float a) {
  const float t = kSplit * a;
  const float hi = t - (t - a);
  return {hi, a - hi};
}

}  // namespace

DoubleSingle DoubleSingle::from_double(double value) {
  const auto hi = static_cast<float>(value);
  const auto lo = static_cast<float>(value - static_cast<double>(hi));
  return {hi, lo};
}

DoubleSingle two_sum(float a, float b) {
  const float s = a + b;
  const float v = s - a;
  const float e = (a - (s - v)) + (b - v);
  return {s, e};
}

DoubleSingle two_prod(float a, float b) {
  const float p = a * b;
  const Split sa = split(a);
  const Split sb = split(b);
  const float e = ((sa.hi * sb.hi - p) + sa.hi * sb.lo + sa.lo * sb.hi) +
                  sa.lo * sb.lo;
  return {p, e};
}

DoubleSingle ds_add(DoubleSingle a, DoubleSingle b) {
  DoubleSingle s = two_sum(a.hi, b.hi);
  s.lo += a.lo + b.lo;
  // Renormalize: fold the accumulated error back into a canonical pair.
  const DoubleSingle r = two_sum(s.hi, s.lo);
  return r;
}

DoubleSingle ds_sub(DoubleSingle a, DoubleSingle b) {
  return ds_add(a, {-b.hi, -b.lo});
}

DoubleSingle ds_mul(DoubleSingle a, DoubleSingle b) {
  DoubleSingle p = two_prod(a.hi, b.hi);
  p.lo += a.hi * b.lo + a.lo * b.hi;
  const DoubleSingle r = two_sum(p.hi, p.lo);
  return r;
}

DoubleSingle ds_fma(DoubleSingle a, DoubleSingle b, DoubleSingle c) {
  return ds_add(ds_mul(a, b), c);
}

}  // namespace ao::fp64emu
