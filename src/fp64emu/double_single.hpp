#pragma once

namespace ao::fp64emu {

/// Double-single ("float-float") arithmetic: an unevaluated sum of two FP32
/// values carrying ~49 bits of significand — the standard way to emulate
/// double precision on FP32-only GPUs, which is how the paper's Section 1
/// footnotes that the M-series GPUs' missing FP64 "can be emulated".
///
/// The algorithms are the classical error-free transformations (Knuth's
/// TwoSum, Dekker's split/TwoProd), written FMA-free because Metal's FP32
/// fma contraction cannot be relied on across all GPU generations.
struct DoubleSingle {
  float hi = 0.0f;  ///< leading component
  float lo = 0.0f;  ///< trailing error term, |lo| <= ulp(hi)/2

  constexpr DoubleSingle() = default;
  constexpr DoubleSingle(float h, float l) : hi(h), lo(l) {}

  /// Splits a double into hi + lo FP32 components (exact for the top 48
  /// mantissa bits).
  static DoubleSingle from_double(double value);

  double to_double() const { return static_cast<double>(hi) + lo; }

  static DoubleSingle from_float(float value) { return {value, 0.0f}; }
};

/// Error-free sum: a + b = s + e exactly (Knuth TwoSum, no branch).
DoubleSingle two_sum(float a, float b);

/// Error-free product: a * b = p + e exactly (Dekker split TwoProd).
DoubleSingle two_prod(float a, float b);

/// ds arithmetic. Results are accurate to ~2 ulps of the 49-bit format.
DoubleSingle ds_add(DoubleSingle a, DoubleSingle b);
DoubleSingle ds_sub(DoubleSingle a, DoubleSingle b);
DoubleSingle ds_mul(DoubleSingle a, DoubleSingle b);

/// Fused a*b + c in ds arithmetic (the GEMM inner-loop operation).
DoubleSingle ds_fma(DoubleSingle a, DoubleSingle b, DoubleSingle c);

/// FP32 operation count of one ds_fma — the cost model's basis for the
/// emulated-FP64 GEMM (ds_mul ~ 10 ops + ds_add ~ 11 ops).
inline constexpr double kFlopsPerDsFma = 21.0;

}  // namespace ao::fp64emu
