#include "harness/matrix_workload.hpp"

#include <algorithm>
#include <cstring>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ao::harness {

const std::vector<std::size_t>& paper_sizes() {
  static const std::vector<std::size_t> sizes = {32,  64,   128,  256,  512,
                                                 1024, 2048, 4096, 8192, 16384};
  return sizes;
}

const std::vector<std::size_t>& figure2_sizes() {
  static const std::vector<std::size_t> sizes = {256,  512,  1024, 2048,
                                                 4096, 8192, 16384};
  return sizes;
}

const std::vector<std::size_t>& figure34_sizes() {
  static const std::vector<std::size_t> sizes = {2048, 4096, 8192, 16384};
  return sizes;
}

bool paper_skips(soc::GemmImpl impl, std::size_t n) {
  const bool slow_cpu_path = impl == soc::GemmImpl::kCpuSingle ||
                             impl == soc::GemmImpl::kCpuOmp;
  return slow_cpu_path && n >= 8192;
}

MatrixSet::MatrixSet(std::size_t n, bool fill, std::uint64_t seed)
    : n_(n),
      left_(n * n * sizeof(float)),
      right_(n * n * sizeof(float)),
      out_(n * n * sizeof(float)) {
  if (fill) {
    fill_left_operand(left(), n, seed);
    fill_right_operand(right(), n, seed);
  }
}

void MatrixSet::clear_out() {
  std::memset(out_.data(), 0, out_.capacity());
}

void fill_left_operand(float* data, std::size_t n, std::uint64_t seed) {
  parallel_fill_uniform(data, n * n, seed);
}

void fill_right_operand(float* data, std::size_t n, std::uint64_t seed) {
  parallel_fill_uniform(data, n * n, seed + 1);
}

void parallel_fill_uniform(float* data, std::size_t count, std::uint64_t seed) {
  constexpr std::size_t kChunk = 1u << 20;
  const std::size_t chunks = (count + kChunk - 1) / kChunk;
  if (chunks <= 1) {
    util::fill_uniform({data, count}, seed);
    return;
  }
  util::global_pool().parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * kChunk;
    const std::size_t end = std::min(begin + kChunk, count);
    // Chunk-indexed seeds keep the fill deterministic regardless of the
    // worker schedule.
    util::fill_uniform({data + begin, end - begin}, seed ^ (c * 0x9e3779b9ull));
  });
}

}  // namespace ao::harness
