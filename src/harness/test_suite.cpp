#include "harness/test_suite.hpp"

#include "util/error.hpp"

namespace ao::harness {

void test_suite(const MultiplyCallback& callback, const std::string& data_dir,
                const std::vector<std::size_t>& sizes, int repetitions) {
  AO_REQUIRE(static_cast<bool>(callback), "test_suite needs a callback");
  AO_REQUIRE(repetitions >= 1, "need at least one repetition");
  (void)data_dir;  // matrices are generated deterministically, not loaded

  for (const std::size_t n : sizes) {
    MatrixSet matrices(n, /*fill=*/true);
    for (int rep = 0; rep < repetitions; ++rep) {
      matrices.clear_out();
      callback(static_cast<unsigned int>(n),
               static_cast<unsigned int>(matrices.memory_length()),
               matrices.left(), matrices.right(), matrices.out());
    }
  }
}

}  // namespace ao::harness
