#include "harness/test_suite.hpp"

#include "util/error.hpp"
#include "util/hash.hpp"

namespace ao::harness {
namespace {

/// Digest of the live n x n payload of a matrix — parallel and word-wide,
/// so running it per repetition stays cheap next to the callback, while
/// still detecting any callback mutation of the inputs.
std::uint64_t payload_fingerprint(const float* data, std::size_t count) {
  return util::parallel_fnv1a_bytes(data, count * sizeof(float));
}

}  // namespace

void test_suite(const MultiplyCallback& callback, const std::string& data_dir,
                const std::vector<std::size_t>& sizes, int repetitions,
                std::uint64_t seed) {
  AO_REQUIRE(static_cast<bool>(callback), "test_suite needs a callback");
  AO_REQUIRE(repetitions >= 1, "need at least one repetition");
  (void)data_dir;  // matrices are generated deterministically, not loaded

  for (const std::size_t n : sizes) {
    MatrixSet matrices(n, /*fill=*/true, seed);
    const std::uint64_t left_fresh = payload_fingerprint(matrices.left(), n * n);
    const std::uint64_t right_fresh =
        payload_fingerprint(matrices.right(), n * n);
    for (int rep = 0; rep < repetitions; ++rep) {
      matrices.clear_out();
      callback(static_cast<unsigned int>(n),
               static_cast<unsigned int>(matrices.memory_length()),
               matrices.left(), matrices.right(), matrices.out());
      if (rep + 1 == repetitions) {
        continue;  // data is discarded after the last repetition anyway
      }
      // Restore any input the callback mutated so the next repetition sees
      // the same bits the first one did.
      if (payload_fingerprint(matrices.left(), n * n) != left_fresh) {
        fill_left_operand(matrices.left(), n, seed);
      }
      if (payload_fingerprint(matrices.right(), n * n) != right_fresh) {
        fill_right_operand(matrices.right(), n, seed);
      }
    }
  }
}

}  // namespace ao::harness
