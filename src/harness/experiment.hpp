#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "gemm/gemm_interface.hpp"
#include "harness/matrix_workload.hpp"
#include "power/powermetrics.hpp"
#include "util/statistics.hpp"

namespace ao::harness {

/// One (chip, implementation, size) measurement — a point in Figures 2-4.
struct GemmMeasurement {
  soc::ChipModel chip{};
  soc::GemmImpl impl{};
  std::size_t n = 0;

  util::SampleSet time_ns;      ///< per repetition (simulated)
  double best_gflops = 0.0;     ///< from the fastest repetition
  double mean_gflops = 0.0;

  double power_mw = 0.0;        ///< powermetrics combined power over the run
  double cpu_power_mw = 0.0;
  double gpu_power_mw = 0.0;
  double gflops_per_watt = 0.0; ///< best_gflops / (power_mw / 1000)

  bool functional = false;      ///< numeric work actually executed
  bool verified = false;        ///< checked against the reference SGEMM
  float max_error = 0.0f;

  bool operator==(const GemmMeasurement&) const = default;
};

/// Reproduces the paper's measurement methodology (Sections 3.2-3.3 and 4):
///
///  - n x n matrices, page-aligned, uniform [0, 1) FP32;
///  - each experiment repeated five times, timed at ns granularity
///    (simulated clock here, std::chrono there);
///  - power measured by piggybacking powermetrics on the same run: start the
///    monitor, warm it up (~2 s), SIGINFO to reset, run, SIGINFO to capture,
///    stop, then parse the tool's text output;
///  - the slowest CPU paths skip n >= 8192 (paper_skips()).
///
/// The harness adds two reproduction-specific controls: functional execution
/// is limited to n <= functional threshold per implementation (above it the
/// model alone is charged) and results are verified against the reference
/// SGEMM up to verify_n_max.
class GemmExperiment {
 public:
  struct Options {
    int repetitions = 5;
    std::size_t verify_n_max = 256;
    bool use_powermetrics = true;
    double warmup_seconds = 2.0;
    /// Seed the operand matrices are generated from. Part of a measurement's
    /// identity: the orchestrator's ResultCache keys on it.
    std::uint64_t matrix_seed = 42;
    /// Per-impl functional ceilings (0 = never run functionally). Defaults
    /// keep the host-side cost of a full sweep in seconds, not hours.
    std::map<soc::GemmImpl, std::size_t> functional_n_max = {
        {soc::GemmImpl::kCpuSingle, 256},  {soc::GemmImpl::kCpuOmp, 512},
        {soc::GemmImpl::kCpuAccelerate, 512}, {soc::GemmImpl::kGpuNaive, 512},
        {soc::GemmImpl::kGpuCutlass, 512}, {soc::GemmImpl::kGpuMps, 1024},
    };
  };

  explicit GemmExperiment(gemm::GemmContext& context);
  GemmExperiment(gemm::GemmContext& context, Options options);

  /// Measures one implementation at one size, using (and clobbering the
  /// output matrix of) `matrices`.
  GemmMeasurement measure(gemm::IGemm& impl, MatrixSet& matrices);

  /// View form: timed measurement plus verification against the reference
  /// SGEMM (when functional and n <= verify_n_max).
  GemmMeasurement measure(gemm::IGemm& impl, const MatrixView& matrices);

  /// Timing + power only, no verification — the orchestrator splits
  /// verification into a dependent job so it can run off the measurement
  /// critical path.
  GemmMeasurement measure_timed(gemm::IGemm& impl, const MatrixView& matrices);

  /// Full sweep: every implementation over `sizes`, honoring paper_skips().
  /// Matrices are allocated once per size and shared across implementations.
  ///
  /// Routed through the orchestrator: each point is measured on a freshly
  /// booted simulated System of the bound context's chip model (the paper's
  /// reboot-and-idle protocol), NOT on the bound System itself — the
  /// caller's System is left untouched and its activity log stays empty.
  /// measure() still runs on the bound context for callers that
  /// pre-condition a System deliberately (e.g. the cooling ablation).
  std::vector<GemmMeasurement> run_suite(
      const std::vector<soc::GemmImpl>& impls,
      const std::vector<std::size_t>& sizes);

  const Options& options() const { return options_; }

 private:
  gemm::GemmContext* ctx_;
  Options options_;
};

/// True when `impl` at size `n` executes numerically under `options`
/// (it has a functional ceiling and n is within it). Pure policy — the
/// campaign expander uses it to decide which jobs need filled matrices.
bool functional_at(const GemmExperiment::Options& options, soc::GemmImpl impl,
                   std::size_t n);

/// Checks a functional measurement's output against the double-accumulating
/// reference SGEMM, filling `m.max_error` / `m.verified`. No-op for
/// non-functional measurements (nothing was computed). Needs only host
/// buffers, so the orchestrator can run it as a dependent job without
/// leasing a simulated System.
void verify_measurement(GemmMeasurement& m, const MatrixView& matrices);

}  // namespace ao::harness
