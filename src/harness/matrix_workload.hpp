#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "soc/benchmark_taxonomy.hpp"
#include "util/aligned_buffer.hpp"

namespace ao::harness {

/// The paper's matrix-size sweep (Section 4): powers of two from 32 to
/// 16384, "as this provides further hardware optimizations and as padding to
/// such sizes occurs often".
const std::vector<std::size_t>& paper_sizes();

/// Sizes shown in the paper's figures (Figure 2 starts at 256; Figures 3-4
/// at 2048).
const std::vector<std::size_t>& figure2_sizes();
const std::vector<std::size_t>& figure34_sizes();

/// The paper skips the slowest CPU paths at the largest sizes: "Except for
/// CPU-Single (Baseline) and CPU-OMP, which did not execute 8,192 and
/// 16,384 due to the long execution time."
bool paper_skips(soc::GemmImpl impl, std::size_t n);

/// Non-owning view of one GEMM operand set: the exact tuple the paper's
/// test-library callback receives (size, page-rounded byte length, three
/// page-aligned matrices). Inputs are const — a view can share one
/// left/right allocation across many concurrent measurements (the
/// orchestrator's batched scheduling) while each measurement writes its own
/// output matrix.
struct MatrixView {
  std::size_t n = 0;
  std::size_t memory_length = 0;  ///< page-rounded bytes per matrix
  const float* left = nullptr;
  const float* right = nullptr;
  float* out = nullptr;
};

/// One benchmark operand set: three n x n FP32 matrices allocated exactly as
/// the paper allocates them — aligned_alloc with the 16384-byte page size,
/// lengths extended to the nearest page multiple "such that the GPU could
/// bypass memory copying".
class MatrixSet {
 public:
  /// Allocates and (optionally) fills A and B with uniform [0, 1) values;
  /// C starts zeroed. Filling is skipped for model-only runs where content
  /// is never read.
  MatrixSet(std::size_t n, bool fill = true, std::uint64_t seed = 42);

  std::size_t n() const { return n_; }
  /// Page-rounded byte length of each matrix (the `memory_length` the
  /// paper's callback receives).
  std::size_t memory_length() const { return left_.capacity(); }

  float* left() { return left_.as_span<float>().data(); }
  float* right() { return right_.as_span<float>().data(); }
  float* out() { return out_.as_span<float>().data(); }
  const float* left() const { return left_.as_span<float>().data(); }
  const float* right() const { return right_.as_span<float>().data(); }
  const float* out() const { return out_.as_span<float>().data(); }

  /// Zeroes the output matrix (between repetitions).
  void clear_out();

  /// The view the measurement layer consumes.
  MatrixView view() { return {n_, memory_length(), left(), right(), out()}; }

 private:
  std::size_t n_;
  util::AlignedBuffer left_;
  util::AlignedBuffer right_;
  util::AlignedBuffer out_;
};

/// Parallel uniform [0,1) fill with per-chunk deterministic seeding.
void parallel_fill_uniform(float* data, std::size_t count, std::uint64_t seed);

/// The canonical operand-seeding convention: the left matrix is generated
/// from `seed`, the right from a derived seed. Every producer of GEMM
/// operands (MatrixSet, the orchestrator's MatrixBatch, test_suite's
/// between-repetition restore) goes through these two functions, so
/// (n, seed) identifies the operand bits everywhere — the property the
/// orchestrator's ResultCache identity rests on.
void fill_left_operand(float* data, std::size_t n, std::uint64_t seed);
void fill_right_operand(float* data, std::size_t n, std::uint64_t seed);

}  // namespace ao::harness
