#pragma once

#include <map>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "stream/stream_result.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv_writer.hpp"
#include "util/table_printer.hpp"

namespace ao::harness {

/// Reporters that render measurement sets in the shape of the paper's
/// figures: a numeric table, a CSV dump, and an ASCII chart per artifact.

/// --- Figure 1: STREAM ----------------------------------------------------

struct StreamFigureEntry {
  soc::ChipModel chip{};
  double theoretical_gbs = 0.0;
  std::array<double, 4> cpu_gbs{};  ///< by StreamKernel
  std::array<double, 4> gpu_gbs{};
};

util::TablePrinter figure1_table(const std::vector<StreamFigureEntry>& entries);
util::CsvWriter figure1_csv(const std::vector<StreamFigureEntry>& entries);
std::string figure1_chart(const std::vector<StreamFigureEntry>& entries);

/// --- Figure 2: GEMM GFLOPS -----------------------------------------------

/// One table per chip: rows = sizes, columns = implementations.
util::TablePrinter figure2_table(soc::ChipModel chip,
                                 const std::vector<GemmMeasurement>& results);
util::CsvWriter figure2_csv(const std::vector<GemmMeasurement>& results);
/// Log-log GFLOPS-vs-size plot for one chip (the paper's panel).
std::string figure2_plot(soc::ChipModel chip,
                         const std::vector<GemmMeasurement>& results);
/// Peak GFLOPS per (chip, impl) — the numbers quoted in Section 5.2.
util::TablePrinter peak_gflops_table(const std::vector<GemmMeasurement>& results);

/// --- Figure 3: power -----------------------------------------------------

util::TablePrinter figure3_table(soc::ChipModel chip,
                                 const std::vector<GemmMeasurement>& results);
util::CsvWriter figure3_csv(const std::vector<GemmMeasurement>& results);

/// --- Figure 4: efficiency ------------------------------------------------

util::TablePrinter figure4_table(soc::ChipModel chip,
                                 const std::vector<GemmMeasurement>& results);
util::CsvWriter figure4_csv(const std::vector<GemmMeasurement>& results);
/// Peak GFLOPS/W per (chip, impl) — the numbers quoted in Section 5.3.
util::TablePrinter peak_efficiency_table(
    const std::vector<GemmMeasurement>& results);

/// Filters helpers.
std::vector<GemmMeasurement> for_chip(const std::vector<GemmMeasurement>& all,
                                      soc::ChipModel chip);

}  // namespace ao::harness
