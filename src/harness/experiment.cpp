#include "harness/experiment.hpp"

#include <vector>

#include "accelerate/reference_blas.hpp"
#include "orchestrator/campaign.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace ao::harness {

GemmExperiment::GemmExperiment(gemm::GemmContext& context)
    : GemmExperiment(context, Options{}) {}

GemmExperiment::GemmExperiment(gemm::GemmContext& context, Options options)
    : ctx_(&context), options_(std::move(options)) {
  AO_REQUIRE(options_.repetitions >= 1, "need at least one repetition");
}

bool functional_at(const GemmExperiment::Options& options, soc::GemmImpl impl,
                   std::size_t n) {
  const auto it = options.functional_n_max.find(impl);
  return it != options.functional_n_max.end() && n <= it->second;
}

void verify_measurement(GemmMeasurement& m, const MatrixView& matrices) {
  if (!m.functional) {
    return;  // nothing was computed; there is nothing to check
  }
  const std::size_t n = matrices.n;
  AO_REQUIRE(n == m.n, "verification matrices do not match the measurement");
  std::vector<float> expected(n * n);
  accelerate::reference::sgemm(false, false, n, n, n, 1.0f, matrices.left, n,
                               matrices.right, n, 0.0f, expected.data(), n);
  m.max_error = accelerate::reference::max_abs_diff(expected.data(),
                                                    matrices.out, n, n, n);
  m.verified = m.max_error <= accelerate::reference::gemm_tolerance(n);
}

GemmMeasurement GemmExperiment::measure(gemm::IGemm& impl, MatrixSet& matrices) {
  return measure(impl, matrices.view());
}

GemmMeasurement GemmExperiment::measure(gemm::IGemm& impl,
                                        const MatrixView& matrices) {
  GemmMeasurement m = measure_timed(impl, matrices);
  if (m.functional && m.n <= options_.verify_n_max) {
    verify_measurement(m, matrices);
  }
  return m;
}

GemmMeasurement GemmExperiment::measure_timed(gemm::IGemm& impl,
                                              const MatrixView& matrices) {
  const std::size_t n = matrices.n;
  soc::Soc& soc = ctx_->soc;

  // The paper runs each test session from a cold, idle machine ("tests are
  // conducted after a system reboot, followed by an idle period until the
  // system is fully idle", Section 4). Restore the thermal state so one
  // measurement's heat soak does not throttle the next; the sustained-load
  // cooling ablation drives multiplications directly to study that effect.
  soc.thermal().reset();

  GemmMeasurement m;
  m.chip = soc.spec().model;
  m.impl = impl.kind();
  m.n = n;
  m.functional = functional_at(options_, impl.kind(), n);

  // Power monitor: started before the run, warmed up, reset via SIGINFO
  // (Section 3.3). The warm-up interval is simulated idle time.
  std::optional<power::PowerMetrics> monitor;
  if (options_.use_powermetrics) {
    monitor.emplace(soc, power::SamplerSet{true, true, true});
    monitor->start();
    soc.idle(options_.warmup_seconds * 1e9);
    monitor->siginfo();  // reset: discard the warm-up window
  }

  const double flops = soc::gemm_flops(n);
  for (int rep = 0; rep < options_.repetitions; ++rep) {
    // Functional execution only on the first repetition: the numeric result
    // cannot change across repetitions, while the modeled time may (thermal
    // drift), exactly what the repeated timing is for.
    const bool functional = m.functional && rep == 0;
    const std::uint64_t t0 = soc.clock().now();
    impl.multiply(n, matrices.memory_length, matrices.left, matrices.right,
                  matrices.out, functional);
    const auto dt = static_cast<double>(soc.clock().now() - t0);
    m.time_ns.add(dt);
  }

  if (monitor.has_value()) {
    const power::PowerSample sample = monitor->siginfo();  // capture the run
    monitor->stop();
    // The paper parses the tool's text output rather than reading values
    // programmatically; round-trip through the same path.
    const auto parsed = power::parse_powermetrics_output(monitor->output_text());
    AO_REQUIRE(parsed.size() == 2, "expected warm-up + run samples");
    m.power_mw = parsed.back().combined_mw;
    m.cpu_power_mw = parsed.back().cpu_mw;
    m.gpu_power_mw = parsed.back().gpu_mw;
    (void)sample;
  }

  m.best_gflops = util::gflops(flops, m.time_ns.min());
  m.mean_gflops = util::gflops(flops, m.time_ns.mean());
  // Efficiency pairs the *mean* rate with the power sample: powermetrics
  // averages over the whole five-repetition window, so dividing the coolest
  // repetition's rate by the window-average power would overstate
  // GFLOPS/W whenever the package throttles mid-window.
  m.gflops_per_watt = util::gflops_per_watt(m.mean_gflops, m.power_mw);
  return m;
}

std::vector<GemmMeasurement> GemmExperiment::run_suite(
    const std::vector<soc::GemmImpl>& impls,
    const std::vector<std::size_t>& sizes) {
  // Route through the orchestrator: the campaign expands the same
  // (impl x size) grid into jobs, batches the per-size allocations exactly
  // as the old serial loop shared them, and — because each job runs on a
  // freshly reset simulated System — produces the measurement set the
  // serial loop produced. Serial callers keep their historical row order.
  orchestrator::Campaign campaign;
  campaign.chips({ctx_->soc.spec().model})
      .impls(impls)
      .sizes(sizes)
      .options(options_)
      .concurrency(1);
  return campaign.run().ordered(sizes, impls);
}

}  // namespace ao::harness
