#include "harness/reporting.hpp"

#include <algorithm>
#include <set>

#include "util/units.hpp"

namespace ao::harness {
namespace {

std::vector<std::size_t> sorted_sizes(const std::vector<GemmMeasurement>& rs) {
  std::set<std::size_t> sizes;
  for (const auto& r : rs) {
    sizes.insert(r.n);
  }
  return {sizes.begin(), sizes.end()};
}

const GemmMeasurement* find(const std::vector<GemmMeasurement>& rs,
                            soc::GemmImpl impl, std::size_t n) {
  for (const auto& r : rs) {
    if (r.impl == impl && r.n == n) {
      return &r;
    }
  }
  return nullptr;
}

constexpr std::array<char, 6> kImplMarkers = {'s', 'o', 'a', 'n', 'c', 'm'};

}  // namespace

std::vector<GemmMeasurement> for_chip(const std::vector<GemmMeasurement>& all,
                                      soc::ChipModel chip) {
  std::vector<GemmMeasurement> out;
  for (const auto& r : all) {
    if (r.chip == chip) {
      out.push_back(r);
    }
  }
  return out;
}

util::TablePrinter figure1_table(const std::vector<StreamFigureEntry>& entries) {
  util::TablePrinter table({"Chip", "Theoretical", "Agent", "Copy", "Scale",
                            "Add", "Triad", "Best", "% of peak"});
  for (const auto& e : entries) {
    auto row = [&](const char* agent, const std::array<double, 4>& gbs) {
      const double best = *std::max_element(gbs.begin(), gbs.end());
      table.add_row({soc::to_string(e.chip),
                     util::format_fixed(e.theoretical_gbs, 0) + " GB/s", agent,
                     util::format_fixed(gbs[0], 1), util::format_fixed(gbs[1], 1),
                     util::format_fixed(gbs[2], 1), util::format_fixed(gbs[3], 1),
                     util::format_fixed(best, 1),
                     util::format_fixed(best / e.theoretical_gbs * 100.0, 1) + "%"});
    };
    row("CPU", e.cpu_gbs);
    row("GPU", e.gpu_gbs);
  }
  return table;
}

util::CsvWriter figure1_csv(const std::vector<StreamFigureEntry>& entries) {
  util::CsvWriter csv({"chip", "agent", "kernel", "gbs", "theoretical_gbs"});
  for (const auto& e : entries) {
    for (std::size_t k = 0; k < 4; ++k) {
      const std::string kernel = soc::to_string(soc::kAllStreamKernels[k]);
      csv.add_row({soc::to_string(e.chip), "CPU", kernel,
                   util::format_fixed(e.cpu_gbs[k], 2),
                   util::format_fixed(e.theoretical_gbs, 1)});
      csv.add_row({soc::to_string(e.chip), "GPU", kernel,
                   util::format_fixed(e.gpu_gbs[k], 2),
                   util::format_fixed(e.theoretical_gbs, 1)});
    }
  }
  return csv;
}

std::string figure1_chart(const std::vector<StreamFigureEntry>& entries) {
  std::string out;
  for (const auto& e : entries) {
    util::BarChart chart("STREAM bandwidth - " + soc::to_string(e.chip), "GB/s");
    chart.set_reference_line(e.theoretical_gbs, "theoretical");
    chart.add_group("CPU");
    for (std::size_t k = 0; k < 4; ++k) {
      chart.add_bar(soc::to_string(soc::kAllStreamKernels[k]) + " (CPU)",
                    e.cpu_gbs[k]);
    }
    chart.add_group("GPU");
    for (std::size_t k = 0; k < 4; ++k) {
      chart.add_bar(soc::to_string(soc::kAllStreamKernels[k]) + " (GPU)",
                    e.gpu_gbs[k]);
    }
    out += chart.render() + "\n";
  }
  return out;
}

namespace {

util::TablePrinter per_chip_metric_table(
    soc::ChipModel chip, const std::vector<GemmMeasurement>& results,
    const std::string& unit, double (*metric)(const GemmMeasurement&)) {
  std::vector<std::string> headers = {"n \\ impl (" + unit + ")"};
  for (const auto impl : soc::kAllGemmImpls) {
    headers.push_back(soc::to_string(impl));
  }
  util::TablePrinter table(headers);
  const auto chip_results = for_chip(results, chip);
  for (const std::size_t n : sorted_sizes(chip_results)) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const auto impl : soc::kAllGemmImpls) {
      const auto* r = find(chip_results, impl, n);
      row.push_back(r == nullptr ? "-" : util::format_fixed(metric(*r), 2));
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace

util::TablePrinter figure2_table(soc::ChipModel chip,
                                 const std::vector<GemmMeasurement>& results) {
  return per_chip_metric_table(chip, results, "GFLOPS",
                               [](const GemmMeasurement& r) { return r.best_gflops; });
}

util::CsvWriter figure2_csv(const std::vector<GemmMeasurement>& results) {
  util::CsvWriter csv({"chip", "impl", "n", "best_gflops", "mean_gflops",
                       "min_time_ns", "verified"});
  for (const auto& r : results) {
    csv.add_row({soc::to_string(r.chip), soc::to_string(r.impl),
                 std::to_string(r.n), util::format_fixed(r.best_gflops, 3),
                 util::format_fixed(r.mean_gflops, 3),
                 util::format_fixed(r.time_ns.min(), 0),
                 r.verified ? "yes" : (r.functional ? "unchecked" : "model-only")});
  }
  return csv;
}

std::string figure2_plot(soc::ChipModel chip,
                         const std::vector<GemmMeasurement>& results) {
  util::LinePlot plot("GEMM FP32 performance - " + soc::to_string(chip),
                      "matrix size n", "GFLOPS");
  plot.set_log_x(true);
  plot.set_log_y(true);
  const auto chip_results = for_chip(results, chip);
  for (std::size_t i = 0; i < soc::kAllGemmImpls.size(); ++i) {
    const auto impl = soc::kAllGemmImpls[i];
    std::vector<double> xs;
    std::vector<double> ys;
    for (const std::size_t n : sorted_sizes(chip_results)) {
      if (const auto* r = find(chip_results, impl, n)) {
        xs.push_back(static_cast<double>(n));
        ys.push_back(r->best_gflops);
      }
    }
    if (!xs.empty()) {
      plot.add_series(soc::to_string(impl), kImplMarkers[i], xs, ys);
    }
  }
  return plot.render();
}

util::TablePrinter peak_gflops_table(
    const std::vector<GemmMeasurement>& results) {
  util::TablePrinter table(
      {"Implementation", "M1", "M2", "M3", "M4", "unit"});
  for (const auto impl : soc::kAllGemmImpls) {
    std::vector<std::string> row = {soc::to_string(impl)};
    for (const auto chip : soc::kAllChipModels) {
      double best = 0.0;
      for (const auto& r : results) {
        if (r.chip == chip && r.impl == impl) {
          best = std::max(best, r.best_gflops);
        }
      }
      row.push_back(best == 0.0 ? "-" : util::format_fixed(best, 1));
    }
    row.push_back("GFLOPS");
    table.add_row(std::move(row));
  }
  return table;
}

util::TablePrinter figure3_table(soc::ChipModel chip,
                                 const std::vector<GemmMeasurement>& results) {
  return per_chip_metric_table(chip, results, "mW",
                               [](const GemmMeasurement& r) { return r.power_mw; });
}

util::CsvWriter figure3_csv(const std::vector<GemmMeasurement>& results) {
  util::CsvWriter csv(
      {"chip", "impl", "n", "combined_mw", "cpu_mw", "gpu_mw"});
  for (const auto& r : results) {
    csv.add_row({soc::to_string(r.chip), soc::to_string(r.impl),
                 std::to_string(r.n), util::format_fixed(r.power_mw, 1),
                 util::format_fixed(r.cpu_power_mw, 1),
                 util::format_fixed(r.gpu_power_mw, 1)});
  }
  return csv;
}

util::TablePrinter figure4_table(soc::ChipModel chip,
                                 const std::vector<GemmMeasurement>& results) {
  return per_chip_metric_table(
      chip, results, "GFLOPS/W",
      [](const GemmMeasurement& r) { return r.gflops_per_watt; });
}

util::CsvWriter figure4_csv(const std::vector<GemmMeasurement>& results) {
  util::CsvWriter csv({"chip", "impl", "n", "gflops_per_watt"});
  for (const auto& r : results) {
    csv.add_row({soc::to_string(r.chip), soc::to_string(r.impl),
                 std::to_string(r.n),
                 util::format_fixed(r.gflops_per_watt, 2)});
  }
  return csv;
}

util::TablePrinter peak_efficiency_table(
    const std::vector<GemmMeasurement>& results) {
  util::TablePrinter table(
      {"Implementation", "M1", "M2", "M3", "M4", "unit"});
  for (const auto impl : soc::kAllGemmImpls) {
    std::vector<std::string> row = {soc::to_string(impl)};
    for (const auto chip : soc::kAllChipModels) {
      double best = 0.0;
      for (const auto& r : results) {
        if (r.chip == chip && r.impl == impl) {
          best = std::max(best, r.gflops_per_watt);
        }
      }
      row.push_back(best == 0.0 ? "-" : util::format_fixed(best, 1));
    }
    row.push_back("GFLOPS/W");
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace ao::harness
