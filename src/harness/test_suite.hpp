#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/matrix_workload.hpp"

namespace ao::harness {

/// The paper's test-library callback signature (Listings 1-2): the suite
/// hands each implementation the matrix size, the page-rounded allocation
/// length in bytes, and the three page-aligned matrices.
using MultiplyCallback =
    std::function<void(unsigned int n, unsigned int memory_length, float* left,
                       float* right, float* out)>;

/// Faithful form of the paper's test_suite(): for every size in `sizes`,
/// allocates page-aligned matrices filled with uniform [0, 1) values,
/// invokes the callback `repetitions` times, and discards the data. The
/// `data_dir` parameter mirrors the original's matrix-data directory
/// argument; pass an empty string (matrices are generated, not loaded).
///
/// Discard semantics: every repetition — and every repeated invocation with
/// the same `seed` — observes bit-identical input matrices. The callback
/// receives mutable pointers (the paper's signature), so inputs a callback
/// clobbers are regenerated before the next repetition rather than leaking
/// into it. This is what makes (n, seed) a sound ResultCache identity for
/// anything measured through the suite.
void test_suite(const MultiplyCallback& callback,
                const std::string& data_dir = {},
                const std::vector<std::size_t>& sizes = paper_sizes(),
                int repetitions = 5, std::uint64_t seed = 42);

}  // namespace ao::harness
