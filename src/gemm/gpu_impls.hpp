#pragma once

#include "gemm/gemm_interface.hpp"

namespace ao::gemm {

/// GPU-Naive: the naive algorithm as a Metal shader, one thread per C
/// element (Table 2 row 3). Loads the `gemm_naive` function from the shader
/// library on construction, as the paper loads its .metallib on startup.
class GpuNaiveGemm final : public IGemm {
 public:
  explicit GpuNaiveGemm(GemmContext& context);
  soc::GemmImpl kind() const override { return soc::GemmImpl::kGpuNaive; }
  void multiply(std::size_t n, std::size_t memory_length, const float* left,
                const float* right, float* out, bool functional) override;

  /// Threadgroup edge: "eight horizontal and eight vertical thread groups
  /// were used" (Section 3.2) — 8 x 8 threads per group, grid sized to
  /// cover the matrix.
  static constexpr std::uint32_t kGroupEdge = 8;

 private:
  GemmContext* ctx_;
  metal::ComputePipelineStatePtr pipeline_;
};

/// GPU-CUTLASS: the Cutlass-style tiled shader with threadgroup-memory
/// staging (Table 2 row 4).
class GpuTiledGemm final : public IGemm {
 public:
  explicit GpuTiledGemm(GemmContext& context);
  soc::GemmImpl kind() const override { return soc::GemmImpl::kGpuCutlass; }
  void multiply(std::size_t n, std::size_t memory_length, const float* left,
                const float* right, float* out, bool functional) override;

 private:
  GemmContext* ctx_;
  metal::ComputePipelineStatePtr pipeline_;
};

/// GPU-MPS: Metal Performance Shaders matrix multiplication (Table 2 row 5),
/// following the paper's Listing 2: wrap the page-aligned matrices in
/// no-copy shared buffers, build MPSMatrix descriptors, encode, commit, wait.
class GpuMpsGemm final : public IGemm {
 public:
  explicit GpuMpsGemm(GemmContext& context);
  soc::GemmImpl kind() const override { return soc::GemmImpl::kGpuMps; }
  void multiply(std::size_t n, std::size_t memory_length, const float* left,
                const float* right, float* out, bool functional) override;

 private:
  GemmContext* ctx_;
};

}  // namespace ao::gemm
