#include "gemm/gpu_impls.hpp"

#include "metal/compute_command_encoder.hpp"
#include "mps/mps_gemm.hpp"
#include "shaders/gemm_shaders.hpp"
#include "util/error.hpp"

namespace ao::gemm {
namespace {

void validate(std::size_t n, std::size_t memory_length, const float* left,
              const float* right, const float* out) {
  AO_REQUIRE(n > 0, "matrix size must be positive");
  AO_REQUIRE(left != nullptr && right != nullptr && out != nullptr,
             "matrix pointers must not be null");
  AO_REQUIRE(memory_length >= n * n * sizeof(float),
             "memory_length smaller than the matrix");
}

/// Wraps the three page-aligned matrices in no-copy shared buffers — the
/// paper's zero-copy path ("an MTL-shared no-copy buffer is made to wrap
/// around the matrix data").
struct WrappedMatrices {
  metal::BufferPtr a;
  metal::BufferPtr b;
  metal::BufferPtr c;
};

WrappedMatrices wrap(metal::Device& device, std::size_t memory_length,
                     const float* left, const float* right, float* out) {
  WrappedMatrices w;
  // The simulated GPU reads through the host pointer; constness of the
  // inputs is preserved by the kernels (they only read slots 0 and 1).
  w.a = device.new_buffer_with_bytes_no_copy(const_cast<float*>(left),
                                             memory_length,
                                             mem::StorageMode::kShared);
  w.b = device.new_buffer_with_bytes_no_copy(const_cast<float*>(right),
                                             memory_length,
                                             mem::StorageMode::kShared);
  w.c = device.new_buffer_with_bytes_no_copy(out, memory_length,
                                             mem::StorageMode::kShared);
  return w;
}

}  // namespace

GpuNaiveGemm::GpuNaiveGemm(GemmContext& context)
    : ctx_(&context),
      pipeline_(context.device.new_compute_pipeline_state(context.shaders,
                                                          "gemm_naive")) {}

void GpuNaiveGemm::multiply(std::size_t n, std::size_t memory_length,
                            const float* left, const float* right, float* out,
                            bool functional) {
  validate(n, memory_length, left, right, out);
  auto wrapped = wrap(ctx_->device, memory_length, left, right, out);

  auto cmd = ctx_->queue->command_buffer();
  auto enc = cmd->compute_command_encoder();
  enc->set_compute_pipeline_state(pipeline_);
  enc->set_buffer(wrapped.a.get(), 0, 0);
  enc->set_buffer(wrapped.b.get(), 0, 1);
  enc->set_buffer(wrapped.c.get(), 0, 2);
  enc->set_value<std::uint32_t>(static_cast<std::uint32_t>(n), 3);
  enc->set_functional_execution(functional);
  enc->dispatch_threads(
      {static_cast<std::uint32_t>(n), static_cast<std::uint32_t>(n), 1},
      {kGroupEdge, kGroupEdge, 1});
  enc->end_encoding();
  cmd->commit();
  cmd->wait_until_completed();
}

GpuTiledGemm::GpuTiledGemm(GemmContext& context)
    : ctx_(&context),
      pipeline_(context.device.new_compute_pipeline_state(context.shaders,
                                                          "gemm_tiled")) {}

void GpuTiledGemm::multiply(std::size_t n, std::size_t memory_length,
                            const float* left, const float* right, float* out,
                            bool functional) {
  validate(n, memory_length, left, right, out);
  auto wrapped = wrap(ctx_->device, memory_length, left, right, out);

  const std::uint32_t tile = shaders::kGemmTile;
  const auto groups =
      static_cast<std::uint32_t>((n + tile - 1) / tile);

  auto cmd = ctx_->queue->command_buffer();
  auto enc = cmd->compute_command_encoder();
  enc->set_compute_pipeline_state(pipeline_);
  enc->set_buffer(wrapped.a.get(), 0, 0);
  enc->set_buffer(wrapped.b.get(), 0, 1);
  enc->set_buffer(wrapped.c.get(), 0, 2);
  enc->set_value<std::uint32_t>(static_cast<std::uint32_t>(n), 3);
  enc->set_threadgroup_memory_length(shaders::kGemmTiledScratchBytes);
  enc->set_functional_execution(functional);
  enc->dispatch_threadgroups(
      {groups, groups, 1},
      {shaders::kGemmGroupEdge, shaders::kGemmGroupEdge, 1});
  enc->end_encoding();
  cmd->commit();
  cmd->wait_until_completed();
}

GpuMpsGemm::GpuMpsGemm(GemmContext& context) : ctx_(&context) {}

void GpuMpsGemm::multiply(std::size_t n, std::size_t memory_length,
                          const float* left, const float* right, float* out,
                          bool functional) {
  validate(n, memory_length, left, right, out);
  auto wrapped = wrap(ctx_->device, memory_length, left, right, out);

  const auto desc = mps::MatrixDescriptor::with_rows(
      n, n, n * sizeof(float), mps::DataType::kFloat32);
  mps::Matrix mat_a(wrapped.a.get(), desc);
  mps::Matrix mat_b(wrapped.b.get(), desc);
  mps::Matrix mat_c(wrapped.c.get(), desc);

  mps::MatrixMultiplication multiplication(ctx_->device, n, n, n);
  multiplication.set_functional_execution(functional);

  auto cmd = ctx_->queue->command_buffer();
  multiplication.encode_to_command_buffer(*cmd, mat_a, mat_b, mat_c);
  cmd->commit();
  cmd->wait_until_completed();
}

}  // namespace ao::gemm
