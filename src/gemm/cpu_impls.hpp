#pragma once

#include "gemm/gemm_interface.hpp"

namespace ao::gemm {

/// CPU-Single: the reference baseline — a naive triple nested loop in plain
/// C++ on one performance core (Table 2 row 1).
class CpuSingleGemm final : public IGemm {
 public:
  explicit CpuSingleGemm(GemmContext& context);
  soc::GemmImpl kind() const override { return soc::GemmImpl::kCpuSingle; }
  void multiply(std::size_t n, std::size_t memory_length, const float* left,
                const float* right, float* out, bool functional) override;

 private:
  GemmContext* ctx_;
  soc::PerfModel perf_;
};

/// CPU-OMP: multi-threaded tiled multiplication with OpenMP, after the
/// open-source Block-Matrix-Multiplication-OpenMP implementation the paper
/// uses (Section 3.2, footnote 1).
class CpuOmpGemm final : public IGemm {
 public:
  explicit CpuOmpGemm(GemmContext& context);
  soc::GemmImpl kind() const override { return soc::GemmImpl::kCpuOmp; }
  void multiply(std::size_t n, std::size_t memory_length, const float* left,
                const float* right, float* out, bool functional) override;

  /// Tile edge of the blocked loop (exposed for tests).
  static constexpr std::size_t kBlock = 64;

 private:
  GemmContext* ctx_;
  soc::PerfModel perf_;
};

/// CPU-Accelerate: cblas_sgemm from the Accelerate clone, running on the AMX
/// coprocessor emulator (Listing 1).
class CpuAccelerateGemm final : public IGemm {
 public:
  explicit CpuAccelerateGemm(GemmContext& context);
  soc::GemmImpl kind() const override { return soc::GemmImpl::kCpuAccelerate; }
  void multiply(std::size_t n, std::size_t memory_length, const float* left,
                const float* right, float* out, bool functional) override;

 private:
  GemmContext* ctx_;
  soc::PerfModel perf_;
};

}  // namespace ao::gemm
