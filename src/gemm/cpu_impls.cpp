#include "gemm/cpu_impls.hpp"

#include <algorithm>

#include "accelerate/cblas.hpp"
#include "util/error.hpp"

namespace ao::gemm {
namespace {

void validate(std::size_t n, std::size_t memory_length, const float* left,
              const float* right, const float* out) {
  AO_REQUIRE(n > 0, "matrix size must be positive");
  AO_REQUIRE(left != nullptr && right != nullptr && out != nullptr,
             "matrix pointers must not be null");
  AO_REQUIRE(memory_length >= n * n * sizeof(float),
             "memory_length smaller than the matrix");
}

/// Charges the modeled cost of one multiplication to the SoC.
void charge(GemmContext& ctx, const soc::PerfModel& perf, soc::GemmImpl impl,
            std::size_t n, soc::ComputeUnit unit) {
  ctx.soc.execute(unit, perf.gemm_time_ns(impl, n),
                  perf.gemm_power_watts(impl, n), perf.gemm_utilization(impl, n));
}

}  // namespace

CpuSingleGemm::CpuSingleGemm(GemmContext& context)
    : ctx_(&context), perf_(context.soc) {}

void CpuSingleGemm::multiply(std::size_t n, std::size_t memory_length,
                             const float* left, const float* right, float* out,
                             bool functional) {
  validate(n, memory_length, left, right, out);
  if (functional) {
    // The paper's baseline: standard algorithm, triple nested loop. The
    // inner loop walks B by rows to stay bit-faithful to the classic i-j-k
    // ordering would stride; we keep i-k-j so the functional run does not
    // dominate the harness while remaining a naive single-threaded loop.
    for (std::size_t i = 0; i < n; ++i) {
      float* c_row = out + i * n;
      std::fill(c_row, c_row + n, 0.0f);
      for (std::size_t k = 0; k < n; ++k) {
        const float a_ik = left[i * n + k];
        const float* b_row = right + k * n;
        for (std::size_t j = 0; j < n; ++j) {
          c_row[j] += a_ik * b_row[j];
        }
      }
    }
  }
  charge(*ctx_, perf_, kind(), n, soc::ComputeUnit::kCpuPCluster);
}

CpuOmpGemm::CpuOmpGemm(GemmContext& context)
    : ctx_(&context), perf_(context.soc) {}

void CpuOmpGemm::multiply(std::size_t n, std::size_t memory_length,
                          const float* left, const float* right, float* out,
                          bool functional) {
  validate(n, memory_length, left, right, out);
  if (functional) {
    const std::size_t blocks = (n + kBlock - 1) / kBlock;
    const auto total = static_cast<long long>(blocks * blocks);
#pragma omp parallel for schedule(static)
    for (long long t = 0; t < total; ++t) {
      const std::size_t bi = static_cast<std::size_t>(t) / blocks;
      const std::size_t bj = static_cast<std::size_t>(t) % blocks;
      const std::size_t i1 = std::min((bi + 1) * kBlock, n);
      const std::size_t j0 = bj * kBlock;
      const std::size_t j1 = std::min(j0 + kBlock, n);
      for (std::size_t i = bi * kBlock; i < i1; ++i) {
        float* c_row = out + i * n;
        for (std::size_t j = j0; j < j1; ++j) {
          c_row[j] = 0.0f;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const float a_ik = left[i * n + k];
          const float* b_row = right + k * n;
          for (std::size_t j = j0; j < j1; ++j) {
            c_row[j] += a_ik * b_row[j];
          }
        }
      }
    }
  }
  charge(*ctx_, perf_, kind(), n, soc::ComputeUnit::kCpuPCluster);
}

CpuAccelerateGemm::CpuAccelerateGemm(GemmContext& context)
    : ctx_(&context), perf_(context.soc) {}

void CpuAccelerateGemm::multiply(std::size_t n, std::size_t memory_length,
                                 const float* left, const float* right,
                                 float* out, bool functional) {
  validate(n, memory_length, left, right, out);
  if (functional) {
    // Listing 1, verbatim semantics:
    // cblas_sgemm(CblasRowMajor, NoTrans, NoTrans, n,n,n, 1, A,n, B,n, 0, C,n)
    const int ni = static_cast<int>(n);
    accelerate::cblas_sgemm(accelerate::CblasRowMajor, accelerate::CblasNoTrans,
                            accelerate::CblasNoTrans, ni, ni, ni, 1.0f, left, ni,
                            right, ni, 0.0f, out, ni);
  }
  // Accelerate's SGEMM runs on the AMX units (Section 5.2).
  charge(*ctx_, perf_, kind(), n, soc::ComputeUnit::kAmx);
}

}  // namespace ao::gemm
