#include "gemm/cpu_impls.hpp"
#include "gemm/gemm_interface.hpp"
#include "gemm/gpu_impls.hpp"
#include "util/error.hpp"

namespace ao::gemm {

std::unique_ptr<IGemm> create_gemm(soc::GemmImpl impl, GemmContext& context) {
  switch (impl) {
    case soc::GemmImpl::kCpuSingle:
      return std::make_unique<CpuSingleGemm>(context);
    case soc::GemmImpl::kCpuOmp:
      return std::make_unique<CpuOmpGemm>(context);
    case soc::GemmImpl::kCpuAccelerate:
      return std::make_unique<CpuAccelerateGemm>(context);
    case soc::GemmImpl::kGpuNaive:
      return std::make_unique<GpuNaiveGemm>(context);
    case soc::GemmImpl::kGpuCutlass:
      return std::make_unique<GpuTiledGemm>(context);
    case soc::GemmImpl::kGpuMps:
      return std::make_unique<GpuMpsGemm>(context);
  }
  throw util::InvalidArgument("unknown GEMM implementation");
}

std::vector<std::unique_ptr<IGemm>> create_all_gemms(GemmContext& context) {
  std::vector<std::unique_ptr<IGemm>> impls;
  impls.reserve(soc::kAllGemmImpls.size());
  for (const auto impl : soc::kAllGemmImpls) {
    impls.push_back(create_gemm(impl, context));
  }
  return impls;
}

}  // namespace ao::gemm
