#pragma once

#include <memory>
#include <string>
#include <vector>

#include "metal/device.hpp"
#include "soc/benchmark_taxonomy.hpp"
#include "soc/perf_model.hpp"

namespace ao::gemm {

/// Shared wiring the implementations draw on: the simulated SoC, its Metal
/// device, one command queue (the paper creates one per run) and the
/// compiled shader library. All references must outlive the implementations.
struct GemmContext {
  soc::Soc& soc;
  metal::Device& device;
  metal::CommandQueuePtr queue;
  const metal::Library& shaders;
};

/// One matrix-multiplication implementation from Table 2.
///
/// multiply() has the exact shape of the paper's test-library callback:
/// `(unsigned int n, unsigned int memory_length, void* left, void* right,
/// void* out)` — n x n row-major FP32 matrices in page-aligned allocations
/// of `memory_length` bytes (a whole number of 16384-byte pages, so the GPU
/// paths can wrap them zero-copy).
///
/// With `functional == false` the numeric work is skipped and only the
/// simulated cost is charged — used above the verification threshold, where
/// the host-side O(n^3) would dominate the run (the paper similarly skips
/// its slowest paths at n >= 8192).
class IGemm {
 public:
  virtual ~IGemm() = default;

  virtual soc::GemmImpl kind() const = 0;
  std::string name() const { return soc::to_string(kind()); }

  virtual void multiply(std::size_t n, std::size_t memory_length,
                        const float* left, const float* right, float* out,
                        bool functional = true) = 0;
};

/// Builds the implementation for `impl` over `context`.
std::unique_ptr<IGemm> create_gemm(soc::GemmImpl impl, GemmContext& context);

/// Builds all six Table-2 implementations.
std::vector<std::unique_ptr<IGemm>> create_all_gemms(GemmContext& context);

}  // namespace ao::gemm
