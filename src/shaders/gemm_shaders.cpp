#include "shaders/gemm_shaders.hpp"

#include <algorithm>

namespace ao::shaders {
namespace {

using metal::ArgumentTable;
using metal::DispatchShape;
using metal::GroupContext;
using metal::ThreadContext;
using metal::WorkEstimate;

metal::WorkEstimator gemm_estimator(soc::GemmImpl impl) {
  return [impl](const ArgumentTable& args, const DispatchShape&) {
    return WorkEstimate::gemm(impl, args.value<std::uint32_t>(3));
  };
}

}  // namespace

metal::Kernel make_gemm_naive() {
  metal::Kernel k;
  k.name = "gemm_naive";
  k.body = metal::ThreadKernelFn(
      [](const ArgumentTable& args, const ThreadContext& ctx) {
        const auto n = args.value<std::uint32_t>(3);
        const std::uint32_t col = ctx.thread_position_in_grid.x;
        const std::uint32_t row = ctx.thread_position_in_grid.y;
        if (row >= n || col >= n) {
          return;
        }
        const float* a = args.buffer_data<float>(0);
        const float* b = args.buffer_data<float>(1);
        float* c = args.buffer_data<float>(2);
        float acc = 0.0f;
        for (std::uint32_t kk = 0; kk < n; ++kk) {
          acc += a[static_cast<std::size_t>(row) * n + kk] *
                 b[static_cast<std::size_t>(kk) * n + col];
        }
        c[static_cast<std::size_t>(row) * n + col] = acc;
      });
  k.estimator = gemm_estimator(soc::GemmImpl::kGpuNaive);
  return k;
}

metal::Kernel make_gemm_tiled() {
  metal::Kernel k;
  k.name = "gemm_tiled";
  k.body = metal::GroupKernelFn([](const ArgumentTable& args,
                                   const GroupContext& ctx) {
    const auto n = args.value<std::uint32_t>(3);
    const float* a = args.buffer_data<float>(0);
    const float* b = args.buffer_data<float>(1);
    float* c = args.buffer_data<float>(2);

    constexpr std::uint32_t T = kGemmTile;
    constexpr std::uint32_t G = kGemmGroupEdge;
    constexpr std::uint32_t M = kGemmMicroTile;

    // threadgroup float tile_a[T][T]; threadgroup float tile_b[T][T];
    auto scratch = ctx.threadgroup_span<float>();
    float* tile_a = scratch.data();
    float* tile_b = scratch.data() + T * T;

    const std::uint32_t tile_row0 = ctx.threadgroup_position_in_grid.y * T;
    const std::uint32_t tile_col0 = ctx.threadgroup_position_in_grid.x * T;
    if (tile_row0 >= n || tile_col0 >= n) {
      return;
    }

    // Per-thread accumulator micro-tiles (the "registers" of the Cutlass
    // layout): acc[thread_y][thread_x][M][M].
    float acc[G][G][M][M] = {};

    const std::uint32_t k_tiles = (n + T - 1) / T;
    for (std::uint32_t kt = 0; kt < k_tiles; ++kt) {
      const std::uint32_t k0 = kt * T;

      // ---- load phase: all threads cooperatively stage A and B tiles ----
      // (threadgroup_barrier(mem_threadgroup) follows in the MSL original.)
      for (std::uint32_t idx = 0; idx < T * T; ++idx) {
        const std::uint32_t r = idx / T;
        const std::uint32_t col = idx % T;
        const std::uint32_t ga_r = tile_row0 + r;
        const std::uint32_t ga_c = k0 + col;
        tile_a[idx] = (ga_r < n && ga_c < n)
                          ? a[static_cast<std::size_t>(ga_r) * n + ga_c]
                          : 0.0f;
        const std::uint32_t gb_r = k0 + r;
        const std::uint32_t gb_c = tile_col0 + col;
        tile_b[idx] = (gb_r < n && gb_c < n)
                          ? b[static_cast<std::size_t>(gb_r) * n + gb_c]
                          : 0.0f;
      }

      // ---- multiply phase: each thread updates its 4x4 micro-tile ----
      // (second threadgroup_barrier in the MSL original.)
      const std::uint32_t k_lim = std::min(T, n - k0);
      for (std::uint32_t ty = 0; ty < G; ++ty) {
        for (std::uint32_t tx = 0; tx < G; ++tx) {
          for (std::uint32_t kk = 0; kk < k_lim; ++kk) {
            for (std::uint32_t mi = 0; mi < M; ++mi) {
              const float a_val = tile_a[(ty * M + mi) * T + kk];
              for (std::uint32_t mj = 0; mj < M; ++mj) {
                acc[ty][tx][mi][mj] += a_val * tile_b[kk * T + tx * M + mj];
              }
            }
          }
        }
      }
    }

    // ---- epilogue: write the C tile ----
    for (std::uint32_t ty = 0; ty < G; ++ty) {
      for (std::uint32_t tx = 0; tx < G; ++tx) {
        for (std::uint32_t mi = 0; mi < M; ++mi) {
          const std::uint32_t row = tile_row0 + ty * M + mi;
          if (row >= n) {
            continue;
          }
          for (std::uint32_t mj = 0; mj < M; ++mj) {
            const std::uint32_t col = tile_col0 + tx * M + mj;
            if (col >= n) {
              continue;
            }
            c[static_cast<std::size_t>(row) * n + col] = acc[ty][tx][mi][mj];
          }
        }
      }
    }
  });
  k.estimator = gemm_estimator(soc::GemmImpl::kGpuCutlass);
  return k;
}

}  // namespace ao::shaders
