#pragma once

#include "metal/kernel.hpp"

namespace ao::shaders {

/// GEMM compute shaders after the open-source metal_performance_testing
/// repository the paper takes its naive and "Cutlass-style" shaders from.
/// Both compute C = A * B over row-major FP32 square matrices bound as:
///
///   slot 0: A    slot 1: B    slot 2: C    slot 3: uint32 n
///
/// The naive shader assigns one thread per C element (row = global y,
/// col = global x) and walks the full k dimension with no data staging.
metal::Kernel make_gemm_naive();

/// The Cutlass-style tiled shader stages 32 x 32 tiles of A and B through
/// threadgroup memory; an 8 x 8 threadgroup computes one C tile with each
/// thread accumulating a 4 x 4 register micro-tile. Written as a GroupKernel:
/// the explicit phase loops correspond to the MSL version's
/// threadgroup_barrier(mem_flags::mem_threadgroup) between the load and
/// multiply phases.
metal::Kernel make_gemm_tiled();

/// Tile geometry of the tiled shader (exported for dispatch-size math).
inline constexpr std::uint32_t kGemmTile = 32;          ///< C tile edge
inline constexpr std::uint32_t kGemmGroupEdge = 8;      ///< threads per edge
inline constexpr std::uint32_t kGemmMicroTile =
    kGemmTile / kGemmGroupEdge;                         ///< 4x4 per thread

/// Threadgroup memory the tiled shader needs (two staged tiles).
inline constexpr std::size_t kGemmTiledScratchBytes =
    2u * kGemmTile * kGemmTile * sizeof(float);

}  // namespace ao::shaders
