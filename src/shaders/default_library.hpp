#pragma once

#include "metal/library.hpp"

namespace ao::shaders {

/// The project's ".metallib": every built-in shader compiled into one
/// library, loaded by the benchmark implementations on startup exactly as
/// the paper loads its compiled shader library before running.
///
/// Functions: stream_copy, stream_scale, stream_add, stream_triad,
///            gemm_naive, gemm_tiled.
const metal::Library& default_library();

}  // namespace ao::shaders
