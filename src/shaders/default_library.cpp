#include "shaders/default_library.hpp"

#include "shaders/gemm_shaders.hpp"
#include "shaders/stream_kernels.hpp"

namespace ao::shaders {

const metal::Library& default_library() {
  static const metal::Library library = [] {
    metal::Library lib("appleoranges.metallib");
    lib.add(make_stream_copy());
    lib.add(make_stream_scale());
    lib.add(make_stream_add());
    lib.add(make_stream_triad());
    lib.add(make_gemm_naive());
    lib.add(make_gemm_tiled());
    return lib;
  }();
  return library;
}

}  // namespace ao::shaders
