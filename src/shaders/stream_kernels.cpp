#include "shaders/stream_kernels.hpp"

namespace ao::shaders {
namespace {

using metal::ArgumentTable;
using metal::DispatchShape;
using metal::ThreadContext;
using metal::WorkEstimate;

/// Shared estimator: total traffic = arrays_touched * n * sizeof(float).
metal::WorkEstimator stream_estimator(soc::StreamKernel kernel) {
  return [kernel](const ArgumentTable& args, const DispatchShape&) {
    const auto n = args.value<std::uint32_t>(3);
    const std::uint64_t bytes = static_cast<std::uint64_t>(
                                    soc::stream_arrays_touched(kernel)) *
                                n * sizeof(float);
    return WorkEstimate::stream(kernel, bytes);
  };
}

}  // namespace

metal::Kernel make_stream_copy() {
  metal::Kernel k;
  k.name = "stream_copy";
  k.body = metal::ThreadKernelFn(
      [](const ArgumentTable& args, const ThreadContext& ctx) {
        const auto n = args.value<std::uint32_t>(3);
        const std::uint32_t i = ctx.thread_position_in_grid.x;
        if (i >= n) {
          return;
        }
        const float* a = args.buffer_data<float>(0);
        float* c = args.buffer_data<float>(2);
        c[i] = a[i];
      });
  k.estimator = stream_estimator(soc::StreamKernel::kCopy);
  return k;
}

metal::Kernel make_stream_scale() {
  metal::Kernel k;
  k.name = "stream_scale";
  k.body = metal::ThreadKernelFn(
      [](const ArgumentTable& args, const ThreadContext& ctx) {
        const auto n = args.value<std::uint32_t>(3);
        const std::uint32_t i = ctx.thread_position_in_grid.x;
        if (i >= n) {
          return;
        }
        float* b = args.buffer_data<float>(1);
        const float* c = args.buffer_data<float>(2);
        const auto scalar = args.value<float>(4);
        b[i] = scalar * c[i];
      });
  k.estimator = stream_estimator(soc::StreamKernel::kScale);
  return k;
}

metal::Kernel make_stream_add() {
  metal::Kernel k;
  k.name = "stream_add";
  k.body = metal::ThreadKernelFn(
      [](const ArgumentTable& args, const ThreadContext& ctx) {
        const auto n = args.value<std::uint32_t>(3);
        const std::uint32_t i = ctx.thread_position_in_grid.x;
        if (i >= n) {
          return;
        }
        const float* a = args.buffer_data<float>(0);
        const float* b = args.buffer_data<float>(1);
        float* c = args.buffer_data<float>(2);
        c[i] = a[i] + b[i];
      });
  k.estimator = stream_estimator(soc::StreamKernel::kAdd);
  return k;
}

metal::Kernel make_stream_triad() {
  metal::Kernel k;
  k.name = "stream_triad";
  k.body = metal::ThreadKernelFn(
      [](const ArgumentTable& args, const ThreadContext& ctx) {
        const auto n = args.value<std::uint32_t>(3);
        const std::uint32_t i = ctx.thread_position_in_grid.x;
        if (i >= n) {
          return;
        }
        float* a = args.buffer_data<float>(0);
        const float* b = args.buffer_data<float>(1);
        const float* c = args.buffer_data<float>(2);
        const auto scalar = args.value<float>(4);
        a[i] = b[i] + scalar * c[i];
      });
  k.estimator = stream_estimator(soc::StreamKernel::kTriad);
  return k;
}

metal::Kernel make_stream_kernel(soc::StreamKernel kernel) {
  switch (kernel) {
    case soc::StreamKernel::kCopy:
      return make_stream_copy();
    case soc::StreamKernel::kScale:
      return make_stream_scale();
    case soc::StreamKernel::kAdd:
      return make_stream_add();
    case soc::StreamKernel::kTriad:
      return make_stream_triad();
  }
  return make_stream_copy();
}

std::string stream_kernel_name(soc::StreamKernel kernel) {
  switch (kernel) {
    case soc::StreamKernel::kCopy:
      return "stream_copy";
    case soc::StreamKernel::kScale:
      return "stream_scale";
    case soc::StreamKernel::kAdd:
      return "stream_add";
    case soc::StreamKernel::kTriad:
      return "stream_triad";
  }
  return "stream_copy";
}

}  // namespace ao::shaders
