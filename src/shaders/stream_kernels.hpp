#pragma once

#include "metal/kernel.hpp"

namespace ao::shaders {

/// GPU STREAM kernels, ported from the CUDA/HIP stream_cpugpu.cpp the paper
/// adapts [20, 22] into the simulator's MSL-equivalent form. All four operate
/// on FP32 arrays bound at fixed slots:
///
///   slot 0: a   slot 1: b   slot 2: c
///   slot 3: uint32 element count n
///   slot 4: float scalar (Scale/Triad only)
///
///   Copy:  c[i] = a[i]
///   Scale: b[i] = scalar * c[i]
///   Add:   c[i] = a[i] + b[i]
///   Triad: a[i] = b[i] + scalar * c[i]
///
/// Each kernel's work estimate routes to the calibrated GPU STREAM anchors
/// (Figure 1) with the STREAM byte-accounting convention (2 or 3 arrays).
metal::Kernel make_stream_copy();
metal::Kernel make_stream_scale();
metal::Kernel make_stream_add();
metal::Kernel make_stream_triad();

/// The kernel matching `kernel` (Copy/Scale/Add/Triad).
metal::Kernel make_stream_kernel(soc::StreamKernel kernel);

/// Library function name for a STREAM kernel ("stream_copy", ...).
std::string stream_kernel_name(soc::StreamKernel kernel);

}  // namespace ao::shaders
