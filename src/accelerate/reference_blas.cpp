#include "accelerate/reference_blas.hpp"

#include <algorithm>
#include <cmath>

namespace ao::accelerate::reference {

void sgemm(bool transpose_a, bool transpose_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, const float* a, std::size_t lda,
           const float* b, std::size_t ldb, float beta, float* c,
           std::size_t ldc) {
  auto a_at = [&](std::size_t i, std::size_t kk) {
    return transpose_a ? a[kk * lda + i] : a[i * lda + kk];
  };
  auto b_at = [&](std::size_t kk, std::size_t j) {
    return transpose_b ? b[j * ldb + kk] : b[kk * ldb + j];
  };
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // Accumulate in double so the reference is strictly more accurate
      // than any FP32 path under test.
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a_at(i, kk)) * static_cast<double>(b_at(kk, j));
      }
      const double prior = beta == 0.0f ? 0.0 : beta * c[i * ldc + j];
      c[i * ldc + j] = static_cast<float>(alpha * acc + prior);
    }
  }
}

float max_abs_diff(const float* x, const float* y, std::size_t m, std::size_t n,
                   std::size_t ld) {
  float worst = 0.0f;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      worst = std::max(worst, std::fabs(x[i * ld + j] - y[i * ld + j]));
    }
  }
  return worst;
}

float gemm_tolerance(std::size_t k) {
  // Elements are U[0,1): expected |dot| ~ k/4; FP32 rounding grows ~ sqrt(k)
  // for random rounding. 1e-5 * k covers reassociated (blocked/parallel)
  // summation orders with comfortable slack while staying tight enough to
  // catch indexing bugs (which produce O(1) errors).
  return 1e-5f * static_cast<float>(std::max<std::size_t>(k, 16));
}

}  // namespace ao::accelerate::reference
