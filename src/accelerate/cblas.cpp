#include "accelerate/cblas.hpp"

#include <vector>

#include "amx/amx_gemm.hpp"
#include "util/error.hpp"

namespace ao::accelerate {
namespace {

/// Packs op(X) into a freshly allocated contiguous row-major rows x cols
/// panel. `transposed` means op(X) = X^T where X itself has shape
/// cols x rows with leading dimension ldx.
std::vector<float> pack_operand(bool transposed, const float* x, int rows,
                                int cols, int ldx) {
  std::vector<float> panel(static_cast<std::size_t>(rows) * cols);
  if (!transposed) {
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) {
        panel[static_cast<std::size_t>(i) * cols + j] =
            x[static_cast<std::size_t>(i) * ldx + j];
      }
    }
  } else {
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) {
        panel[static_cast<std::size_t>(i) * cols + j] =
            x[static_cast<std::size_t>(j) * ldx + i];
      }
    }
  }
  return panel;
}

}  // namespace

void cblas_sgemm(CBLAS_ORDER order, CBLAS_TRANSPOSE trans_a,
                 CBLAS_TRANSPOSE trans_b, int m, int n, int k, float alpha,
                 const float* a, int lda, const float* b, int ldb, float beta,
                 float* c, int ldc) {
  AO_REQUIRE(m >= 0 && n >= 0 && k >= 0, "cblas_sgemm dimensions must be >= 0");
  AO_REQUIRE(order == CblasRowMajor || order == CblasColMajor,
             "invalid CBLAS order");
  if (m == 0 || n == 0) {
    return;
  }

  if (order == CblasColMajor) {
    // Column-major C = op(A)*op(B) is row-major C^T = op(B)^T * op(A)^T:
    // swap the operands and the output dimensions.
    cblas_sgemm(CblasRowMajor, trans_b, trans_a, n, m, k, alpha, b, ldb, a, lda,
                beta, c, ldc);
    return;
  }

  const bool ta = trans_a == CblasTrans;
  const bool tb = trans_b == CblasTrans;

  // Leading-dimension validity (row-major): the stored matrix A is m x k
  // (no-trans) or k x m (trans); same for B and C.
  AO_REQUIRE(lda >= (ta ? m : k), "lda too small");
  AO_REQUIRE(ldb >= (tb ? k : n), "ldb too small");
  AO_REQUIRE(ldc >= n, "ldc too small");

  const float* a_eff = a;
  const float* b_eff = b;
  std::size_t lda_eff = static_cast<std::size_t>(lda);
  std::size_t ldb_eff = static_cast<std::size_t>(ldb);

  // The AMX tile walk wants contiguous row-major op(A) (m x k) and op(B)
  // (k x n); pack transposed operands first, as the library's packing
  // stage does.
  std::vector<float> a_panel;
  std::vector<float> b_panel;
  if (ta) {
    a_panel = pack_operand(true, a, m, k, lda);
    a_eff = a_panel.data();
    lda_eff = static_cast<std::size_t>(k);
  }
  if (tb) {
    b_panel = pack_operand(true, b, k, n, ldb);
    b_eff = b_panel.data();
    ldb_eff = static_cast<std::size_t>(n);
  }

  amx::amx_sgemm(static_cast<std::size_t>(m), static_cast<std::size_t>(n),
                 static_cast<std::size_t>(k), alpha, a_eff, lda_eff, b_eff,
                 ldb_eff, beta, c, static_cast<std::size_t>(ldc));
}

}  // namespace ao::accelerate
