#include "accelerate/vdsp.hpp"

#include <algorithm>

#include "amx/amx_gemm.hpp"
#include "util/error.hpp"

namespace ao::accelerate {
namespace {

std::size_t at(vDSP_Stride stride, vDSP_Length i) {
  return static_cast<std::size_t>(stride) * i;
}

}  // namespace

void vDSP_mmul(const float* a, vDSP_Stride a_stride, const float* b,
               vDSP_Stride b_stride, float* c, vDSP_Stride c_stride,
               vDSP_Length m, vDSP_Length n, vDSP_Length p) {
  AO_REQUIRE(a_stride == 1 && b_stride == 1 && c_stride == 1,
             "vDSP_mmul supports unit strides (as the benchmark uses)");
  AO_REQUIRE(m > 0 && n > 0 && p > 0, "vDSP_mmul dimensions must be positive");
  amx::amx_sgemm(m, n, p, 1.0f, a, p, b, n, 0.0f, c, n);
}

void vDSP_vadd(const float* a, vDSP_Stride a_stride, const float* b,
               vDSP_Stride b_stride, float* c, vDSP_Stride c_stride,
               vDSP_Length n) {
  for (vDSP_Length i = 0; i < n; ++i) {
    c[at(c_stride, i)] = a[at(a_stride, i)] + b[at(b_stride, i)];
  }
}

void vDSP_vsub(const float* b, vDSP_Stride b_stride, const float* a,
               vDSP_Stride a_stride, float* c, vDSP_Stride c_stride,
               vDSP_Length n) {
  // vDSP_vsub(B, A, C): C = A - B (the historically confusing operand order).
  for (vDSP_Length i = 0; i < n; ++i) {
    c[at(c_stride, i)] = a[at(a_stride, i)] - b[at(b_stride, i)];
  }
}

void vDSP_vsmul(const float* a, vDSP_Stride a_stride, const float* scalar,
                float* c, vDSP_Stride c_stride, vDSP_Length n) {
  AO_REQUIRE(scalar != nullptr, "vDSP_vsmul scalar is null");
  for (vDSP_Length i = 0; i < n; ++i) {
    c[at(c_stride, i)] = a[at(a_stride, i)] * (*scalar);
  }
}

void vDSP_vfill(const float* value, float* c, vDSP_Stride c_stride,
                vDSP_Length n) {
  AO_REQUIRE(value != nullptr, "vDSP_vfill value is null");
  for (vDSP_Length i = 0; i < n; ++i) {
    c[at(c_stride, i)] = *value;
  }
}

void vDSP_dotpr(const float* a, vDSP_Stride a_stride, const float* b,
                vDSP_Stride b_stride, float* result, vDSP_Length n) {
  AO_REQUIRE(result != nullptr, "vDSP_dotpr result is null");
  float acc = 0.0f;
  for (vDSP_Length i = 0; i < n; ++i) {
    acc += a[at(a_stride, i)] * b[at(b_stride, i)];
  }
  *result = acc;
}

void vDSP_sve(const float* a, vDSP_Stride a_stride, float* result,
              vDSP_Length n) {
  AO_REQUIRE(result != nullptr, "vDSP_sve result is null");
  float acc = 0.0f;
  for (vDSP_Length i = 0; i < n; ++i) {
    acc += a[at(a_stride, i)];
  }
  *result = acc;
}

void vDSP_vsq(const float* a, vDSP_Stride a_stride, float* c,
              vDSP_Stride c_stride, vDSP_Length n) {
  for (vDSP_Length i = 0; i < n; ++i) {
    const float v = a[at(a_stride, i)];
    c[at(c_stride, i)] = v * v;
  }
}

void vDSP_maxv(const float* a, vDSP_Stride a_stride, float* result,
               vDSP_Length n) {
  AO_REQUIRE(result != nullptr, "vDSP_maxv result is null");
  AO_REQUIRE(n > 0, "vDSP_maxv needs at least one element");
  float best = a[0];
  for (vDSP_Length i = 1; i < n; ++i) {
    best = std::max(best, a[at(a_stride, i)]);
  }
  *result = best;
}

}  // namespace ao::accelerate
