#pragma once

#include <cstddef>

namespace ao::accelerate {

/// CBLAS enums, named as in Accelerate's <Accelerate/Accelerate.h> so the
/// paper's Listing 1 compiles against this header with the ao::accelerate
/// namespace opened.
enum CBLAS_ORDER { CblasRowMajor = 101, CblasColMajor = 102 };
enum CBLAS_TRANSPOSE { CblasNoTrans = 111, CblasTrans = 112 };

/// Single-precision general matrix multiply:
///   C = alpha * op(A) * op(B) + beta * C
///
/// Drop-in signature-compatible with Accelerate's cblas_sgemm (the paper's
/// CPU fast path, Listing 1). Executes on the AMX coprocessor emulator —
/// "BLAS and vDSP perform nearly identically, and thus only vDSP is
/// considered — they assumedly both run on AMX" (Section 5.2).
///
/// Transposed operands are handled by packing into contiguous row-major
/// panels before the AMX tile walk, as the real library's packing stage does.
void cblas_sgemm(CBLAS_ORDER order, CBLAS_TRANSPOSE trans_a,
                 CBLAS_TRANSPOSE trans_b, int m, int n, int k, float alpha,
                 const float* a, int lda, const float* b, int ldb, float beta,
                 float* c, int ldc);

}  // namespace ao::accelerate
