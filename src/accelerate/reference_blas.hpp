#pragma once

#include <cstddef>

namespace ao::accelerate::reference {

/// Naive triple-loop SGEMM with full alpha/beta/transpose support — the
/// golden reference every optimized path (AMX, MPS, Metal shaders) is tested
/// against. Deliberately simple; never used for performance reporting.
void sgemm(bool transpose_a, bool transpose_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, const float* a, std::size_t lda,
           const float* b, std::size_t ldb, float beta, float* c,
           std::size_t ldc);

/// Largest absolute elementwise difference between two m x n row-major
/// matrices (leading dimension ld).
float max_abs_diff(const float* x, const float* y, std::size_t m, std::size_t n,
                   std::size_t ld);

/// Tolerance for comparing an optimized SGEMM against the reference at
/// accumulation depth k: FP32 summation error grows with k and with the
/// magnitude of the operands (ours are in [0, 1]).
float gemm_tolerance(std::size_t k);

}  // namespace ao::accelerate::reference
