#pragma once

#include <cstddef>

namespace ao::accelerate {

/// vDSP subset (Accelerate's vector DSP library), with the real API's
/// stride-based signatures: every vector argument is a (pointer, stride)
/// pair and lengths count elements, exactly as in <Accelerate/vDSP.h>.
/// The GEMM benchmark uses vDSP_mmul; the vector ops exercise the
/// "vector units + AMX" claim in tests and the quickstart example.
using vDSP_Length = std::size_t;
using vDSP_Stride = long;

/// Out-of-place matrix multiply: C(m x n) = A(m x p) * B(p x n), row-major
/// contiguous. Runs on the AMX emulator (same engine as cblas_sgemm, which
/// is why the paper found "vDSP and BLAS perform nearly identically").
void vDSP_mmul(const float* a, vDSP_Stride a_stride, const float* b,
               vDSP_Stride b_stride, float* c, vDSP_Stride c_stride,
               vDSP_Length m, vDSP_Length n, vDSP_Length p);

/// c[i] = a[i] + b[i]
void vDSP_vadd(const float* a, vDSP_Stride a_stride, const float* b,
               vDSP_Stride b_stride, float* c, vDSP_Stride c_stride,
               vDSP_Length n);

/// c[i] = a[i] - b[i]  (note vDSP's operand order: vsub computes B - A)
void vDSP_vsub(const float* b, vDSP_Stride b_stride, const float* a,
               vDSP_Stride a_stride, float* c, vDSP_Stride c_stride,
               vDSP_Length n);

/// c[i] = a[i] * scalar
void vDSP_vsmul(const float* a, vDSP_Stride a_stride, const float* scalar,
                float* c, vDSP_Stride c_stride, vDSP_Length n);

/// c[i] = value
void vDSP_vfill(const float* value, float* c, vDSP_Stride c_stride,
                vDSP_Length n);

/// result = sum(a[i] * b[i])
void vDSP_dotpr(const float* a, vDSP_Stride a_stride, const float* b,
                vDSP_Stride b_stride, float* result, vDSP_Length n);

/// result = sum(a[i])
void vDSP_sve(const float* a, vDSP_Stride a_stride, float* result,
              vDSP_Length n);

/// c[i] = a[i]^2
void vDSP_vsq(const float* a, vDSP_Stride a_stride, float* c,
              vDSP_Stride c_stride, vDSP_Length n);

/// result = max(a[i])
void vDSP_maxv(const float* a, vDSP_Stride a_stride, float* result,
               vDSP_Length n);

}  // namespace ao::accelerate
