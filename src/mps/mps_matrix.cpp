#include "mps/mps_matrix.hpp"

#include "util/error.hpp"

namespace ao::mps {

std::size_t element_size(DataType type) {
  switch (type) {
    case DataType::kFloat32:
      return 4;
    case DataType::kFloat16:
      return 2;
  }
  return 0;
}

MatrixDescriptor::MatrixDescriptor(std::size_t rows, std::size_t columns,
                                   std::size_t row_bytes, DataType data_type)
    : rows_(rows), columns_(columns), row_bytes_(row_bytes), data_type_(data_type) {
  AO_REQUIRE(rows > 0 && columns > 0, "matrix dimensions must be positive");
  AO_REQUIRE(row_bytes >= columns * element_size(data_type),
             "rowBytes smaller than a packed row");
  AO_REQUIRE(row_bytes % element_size(data_type) == 0,
             "rowBytes must be a multiple of the element size");
}

MatrixDescriptor MatrixDescriptor::with_rows(std::size_t rows, std::size_t columns,
                                             std::size_t row_bytes,
                                             DataType data_type) {
  return MatrixDescriptor(rows, columns, row_bytes, data_type);
}

MatrixDescriptor MatrixDescriptor::packed(std::size_t rows, std::size_t columns,
                                          DataType data_type) {
  return MatrixDescriptor(rows, columns, columns * element_size(data_type),
                          data_type);
}

Matrix::Matrix(metal::Buffer* buffer, const MatrixDescriptor& descriptor)
    : buffer_(buffer), descriptor_(descriptor) {
  AO_REQUIRE(buffer != nullptr, "MPSMatrix needs a buffer");
  AO_REQUIRE(buffer->length() >= descriptor.required_length(),
             "buffer too small for the matrix descriptor");
}

float* Matrix::row_f32(std::size_t r) {
  AO_REQUIRE(descriptor_.data_type() == DataType::kFloat32,
             "row_f32 on a non-FP32 matrix");
  AO_REQUIRE(r < rows(), "row index out of range");
  auto* base = static_cast<std::byte*>(buffer_->gpu_contents());
  return reinterpret_cast<float*>(base + r * descriptor_.row_bytes());
}

const float* Matrix::row_f32(std::size_t r) const {
  return const_cast<Matrix*>(this)->row_f32(r);
}

std::size_t Matrix::stride_f32() const {
  return descriptor_.row_bytes() / sizeof(float);
}

}  // namespace ao::mps
