#include "mps/mps_gemm.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "metal/compute_command_encoder.hpp"
#include "util/error.hpp"

namespace ao::mps {
namespace detail {

void sgemm_block(bool transpose_a, bool transpose_b, std::size_t row_begin,
                 std::size_t row_end, std::size_t n_cols, std::size_t k_dim,
                 float alpha, const float* a, std::size_t lda, const float* b,
                 std::size_t ldb, float beta, float* c, std::size_t ldc) {
  constexpr std::size_t kBlockK = 256;  // keep the A/B panels L1/L2-resident
  constexpr std::size_t kBlockJ = 512;

  auto a_at = [&](std::size_t i, std::size_t k) {
    return transpose_a ? a[k * lda + i] : a[i * lda + k];
  };

  // Scale C by beta once up front.
  for (std::size_t i = row_begin; i < row_end; ++i) {
    float* c_row = c + i * ldc;
    if (beta == 0.0f) {
      std::fill(c_row, c_row + n_cols, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n_cols; ++j) {
        c_row[j] *= beta;
      }
    }
  }

  for (std::size_t k0 = 0; k0 < k_dim; k0 += kBlockK) {
    const std::size_t k1 = std::min(k0 + kBlockK, k_dim);
    for (std::size_t j0 = 0; j0 < n_cols; j0 += kBlockJ) {
      const std::size_t j1 = std::min(j0 + kBlockJ, n_cols);
      for (std::size_t i = row_begin; i < row_end; ++i) {
        float* c_row = c + i * ldc;
        for (std::size_t k = k0; k < k1; ++k) {
          const float a_ik = alpha * a_at(i, k);
          if (a_ik == 0.0f) {
            continue;
          }
          // Inner j loop is stride-1 over B and C in the no-transpose case,
          // which the compiler auto-vectorizes — this is the hot loop.
          if (!transpose_b) {
            const float* b_row = b + k * ldb;
            for (std::size_t j = j0; j < j1; ++j) {
              c_row[j] += a_ik * b_row[j];
            }
          } else {
            for (std::size_t j = j0; j < j1; ++j) {
              c_row[j] += a_ik * b[j * ldb + k];
            }
          }
        }
      }
    }
  }
}

}  // namespace detail

namespace {

/// Builds the internal MPS kernel: a GroupKernel whose groups each own a
/// block of C rows. Geometry: grid = (1, row_blocks, 1).
metal::Kernel make_mps_kernel(bool transpose_left, bool transpose_right,
                              std::size_t result_rows, std::size_t result_columns,
                              std::size_t interior_columns, float alpha,
                              float beta) {
  metal::Kernel k;
  k.name = "mps_matrix_multiplication";
  k.body = metal::GroupKernelFn([=](const metal::ArgumentTable& args,
                                    const metal::GroupContext& ctx) {
    const auto lda = args.value<std::uint32_t>(3);
    const auto ldb = args.value<std::uint32_t>(4);
    const auto ldc = args.value<std::uint32_t>(5);
    const float* a = args.buffer_data<float>(0);
    const float* b = args.buffer_data<float>(1);
    float* c = args.buffer_data<float>(2);

    const std::size_t blocks = ctx.threadgroups_per_grid.y;
    const std::size_t rows_per_block = (result_rows + blocks - 1) / blocks;
    const std::size_t row_begin =
        ctx.threadgroup_position_in_grid.y * rows_per_block;
    const std::size_t row_end =
        std::min(row_begin + rows_per_block, result_rows);
    if (row_begin >= row_end) {
      return;
    }
    detail::sgemm_block(transpose_left, transpose_right, row_begin, row_end,
                        result_columns, interior_columns, alpha, a, lda, b, ldb,
                        beta, c, ldc);
  });
  k.estimator = [result_rows, result_columns, interior_columns](
                    const metal::ArgumentTable&, const metal::DispatchShape&) {
    // Map the (possibly non-square) problem onto the square-size calibration
    // curve via its FLOP volume: flops = 2*M*N*K - M*N == n^2 (2n - 1) at
    // M = N = K = n.
    const double flops = 2.0 * static_cast<double>(result_rows) *
                             static_cast<double>(result_columns) *
                             static_cast<double>(interior_columns) -
                         static_cast<double>(result_rows) *
                             static_cast<double>(result_columns);
    const auto n_eff = static_cast<std::size_t>(
        std::max(1.0, std::cbrt(std::max(flops, 1.0) / 2.0)));
    return metal::WorkEstimate::gemm(soc::GemmImpl::kGpuMps, n_eff);
  };
  return k;
}

}  // namespace

MatrixMultiplication::MatrixMultiplication(metal::Device& device,
                                           std::size_t result_rows,
                                           std::size_t result_columns,
                                           std::size_t interior_columns)
    : MatrixMultiplication(device, false, false, result_rows, result_columns,
                           interior_columns, 1.0, 0.0) {}

MatrixMultiplication::MatrixMultiplication(
    metal::Device& device, bool transpose_left, bool transpose_right,
    std::size_t result_rows, std::size_t result_columns,
    std::size_t interior_columns, double alpha, double beta)
    : device_(&device),
      transpose_left_(transpose_left),
      transpose_right_(transpose_right),
      result_rows_(result_rows),
      result_columns_(result_columns),
      interior_columns_(interior_columns),
      alpha_(alpha),
      beta_(beta) {
  AO_REQUIRE(result_rows > 0 && result_columns > 0 && interior_columns > 0,
             "matrix multiplication dimensions must be positive");
  pipeline_ = device.new_compute_pipeline_state(make_mps_kernel(
      transpose_left, transpose_right, result_rows, result_columns,
      interior_columns, static_cast<float>(alpha), static_cast<float>(beta)));
}

void MatrixMultiplication::encode_to_command_buffer(
    metal::CommandBuffer& command_buffer, Matrix& left, Matrix& right,
    Matrix& result) {
  // Shape validation, as MPS performs when encoding.
  const std::size_t a_rows = transpose_left_ ? left.columns() : left.rows();
  const std::size_t a_cols = transpose_left_ ? left.rows() : left.columns();
  const std::size_t b_rows = transpose_right_ ? right.columns() : right.rows();
  const std::size_t b_cols = transpose_right_ ? right.rows() : right.columns();
  AO_REQUIRE(a_rows == result_rows_, "left matrix rows mismatch");
  AO_REQUIRE(a_cols == interior_columns_, "left matrix columns mismatch");
  AO_REQUIRE(b_rows == interior_columns_, "right matrix rows mismatch");
  AO_REQUIRE(b_cols == result_columns_, "right matrix columns mismatch");
  AO_REQUIRE(result.rows() == result_rows_ && result.columns() == result_columns_,
             "result matrix shape mismatch");
  AO_REQUIRE(left.descriptor().data_type() == DataType::kFloat32 &&
                 right.descriptor().data_type() == DataType::kFloat32 &&
                 result.descriptor().data_type() == DataType::kFloat32,
             "MPS GEMM simulation supports FP32 (MPSDataTypeFloat32)");

  auto encoder = command_buffer.compute_command_encoder();
  encoder->set_compute_pipeline_state(pipeline_);
  encoder->set_buffer(left.buffer(), 0, 0);
  encoder->set_buffer(right.buffer(), 0, 1);
  encoder->set_buffer(result.buffer(), 0, 2);
  encoder->set_value<std::uint32_t>(
      static_cast<std::uint32_t>(left.stride_f32()), 3);
  encoder->set_value<std::uint32_t>(
      static_cast<std::uint32_t>(right.stride_f32()), 4);
  encoder->set_value<std::uint32_t>(
      static_cast<std::uint32_t>(result.stride_f32()), 5);
  encoder->set_functional_execution(functional_);

  // One threadgroup per block of C rows; the block count tracks the GPU core
  // count so the simulated execution parallelizes like the real kernel.
  const auto blocks = static_cast<std::uint32_t>(std::min<std::size_t>(
      result_rows_, static_cast<std::size_t>(device_->gpu_core_count()) * 4));
  encoder->dispatch_threadgroups({1, blocks, 1}, {1, 1, 1});
  encoder->end_encoding();
}

}  // namespace ao::mps
