#pragma once

#include <cstddef>
#include <memory>

#include "metal/buffer.hpp"

namespace ao::mps {

/// MPSDataType subset — the paper computes exclusively in FP32
/// (MPSDataTypeFloat32); FP16 exists for the Neural-Engine extension bench.
enum class DataType { kFloat32, kFloat16 };

std::size_t element_size(DataType type);

/// MPSMatrixDescriptor: layout of a row-major matrix inside an MTLBuffer.
class MatrixDescriptor {
 public:
  /// matrixDescriptorWithRows:columns:rowBytes:dataType:
  static MatrixDescriptor with_rows(std::size_t rows, std::size_t columns,
                                    std::size_t row_bytes, DataType data_type);

  /// Convenience: packed rows (rowBytes = columns * element size).
  static MatrixDescriptor packed(std::size_t rows, std::size_t columns,
                                 DataType data_type);

  std::size_t rows() const { return rows_; }
  std::size_t columns() const { return columns_; }
  std::size_t row_bytes() const { return row_bytes_; }
  DataType data_type() const { return data_type_; }

  /// Minimum buffer length this layout requires.
  std::size_t required_length() const { return rows_ * row_bytes_; }

 private:
  MatrixDescriptor(std::size_t rows, std::size_t columns, std::size_t row_bytes,
                   DataType data_type);

  std::size_t rows_;
  std::size_t columns_;
  std::size_t row_bytes_;
  DataType data_type_;
};

/// MPSMatrix: an MTLBuffer interpreted through a descriptor. Non-owning view
/// of the buffer (as in MPS, where the MTLBuffer is retained by the caller).
class Matrix {
 public:
  /// initWithBuffer:descriptor:
  Matrix(metal::Buffer* buffer, const MatrixDescriptor& descriptor);

  metal::Buffer* buffer() const { return buffer_; }
  const MatrixDescriptor& descriptor() const { return descriptor_; }

  std::size_t rows() const { return descriptor_.rows(); }
  std::size_t columns() const { return descriptor_.columns(); }

  /// Typed pointer to row `r` (FP32 matrices).
  float* row_f32(std::size_t r);
  const float* row_f32(std::size_t r) const;

  /// Elements per row stride (rowBytes / 4 for FP32).
  std::size_t stride_f32() const;

 private:
  metal::Buffer* buffer_;
  MatrixDescriptor descriptor_;
};

}  // namespace ao::mps
