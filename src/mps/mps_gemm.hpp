#pragma once

#include <memory>

#include "metal/command_buffer.hpp"
#include "metal/device.hpp"
#include "mps/mps_matrix.hpp"

namespace ao::mps {

/// MPSMatrixMultiplication: Apple's first-party tuned GEMM kernel, the
/// implementation that dominates Figure 2 ("MPS demonstrates superior FLOPS
/// on all processors").
///
/// Computes  C = alpha * op(A) * op(B) + beta * C.
///
/// The functional body is a cache-blocked, multi-threaded SGEMM whose
/// threadgroups each own a block of C rows; its simulated cost routes to the
/// GPU-MPS calibration anchors. Usage mirrors the paper's Listing 2:
///
///   MatrixMultiplication mm(device, n, n, n);
///   mm.encode_to_command_buffer(*cmd_buf, mat_a, mat_b, mat_c);
///   cmd_buf->commit();
///   cmd_buf->wait_until_completed();
class MatrixMultiplication {
 public:
  /// initWithDevice:resultRows:resultColumns:interiorColumns:
  /// (alpha = 1, beta = 0, no transposes — the paper's configuration).
  MatrixMultiplication(metal::Device& device, std::size_t result_rows,
                       std::size_t result_columns, std::size_t interior_columns);

  /// Full initializer with transposes and scaling factors.
  MatrixMultiplication(metal::Device& device, bool transpose_left,
                       bool transpose_right, std::size_t result_rows,
                       std::size_t result_columns, std::size_t interior_columns,
                       double alpha, double beta);

  /// encodeToCommandBuffer:leftMatrix:rightMatrix:resultMatrix:
  /// Validates the operand shapes against the configured dimensions and
  /// records the multiplication into `command_buffer`.
  void encode_to_command_buffer(metal::CommandBuffer& command_buffer,
                                Matrix& left, Matrix& right, Matrix& result);

  /// Skips the functional body for encodes after this call (model-only);
  /// used by the harness above the verification size threshold.
  void set_functional_execution(bool enabled) { functional_ = enabled; }

  std::size_t result_rows() const { return result_rows_; }
  std::size_t result_columns() const { return result_columns_; }
  std::size_t interior_columns() const { return interior_columns_; }
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

 private:
  metal::Device* device_;
  bool transpose_left_;
  bool transpose_right_;
  std::size_t result_rows_;
  std::size_t result_columns_;
  std::size_t interior_columns_;
  double alpha_;
  double beta_;
  bool functional_ = true;
  metal::ComputePipelineStatePtr pipeline_;
};

namespace detail {

/// The tuned CPU-side micro-kernel the MPS simulation executes: blocked
/// SGEMM over a row range [row_begin, row_end) with strides, transposes and
/// alpha/beta support. Exposed for direct unit testing.
void sgemm_block(bool transpose_a, bool transpose_b, std::size_t row_begin,
                 std::size_t row_end, std::size_t n_cols, std::size_t k_dim,
                 float alpha, const float* a, std::size_t lda, const float* b,
                 std::size_t ldb, float beta, float* c, std::size_t ldc);

}  // namespace detail

}  // namespace ao::mps
