#pragma once

#include "soc/chip_spec.hpp"
#include "soc/compute_unit.hpp"

namespace ao::soc {

/// Simplified DVFS model of the M-series performance controller.
///
/// Apple's big.LITTLE scheduler places demanding threads on the P-cluster and
/// background work on the E-cluster, and trades boost clocks against active
/// core count. The governor exposes the *effective clock multiplier* the
/// performance model applies on top of the Table-1 nominal clocks:
///
///  - single active P-core: full boost (1.0 x nominal P clock)
///  - all P-cores active:   slight all-core derate (0.95)
///  - E-cluster:            always nominal E clock
///  - GPU:                  nominal, scaled only by thermal throttle
class FrequencyGovernor {
 public:
  explicit FrequencyGovernor(const ChipSpec& spec);

  /// Effective clock in GHz for `unit` with `active_cores` busy and the
  /// thermal throttle factor `throttle` from ThermalModel.
  double effective_clock_ghz(ComputeUnit unit, int active_cores,
                             double throttle) const;

  /// All-core multiplier applied to the P-cluster when every core is busy.
  static constexpr double kAllCoreDerate = 0.95;

 private:
  const ChipSpec* spec_;
};

}  // namespace ao::soc
