#include "soc/chip_spec.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"

namespace ao::soc {

std::string to_string(ChipModel model) {
  switch (model) {
    case ChipModel::kM1:
      return "M1";
    case ChipModel::kM2:
      return "M2";
    case ChipModel::kM3:
      return "M3";
    case ChipModel::kM4:
      return "M4";
  }
  return "unknown";
}

ChipModel chip_model_from_string(const std::string& name) {
  std::string lowered(name.size(), '\0');
  std::transform(name.begin(), name.end(), lowered.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lowered == "m1") return ChipModel::kM1;
  if (lowered == "m2") return ChipModel::kM2;
  if (lowered == "m3") return ChipModel::kM3;
  if (lowered == "m4") return ChipModel::kM4;
  throw util::InvalidArgument("unknown chip model: " + name);
}

double ChipSpec::cpu_neon_peak_fp32_gflops() const {
  // One 128-bit NEON FMA pipe processes 4 FP32 lanes, 2 FLOP each, and the
  // Firestorm-class cores issue 4 such ops per cycle; efficiency cores have
  // half the issue width. This derivation is only used for roofline context,
  // not for reported results.
  constexpr double kFlopsPerCyclePCore = 4.0 * 2.0 * 4.0;  // 4 pipes * FMA * 4 lanes
  constexpr double kFlopsPerCycleECore = 2.0 * 2.0 * 4.0;
  return performance_cores * p_clock_ghz * kFlopsPerCyclePCore +
         efficiency_cores * e_clock_ghz * kFlopsPerCycleECore;
}

namespace {

std::array<ChipSpec, 4> make_specs() {
  std::array<ChipSpec, 4> specs{};

  {
    ChipSpec& m1 = specs[0];
    m1.model = ChipModel::kM1;
    m1.name = "M1";
    m1.process_technology = "5";
    m1.cpu_architecture = "ARMv8.5-A";
    m1.p_core_name = "Firestorm";
    m1.e_core_name = "Icestorm";
    m1.performance_cores = 4;
    m1.efficiency_cores = 4;
    m1.p_clock_ghz = 3.2;
    m1.e_clock_ghz = 2.06;
    m1.vector_unit = "NEON";
    m1.vector_width_bits = 128;
    m1.l1_kb_per_p_core = 128;
    m1.l1_kb_per_e_core = 64;
    m1.l2_mb_p_cluster = 12;
    m1.l2_mb_e_cluster = 4;
    m1.amx_precisions = "FP16,32,64";
    m1.amx_is_sme = false;
    m1.gpu_cores_min = 7;
    m1.gpu_cores_max = 8;
    m1.gpu_clock_ghz = 1.27;
    m1.gpu_native_precisions = "FP32, FP16, INT8";
    m1.theoretical_fp32_tflops_min = 2.29;
    m1.theoretical_fp32_tflops_max = 2.61;
    m1.neural_engine_cores = 16;
    m1.memory_technology = "LPDDR4X";
    m1.unified_memory_gb_options = {8, 16};
    m1.memory_bandwidth_gbs = 67.0;
  }

  {
    ChipSpec& m2 = specs[1];
    m2.model = ChipModel::kM2;
    m2.name = "M2";
    m2.process_technology = "5/4";
    m2.cpu_architecture = "ARMv8.6-A";
    m2.p_core_name = "Avalanche";
    m2.e_core_name = "Blizzard";
    m2.performance_cores = 4;
    m2.efficiency_cores = 4;
    m2.p_clock_ghz = 3.5;
    m2.e_clock_ghz = 2.42;
    m2.vector_unit = "NEON";
    m2.vector_width_bits = 128;
    m2.l1_kb_per_p_core = 128;
    m2.l1_kb_per_e_core = 64;
    m2.l2_mb_p_cluster = 16;
    m2.l2_mb_e_cluster = 4;
    m2.amx_precisions = "FP16,32,64/BF16";
    m2.amx_is_sme = false;
    m2.gpu_cores_min = 8;
    m2.gpu_cores_max = 10;
    m2.gpu_clock_ghz = 1.39;
    m2.gpu_native_precisions = "FP32, FP16, INT8";
    m2.theoretical_fp32_tflops_min = 2.86;
    m2.theoretical_fp32_tflops_max = 3.57;
    m2.neural_engine_cores = 16;
    m2.memory_technology = "LPDDR5";
    m2.unified_memory_gb_options = {8, 16, 24};
    m2.memory_bandwidth_gbs = 100.0;
  }

  {
    ChipSpec& m3 = specs[2];
    m3.model = ChipModel::kM3;
    m3.name = "M3";
    m3.process_technology = "3";
    m3.cpu_architecture = "ARMv8.6-A";
    m3.p_core_name = "Everest-class";
    m3.e_core_name = "Sawtooth-class";
    m3.performance_cores = 4;
    m3.efficiency_cores = 4;
    m3.p_clock_ghz = 4.05;
    m3.e_clock_ghz = 2.75;
    m3.vector_unit = "NEON";
    m3.vector_width_bits = 128;
    m3.l1_kb_per_p_core = 128;
    m3.l1_kb_per_e_core = 64;
    m3.l2_mb_p_cluster = 16;
    m3.l2_mb_e_cluster = 4;
    m3.amx_precisions = "FP16,32,64/BF16";
    m3.amx_is_sme = false;
    m3.gpu_cores_min = 8;
    m3.gpu_cores_max = 10;
    m3.gpu_clock_ghz = 1.38;
    m3.gpu_native_precisions = "FP32, FP16, INT8";
    m3.theoretical_fp32_tflops_min = 2.82;
    m3.theoretical_fp32_tflops_max = 3.53;
    m3.neural_engine_cores = 16;
    m3.memory_technology = "LPDDR5";
    m3.unified_memory_gb_options = {8, 16, 24};
    m3.memory_bandwidth_gbs = 100.0;
  }

  {
    ChipSpec& m4 = specs[3];
    m4.model = ChipModel::kM4;
    m4.name = "M4";
    m4.process_technology = "3";
    m4.cpu_architecture = "ARMv9.2-A";
    m4.p_core_name = "P-core (ARMv9)";
    m4.e_core_name = "E-core (ARMv9)";
    m4.performance_cores = 4;
    m4.efficiency_cores = 6;
    m4.p_clock_ghz = 4.4;
    m4.e_clock_ghz = 2.85;
    m4.vector_unit = "NEON";
    m4.vector_width_bits = 128;
    m4.l1_kb_per_p_core = 128;
    m4.l1_kb_per_e_core = 64;
    m4.l2_mb_p_cluster = 16;
    m4.l2_mb_e_cluster = 4;
    m4.amx_precisions = "FP16,32,64/BF16";
    m4.amx_is_sme = true;  // M4 ships standardized ARM SME
    m4.gpu_cores_min = 8;
    m4.gpu_cores_max = 10;
    m4.gpu_clock_ghz = 1.47;
    m4.gpu_native_precisions = "FP32, FP16, INT8";
    m4.theoretical_fp32_tflops_min = 4.26;
    m4.theoretical_fp32_tflops_max = 4.26;
    m4.neural_engine_cores = 16;
    m4.memory_technology = "LPDDR5X";
    m4.unified_memory_gb_options = {16, 24, 32};
    m4.memory_bandwidth_gbs = 120.0;
  }

  return specs;
}

}  // namespace

const std::array<ChipSpec, 4>& all_chip_specs() {
  static const std::array<ChipSpec, 4> specs = make_specs();
  return specs;
}

const ChipSpec& chip_spec(ChipModel model) {
  return all_chip_specs()[static_cast<std::size_t>(model)];
}

}  // namespace ao::soc
