#pragma once

#include <array>

#include "soc/benchmark_taxonomy.hpp"
#include "soc/chip_spec.hpp"
#include "soc/compute_unit.hpp"

namespace ao::soc {

/// Calibration anchors for the simulated SoCs.
///
/// This reproduction runs on non-Apple hardware, so reported performance comes
/// from an analytic model (ao::core::PerfModel) instead of wall-clock time.
/// The model's *anchor points* — peak sustained bandwidth per STREAM kernel,
/// peak GFLOPS and sustained package power per GEMM implementation — are
/// transcribed here from the paper's published measurements (Section 5,
/// Figures 1-4). Everything between the anchors (size dependence, launch
/// overheads, thread scaling, thermal effects) is produced by the model.
///
/// Keeping every quoted number in this one translation unit makes the
/// paper-vs-model mapping auditable: EXPERIMENTS.md cross-references this
/// file per experiment.

/// STREAM anchors for one chip: sustained GB/s per kernel and agent.
struct StreamCalibration {
  /// Indexed by StreamKernel (Copy, Scale, Add, Triad).
  std::array<double, 4> cpu_gbs;
  std::array<double, 4> gpu_gbs;

  /// Thread-scaling time constant for the CPU sweep: effective bandwidth at
  /// t threads is peak * (1 - exp(-t / tau)). McCalpin STREAM on Apple
  /// Silicon saturates well before the core count.
  double cpu_thread_tau = 2.0;

  /// Fixed launch overhead per GPU STREAM kernel invocation (command buffer
  /// commit + scheduling), in nanoseconds. The Figure-1 anchors are
  /// end-to-end measurements, so the sized-to-spec STREAM arrays must
  /// amortize this almost completely.
  double gpu_launch_overhead_ns = 30e3;

  /// Sustained package draw while streaming (not reported by the paper;
  /// modeled in the same few-Watt band as its Figure 3 measurements).
  double cpu_stream_watts = 5.0;
  double gpu_stream_watts = 4.5;

  double cpu_peak_gbs() const;
  double gpu_peak_gbs() const;
};

/// GEMM performance/power anchors for one (chip, implementation) pair.
///
/// The reported GFLOPS curve over matrix size n is
///   t(n)      = overhead_ns + flops(n) / (peak * rise(n) * decay(n))
///   rise(n)   = 1 / (1 + (n_half / n)^rise_exponent)        — warm-up to peak
///   decay(n)  = n_decay == 0 ? 1
///             : 1 / (1 + (n / n_decay)^decay_exponent)      — cache fall-off
/// which yields the characteristic shapes of Figure 2: overhead-dominated GPU
/// curves at small n, the naive CPU path collapsing once the working set
/// leaves the L2, and saturation at the published peak for the tuned paths.
struct GemmCalibration {
  double peak_gflops = 0.0;     ///< published sustained peak (Figure 2)
  double n_half = 0.0;          ///< size reaching half the peak
  double rise_exponent = 1.7;
  double n_decay = 0.0;         ///< 0 = no decay
  double decay_exponent = 1.2;
  double overhead_ns = 0.0;     ///< fixed per-invocation overhead
  double power_watts = 0.0;     ///< sustained package draw at peak (Figure 3/4)
  ComputeUnit unit = ComputeUnit::kCpuPCluster;  ///< executing unit
};

/// Package idle power split the way powermetrics reports it.
struct IdlePower {
  double cpu_watts = 0.0;
  double gpu_watts = 0.0;
  double dram_watts = 0.0;
};

/// Full calibration record for one chip.
struct ChipCalibration {
  StreamCalibration stream;
  std::array<GemmCalibration, 6> gemm;  ///< indexed by GemmImpl
  IdlePower idle;
};

/// Returns the calibration anchors for `model`.
const ChipCalibration& calibration(ChipModel model);

/// Convenience accessor for one implementation's anchors.
const GemmCalibration& gemm_calibration(ChipModel model, GemmImpl impl);

}  // namespace ao::soc
