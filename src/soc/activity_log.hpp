#pragma once

#include <cstdint>
#include <vector>

#include "soc/compute_unit.hpp"

namespace ao::soc {

/// One simulated execution interval on one compute unit, with the package
/// power it drew. Executors (Metal dispatcher, Accelerate, the CPU GEMM
/// drivers) append records here; the powermetrics substrate integrates them.
struct ActivityRecord {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  ComputeUnit unit = ComputeUnit::kCpuPCluster;
  double watts = 0.0;        ///< average draw attributable to this activity
  double utilization = 0.0;  ///< fraction of the unit's capacity in use

  double duration_s() const {
    return static_cast<double>(end_ns - start_ns) * 1e-9;
  }
  double energy_joules() const { return watts * duration_s(); }
};

/// Append-only log of simulated activity, the power model's ground truth.
class ActivityLog {
 public:
  void record(const ActivityRecord& record);

  const std::vector<ActivityRecord>& records() const { return records_; }
  void clear() { records_.clear(); }
  bool empty() const { return records_.empty(); }

  /// Total energy (J) drawn by `unit` within [from_ns, to_ns), prorating
  /// records that partially overlap the window.
  double energy_in_window(ComputeUnit unit, std::uint64_t from_ns,
                          std::uint64_t to_ns) const;

  /// Total energy (J) across all units within the window.
  double total_energy_in_window(std::uint64_t from_ns, std::uint64_t to_ns) const;

  /// Busy time (s) of `unit` within the window.
  double busy_seconds_in_window(ComputeUnit unit, std::uint64_t from_ns,
                                std::uint64_t to_ns) const;

 private:
  std::vector<ActivityRecord> records_;
};

}  // namespace ao::soc
