#pragma once

#include "soc/device_info.hpp"

namespace ao::soc {

/// First-order lumped thermal model of the package + chassis.
///
/// The paper observes (Section 7) that "the Apple laptops with M1 and M3 SoCs
/// have relatively lower Power Dissipation compared to desktops (M2, M4),
/// which might show the impact of power strategy and cooling methods of
/// different device models". This model produces that behaviour: a passively
/// cooled chassis (MacBook Air) accumulates heat under sustained load and the
/// governor sheds frequency (and therefore power) once the package crosses
/// its throttle threshold; the actively cooled Mac mini holds boost clocks.
///
///   dT/dt = (P * R_th - (T - T_amb)) / tau
///
/// with R_th (K/W) and tau (s) depending on the cooling solution.
class ThermalModel {
 public:
  explicit ThermalModel(CoolingSolution cooling, double ambient_celsius = 22.0);

  /// Integrates `watts` of package power over `seconds` of simulated time.
  void integrate(double watts, double seconds);

  /// Lets the package cool for `seconds` of simulated idle time.
  void cool(double seconds) { integrate(0.0, seconds); }

  /// Resets to ambient (the paper reboots and idles between test sessions).
  void reset();

  double temperature_celsius() const { return temperature_; }
  double ambient_celsius() const { return ambient_; }
  CoolingSolution cooling() const { return cooling_; }

  /// Multiplier in (0, 1] applied to peak compute clocks. 1.0 below the
  /// throttle threshold; decays linearly to `min_throttle` at the critical
  /// temperature.
  double throttle_factor() const;

  /// Temperatures (deg C) at which throttling starts / bottoms out.
  double throttle_start_celsius() const { return throttle_start_; }
  double critical_celsius() const { return critical_; }

 private:
  CoolingSolution cooling_;
  double ambient_;
  double temperature_;
  double r_th_;            ///< thermal resistance, K/W
  double tau_;             ///< time constant, s
  double throttle_start_;  ///< deg C
  double critical_;        ///< deg C
  double min_throttle_;    ///< clock multiplier floor
};

}  // namespace ao::soc
