#include "soc/device_info.hpp"

#include <array>

namespace ao::soc {

std::string to_string(CoolingSolution cooling) {
  switch (cooling) {
    case CoolingSolution::kPassive:
      return "Passive";
    case CoolingSolution::kActiveAir:
      return "Air";
  }
  return "unknown";
}

namespace {

std::array<DeviceInfo, 4> make_devices() {
  return {{
      {ChipModel::kM1, "MacBook Air", 2020, 8, CoolingSolution::kPassive,
       "14.7.2"},
      {ChipModel::kM2, "Mac mini", 2023, 8, CoolingSolution::kActiveAir,
       "15.1.1"},
      {ChipModel::kM3, "MacBook Air", 2024, 16, CoolingSolution::kPassive,
       "15.2"},
      {ChipModel::kM4, "Mac mini", 2024, 16, CoolingSolution::kActiveAir,
       "15.1.1"},
  }};
}

}  // namespace

const DeviceInfo& device_info(ChipModel model) {
  static const std::array<DeviceInfo, 4> devices = make_devices();
  return devices[static_cast<std::size_t>(model)];
}

}  // namespace ao::soc
