#include "soc/soc.hpp"

#include "util/error.hpp"
#include "util/units.hpp"

namespace ao::soc {

Soc::Soc(ChipModel model)
    : spec_(&chip_spec(model)),
      device_(&device_info(model)),
      calib_(&calibration(model)),
      thermal_(device_->cooling),
      governor_(*spec_) {}

std::uint64_t Soc::memory_capacity_bytes() const {
  return static_cast<std::uint64_t>(device_->memory_gb) * util::kGiB;
}

std::uint64_t Soc::execute(ComputeUnit unit, double duration_ns, double watts,
                           double utilization) {
  AO_REQUIRE(duration_ns >= 0.0, "duration must be non-negative");
  AO_REQUIRE(utilization >= 0.0 && utilization <= 1.0,
             "utilization must be in [0, 1]");
  const std::uint64_t start = clock_.now();
  clock_.advance(duration_ns);
  activity_.record({start, clock_.now(), unit, watts, utilization});
  thermal_.integrate(watts, duration_ns * 1e-9);
  return start;
}

void Soc::idle(double duration_ns) {
  AO_REQUIRE(duration_ns >= 0.0, "duration must be non-negative");
  clock_.advance(duration_ns);
  thermal_.cool(duration_ns * 1e-9);
}

void Soc::reset() {
  clock_.reset();
  thermal_.reset();
  activity_.clear();
}

}  // namespace ao::soc
