#pragma once

#include <string>

#include "soc/chip_spec.hpp"

namespace ao::soc {

/// Cooling solution of the host computer. Table 3: the MacBook Airs (M1, M3)
/// are passively cooled, the Mac minis (M2, M4) have active air cooling. The
/// paper's discussion (Section 7) attributes the laptops' lower sustained
/// power dissipation to exactly this difference; the thermal model consumes
/// this field.
enum class CoolingSolution { kPassive, kActiveAir };

std::string to_string(CoolingSolution cooling);

/// One row of Table 3: the physical machine each chip was benchmarked in.
struct DeviceInfo {
  ChipModel chip{};
  std::string device;        ///< "MacBook Air" / "Mac mini"
  int release_year = 0;
  int memory_gb = 0;
  CoolingSolution cooling{};
  std::string macos_version;

  bool is_laptop() const { return cooling == CoolingSolution::kPassive; }
};

/// Returns the Table-3 device for `model`.
const DeviceInfo& device_info(ChipModel model);

}  // namespace ao::soc
