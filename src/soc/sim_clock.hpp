#pragma once

#include <cstdint>

namespace ao::soc {

/// Monotone simulated-time source, in nanoseconds.
///
/// The paper times kernels with std::chrono::high_resolution_clock at
/// nanosecond granularity on real silicon. Here the substrate is a model, so
/// every simulated execution *advances* this clock by its modeled duration
/// and the harness reads timestamps from it exactly where the paper reads
/// wall clock. Host wall time never leaks into reported results.
class SimClock {
 public:
  using Nanos = std::uint64_t;

  Nanos now() const { return now_ns_; }

  /// Advances time by `ns` (fractional model outputs are rounded to ns, the
  /// paper's reporting granularity).
  void advance(double ns);

  /// Advances by an exact integer amount.
  void advance_ns(Nanos ns) { now_ns_ += ns; }

  void reset() {
    now_ns_ = 0;
    ++epoch_;
  }

  /// Boot-epoch counter: bumped every reset(). A SimClock is strictly
  /// single-owner — concurrent experiment jobs must each observe a private
  /// epoch. The orchestrator leases one simulated System per job, resets it
  /// between leases, and asserts the epoch did not change underneath a
  /// running job (which would mean two jobs interleaved on one timeline).
  std::uint64_t epoch() const { return epoch_; }

 private:
  Nanos now_ns_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace ao::soc
