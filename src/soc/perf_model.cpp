#include "soc/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace ao::soc {

PerfModel::PerfModel(const Soc& soc) : soc_(&soc) {}

double PerfModel::rise_factor(const GemmCalibration& c, std::size_t n) {
  AO_REQUIRE(n > 0, "matrix size must be positive");
  if (c.n_half <= 0.0) {
    return 1.0;
  }
  const double ratio = c.n_half / static_cast<double>(n);
  return 1.0 / (1.0 + std::pow(ratio, c.rise_exponent));
}

double PerfModel::decay_factor(const GemmCalibration& c, std::size_t n) {
  if (c.n_decay <= 0.0) {
    return 1.0;
  }
  const double ratio = static_cast<double>(n) / c.n_decay;
  return 1.0 / (1.0 + std::pow(ratio, c.decay_exponent));
}

double PerfModel::gemm_time_ns(GemmImpl impl, std::size_t n) const {
  const GemmCalibration& c = soc_->calib().gemm[static_cast<std::size_t>(impl)];
  const double throttle = soc_->thermal().throttle_factor();
  const double effective_gflops =
      c.peak_gflops * rise_factor(c, n) * decay_factor(c, n) * throttle;
  AO_REQUIRE(effective_gflops > 0.0, "model produced non-positive throughput");
  const double flops = gemm_flops(n);
  return c.overhead_ns + flops / effective_gflops;  // GFLOPS == FLOP/ns
}

double PerfModel::gemm_power_watts(GemmImpl impl, std::size_t n) const {
  const GemmCalibration& c = soc_->calib().gemm[static_cast<std::size_t>(impl)];
  // Small problems do not saturate the unit: power scales between a floor of
  // 55% (pipeline active, data paths mostly idle) and the calibrated peak as
  // the saturation factor climbs. Thermal throttling sheds clocks and
  // therefore power in the same proportion.
  const double rise = rise_factor(c, n);
  const double throttle = soc_->thermal().throttle_factor();
  return c.power_watts * (0.55 + 0.45 * rise) * throttle;
}

double PerfModel::gemm_utilization(GemmImpl impl, std::size_t n) const {
  const GemmCalibration& c = soc_->calib().gemm[static_cast<std::size_t>(impl)];
  return rise_factor(c, n) * decay_factor(c, n);
}

double PerfModel::gemm_gflops(GemmImpl impl, std::size_t n) const {
  return gemm_flops(n) / gemm_time_ns(impl, n);
}

double PerfModel::stream_bandwidth_gbs(MemoryAgent agent, StreamKernel kernel,
                                       int threads) const {
  const StreamCalibration& s = soc_->calib().stream;
  const auto k = static_cast<std::size_t>(kernel);
  const double throttle = soc_->thermal().throttle_factor();
  switch (agent) {
    case MemoryAgent::kCpu: {
      AO_REQUIRE(threads >= 1, "CPU STREAM needs at least one thread");
      const int total = soc_->spec().total_cpu_cores();
      const int t = std::min(threads, total);
      // Saturating thread scaling, normalized so the full-core sweep maximum
      // hits the calibrated anchor (the paper reports the max over the
      // OMP_NUM_THREADS sweep).
      const double tau = s.cpu_thread_tau;
      const double scale = (1.0 - std::exp(-static_cast<double>(t) / tau)) /
                           (1.0 - std::exp(-static_cast<double>(total) / tau));
      return s.cpu_gbs[k] * scale * throttle;
    }
    case MemoryAgent::kGpu:
      return s.gpu_gbs[k] * throttle;
    case MemoryAgent::kNeuralEngine:
      // Not benchmarked by the paper; model as 60% of GPU link efficiency.
      return s.gpu_gbs[k] * 0.6 * throttle;
  }
  return 0.0;
}

double PerfModel::stream_time_ns(MemoryAgent agent, StreamKernel kernel,
                                 std::size_t bytes, int threads) const {
  const double gbs = stream_bandwidth_gbs(agent, kernel, threads);
  AO_REQUIRE(gbs > 0.0, "model produced non-positive bandwidth");
  const double transfer_ns =
      static_cast<double>(bytes) / gbs;  // bytes / (GB/s) == ns
  const double overhead_ns = agent == MemoryAgent::kGpu
                                 ? soc_->calib().stream.gpu_launch_overhead_ns
                                 : 0.0;
  return transfer_ns + overhead_ns;
}

double PerfModel::stream_power_watts(MemoryAgent agent) const {
  const StreamCalibration& s = soc_->calib().stream;
  const double throttle = soc_->thermal().throttle_factor();
  switch (agent) {
    case MemoryAgent::kCpu:
      return s.cpu_stream_watts * throttle;
    case MemoryAgent::kGpu:
      return s.gpu_stream_watts * throttle;
    case MemoryAgent::kNeuralEngine:
      return s.gpu_stream_watts * 0.6 * throttle;
  }
  return 0.0;
}

double PerfModel::gpu_kernel_time_ns(double flops, double bytes,
                                     double compute_efficiency) const {
  AO_REQUIRE(compute_efficiency > 0.0 && compute_efficiency <= 1.0,
             "compute efficiency must be in (0, 1]");
  const StreamCalibration& s = soc_->calib().stream;
  const double throttle = soc_->thermal().throttle_factor();
  const double peak_gflops =
      soc_->spec().gpu_peak_fp32_gflops() * compute_efficiency * throttle;
  const double copy_gbs =
      s.gpu_gbs[static_cast<std::size_t>(StreamKernel::kCopy)] * throttle;
  const double compute_ns = flops / peak_gflops;
  const double memory_ns = bytes / copy_gbs;
  return s.gpu_launch_overhead_ns + std::max(compute_ns, memory_ns);
}

double PerfModel::gpu_kernel_power_watts() const {
  // Custom shaders land between STREAM-style streaming and the naive GEMM
  // shader; attribute the GPU STREAM power plus a compute adder.
  return soc_->calib().stream.gpu_stream_watts * 1.25 *
         soc_->thermal().throttle_factor();
}

}  // namespace ao::soc
