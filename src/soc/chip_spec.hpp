#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ao::soc {

/// The four base M-series generations the paper evaluates (Table 1 covers the
/// base models; the devices in Table 3 all use the fully-enabled base chip).
enum class ChipModel { kM1, kM2, kM3, kM4 };

inline constexpr std::array<ChipModel, 4> kAllChipModels = {
    ChipModel::kM1, ChipModel::kM2, ChipModel::kM3, ChipModel::kM4};

std::string to_string(ChipModel model);

/// Parses "M1".."M4" (case-insensitive). Throws InvalidArgument otherwise.
ChipModel chip_model_from_string(const std::string& name);

/// Static architectural description of one chip — the contents of the paper's
/// Table 1 plus the derived quantities the performance model needs.
struct ChipSpec {
  ChipModel model{};
  std::string name;                 ///< "M1" ... "M4"
  std::string process_technology;   ///< e.g. "5", "5/4", "3" (nm)
  std::string cpu_architecture;     ///< e.g. "ARMv8.5-A"
  std::string p_core_name;          ///< e.g. "Firestorm"
  std::string e_core_name;          ///< e.g. "Icestorm"

  int performance_cores = 0;
  int efficiency_cores = 0;
  double p_clock_ghz = 0.0;
  double e_clock_ghz = 0.0;

  std::string vector_unit;          ///< "NEON"
  int vector_width_bits = 0;        ///< 128

  int l1_kb_per_p_core = 0;         ///< data+instruction budget per Table 1
  int l1_kb_per_e_core = 0;
  int l2_mb_p_cluster = 0;
  int l2_mb_e_cluster = 0;

  std::string amx_precisions;       ///< "FP16,32,64" (+ "/BF16" from M2)
  bool amx_is_sme = false;          ///< M4 ships standardized ARM SME

  int gpu_cores_min = 0;            ///< base-model binned range
  int gpu_cores_max = 0;
  double gpu_clock_ghz = 0.0;
  std::string gpu_native_precisions;  ///< "FP32, FP16, INT8"
  double theoretical_fp32_tflops_min = 0.0;
  double theoretical_fp32_tflops_max = 0.0;

  int neural_engine_cores = 0;

  std::string memory_technology;    ///< "LPDDR4X" ...
  std::vector<int> unified_memory_gb_options;
  double memory_bandwidth_gbs = 0.0;  ///< theoretical peak

  /// --- derived quantities -------------------------------------------------

  /// Theoretical FP32 peak of the GPU with the max core count, in GFLOPS.
  double gpu_peak_fp32_gflops() const {
    return theoretical_fp32_tflops_max * 1e3;
  }

  /// Theoretical FP32 peak of the CPU P-cluster via NEON (4-wide FMA = 8
  /// FLOP/cycle per core), in GFLOPS.
  double cpu_neon_peak_fp32_gflops() const;

  /// Total physical cores (the CPU STREAM thread sweep runs 1..this).
  int total_cpu_cores() const { return performance_cores + efficiency_cores; }

  /// Unified-memory page size, constant across the series.
  static constexpr std::size_t kPageSize = 16384;
};

/// Returns the immutable spec for `model` (data transcribed from Table 1).
const ChipSpec& chip_spec(ChipModel model);

/// All four specs in generation order.
const std::array<ChipSpec, 4>& all_chip_specs();

}  // namespace ao::soc
