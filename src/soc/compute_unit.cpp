#include "soc/compute_unit.hpp"

namespace ao::soc {

std::string to_string(ComputeUnit unit) {
  switch (unit) {
    case ComputeUnit::kCpuPCluster:
      return "CPU P-cluster";
    case ComputeUnit::kCpuECluster:
      return "CPU E-cluster";
    case ComputeUnit::kAmx:
      return "AMX";
    case ComputeUnit::kGpu:
      return "GPU";
    case ComputeUnit::kNeuralEngine:
      return "Neural Engine";
    case ComputeUnit::kDram:
      return "DRAM";
  }
  return "unknown";
}

std::string to_string(MemoryAgent agent) {
  switch (agent) {
    case MemoryAgent::kCpu:
      return "CPU";
    case MemoryAgent::kGpu:
      return "GPU";
    case MemoryAgent::kNeuralEngine:
      return "ANE";
  }
  return "unknown";
}

}  // namespace ao::soc
