#pragma once

#include <string>

namespace ao::soc {

/// The compute agents integrated on an M-series SoC that the paper's
/// benchmarks exercise or discuss. DRAM appears as a "unit" so the power
/// model can attribute memory-controller energy separately, the way
/// powermetrics splits its report.
enum class ComputeUnit {
  kCpuPCluster,   ///< performance cores (Firestorm/Avalanche/...)
  kCpuECluster,   ///< efficiency cores (Icestorm/Blizzard/...)
  kAmx,           ///< Apple Matrix eXtension coprocessor (SME on M4)
  kGpu,           ///< integrated TBDR GPU
  kNeuralEngine,  ///< 16-core ANE
  kDram,          ///< unified memory + controller
};

/// Human-readable unit name ("CPU P-cluster", "GPU", ...).
std::string to_string(ComputeUnit unit);

/// Memory agents: who is driving traffic to unified memory. The STREAM
/// benchmark measures CPU and GPU agents separately (Figure 1).
enum class MemoryAgent {
  kCpu,
  kGpu,
  kNeuralEngine,
};

std::string to_string(MemoryAgent agent);

}  // namespace ao::soc
