#pragma once

#include <cstdint>
#include <memory>

#include "soc/activity_log.hpp"
#include "soc/calibration.hpp"
#include "soc/chip_spec.hpp"
#include "soc/device_info.hpp"
#include "soc/frequency_governor.hpp"
#include "soc/sim_clock.hpp"
#include "soc/thermal_model.hpp"

namespace ao::soc {

/// One simulated Apple Silicon system: a chip (Table 1) inside a device
/// (Table 3), with a simulated clock, a thermal state, a DVFS governor and an
/// activity log that the power tooling samples.
///
/// Every higher-level substrate (unified memory, the Metal device, the
/// Accelerate engine, powermetrics) is constructed over one Soc and drives
/// simulated execution exclusively through Soc::execute()/idle(), which keeps
/// time, energy and heat mutually consistent.
class Soc {
 public:
  explicit Soc(ChipModel model);

  const ChipSpec& spec() const { return *spec_; }
  const DeviceInfo& device() const { return *device_; }
  const ChipCalibration& calib() const { return *calib_; }

  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }

  ThermalModel& thermal() { return thermal_; }
  const ThermalModel& thermal() const { return thermal_; }

  const FrequencyGovernor& governor() const { return governor_; }

  ActivityLog& activity() { return activity_; }
  const ActivityLog& activity() const { return activity_; }

  /// Installed unified memory in bytes (the Table-3 configuration).
  std::uint64_t memory_capacity_bytes() const;

  /// Simulates `duration_ns` of execution on `unit` drawing `watts`:
  /// advances the clock, appends an activity record, and heats the package.
  /// Returns the simulated start timestamp.
  std::uint64_t execute(ComputeUnit unit, double duration_ns, double watts,
                        double utilization);

  /// Simulates idle time (clock advances, package cools, no activity).
  void idle(double duration_ns);

  /// Restores boot state: clock to zero, package to ambient, log cleared.
  /// (The paper reboots and idles the machines between test sessions.)
  void reset();

 private:
  const ChipSpec* spec_;
  const DeviceInfo* device_;
  const ChipCalibration* calib_;
  SimClock clock_;
  ThermalModel thermal_;
  FrequencyGovernor governor_;
  ActivityLog activity_;
};

}  // namespace ao::soc
