#include "soc/sim_clock.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ao::soc {

void SimClock::advance(double ns) {
  AO_REQUIRE(ns >= 0.0, "cannot advance the clock backwards");
  now_ns_ += static_cast<Nanos>(std::llround(ns));
}

}  // namespace ao::soc
