#include "soc/benchmark_taxonomy.hpp"

namespace ao::soc {

std::string to_string(StreamKernel kernel) {
  switch (kernel) {
    case StreamKernel::kCopy:
      return "Copy";
    case StreamKernel::kScale:
      return "Scale";
    case StreamKernel::kAdd:
      return "Add";
    case StreamKernel::kTriad:
      return "Triad";
  }
  return "unknown";
}

int stream_arrays_touched(StreamKernel kernel) {
  switch (kernel) {
    case StreamKernel::kCopy:
    case StreamKernel::kScale:
      return 2;
    case StreamKernel::kAdd:
    case StreamKernel::kTriad:
      return 3;
  }
  return 0;
}

int stream_flops_per_element(StreamKernel kernel) {
  switch (kernel) {
    case StreamKernel::kCopy:
      return 0;
    case StreamKernel::kScale:
    case StreamKernel::kAdd:
      return 1;
    case StreamKernel::kTriad:
      return 2;
  }
  return 0;
}

std::string to_string(GemmImpl impl) {
  switch (impl) {
    case GemmImpl::kCpuSingle:
      return "CPU-Single";
    case GemmImpl::kCpuOmp:
      return "CPU-OMP";
    case GemmImpl::kCpuAccelerate:
      return "CPU-Accelerate";
    case GemmImpl::kGpuNaive:
      return "GPU-Naive";
    case GemmImpl::kGpuCutlass:
      return "GPU-CUTLASS";
    case GemmImpl::kGpuMps:
      return "GPU-MPS";
  }
  return "unknown";
}

std::string gemm_framework(GemmImpl impl) {
  switch (impl) {
    case GemmImpl::kCpuSingle:
      return "C++";
    case GemmImpl::kCpuOmp:
      return "C++/OpenMP";
    case GemmImpl::kCpuAccelerate:
      return "Accelerate";
    case GemmImpl::kGpuNaive:
    case GemmImpl::kGpuCutlass:
    case GemmImpl::kGpuMps:
      return "Metal";
  }
  return "unknown";
}

std::string gemm_hardware(GemmImpl impl) {
  return is_gpu_impl(impl) ? "GPU" : "CPU";
}

bool is_gpu_impl(GemmImpl impl) {
  switch (impl) {
    case GemmImpl::kGpuNaive:
    case GemmImpl::kGpuCutlass:
    case GemmImpl::kGpuMps:
      return true;
    default:
      return false;
  }
}

double gemm_flops(std::size_t n) {
  const double nd = static_cast<double>(n);
  return nd * nd * (2.0 * nd - 1.0);
}

}  // namespace ao::soc
