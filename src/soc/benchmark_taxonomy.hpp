#pragma once

#include <array>
#include <string>

namespace ao::soc {

/// The four STREAM kernels (McCalpin). Both the CPU port (stream.c) and the
/// GPU port (MSL, after the CUDA/HIP stream_cpugpu.cpp) measure all four.
enum class StreamKernel { kCopy, kScale, kAdd, kTriad };

inline constexpr std::array<StreamKernel, 4> kAllStreamKernels = {
    StreamKernel::kCopy, StreamKernel::kScale, StreamKernel::kAdd,
    StreamKernel::kTriad};

std::string to_string(StreamKernel kernel);

/// Bytes moved per array element for each kernel (read + write traffic, as
/// STREAM accounts it): Copy/Scale touch 2 arrays, Add/Triad touch 3.
int stream_arrays_touched(StreamKernel kernel);

/// FLOPs per element: Copy 0, Scale 1, Add 1, Triad 2.
int stream_flops_per_element(StreamKernel kernel);

/// The six GEMM implementations of Table 2, in the order the paper's figures
/// list them.
enum class GemmImpl {
  kCpuSingle,      ///< naive triple loop, C++ (baseline)
  kCpuOmp,         ///< multi-threaded tiled loop, OpenMP
  kCpuAccelerate,  ///< Accelerate BLAS/vDSP, runs on AMX
  kGpuNaive,       ///< naive algorithm as Metal shader
  kGpuCutlass,     ///< Cutlass-style tiled Metal shader
  kGpuMps,         ///< Metal Performance Shaders
};

inline constexpr std::array<GemmImpl, 6> kAllGemmImpls = {
    GemmImpl::kCpuSingle,     GemmImpl::kCpuOmp,    GemmImpl::kCpuAccelerate,
    GemmImpl::kGpuNaive,      GemmImpl::kGpuCutlass, GemmImpl::kGpuMps};

/// Figure-legend name ("CPU-Single", "GPU-MPS", ...).
std::string to_string(GemmImpl impl);

/// Framework / hardware columns of Table 2.
std::string gemm_framework(GemmImpl impl);
std::string gemm_hardware(GemmImpl impl);

/// True for the three implementations that execute on the GPU.
bool is_gpu_impl(GemmImpl impl);

/// FLOP count of an n x n x n matrix multiplication as the paper counts it:
/// n^2 * (2n - 1)  (n multiplies and n-1 adds per output element).
double gemm_flops(std::size_t n);

}  // namespace ao::soc
