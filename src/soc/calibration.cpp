#include "soc/calibration.hpp"

#include <algorithm>

namespace ao::soc {

double StreamCalibration::cpu_peak_gbs() const {
  return *std::max_element(cpu_gbs.begin(), cpu_gbs.end());
}

double StreamCalibration::gpu_peak_gbs() const {
  return *std::max_element(gpu_gbs.begin(), gpu_gbs.end());
}

namespace {

constexpr auto idx(GemmImpl impl) { return static_cast<std::size_t>(impl); }

/// Shared curve parameters that are not per-chip: the *shape* of each
/// implementation's size dependence. Peaks and powers below are per-chip.
GemmCalibration shape_cpu_single() {
  GemmCalibration c;
  c.n_half = 16.0;        // the triple loop is at "full speed" immediately
  c.rise_exponent = 1.5;
  c.n_decay = 1200.0;     // 3 matrices leave the P-cluster L2 around n≈1150
  c.decay_exponent = 1.2; // strided B accesses make misses costly
  c.overhead_ns = 200.0;
  c.unit = ComputeUnit::kCpuPCluster;
  return c;
}

GemmCalibration shape_cpu_omp() {
  GemmCalibration c;
  c.n_half = 256.0;       // fork/join + tiling overheads need work to amortize
  c.rise_exponent = 1.5;
  c.n_decay = 0.0;        // tiling keeps the working set cache-resident
  c.overhead_ns = 20e3;   // OpenMP parallel region spin-up
  c.unit = ComputeUnit::kCpuPCluster;
  return c;
}

GemmCalibration shape_cpu_accelerate() {
  GemmCalibration c;
  c.n_half = 192.0;
  c.rise_exponent = 1.6;
  c.n_decay = 0.0;
  c.overhead_ns = 3e3;    // library call + AMX tile setup
  c.unit = ComputeUnit::kAmx;
  return c;
}

GemmCalibration shape_gpu_naive() {
  GemmCalibration c;
  c.n_half = 768.0;
  c.rise_exponent = 1.8;
  c.n_decay = 0.0;
  c.overhead_ns = 150e3;  // command buffer + pipeline + dispatch latency
  c.unit = ComputeUnit::kGpu;
  return c;
}

GemmCalibration shape_gpu_cutlass() {
  GemmCalibration c;
  c.n_half = 640.0;
  c.rise_exponent = 1.8;
  c.n_decay = 0.0;
  c.overhead_ns = 150e3;
  c.unit = ComputeUnit::kGpu;
  return c;
}

GemmCalibration shape_gpu_mps() {
  GemmCalibration c;
  c.n_half = 1024.0;      // MPS only shines on large tiles (Figure 2)
  c.rise_exponent = 1.7;
  c.n_decay = 0.0;
  c.overhead_ns = 120e3;
  c.unit = ComputeUnit::kGpu;
  return c;
}

std::array<GemmCalibration, 6> shapes() {
  std::array<GemmCalibration, 6> s{};
  s[idx(GemmImpl::kCpuSingle)] = shape_cpu_single();
  s[idx(GemmImpl::kCpuOmp)] = shape_cpu_omp();
  s[idx(GemmImpl::kCpuAccelerate)] = shape_cpu_accelerate();
  s[idx(GemmImpl::kGpuNaive)] = shape_gpu_naive();
  s[idx(GemmImpl::kGpuCutlass)] = shape_gpu_cutlass();
  s[idx(GemmImpl::kGpuMps)] = shape_gpu_mps();
  return s;
}

/// Applies per-chip peak GFLOPS (Figure 2 / Section 5.2) and sustained power
/// in Watts (Figures 3-4 / Section 5.3) onto the shared shapes. Order:
/// CPU-Single, CPU-OMP, CPU-Accelerate, GPU-Naive, GPU-CUTLASS, GPU-MPS.
std::array<GemmCalibration, 6> gemm_anchor(const std::array<double, 6>& peaks,
                                           const std::array<double, 6>& watts) {
  auto s = shapes();
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i].peak_gflops = peaks[i];
    s[i].power_watts = watts[i];
  }
  return s;
}

ChipCalibration make_m1() {
  ChipCalibration c;
  // Figure 1: "M1 ... up to 59 GB/s for CPU; 60 GB/s for GPU".
  c.stream.cpu_gbs = {55.0, 54.0, 58.0, 59.0};
  c.stream.gpu_gbs = {60.0, 59.0, 58.0, 59.0};
  c.stream.cpu_stream_watts = 4.8;
  c.stream.gpu_stream_watts = 3.9;
  // Section 5.2 peaks: Accelerate 0.90 T; MPS 1.36 T; naive shader 0.20 T;
  // Cutlass-style 0.15 T. Section 5.3: Accelerate 0.25 T/W -> 3.6 W;
  // MPS 0.21 T/W -> 6.5 W; naive/CUTLASS ~10x below MPS efficiency.
  c.gemm = gemm_anchor({2.2, 10.0, 900.0, 200.0, 150.0, 1360.0},
                       {3.5, 12.0, 3.6, 9.5, 7.1, 6.5});
  c.idle = {0.045, 0.020, 0.10};
  return c;
}

ChipCalibration make_m2() {
  ChipCalibration c;
  // Figure 1: 78 GB/s CPU, 91 GB/s GPU. The M2 CPU anomaly: Copy and Scale
  // trail Add/Triad by 20-30 GB/s ("it is unclear why the M2's CPU performed
  // worse than anticipated") — encoded directly as per-kernel anchors.
  c.stream.cpu_gbs = {53.0, 52.0, 77.0, 78.0};
  c.stream.gpu_gbs = {91.0, 90.0, 89.0, 90.0};
  c.stream.cpu_stream_watts = 6.1;
  c.stream.gpu_stream_watts = 4.6;
  // Peaks: Accelerate 1.09 T, MPS 2.24 T, naive 0.39 T, CUTLASS 0.16 T.
  // Power: Accelerate 0.20 T/W -> 5.45 W; MPS 0.40 T/W -> 5.6 W.
  c.gemm = gemm_anchor({2.5, 14.0, 1090.0, 390.0, 160.0, 2240.0},
                       {4.0, 18.0, 5.45, 9.8, 8.0, 5.6});
  c.idle = {0.050, 0.022, 0.11};
  return c;
}

ChipCalibration make_m3() {
  ChipCalibration c;
  // Figure 1: 92 GB/s CPU, 92 GB/s GPU.
  c.stream.cpu_gbs = {88.0, 87.0, 91.0, 92.0};
  c.stream.gpu_gbs = {92.0, 91.0, 90.0, 91.0};
  c.stream.cpu_stream_watts = 5.5;
  c.stream.gpu_stream_watts = 4.4;
  // Peaks: Accelerate 1.38 T, MPS 2.47 T, naive 0.45 T, CUTLASS 0.27 T.
  // Power: Accelerate 0.27 T/W -> 5.1 W; MPS 0.46 T/W -> 5.4 W.
  c.gemm = gemm_anchor({2.9, 14.0, 1380.0, 450.0, 270.0, 2470.0},
                       {4.5, 16.0, 5.1, 9.8, 9.0, 5.4});
  c.idle = {0.048, 0.021, 0.10};
  return c;
}

ChipCalibration make_m4() {
  ChipCalibration c;
  // Figure 1: 103 GB/s CPU, 100 GB/s GPU ("close to the theoretical peak of
  // 100 GB/s"; the M4's theoretical is 120 GB/s).
  c.stream.cpu_gbs = {98.0, 97.0, 102.0, 103.0};
  c.stream.gpu_gbs = {100.0, 99.0, 98.0, 99.0};
  c.stream.cpu_stream_watts = 7.2;
  c.stream.gpu_stream_watts = 5.3;
  // Peaks: Accelerate 1.49 T, MPS 2.90 T, naive 0.54 T, CUTLASS 0.34 T.
  // Power: Accelerate 0.23 T/W -> 6.5 W; MPS 0.33 T/W -> 8.8 W; "M4
  // exhibited the highest power consumption using the Cutlass-style shader"
  // (Figure 3 tops out near 20 W).
  c.gemm = gemm_anchor({3.2, 18.0, 1490.0, 540.0, 340.0, 2900.0},
                       {5.0, 19.0, 6.5, 16.4, 19.5, 8.8});
  c.idle = {0.055, 0.025, 0.12};
  return c;
}

}  // namespace

const ChipCalibration& calibration(ChipModel model) {
  static const std::array<ChipCalibration, 4> table = {
      make_m1(), make_m2(), make_m3(), make_m4()};
  return table[static_cast<std::size_t>(model)];
}

const GemmCalibration& gemm_calibration(ChipModel model, GemmImpl impl) {
  return calibration(model).gemm[idx(impl)];
}

}  // namespace ao::soc
