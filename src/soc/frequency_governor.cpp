#include "soc/frequency_governor.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ao::soc {

FrequencyGovernor::FrequencyGovernor(const ChipSpec& spec) : spec_(&spec) {}

double FrequencyGovernor::effective_clock_ghz(ComputeUnit unit, int active_cores,
                                              double throttle) const {
  AO_REQUIRE(active_cores >= 0, "active core count must be non-negative");
  AO_REQUIRE(throttle > 0.0 && throttle <= 1.0, "throttle must be in (0, 1]");
  switch (unit) {
    case ComputeUnit::kCpuPCluster: {
      // Boost with one core busy, tapering linearly to the all-core derate.
      const int cores = std::max(1, std::min(active_cores, spec_->performance_cores));
      const double span = spec_->performance_cores > 1
                              ? static_cast<double>(cores - 1) /
                                    static_cast<double>(spec_->performance_cores - 1)
                              : 0.0;
      const double multiplier = 1.0 - span * (1.0 - kAllCoreDerate);
      return spec_->p_clock_ghz * multiplier * throttle;
    }
    case ComputeUnit::kCpuECluster:
      return spec_->e_clock_ghz * throttle;
    case ComputeUnit::kAmx:
      // AMX is fed from the P-cluster's instruction stream and clocks with it.
      return spec_->p_clock_ghz * kAllCoreDerate * throttle;
    case ComputeUnit::kGpu:
      return spec_->gpu_clock_ghz * throttle;
    case ComputeUnit::kNeuralEngine:
      // ANE clock is undocumented; model it as GPU-class.
      return spec_->gpu_clock_ghz * throttle;
    case ComputeUnit::kDram:
      return 0.0;  // not a clocked compute unit in this model
  }
  return 0.0;
}

}  // namespace ao::soc
