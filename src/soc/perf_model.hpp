#pragma once

#include <cstddef>

#include "soc/benchmark_taxonomy.hpp"
#include "soc/soc.hpp"

namespace ao::soc {

/// Analytic performance/power model of the simulated SoCs.
///
/// All reported numbers in this reproduction flow through this class. It maps
/// a workload description (GEMM implementation + size, or STREAM kernel +
/// bytes + agent) to a duration in simulated nanoseconds and a package power
/// in Watts, anchored by the calibration tables (soc/calibration.cpp) and
/// modulated by the live thermal state of the Soc it is attached to.
class PerfModel {
 public:
  explicit PerfModel(const Soc& soc);

  // --- GEMM (Table 2 implementations, Figures 2-4) ------------------------

  /// Modeled wall time of one n x n x n multiplication, in ns, at the
  /// current thermal state.
  double gemm_time_ns(GemmImpl impl, std::size_t n) const;

  /// Average package power during that multiplication, in Watts. Tracks the
  /// saturation curve: small problems do not light the whole unit up.
  double gemm_power_watts(GemmImpl impl, std::size_t n) const;

  /// Unit utilization in [0, 1] (feeds the activity log).
  double gemm_utilization(GemmImpl impl, std::size_t n) const;

  /// Convenience: flops(n) / time(n) in GFLOPS.
  double gemm_gflops(GemmImpl impl, std::size_t n) const;

  // --- STREAM (Figure 1) ---------------------------------------------------

  /// Modeled time for one STREAM kernel pass moving `bytes` of total traffic
  /// with `threads` CPU threads (ignored for the GPU agent).
  double stream_time_ns(MemoryAgent agent, StreamKernel kernel,
                        std::size_t bytes, int threads) const;

  /// Effective bandwidth the model yields for that configuration, GB/s.
  double stream_bandwidth_gbs(MemoryAgent agent, StreamKernel kernel,
                              int threads) const;

  double stream_power_watts(MemoryAgent agent) const;

  // --- generic GPU kernels (custom shaders outside the GEMM suite) --------

  /// Roofline cost for an arbitrary compute kernel on the GPU: max of the
  /// compute time at `compute_efficiency` x theoretical FP32 peak and the
  /// memory time at STREAM-copy bandwidth, plus launch overhead.
  double gpu_kernel_time_ns(double flops, double bytes,
                            double compute_efficiency = 0.60) const;

  /// Power draw attributed to such a generic kernel.
  double gpu_kernel_power_watts() const;

  /// The saturation ("rise") factor in (0, 1] for an implementation at n.
  static double rise_factor(const GemmCalibration& c, std::size_t n);
  /// The cache-decay factor in (0, 1].
  static double decay_factor(const GemmCalibration& c, std::size_t n);

 private:
  const Soc* soc_;
};

}  // namespace ao::soc
