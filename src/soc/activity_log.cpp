#include "soc/activity_log.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ao::soc {
namespace {

/// Overlap of [a0, a1) and [b0, b1) in seconds.
double overlap_seconds(std::uint64_t a0, std::uint64_t a1, std::uint64_t b0,
                       std::uint64_t b1) {
  const std::uint64_t lo = std::max(a0, b0);
  const std::uint64_t hi = std::min(a1, b1);
  return hi > lo ? static_cast<double>(hi - lo) * 1e-9 : 0.0;
}

}  // namespace

void ActivityLog::record(const ActivityRecord& record) {
  AO_REQUIRE(record.end_ns >= record.start_ns, "activity interval is inverted");
  AO_REQUIRE(record.watts >= 0.0, "activity power must be non-negative");
  records_.push_back(record);
}

double ActivityLog::energy_in_window(ComputeUnit unit, std::uint64_t from_ns,
                                     std::uint64_t to_ns) const {
  double joules = 0.0;
  for (const auto& r : records_) {
    if (r.unit != unit) {
      continue;
    }
    joules += r.watts * overlap_seconds(r.start_ns, r.end_ns, from_ns, to_ns);
  }
  return joules;
}

double ActivityLog::total_energy_in_window(std::uint64_t from_ns,
                                           std::uint64_t to_ns) const {
  double joules = 0.0;
  for (const auto& r : records_) {
    joules += r.watts * overlap_seconds(r.start_ns, r.end_ns, from_ns, to_ns);
  }
  return joules;
}

double ActivityLog::busy_seconds_in_window(ComputeUnit unit, std::uint64_t from_ns,
                                           std::uint64_t to_ns) const {
  double seconds = 0.0;
  for (const auto& r : records_) {
    if (r.unit != unit) {
      continue;
    }
    seconds += overlap_seconds(r.start_ns, r.end_ns, from_ns, to_ns);
  }
  return seconds;
}

}  // namespace ao::soc
