#include "soc/thermal_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ao::soc {

ThermalModel::ThermalModel(CoolingSolution cooling, double ambient_celsius)
    : cooling_(cooling), ambient_(ambient_celsius), temperature_(ambient_celsius) {
  if (cooling == CoolingSolution::kPassive) {
    // Fanless chassis: high junction-to-ambient resistance, slow
    // equalization, earlier and deeper throttling. ~12 K/W puts a sustained
    // 6-7 W GPU load (the M1 MPS draw) at the edge of the throttle band,
    // matching MacBook Air behaviour under minutes of load.
    r_th_ = 12.0;
    tau_ = 45.0;
    throttle_start_ = 85.0;
    critical_ = 105.0;
    min_throttle_ = 0.82;
  } else {
    // Active air: the fan keeps effective thermal resistance low; even a
    // 20 W sustained load stays under the throttle threshold (Mac mini).
    r_th_ = 2.2;
    tau_ = 30.0;
    throttle_start_ = 95.0;
    critical_ = 110.0;
    min_throttle_ = 0.90;
  }
}

void ThermalModel::integrate(double watts, double seconds) {
  AO_REQUIRE(watts >= 0.0, "power must be non-negative");
  AO_REQUIRE(seconds >= 0.0, "duration must be non-negative");
  // Exact solution of the first-order ODE over the interval (power constant):
  // T(t) -> T_inf + (T0 - T_inf) * exp(-t / tau), T_inf = T_amb + P * R_th.
  const double t_inf = ambient_ + watts * r_th_;
  temperature_ = t_inf + (temperature_ - t_inf) * std::exp(-seconds / tau_);
}

void ThermalModel::reset() { temperature_ = ambient_; }

double ThermalModel::throttle_factor() const {
  if (temperature_ <= throttle_start_) {
    return 1.0;
  }
  if (temperature_ >= critical_) {
    return min_throttle_;
  }
  const double frac =
      (temperature_ - throttle_start_) / (critical_ - throttle_start_);
  return 1.0 - frac * (1.0 - min_throttle_);
}

}  // namespace ao::soc
