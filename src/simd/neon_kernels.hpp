#pragma once

#include <cstddef>

namespace ao::simd {

/// Hand-vectorized kernels written against the NEON intrinsics layer — what
/// a performance engineer following the paper's Section-2.1 guidance would
/// write by hand on an M-series CPU before reaching for Accelerate.

/// STREAM kernels, explicitly 4-lane vectorized with scalar tails.
void neon_copy(const float* a, float* c, std::size_t n);
void neon_scale(float* b, const float* c, float scalar, std::size_t n);
void neon_add(const float* a, const float* b, float* c, std::size_t n);
void neon_triad(float* a, const float* b, const float* c, float scalar,
                std::size_t n);

/// saxpy: y += a * x.
void neon_saxpy(float a, const float* x, float* y, std::size_t n);

/// dot product with four parallel accumulators (reduces dependency chains,
/// the standard NEON reduction idiom).
float neon_dot(const float* x, const float* y, std::size_t n);

/// SGEMM micro-kernel: C (row-major, m x n_cols) += A * B using a 4-column
/// register-blocked inner loop over vfmaq_n_f32. Square, no-transpose,
/// beta = 0 form (the benchmark's configuration).
void neon_sgemm(std::size_t m, std::size_t n_cols, std::size_t k,
                const float* a, std::size_t lda, const float* b,
                std::size_t ldb, float* c, std::size_t ldc);

}  // namespace ao::simd
