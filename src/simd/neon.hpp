#pragma once

#include <array>
#include <cstddef>
#include <cstring>

namespace ao::simd {

/// Portable re-implementation of the ARM NEON 128-bit intrinsics surface the
/// paper's programmability section describes (Section 2.1: "For programming
/// the CPU's vector units, developers can use ARM intrinsics to write SIMD
/// operations explicitly"). The M-series CPUs expose 128-bit NEON vectors —
/// four FP32 lanes — and this header provides the same names and semantics
/// (vld1q_f32, vfmaq_f32, ...) over a plain struct so vector kernels written
/// for Apple silicon compile and run in the simulator unchanged. The
/// compiler auto-vectorizes the lane loops on the host, so the code path is
/// SIMD in practice as well as in shape.
struct float32x4_t {
  std::array<float, 4> lanes{};
};

inline constexpr std::size_t kNeonLanesF32 = 4;
inline constexpr std::size_t kNeonVectorBits = 128;

/// vld1q_f32: load four consecutive floats.
inline float32x4_t vld1q_f32(const float* ptr) {
  float32x4_t v;
  std::memcpy(v.lanes.data(), ptr, sizeof(v.lanes));
  return v;
}

/// vst1q_f32: store four consecutive floats.
inline void vst1q_f32(float* ptr, float32x4_t v) {
  std::memcpy(ptr, v.lanes.data(), sizeof(v.lanes));
}

/// vdupq_n_f32: broadcast a scalar into every lane.
inline float32x4_t vdupq_n_f32(float value) {
  return {{value, value, value, value}};
}

/// vmovq_n_f32: alias of vdupq_n_f32 (both exist in arm_neon.h).
inline float32x4_t vmovq_n_f32(float value) { return vdupq_n_f32(value); }

inline float32x4_t vaddq_f32(float32x4_t a, float32x4_t b) {
  float32x4_t r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lanes[i] = a.lanes[i] + b.lanes[i];
  }
  return r;
}

inline float32x4_t vsubq_f32(float32x4_t a, float32x4_t b) {
  float32x4_t r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lanes[i] = a.lanes[i] - b.lanes[i];
  }
  return r;
}

inline float32x4_t vmulq_f32(float32x4_t a, float32x4_t b) {
  float32x4_t r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lanes[i] = a.lanes[i] * b.lanes[i];
  }
  return r;
}

/// vfmaq_f32(a, b, c) = a + b * c, the NEON fused multiply-add shape.
inline float32x4_t vfmaq_f32(float32x4_t a, float32x4_t b, float32x4_t c) {
  float32x4_t r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lanes[i] = a.lanes[i] + b.lanes[i] * c.lanes[i];
  }
  return r;
}

/// vfmaq_n_f32(a, b, s) = a + b * s (scalar multiplier form).
inline float32x4_t vfmaq_n_f32(float32x4_t a, float32x4_t b, float s) {
  float32x4_t r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lanes[i] = a.lanes[i] + b.lanes[i] * s;
  }
  return r;
}

inline float32x4_t vmulq_n_f32(float32x4_t a, float s) {
  float32x4_t r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lanes[i] = a.lanes[i] * s;
  }
  return r;
}

inline float32x4_t vmaxq_f32(float32x4_t a, float32x4_t b) {
  float32x4_t r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lanes[i] = a.lanes[i] > b.lanes[i] ? a.lanes[i] : b.lanes[i];
  }
  return r;
}

inline float32x4_t vminq_f32(float32x4_t a, float32x4_t b) {
  float32x4_t r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lanes[i] = a.lanes[i] < b.lanes[i] ? a.lanes[i] : b.lanes[i];
  }
  return r;
}

inline float32x4_t vnegq_f32(float32x4_t a) {
  float32x4_t r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lanes[i] = -a.lanes[i];
  }
  return r;
}

inline float32x4_t vabsq_f32(float32x4_t a) {
  float32x4_t r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lanes[i] = a.lanes[i] < 0.0f ? -a.lanes[i] : a.lanes[i];
  }
  return r;
}

/// vaddvq_f32: horizontal add of all four lanes (ARMv8 across-vector op).
inline float vaddvq_f32(float32x4_t a) {
  return a.lanes[0] + a.lanes[1] + a.lanes[2] + a.lanes[3];
}

/// vmaxvq_f32: horizontal max.
inline float vmaxvq_f32(float32x4_t a) {
  float best = a.lanes[0];
  for (std::size_t i = 1; i < 4; ++i) {
    best = a.lanes[i] > best ? a.lanes[i] : best;
  }
  return best;
}

/// vgetq_lane_f32 / vsetq_lane_f32.
inline float vgetq_lane_f32(float32x4_t a, int lane) {
  return a.lanes[static_cast<std::size_t>(lane)];
}

inline float32x4_t vsetq_lane_f32(float value, float32x4_t a, int lane) {
  a.lanes[static_cast<std::size_t>(lane)] = value;
  return a;
}

}  // namespace ao::simd
