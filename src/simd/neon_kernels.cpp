#include "simd/neon_kernels.hpp"

#include <algorithm>

#include "simd/neon.hpp"

namespace ao::simd {

void neon_copy(const float* a, float* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + kNeonLanesF32 <= n; i += kNeonLanesF32) {
    vst1q_f32(c + i, vld1q_f32(a + i));
  }
  for (; i < n; ++i) {
    c[i] = a[i];
  }
}

void neon_scale(float* b, const float* c, float scalar, std::size_t n) {
  std::size_t i = 0;
  for (; i + kNeonLanesF32 <= n; i += kNeonLanesF32) {
    vst1q_f32(b + i, vmulq_n_f32(vld1q_f32(c + i), scalar));
  }
  for (; i < n; ++i) {
    b[i] = scalar * c[i];
  }
}

void neon_add(const float* a, const float* b, float* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + kNeonLanesF32 <= n; i += kNeonLanesF32) {
    vst1q_f32(c + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) {
    c[i] = a[i] + b[i];
  }
}

void neon_triad(float* a, const float* b, const float* c, float scalar,
                std::size_t n) {
  std::size_t i = 0;
  for (; i + kNeonLanesF32 <= n; i += kNeonLanesF32) {
    vst1q_f32(a + i, vfmaq_n_f32(vld1q_f32(b + i), vld1q_f32(c + i), scalar));
  }
  for (; i < n; ++i) {
    a[i] = b[i] + scalar * c[i];
  }
}

void neon_saxpy(float a, const float* x, float* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + kNeonLanesF32 <= n; i += kNeonLanesF32) {
    vst1q_f32(y + i, vfmaq_n_f32(vld1q_f32(y + i), vld1q_f32(x + i), a));
  }
  for (; i < n; ++i) {
    y[i] += a * x[i];
  }
}

float neon_dot(const float* x, const float* y, std::size_t n) {
  // Four independent accumulators hide the FMA latency chain.
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f);
  float32x4_t acc3 = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(x + i), vld1q_f32(y + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(x + i + 4), vld1q_f32(y + i + 4));
    acc2 = vfmaq_f32(acc2, vld1q_f32(x + i + 8), vld1q_f32(y + i + 8));
    acc3 = vfmaq_f32(acc3, vld1q_f32(x + i + 12), vld1q_f32(y + i + 12));
  }
  float32x4_t acc = vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3));
  for (; i + kNeonLanesF32 <= n; i += kNeonLanesF32) {
    acc = vfmaq_f32(acc, vld1q_f32(x + i), vld1q_f32(y + i));
  }
  float sum = vaddvq_f32(acc);
  for (; i < n; ++i) {
    sum += x[i] * y[i];
  }
  return sum;
}

void neon_sgemm(std::size_t m, std::size_t n_cols, std::size_t k,
                const float* a, std::size_t lda, const float* b,
                std::size_t ldb, float* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    float* c_row = c + i * ldc;
    std::fill(c_row, c_row + n_cols, 0.0f);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float a_ik = a[i * lda + kk];
      const float* b_row = b + kk * ldb;
      std::size_t j = 0;
      // 16 columns per iteration: four NEON registers of C updated per A
      // element, the classic outer-product register blocking.
      for (; j + 16 <= n_cols; j += 16) {
        vst1q_f32(c_row + j,
                  vfmaq_n_f32(vld1q_f32(c_row + j), vld1q_f32(b_row + j), a_ik));
        vst1q_f32(c_row + j + 4, vfmaq_n_f32(vld1q_f32(c_row + j + 4),
                                             vld1q_f32(b_row + j + 4), a_ik));
        vst1q_f32(c_row + j + 8, vfmaq_n_f32(vld1q_f32(c_row + j + 8),
                                             vld1q_f32(b_row + j + 8), a_ik));
        vst1q_f32(c_row + j + 12, vfmaq_n_f32(vld1q_f32(c_row + j + 12),
                                              vld1q_f32(b_row + j + 12), a_ik));
      }
      for (; j + kNeonLanesF32 <= n_cols; j += kNeonLanesF32) {
        vst1q_f32(c_row + j,
                  vfmaq_n_f32(vld1q_f32(c_row + j), vld1q_f32(b_row + j), a_ik));
      }
      for (; j < n_cols; ++j) {
        c_row[j] += a_ik * b_row[j];
      }
    }
  }
}

}  // namespace ao::simd
