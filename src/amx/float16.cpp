#include "amx/float16.hpp"

#include <cstring>

namespace ao::amx {

Half float_to_half(float value) {
  std::uint32_t f;
  std::memcpy(&f, &value, sizeof(f));

  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::int32_t exponent =
      static_cast<std::int32_t>((f >> 23) & 0xFFu) - 127 + 15;
  std::uint32_t mantissa = f & 0x007FFFFFu;

  Half out;
  if (((f >> 23) & 0xFFu) == 0xFFu) {
    // Inf / NaN: keep a non-zero mantissa bit for NaN.
    out.bits = static_cast<std::uint16_t>(
        sign | 0x7C00u | (mantissa != 0 ? 0x0200u : 0u));
    return out;
  }
  if (exponent >= 0x1F) {
    // Overflow -> infinity.
    out.bits = static_cast<std::uint16_t>(sign | 0x7C00u);
    return out;
  }
  if (exponent <= 0) {
    if (exponent < -10) {
      // Underflows to signed zero.
      out.bits = static_cast<std::uint16_t>(sign);
      return out;
    }
    // Subnormal: shift mantissa (with implicit leading 1) into place.
    mantissa |= 0x00800000u;
    const int shift = 14 - exponent;
    std::uint32_t sub = mantissa >> shift;
    // Round to nearest even.
    const std::uint32_t round_bit = 1u << (shift - 1);
    if ((mantissa & round_bit) &&
        ((mantissa & (round_bit - 1)) || (sub & 1u))) {
      ++sub;
    }
    out.bits = static_cast<std::uint16_t>(sign | sub);
    return out;
  }
  // Normal: round mantissa from 23 to 10 bits, to nearest even.
  std::uint32_t half_mant = mantissa >> 13;
  const std::uint32_t round_bit = 0x00001000u;
  if ((mantissa & round_bit) && ((mantissa & (round_bit - 1)) || (half_mant & 1u))) {
    ++half_mant;
    if (half_mant == 0x400u) {  // mantissa overflow bumps the exponent
      half_mant = 0;
      if (exponent + 1 >= 0x1F) {
        out.bits = static_cast<std::uint16_t>(sign | 0x7C00u);
        return out;
      }
      out.bits = static_cast<std::uint16_t>(
          sign | (static_cast<std::uint32_t>(exponent + 1) << 10));
      return out;
    }
  }
  out.bits = static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(exponent) << 10) | half_mant);
  return out;
}

float half_to_float(Half value) {
  const std::uint32_t h = value.bits;
  const std::uint32_t sign = (h & 0x8000u) << 16;
  const std::uint32_t exponent = (h >> 10) & 0x1Fu;
  const std::uint32_t mantissa = h & 0x3FFu;

  std::uint32_t f;
  if (exponent == 0) {
    if (mantissa == 0) {
      f = sign;  // signed zero
    } else {
      // Subnormal: normalize.
      std::uint32_t m = mantissa;
      std::int32_t e = -1;
      do {
        m <<= 1;
        ++e;
      } while ((m & 0x400u) == 0);
      f = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
          ((m & 0x3FFu) << 13);
    }
  } else if (exponent == 0x1F) {
    f = sign | 0x7F800000u | (mantissa << 13);  // Inf / NaN
  } else {
    f = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float out;
  std::memcpy(&out, &f, sizeof(out));
  return out;
}

}  // namespace ao::amx
