#pragma once

#include <cstdint>

namespace ao::amx {

/// IEEE 754 binary16 stored as raw bits. The AMX fp16 path and the Neural
/// Engine model both compute through this software half type (the host is
/// x86 and portable C++20 has no native half).
struct Half {
  std::uint16_t bits = 0;
};

/// FP32 -> FP16 with round-to-nearest-even, handling subnormals, infinities
/// and NaN.
Half float_to_half(float value);

/// FP16 -> FP32 (exact).
float half_to_float(Half value);

}  // namespace ao::amx
