#include "amx/amx_unit.hpp"

#include <cstring>

#include "util/error.hpp"

namespace ao::amx {

void AmxUnit::set() {
  enabled_ = true;
  x_.fill(std::byte{0});
  y_.fill(std::byte{0});
  z_.fill(std::byte{0});
  mac_count_ = 0;
}

void AmxUnit::clr() { enabled_ = false; }

void AmxUnit::require_enabled() const {
  if (!enabled_) {
    throw util::StateError("AMX instruction issued before AMX_SET");
  }
}

void AmxUnit::ldx(std::size_t reg, const void* src) {
  require_enabled();
  AO_REQUIRE(reg < kXRegs, "X register index out of range");
  AO_REQUIRE(src != nullptr, "ldx source is null");
  std::memcpy(x_.data() + reg * kRegBytes, src, kRegBytes);
}

void AmxUnit::ldy(std::size_t reg, const void* src) {
  require_enabled();
  AO_REQUIRE(reg < kYRegs, "Y register index out of range");
  AO_REQUIRE(src != nullptr, "ldy source is null");
  std::memcpy(y_.data() + reg * kRegBytes, src, kRegBytes);
}

void AmxUnit::ldz(std::size_t row, const void* src) {
  require_enabled();
  AO_REQUIRE(row < kZRows, "Z row index out of range");
  AO_REQUIRE(src != nullptr, "ldz source is null");
  std::memcpy(z_.data() + row * kRegBytes, src, kRegBytes);
}

void AmxUnit::stz(std::size_t row, void* dst) const {
  require_enabled();
  AO_REQUIRE(row < kZRows, "Z row index out of range");
  AO_REQUIRE(dst != nullptr, "stz destination is null");
  std::memcpy(dst, z_.data() + row * kRegBytes, kRegBytes);
}

void AmxUnit::zero_z() {
  require_enabled();
  z_.fill(std::byte{0});
}

void AmxUnit::fma32(std::size_t x_reg, std::size_t y_reg, std::size_t z_offset,
                    bool accumulate) {
  require_enabled();
  AO_REQUIRE(x_reg < kXRegs, "X register index out of range");
  AO_REQUIRE(y_reg < kYRegs, "Y register index out of range");
  AO_REQUIRE(z_offset < 4, "fp32 Z offset must be 0..3");

  const auto* x = reinterpret_cast<const float*>(x_.data() + x_reg * kRegBytes);
  const auto* y = reinterpret_cast<const float*>(y_.data() + y_reg * kRegBytes);
  for (std::size_t j = 0; j < kLanesF32; ++j) {
    auto* z_row =
        reinterpret_cast<float*>(z_.data() + (j * 4 + z_offset) * kRegBytes);
    const float yj = y[j];
    for (std::size_t i = 0; i < kLanesF32; ++i) {
      const float prod = x[i] * yj;
      z_row[i] = accumulate ? z_row[i] + prod : prod;
    }
  }
  mac_count_ += kLanesF32 * kLanesF32;
}

void AmxUnit::fma16(std::size_t x_reg, std::size_t y_reg, std::size_t z_offset,
                    bool accumulate) {
  require_enabled();
  AO_REQUIRE(x_reg < kXRegs, "X register index out of range");
  AO_REQUIRE(y_reg < kYRegs, "Y register index out of range");
  AO_REQUIRE(z_offset < 2, "fp16 Z offset must be 0..1");

  const auto* x = reinterpret_cast<const Half*>(x_.data() + x_reg * kRegBytes);
  const auto* y = reinterpret_cast<const Half*>(y_.data() + y_reg * kRegBytes);
  // 32 x 32 outer product; each Z row holds 32 FP32 lanes across two
  // interleaved 64-byte rows (modeled as consecutive float lanes here).
  for (std::size_t j = 0; j < kLanesF16; ++j) {
    auto* z_row = reinterpret_cast<float*>(
        z_.data() + ((j % kZRows / 2) * 2 + z_offset) * kRegBytes);
    const float yj = half_to_float(y[j]);
    for (std::size_t i = 0; i < kLanesF32; ++i) {
      // Only 16 FP32 lanes fit one Z row; the upper 16 products of each
      // row-pair fold into the next row in real hardware. The model keeps
      // the first 16 lanes, which is what the fp16 GEMM driver consumes.
      const float prod = half_to_float(x[i]) * yj;
      z_row[i] = accumulate ? z_row[i] + prod : prod;
    }
  }
  mac_count_ += kLanesF16 * kLanesF32;
}

std::span<const float> AmxUnit::x_f32(std::size_t reg) const {
  AO_REQUIRE(reg < kXRegs, "X register index out of range");
  return {reinterpret_cast<const float*>(x_.data() + reg * kRegBytes), kLanesF32};
}

std::span<const float> AmxUnit::y_f32(std::size_t reg) const {
  AO_REQUIRE(reg < kYRegs, "Y register index out of range");
  return {reinterpret_cast<const float*>(y_.data() + reg * kRegBytes), kLanesF32};
}

std::span<const float> AmxUnit::z_row_f32(std::size_t row) const {
  AO_REQUIRE(row < kZRows, "Z row index out of range");
  return {reinterpret_cast<const float*>(z_.data() + row * kRegBytes), kLanesF32};
}

}  // namespace ao::amx
