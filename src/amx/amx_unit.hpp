#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "amx/float16.hpp"

namespace ao::amx {

/// Functional emulator of one Apple AMX coprocessor register file and its
/// core instructions.
///
/// AMX is undocumented; this model follows the community reverse engineering
/// (register geometry and the fp32 outer-product layout): a pool of eight
/// 64-byte X registers, eight 64-byte Y registers, and a 64 x 64-byte Z
/// accumulator grid. `fma32` computes a 16 x 16 FP32 outer product
/// z[j][i] += x[i] * y[j], with the j-th product row landing in Z row
/// j * 4 + z_offset — the interleaving real AMX uses so four independent
/// fp32 accumulators coexist in Z (z_offset 0..3).
///
/// The unit must be enabled with set() before use and released with clr(),
/// mirroring the AMX_SET / AMX_CLR instructions that bracket every real AMX
/// sequence.
class AmxUnit {
 public:
  static constexpr std::size_t kRegBytes = 64;
  static constexpr std::size_t kXRegs = 8;
  static constexpr std::size_t kYRegs = 8;
  static constexpr std::size_t kZRows = 64;
  static constexpr std::size_t kLanesF32 = kRegBytes / sizeof(float);   // 16
  static constexpr std::size_t kLanesF16 = kRegBytes / sizeof(Half);    // 32

  /// AMX_SET: powers the unit on and zeroes all registers.
  void set();
  /// AMX_CLR: powers the unit off.
  void clr();
  bool enabled() const { return enabled_; }

  /// AMX_LDX / AMX_LDY: load 64 bytes into X/Y register `reg`.
  void ldx(std::size_t reg, const void* src);
  void ldy(std::size_t reg, const void* src);

  /// AMX_LDZ / AMX_STZ: load/store one 64-byte Z row.
  void ldz(std::size_t row, const void* src);
  void stz(std::size_t row, void* dst) const;

  /// Zeroes the whole Z grid (emitted before a fresh accumulation).
  void zero_z();

  /// AMX_FMA32: 16 x 16 FP32 outer product of X[x_reg] and Y[y_reg]
  /// accumulated into Z with row interleave 4 starting at `z_offset` (0..3).
  /// With `accumulate` false the products overwrite instead (FMA32 with the
  /// skip-Z-input flag).
  void fma32(std::size_t x_reg, std::size_t y_reg, std::size_t z_offset = 0,
             bool accumulate = true);

  /// AMX_FMA16: 32 x 32 FP16 outer product accumulating into FP32 Z lanes,
  /// interleave 2 (half the rows of the fp32 layout carry 32 lanes each).
  /// Model simplification: products are computed in FP32 after converting
  /// the FP16 inputs (matching AMX's mixed-precision accumulate mode).
  void fma16(std::size_t x_reg, std::size_t y_reg, std::size_t z_offset = 0,
             bool accumulate = true);

  /// Typed views for testing and the GEMM driver.
  std::span<const float> x_f32(std::size_t reg) const;
  std::span<const float> y_f32(std::size_t reg) const;
  std::span<const float> z_row_f32(std::size_t row) const;

  /// Total MAC operations executed since set() — the driver uses this to
  /// report arithmetic volume.
  std::uint64_t mac_count() const { return mac_count_; }

 private:
  void require_enabled() const;

  bool enabled_ = false;
  alignas(64) std::array<std::byte, kXRegs * kRegBytes> x_{};
  alignas(64) std::array<std::byte, kYRegs * kRegBytes> y_{};
  alignas(64) std::array<std::byte, kZRows * kRegBytes> z_{};
  std::uint64_t mac_count_ = 0;
};

}  // namespace ao::amx
