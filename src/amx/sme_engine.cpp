#include "amx/sme_engine.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace ao::amx {

void SmeEngine::smstart() {
  streaming_ = true;
  z_.fill(0.0f);
  za_.fill(0.0f);
  mac_count_ = 0;
}

void SmeEngine::smstop() { streaming_ = false; }

void SmeEngine::require_streaming() const {
  if (!streaming_) {
    throw util::StateError("SME instruction outside streaming mode (SMSTART)");
  }
}

void SmeEngine::zero_za(std::size_t tile) {
  require_streaming();
  AO_REQUIRE(tile < kZaTilesF32, "ZA tile index out of range");
  std::fill_n(za_.begin() + tile * kLanesF32 * kLanesF32, kLanesF32 * kLanesF32,
              0.0f);
}

void SmeEngine::ld1w(std::size_t reg, const float* src, std::size_t active) {
  require_streaming();
  AO_REQUIRE(reg < kZRegs, "Z register index out of range");
  AO_REQUIRE(src != nullptr, "ld1w source is null");
  AO_REQUIRE(active <= kLanesF32, "predicate exceeds vector length");
  float* dst = z_.data() + reg * kLanesF32;
  std::memcpy(dst, src, active * sizeof(float));
  std::fill(dst + active, dst + kLanesF32, 0.0f);  // inactive lanes read 0
}

void SmeEngine::fmopa(std::size_t tile, std::size_t zn, std::size_t zm,
                      std::size_t rows_active, std::size_t cols_active) {
  require_streaming();
  AO_REQUIRE(tile < kZaTilesF32, "ZA tile index out of range");
  AO_REQUIRE(zn < kZRegs && zm < kZRegs, "Z register index out of range");
  AO_REQUIRE(rows_active <= kLanesF32 && cols_active <= kLanesF32,
             "predicate exceeds vector length");
  const float* vn = z_.data() + zn * kLanesF32;
  const float* vm = z_.data() + zm * kLanesF32;
  float* za = za_.data() + tile * kLanesF32 * kLanesF32;
  for (std::size_t r = 0; r < rows_active; ++r) {
    const float nr = vn[r];
    float* row = za + r * kLanesF32;
    for (std::size_t c = 0; c < cols_active; ++c) {
      row[c] += nr * vm[c];
    }
  }
  mac_count_ += rows_active * cols_active;
}

void SmeEngine::st1w_row(std::size_t tile, std::size_t row, float* dst,
                         std::size_t active) const {
  require_streaming();
  AO_REQUIRE(tile < kZaTilesF32, "ZA tile index out of range");
  AO_REQUIRE(row < kLanesF32, "ZA row out of range");
  AO_REQUIRE(dst != nullptr, "st1w destination is null");
  AO_REQUIRE(active <= kLanesF32, "predicate exceeds vector length");
  std::memcpy(dst, za_.data() + (tile * kLanesF32 + row) * kLanesF32,
              active * sizeof(float));
}

std::span<const float> SmeEngine::z_reg(std::size_t reg) const {
  AO_REQUIRE(reg < kZRegs, "Z register index out of range");
  return {z_.data() + reg * kLanesF32, kLanesF32};
}

float SmeEngine::za_at(std::size_t tile, std::size_t row, std::size_t col) const {
  AO_REQUIRE(tile < kZaTilesF32 && row < kLanesF32 && col < kLanesF32,
             "ZA coordinates out of range");
  return za_[(tile * kLanesF32 + row) * kLanesF32 + col];
}

void sme_sgemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
               std::size_t lda, const float* b, std::size_t ldb, float* c,
               std::size_t ldc) {
  AO_REQUIRE(a != nullptr && b != nullptr && c != nullptr,
             "sme_sgemm operands must not be null");
  AO_REQUIRE(lda >= k && ldb >= n && ldc >= n,
             "leading dimensions too small for row-major operands");
  constexpr std::size_t T = SmeEngine::kLanesF32;

  SmeEngine sme;
  sme.smstart();

  alignas(64) float col_buf[T];
  for (std::size_t i0 = 0; i0 < m; i0 += T) {
    const std::size_t mi = std::min(T, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += T) {
      const std::size_t nj = std::min(T, n - j0);
      sme.zero_za(0);
      for (std::size_t kk = 0; kk < k; ++kk) {
        // zn <- column segment of A (gathered; a real kernel keeps A packed
        // column-major so this is an ld1w).
        for (std::size_t r = 0; r < mi; ++r) {
          col_buf[r] = a[(i0 + r) * lda + kk];
        }
        sme.ld1w(0, col_buf, mi);
        // zm <- row segment of B.
        sme.ld1w(1, b + kk * ldb + j0, nj);
        sme.fmopa(0, 0, 1, mi, nj);
      }
      for (std::size_t r = 0; r < mi; ++r) {
        sme.st1w_row(0, r, c + (i0 + r) * ldc + j0, nj);
      }
    }
  }
  sme.smstop();
}

}  // namespace ao::amx
