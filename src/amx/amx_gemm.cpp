#include "amx/amx_gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "amx/amx_unit.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ao::amx {
namespace {

constexpr std::size_t kTile = AmxUnit::kLanesF32;  // 16

/// Computes one 16 x 16 C tile (rows [i0, i0+mi), cols [j0, j0+nj)) on `unit`.
void compute_tile(AmxUnit& unit, std::size_t i0, std::size_t j0, std::size_t mi,
                  std::size_t nj, std::size_t k, float alpha, const float* a,
                  std::size_t lda, const float* b, std::size_t ldb, float beta,
                  float* c, std::size_t ldc) {
  unit.zero_z();

  alignas(64) float x_buf[kTile];
  alignas(64) float y_buf[kTile];

  for (std::size_t kk = 0; kk < k; ++kk) {
    // X register <- B row segment  (b[kk][j0 .. j0+nj)), zero-padded.
    const float* b_row = b + kk * ldb + j0;
    std::memset(x_buf, 0, sizeof(x_buf));
    std::memcpy(x_buf, b_row, nj * sizeof(float));
    // Y register <- A column segment (a[i0 .. i0+mi)[kk]), gathered.
    std::memset(y_buf, 0, sizeof(y_buf));
    for (std::size_t ii = 0; ii < mi; ++ii) {
      y_buf[ii] = a[(i0 + ii) * lda + kk];
    }
    unit.ldx(0, x_buf);
    unit.ldy(0, y_buf);
    // z[j][i] += x[i] * y[j]  =>  z[row=ii][col=jj] += B[kk][j0+jj]*A[i0+ii][kk]
    unit.fma32(0, 0, /*z_offset=*/0, /*accumulate=*/true);
  }

  // Drain Z rows into C with alpha/beta.
  alignas(64) float z_buf[kTile];
  for (std::size_t ii = 0; ii < mi; ++ii) {
    unit.stz(ii * 4, z_buf);  // fp32 rows live at interleave 4
    float* c_row = c + (i0 + ii) * ldc + j0;
    for (std::size_t jj = 0; jj < nj; ++jj) {
      const float updated = alpha * z_buf[jj];
      c_row[jj] = beta == 0.0f ? updated : beta * c_row[jj] + updated;
    }
  }
}

}  // namespace

void amx_sgemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, std::size_t lda, const float* b, std::size_t ldb,
               float beta, float* c, std::size_t ldc, int threads) {
  AO_REQUIRE(a != nullptr && b != nullptr && c != nullptr,
             "amx_sgemm operands must not be null");
  AO_REQUIRE(lda >= k && ldb >= n && ldc >= n,
             "leading dimensions too small for row-major operands");
  if (m == 0 || n == 0) {
    return;
  }
  if (k == 0 || alpha == 0.0f) {
    // Degenerate: C = beta * C.
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        c[i * ldc + j] *= beta;
      }
    }
    return;
  }

  const std::size_t tile_rows = (m + kTile - 1) / kTile;
  const std::size_t tile_cols = (n + kTile - 1) / kTile;
  const std::size_t tiles = tile_rows * tile_cols;

  auto run_tile = [&](AmxUnit& unit, std::size_t t) {
    const std::size_t ti = t / tile_cols;
    const std::size_t tj = t % tile_cols;
    const std::size_t i0 = ti * kTile;
    const std::size_t j0 = tj * kTile;
    const std::size_t mi = std::min(kTile, m - i0);
    const std::size_t nj = std::min(kTile, n - j0);
    compute_tile(unit, i0, j0, mi, nj, k, alpha, a, lda, b, ldb, beta, c, ldc);
  };

  if (threads == 1 || tiles == 1) {
    AmxUnit unit;
    unit.set();
    for (std::size_t t = 0; t < tiles; ++t) {
      run_tile(unit, t);
    }
    unit.clr();
    return;
  }

  // One AMX unit per worker thread (each core drives its own coprocessor
  // port). thread_local keeps the unit alive across tasks on one worker.
  util::global_pool().parallel_for(tiles, [&](std::size_t t) {
    thread_local AmxUnit unit;
    if (!unit.enabled()) {
      unit.set();
    }
    run_tile(unit, t);
  });
}

}  // namespace ao::amx
