#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace ao::amx {

/// Functional model of the ARM Scalable Matrix Extension as the M4 ships it
/// (Section 2.1: "in the latest M4, standardized ARM SME is equipped, which
/// is later proved to be fairly similar to the AMX unit at its core" [17]).
///
/// Geometry for SVL = 512 bits (the M4's streaming vector length):
///  - Z vector registers: 32 x 64 bytes (16 FP32 lanes each);
///  - ZA storage: 64 x 64 bytes, viewed for FP32 as four 16 x 16 tiles
///    (ZA0.S - ZA3.S).
///
/// The instruction set modeled is the SGEMM working set from the "Hello
/// SME!" kernel generators: SMSTART/SMSTOP, ZERO {za.tile}, LD1W, FMOPA
/// (non-widening FP32 outer product accumulate), and ST1W of tile rows.
/// State rules follow the architecture: everything except smstart()/smstop()
/// traps unless streaming mode is active.
class SmeEngine {
 public:
  static constexpr std::size_t kSvlBits = 512;
  static constexpr std::size_t kLanesF32 = kSvlBits / 32;  // 16
  static constexpr std::size_t kZRegs = 32;
  static constexpr std::size_t kZaTilesF32 = 4;  // ZA0.S .. ZA3.S

  /// SMSTART: enters streaming mode with ZA enabled; zeroes all state.
  void smstart();
  /// SMSTOP: leaves streaming mode.
  void smstop();
  bool streaming() const { return streaming_; }

  /// ZERO {zaN.s}: clears one FP32 ZA tile.
  void zero_za(std::size_t tile);

  /// LD1W {zN.s}, [ptr]: loads 16 FP32 lanes into a Z register. `active`
  /// lanes below 16 emulate a whilelt predicate (remaining lanes zeroed).
  void ld1w(std::size_t reg, const float* src, std::size_t active = kLanesF32);

  /// FMOPA zaT.s, pn/m, pm/m, zn.s, zm.s — FP32 sum-of-outer-products:
  ///   za[r][c] += zn[r] * zm[c]   for r < rows_active, c < cols_active.
  void fmopa(std::size_t tile, std::size_t zn, std::size_t zm,
             std::size_t rows_active = kLanesF32,
             std::size_t cols_active = kLanesF32);

  /// ST1W of one ZA tile row (horizontal slice) to memory.
  void st1w_row(std::size_t tile, std::size_t row, float* dst,
                std::size_t active = kLanesF32) const;

  /// Typed views for tests.
  std::span<const float> z_reg(std::size_t reg) const;
  float za_at(std::size_t tile, std::size_t row, std::size_t col) const;

  /// FP32 multiply-accumulates retired since smstart().
  std::uint64_t mac_count() const { return mac_count_; }

 private:
  void require_streaming() const;

  bool streaming_ = false;
  alignas(64) std::array<float, kZRegs * kLanesF32> z_{};
  alignas(64) std::array<float, kZaTilesF32 * kLanesF32 * kLanesF32> za_{};
  std::uint64_t mac_count_ = 0;
};

/// FP32 GEMM through the SME engine: C = A * B (row-major, beta = 0),
/// tiled 16 x 16 with fmopa accumulation — the "Hello SME!" kernel shape.
/// Must produce results identical to amx_sgemm for the same inputs, which is
/// exactly the [17] claim the paper cites.
void sme_sgemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
               std::size_t lda, const float* b, std::size_t ldb, float* c,
               std::size_t ldc);

}  // namespace ao::amx
