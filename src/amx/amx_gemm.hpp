#pragma once

#include <cstddef>

namespace ao::amx {

/// Tiled FP32 GEMM executed through the AMX instruction emulator — the
/// engine underneath ao::accelerate's BLAS/vDSP (Section 2.1: "BLAS routines
/// within Accelerate ... utilizing the AMX units").
///
/// Computes C = alpha * A * B + beta * C over row-major matrices with leading
/// dimensions lda/ldb/ldc. Internally:
///   1. packs A panels column-major (so a 16-float A column segment loads
///      straight into an X register) and B panels row-major;
///   2. walks 16 x 16 C tiles, accumulating k in Z via fma32;
///   3. parallelizes across C tile rows, one AmxUnit per worker thread
///      (each P-core owns AMX access in flight).
///
/// `threads` <= 0 selects the host's hardware concurrency.
void amx_sgemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, std::size_t lda, const float* b, std::size_t ldb,
               float beta, float* c, std::size_t ldc, int threads = 0);

}  // namespace ao::amx
