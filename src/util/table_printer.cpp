#include "util/table_printer.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace ao::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  AO_REQUIRE(!headers_.empty(), "TablePrinter needs at least one column");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_.front() = Align::kLeft;
}

void TablePrinter::add_row(std::vector<std::string> row) {
  AO_REQUIRE(row.size() == headers_.size(),
             "row arity does not match header arity");
  rows_.push_back(std::move(row));
}

void TablePrinter::add_separator() { rows_.emplace_back(); }

void TablePrinter::set_align(std::size_t column, Align align) {
  AO_REQUIRE(column < aligns_.size(), "column index out of range");
  aligns_[column] = align;
}

std::string TablePrinter::to_string(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_cell = [&](const std::string& text, std::size_t c) {
    std::string out;
    const std::size_t pad = widths[c] - text.size();
    if (aligns_[c] == Align::kRight) {
      out.append(pad, ' ');
      out += text;
    } else {
      out += text;
      out.append(pad, ' ');
    }
    return out;
  };

  auto render_rule = [&]() {
    std::string out = "+";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out.append(widths[c] + 2, '-');
      out += '+';
    }
    out += '\n';
    return out;
  };

  std::ostringstream oss;
  if (!title.empty()) {
    oss << title << '\n';
  }
  oss << render_rule();
  oss << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    oss << ' ' << render_cell(headers_[c], c) << " |";
  }
  oss << '\n' << render_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      oss << render_rule();
      continue;
    }
    oss << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << ' ' << render_cell(row[c], c) << " |";
    }
    oss << '\n';
  }
  oss << render_rule();
  return oss.str();
}

void TablePrinter::print(std::ostream& os, const std::string& title) const {
  os << to_string(title);
}

}  // namespace ao::util
