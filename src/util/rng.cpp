#include "util/rng.hpp"

namespace ao::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  // Seed the full state from splitmix64 as the xoshiro authors recommend;
  // guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& s : state_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  // 53 high bits -> [0,1) double.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float Xoshiro256::next_float() {
  // 24 high bits -> [0,1) float.
  return static_cast<float>(next() >> 40) * 0x1.0p-24f;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  return bound == 0 ? 0 : next() % bound;
}

void fill_uniform(std::span<float> out, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (auto& v : out) {
    v = rng.next_float();
  }
}

void fill_value(std::span<float> out, float value) {
  for (auto& v : out) {
    v = value;
  }
}

void fill_uniform(std::span<double> out, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (auto& v : out) {
    v = rng.next_double();
  }
}

}  // namespace ao::util
