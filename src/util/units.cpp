#include "util/units.hpp"

#include <array>
#include <cstdio>

namespace ao::util {

std::string format_fixed(double value, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, value);
  return std::string(buf.data());
}

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= kGiB && bytes % kGiB == 0) {
    return std::to_string(bytes / kGiB) + " GiB";
  }
  if (bytes >= kMiB && bytes % kMiB == 0) {
    return std::to_string(bytes / kMiB) + " MiB";
  }
  if (bytes >= kKiB && bytes % kKiB == 0) {
    return std::to_string(bytes / kKiB) + " KiB";
  }
  return std::to_string(bytes) + " B";
}

std::string format_ghz(double hz) {
  return format_fixed(hz / 1e9, 2) + " GHz";
}

}  // namespace ao::util
