#pragma once

#include <cstddef>
#include <span>

#include "util/units.hpp"

namespace ao::util {

/// Page-aligned, page-granular host allocation.
///
/// The paper allocates every matrix via aligned_alloc with the Apple page
/// size (16384 bytes) and rounds lengths up to the next page multiple so the
/// GPU can wrap the allocation zero-copy ("such that the GPU could bypass
/// memory copying", Section 3.2). This class reproduces those semantics as a
/// RAII owner; ao::metal::Buffer validates the same alignment rules when
/// wrapping one of these no-copy.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  /// Allocates at least `length` bytes aligned to `alignment`; the usable
  /// capacity is rounded up to a whole number of alignment units and zeroed.
  explicit AlignedBuffer(std::size_t length, std::size_t alignment = kApplePageSize);

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  ~AlignedBuffer();

  /// Requested length in bytes (before rounding).
  std::size_t length() const { return length_; }
  /// Allocated capacity in bytes (rounded up to a page multiple).
  std::size_t capacity() const { return capacity_; }
  /// Alignment in bytes.
  std::size_t alignment() const { return alignment_; }

  void* data() { return data_; }
  const void* data() const { return data_; }
  bool empty() const { return data_ == nullptr; }

  /// Typed view over the *requested* length (not the rounded capacity).
  template <typename T>
  std::span<T> as_span() {
    return {static_cast<T*>(data_), length_ / sizeof(T)};
  }
  template <typename T>
  std::span<const T> as_span() const {
    return {static_cast<const T*>(data_), length_ / sizeof(T)};
  }

  /// Rounds `length` up to the next multiple of `alignment`.
  static std::size_t round_up(std::size_t length, std::size_t alignment);

  /// True if `ptr` is aligned to `alignment` bytes.
  static bool is_aligned(const void* ptr, std::size_t alignment);

 private:
  void* data_ = nullptr;
  std::size_t length_ = 0;
  std::size_t capacity_ = 0;
  std::size_t alignment_ = 0;
};

}  // namespace ao::util
