#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ao::util {

/// Fixed-size worker pool.
///
/// This is the execution engine behind the simulated GPU (ao::metal dispatches
/// threadgroups onto it), the parallel CPU kernels (MPS-style SGEMM), and the
/// orchestrator's campaign scheduler. It is deliberately simple — a single
/// locked queue — because the simulated workloads are coarse-grained (one task
/// per threadgroup / per tile row / per experiment job).
class ThreadPool {
 public:
  /// Creates `worker_count` workers (defaults to hardware concurrency).
  explicit ThreadPool(std::size_t worker_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not throw; exceptions escaping a task
  /// terminate the process (same contract as a detached GPU shader).
  /// Throws InvalidArgument after shutdown() has begun: a task accepted
  /// then could never be guaranteed to run.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Deterministic drain: stops accepting new work, runs every task already
  /// queued (including tasks those tasks submit) to completion, then joins
  /// the workers. Idempotent; called by the destructor, so destroying a pool
  /// can never drop queued jobs.
  void shutdown();

  /// Runs fn(i) for i in [0, count) across the pool and waits for completion.
  /// Work is divided into contiguous chunks, one per worker, which matches
  /// how the GPU dispatcher carves a grid into threadgroup ranges.
  ///
  /// Completion is tracked per call, not via global pool idleness, so
  /// concurrent parallel_for calls from different threads (e.g. two campaign
  /// jobs filling matrices at once) return as soon as *their own* chunks
  /// finish rather than waiting for the whole pool to go quiet.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::condition_variable joined_cv_;
  std::size_t in_flight_ = 0;
  bool accepting_ = true;
  bool shutting_down_ = false;
  bool joined_ = false;
};

/// Process-wide pool shared by the simulators, sized to the host's hardware
/// concurrency. Using one pool keeps the simulated "GPU" and "CPU cluster"
/// from oversubscribing the actual machine.
ThreadPool& global_pool();

}  // namespace ao::util
