#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ao::util {

/// Fixed-size worker pool.
///
/// This is the execution engine behind the simulated GPU (ao::metal dispatches
/// threadgroups onto it) and the parallel CPU kernels (MPS-style SGEMM). It is
/// deliberately simple — a single locked queue — because the simulated
/// workloads are coarse-grained (one task per threadgroup / per tile row).
class ThreadPool {
 public:
  /// Creates `worker_count` workers (defaults to hardware concurrency).
  explicit ThreadPool(std::size_t worker_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not throw; exceptions escaping a task
  /// terminate the process (same contract as a detached GPU shader).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, count) across the pool and waits for completion.
  /// Work is divided into contiguous chunks, one per worker, which matches
  /// how the GPU dispatcher carves a grid into threadgroup ranges.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Process-wide pool shared by the simulators, sized to the host's hardware
/// concurrency. Using one pool keeps the simulated "GPU" and "CPU cluster"
/// from oversubscribing the actual machine.
ThreadPool& global_pool();

}  // namespace ao::util
