#include "util/thread_pool.hpp"

#include <algorithm>

namespace ao::util {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  const std::size_t chunks = std::min(count, worker_count());
  const std::size_t per_chunk = (count + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(begin + per_chunk, count);
    if (begin >= end) {
      break;
    }
    submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ao::util
