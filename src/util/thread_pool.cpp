#include "util/thread_pool.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"

namespace ao::util {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    AO_REQUIRE(accepting_, "ThreadPool::submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::unique_lock lock(mutex_);
    // Drain first: tasks already queued — and any tasks they submit from
    // inside the pool — all run before the workers are released. Nested
    // submits keep in_flight_ above zero until the whole dependency chain
    // has executed, so the wait cannot finish with work still queued; only
    // then (under the same lock, so no task can sneak in between) does the
    // pool stop accepting.
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    if (shutting_down_) {
      // A peer won the race and owns the join. Shutdown must not return —
      // least of all into the destructor — until the workers are actually
      // joined, or the peer would be joining freed members.
      joined_cv_.wait(lock, [this] { return joined_; });
      return;
    }
    accepting_ = false;
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
  workers_.clear();
  {
    std::lock_guard lock(mutex_);
    joined_ = true;
  }
  joined_cv_.notify_all();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  // Per-call completion latch: concurrent callers each wait on their own
  // remaining-chunk count instead of the pool-wide in_flight_ counter.
  struct Latch {
    std::mutex m;
    std::condition_variable cv;
    std::size_t remaining;
  };
  const std::size_t chunks = std::min(count, std::max<std::size_t>(1, worker_count()));
  const std::size_t per_chunk = (count + chunks - 1) / chunks;
  auto latch = std::make_shared<Latch>();
  latch->remaining = 1;  // guard so early finishers can't hit zero prematurely
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(begin + per_chunk, count);
    if (begin >= end) {
      break;
    }
    {
      std::lock_guard lock(latch->m);
      ++latch->remaining;
    }
    submit([&fn, latch, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        fn(i);
      }
      {
        std::lock_guard lock(latch->m);
        --latch->remaining;
      }
      latch->cv.notify_one();
    });
  }
  std::unique_lock lock(latch->m);
  --latch->remaining;  // drop the guard
  latch->cv.wait(lock, [&] { return latch->remaining == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ao::util
