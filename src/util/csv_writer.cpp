#include "util/csv_writer.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/units.hpp"

namespace ao::util {

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  AO_REQUIRE(!header_.empty(), "CSV header must not be empty");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  AO_REQUIRE(row.size() == header_.size(), "CSV row arity mismatch");
  rows_.push_back(std::move(row));
}

void CsvWriter::add_row(const std::string& key, const std::vector<double>& values,
                        int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(key);
  for (double v : values) {
    row.push_back(format_fixed(v, precision));
  }
  add_row(std::move(row));
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) {
        oss << ',';
      }
      oss << escape(row[i]);
    }
    oss << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return oss.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream ofs(path);
  AO_REQUIRE(ofs.good(), "cannot open CSV output file: " + path);
  ofs << to_string();
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_field = [&]() {
    row.push_back(field);
    field.clear();
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(row);
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        break;
      case '\n':
        end_row();
        break;
      default:
        field += c;
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

}  // namespace ao::util
