#include "util/error.hpp"

#include <sstream>

namespace ao::util::detail {

void throw_invalid_argument(const char* expr, const char* file, int line,
                            const std::string& message) {
  std::ostringstream oss;
  oss << message << " [requirement `" << expr << "` failed at " << file << ':' << line
      << ']';
  throw InvalidArgument(oss.str());
}

}  // namespace ao::util::detail
