#include "util/hash.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/thread_pool.hpp"

namespace ao::util {

std::uint64_t fnv1a_bytes(const void* data, std::size_t length,
                          std::uint64_t h) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const std::size_t words = length / 8;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t value;
    std::memcpy(&value, bytes + w * 8, 8);
    h = fnv1a_mix(h, value);
  }
  for (std::size_t i = words * 8; i < length; ++i) {
    h = (h ^ bytes[i]) * kFnv1aPrime;
  }
  return h;
}

std::uint64_t parallel_fnv1a_bytes(const void* data, std::size_t length) {
  constexpr std::size_t kChunk = 1u << 22;  // 4 MiB
  const std::size_t chunks = (length + kChunk - 1) / kChunk;
  if (chunks <= 1) {
    return fnv1a_bytes(data, length);
  }
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::vector<std::uint64_t> digests(chunks);
  global_pool().parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * kChunk;
    const std::size_t end = std::min(begin + kChunk, length);
    digests[c] = fnv1a_bytes(bytes + begin, end - begin);
  });
  std::uint64_t h = kFnv1aOffset;
  for (const std::uint64_t digest : digests) {
    h = fnv1a_mix(h, digest);
  }
  return h;
}

}  // namespace ao::util
