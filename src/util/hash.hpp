#pragma once

#include <cstddef>
#include <cstdint>

namespace ao::util {

/// FNV-1a, the library's one hashing primitive. Used for content identity
/// (the orchestrator's ResultCache keys, test_suite's input fingerprints) —
/// never for untrusted input.
inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ull;

/// Folds the eight bytes of `value` into `h`.
constexpr std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    h = (h ^ (value & 0xffu)) * kFnv1aPrime;
    value >>= 8;
  }
  return h;
}

/// Digest of a byte range (word-at-a-time for 8-byte-aligned lengths).
std::uint64_t fnv1a_bytes(const void* data, std::size_t length,
                          std::uint64_t h = kFnv1aOffset);

/// Deterministic parallel digest of a large buffer: fixed-size chunks are
/// hashed on the global pool and the per-chunk digests folded in chunk
/// order, so the result is schedule-independent. Falls back to the serial
/// digest for small inputs.
std::uint64_t parallel_fnv1a_bytes(const void* data, std::size_t length);

}  // namespace ao::util
