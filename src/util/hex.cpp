#include "util/hex.hpp"

namespace ao::util {

std::string to_hex_u64(std::uint64_t value) {
  constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  do {
    out.insert(out.begin(), kDigits[value & 0xf]);
    value >>= 4;
  } while (value != 0);
  return out;
}

bool parse_hex_u64(const std::string& token, std::uint64_t& value) {
  if (token.empty() || token.size() > 16) {
    return false;
  }
  value = 0;
  for (const char c : token) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace ao::util
