#pragma once

#include <cstdint>
#include <span>

namespace ao::util {

/// Deterministic 64-bit PRNG (xoshiro256**), seedable so that the matrix
/// workloads the paper describes ("dense and initialized single-precision
/// R^{n x n} in [0,1]") are reproducible across runs and platforms.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x5eed5eed5eed5eedull);

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform float in [0, 1).
  float next_float();

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound);

 private:
  std::uint64_t state_[4];
};

/// Fills `out` with uniform FP32 values in [0, 1), matching the paper's
/// matrix initialization.
void fill_uniform(std::span<float> out, std::uint64_t seed);

/// Fills `out` with a fixed scalar (STREAM array initialization helper).
void fill_value(std::span<float> out, float value);

/// Fills `out` with uniform FP64 values in [0, 1) (CPU STREAM uses doubles,
/// as McCalpin's stream.c does).
void fill_uniform(std::span<double> out, std::uint64_t seed);

}  // namespace ao::util
