#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ao::util {

/// Minimal RFC-4180-style CSV emitter. Benchmark binaries dump their series
/// as CSV (next to the human-readable tables) so the figures can be re-plotted
/// externally, mirroring the paper's "results are written into a text file,
/// which is then parsed into a numeric format" workflow.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience overloads for mixed textual/numeric rows.
  void add_row(const std::string& key, const std::vector<double>& values,
               int precision = 6);

  std::string to_string() const;
  void write_file(const std::string& path) const;

  static std::string escape(const std::string& field);

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses a CSV document produced by CsvWriter (quoted fields supported).
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace ao::util
