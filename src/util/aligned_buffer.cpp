#include "util/aligned_buffer.hpp"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "util/error.hpp"

namespace ao::util {

AlignedBuffer::AlignedBuffer(std::size_t length, std::size_t alignment)
    : length_(length), alignment_(alignment) {
  AO_REQUIRE(length > 0, "AlignedBuffer length must be positive");
  AO_REQUIRE(alignment > 0 && (alignment & (alignment - 1)) == 0,
             "AlignedBuffer alignment must be a power of two");
  capacity_ = round_up(length, alignment);
  data_ = std::aligned_alloc(alignment, capacity_);
  if (data_ == nullptr) {
    throw std::bad_alloc();
  }
  std::memset(data_, 0, capacity_);
}

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      length_(std::exchange(other.length_, 0)),
      capacity_(std::exchange(other.capacity_, 0)),
      alignment_(std::exchange(other.alignment_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    length_ = std::exchange(other.length_, 0);
    capacity_ = std::exchange(other.capacity_, 0);
    alignment_ = std::exchange(other.alignment_, 0);
  }
  return *this;
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

std::size_t AlignedBuffer::round_up(std::size_t length, std::size_t alignment) {
  const std::size_t rem = length % alignment;
  return rem == 0 ? length : length + (alignment - rem);
}

bool AlignedBuffer::is_aligned(const void* ptr, std::size_t alignment) {
  return reinterpret_cast<std::uintptr_t>(ptr) % alignment == 0;
}

}  // namespace ao::util
