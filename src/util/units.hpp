#pragma once

#include <cstdint>
#include <string>

namespace ao::util {

/// Unit helpers shared by the benchmark harness and reporters. The paper
/// reports bandwidth in GB/s (decimal, 1e9), compute in GFLOPS/TFLOPS, power
/// in mW/W and energy in J; these helpers keep the conversions in one place.

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * 1024ull;
inline constexpr std::uint64_t kGiB = 1024ull * 1024ull * 1024ull;

/// Apple Silicon exposes 16384-byte pages; the paper allocates all matrices
/// page-aligned with this size so Metal can wrap them without copying.
inline constexpr std::size_t kApplePageSize = 16384;

/// seconds -> nanoseconds
constexpr double seconds_to_ns(double s) { return s * 1e9; }
/// nanoseconds -> seconds
constexpr double ns_to_seconds(double ns) { return ns * 1e-9; }

/// bytes and nanoseconds -> GB/s (decimal gigabytes, as STREAM reports)
constexpr double gb_per_s(double bytes, double ns) {
  return (bytes / kGiga) / (ns * 1e-9);
}

/// flop count and nanoseconds -> GFLOPS
constexpr double gflops(double flops, double ns) {
  return (flops / kGiga) / (ns * 1e-9);
}

/// GFLOPS and milliwatts -> GFLOPS per Watt
constexpr double gflops_per_watt(double gf, double milliwatts) {
  return milliwatts <= 0.0 ? 0.0 : gf / (milliwatts / 1e3);
}

/// Render a double with fixed precision (reporting helper).
std::string format_fixed(double value, int precision);

/// Render byte counts human-readably ("8 GiB", "128 KiB").
std::string format_bytes(std::uint64_t bytes);

/// Render a frequency in GHz with two decimals.
std::string format_ghz(double hz);

}  // namespace ao::util
