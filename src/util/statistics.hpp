#pragma once

#include <cstddef>
#include <vector>

namespace ao::util {

/// Streaming statistics accumulator (Welford's online algorithm), used by the
/// harness to aggregate the repeated runs the paper performs (five GEMM
/// repetitions, ten CPU STREAM / twenty GPU STREAM repetitions).
class RunningStats {
 public:
  void add(double value);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Order statistics over a retained sample set. The STREAM methodology keeps
/// the *maximum* bandwidth across repetitions; GEMM keeps all five samples.
class SampleSet {
 public:
  void add(double value);
  void reset();

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const std::vector<double>& values() const { return values_; }

  double min() const;
  double max() const;
  double mean() const;
  double median() const;
  double stddev() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;

  bool operator==(const SampleSet&) const = default;

 private:
  std::vector<double> values_;
};

}  // namespace ao::util
