#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ao::util {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const {
  AO_REQUIRE(count_ > 0, "mean of empty RunningStats");
  return mean_;
}

double RunningStats::variance() const {
  AO_REQUIRE(count_ > 0, "variance of empty RunningStats");
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  AO_REQUIRE(count_ > 0, "min of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  AO_REQUIRE(count_ > 0, "max of empty RunningStats");
  return max_;
}

void SampleSet::add(double value) { values_.push_back(value); }

void SampleSet::reset() { values_.clear(); }

double SampleSet::min() const {
  AO_REQUIRE(!values_.empty(), "min of empty SampleSet");
  return *std::min_element(values_.begin(), values_.end());
}

double SampleSet::max() const {
  AO_REQUIRE(!values_.empty(), "max of empty SampleSet");
  return *std::max_element(values_.begin(), values_.end());
}

double SampleSet::mean() const {
  AO_REQUIRE(!values_.empty(), "mean of empty SampleSet");
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

double SampleSet::median() const { return percentile(50.0); }

double SampleSet::stddev() const {
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) {
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

double SampleSet::percentile(double p) const {
  AO_REQUIRE(!values_.empty(), "percentile of empty SampleSet");
  AO_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace ao::util
