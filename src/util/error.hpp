#pragma once

#include <stdexcept>
#include <string>

namespace ao::util {

/// Root of the library's exception hierarchy. All error conditions raised by
/// appleoranges derive from this so callers can catch one type at the API
/// boundary.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an argument violates a documented precondition (bad matrix
/// dimension, misaligned pointer, unknown enum value, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when a resource limit is exceeded (unified memory capacity,
/// register-file index, queue depth, ...).
class ResourceExhausted : public Error {
 public:
  explicit ResourceExhausted(const std::string& what) : Error(what) {}
};

/// Raised when an object is used in a state that does not permit the
/// operation (committing a command buffer twice, sampling a stopped power
/// monitor, ...).
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file, int line,
                                         const std::string& message);
}  // namespace detail

/// Precondition check macro used across the library. Unlike assert() it is
/// active in all build types: benchmark harnesses must fail loudly, not
/// produce garbage rows.
#define AO_REQUIRE(expr, message)                                                \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::ao::util::detail::throw_invalid_argument(#expr, __FILE__, __LINE__,      \
                                                 (message));                     \
    }                                                                            \
  } while (false)

}  // namespace ao::util
