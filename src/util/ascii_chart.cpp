#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/units.hpp"

namespace ao::util {

BarChart::BarChart(std::string title, std::string unit)
    : title_(std::move(title)), unit_(std::move(unit)) {}

void BarChart::set_reference_line(double value, std::string label) {
  reference_value_ = value;
  reference_label_ = std::move(label);
  has_reference_ = true;
}

void BarChart::add_group(const std::string& group_label) {
  groups_.push_back({group_label, {}});
}

void BarChart::add_bar(const std::string& series_label, double value) {
  AO_REQUIRE(!groups_.empty(), "add_group before add_bar");
  groups_.back().bars.push_back({series_label, value});
}

std::string BarChart::render(std::size_t width) const {
  double max_value = has_reference_ ? reference_value_ : 0.0;
  std::size_t label_width = 0;
  for (const auto& g : groups_) {
    for (const auto& b : g.bars) {
      max_value = std::max(max_value, b.value);
      label_width = std::max(label_width, b.label.size());
    }
  }
  if (max_value <= 0.0) {
    max_value = 1.0;
  }

  std::ostringstream oss;
  oss << title_;
  if (has_reference_) {
    oss << "   [| marks " << reference_label_ << " = "
        << format_fixed(reference_value_, 1) << ' ' << unit_ << ']';
  }
  oss << '\n';

  const auto ref_col = static_cast<std::size_t>(
      has_reference_ ? std::lround(reference_value_ / max_value *
                                   static_cast<double>(width))
                     : width + 1);

  for (const auto& g : groups_) {
    oss << g.label << '\n';
    for (const auto& b : g.bars) {
      const auto bar_len = static_cast<std::size_t>(
          std::lround(b.value / max_value * static_cast<double>(width)));
      std::string line(width + 1, ' ');
      for (std::size_t i = 0; i < bar_len && i < line.size(); ++i) {
        line[i] = '#';
      }
      if (has_reference_ && ref_col < line.size()) {
        line[ref_col] = '|';
      }
      oss << "  " << b.label << std::string(label_width - b.label.size(), ' ')
          << " " << line << ' ' << format_fixed(b.value, 1) << ' ' << unit_
          << '\n';
    }
  }
  return oss.str();
}

LinePlot::LinePlot(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

void LinePlot::add_series(const std::string& name, char marker,
                          const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  AO_REQUIRE(xs.size() == ys.size(), "series xs/ys size mismatch");
  series_.push_back({name, marker, xs, ys});
}

std::string LinePlot::render(std::size_t width, std::size_t height) const {
  AO_REQUIRE(width >= 8 && height >= 4, "plot area too small");

  auto tx = [&](double x) { return log_x_ ? std::log10(std::max(x, 1e-300)) : x; };
  auto ty = [&](double y) { return log_y_ ? std::log10(std::max(y, 1e-300)) : y; };

  bool any = false;
  double min_x = 0.0;
  double max_x = 0.0;
  double min_y = 0.0;
  double max_y = 0.0;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double x = tx(s.xs[i]);
      const double y = ty(s.ys[i]);
      if (!any) {
        min_x = max_x = x;
        min_y = max_y = y;
        any = true;
      } else {
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
        min_y = std::min(min_y, y);
        max_y = std::max(max_y, y);
      }
    }
  }
  if (!any) {
    return title_ + "\n(no data)\n";
  }
  if (max_x == min_x) {
    max_x = min_x + 1.0;
  }
  if (max_y == min_y) {
    max_y = min_y + 1.0;
  }

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double fx = (tx(s.xs[i]) - min_x) / (max_x - min_x);
      const double fy = (ty(s.ys[i]) - min_y) / (max_y - min_y);
      const auto col = static_cast<std::size_t>(
          std::lround(fx * static_cast<double>(width - 1)));
      const auto row = static_cast<std::size_t>(
          std::lround((1.0 - fy) * static_cast<double>(height - 1)));
      grid[row][col] = s.marker;
    }
  }

  auto axis_value = [&](double t, bool log_axis) {
    return log_axis ? std::pow(10.0, t) : t;
  };

  std::ostringstream oss;
  oss << title_ << "   (y: " << y_label_ << (log_y_ ? ", log" : "")
      << "; x: " << x_label_ << (log_x_ ? ", log" : "") << ")\n";
  const std::string y_top = format_fixed(axis_value(max_y, log_y_), 1);
  const std::string y_bot = format_fixed(axis_value(min_y, log_y_), 1);
  const std::size_t margin = std::max(y_top.size(), y_bot.size());

  for (std::size_t r = 0; r < height; ++r) {
    std::string label;
    if (r == 0) {
      label = y_top;
    } else if (r == height - 1) {
      label = y_bot;
    }
    oss << std::string(margin - label.size(), ' ') << label << " |" << grid[r]
        << '\n';
  }
  oss << std::string(margin, ' ') << " +" << std::string(width, '-') << '\n';
  const std::string x_lo = format_fixed(axis_value(min_x, log_x_), 0);
  const std::string x_hi = format_fixed(axis_value(max_x, log_x_), 0);
  oss << std::string(margin + 2, ' ') << x_lo
      << std::string(width > x_lo.size() + x_hi.size()
                         ? width - x_lo.size() - x_hi.size()
                         : 1,
                     ' ')
      << x_hi << '\n';
  oss << "legend:";
  for (const auto& s : series_) {
    oss << "  " << s.marker << '=' << s.name;
  }
  oss << '\n';
  return oss.str();
}

}  // namespace ao::util
