#pragma once

#include <cstdint>
#include <string>

namespace ao::util {

/// Lowercase hex of a 64-bit value, no leading zeros ("0" for zero) — the
/// token encoding of the orchestrator's on-disk result-cache store.
std::string to_hex_u64(std::uint64_t value);

/// Parses a token written by to_hex_u64(): 1-16 lowercase hex digits.
/// Returns false (leaving `value` unspecified) on anything else.
bool parse_hex_u64(const std::string& token, std::uint64_t& value);

}  // namespace ao::util
