#pragma once

#include <string>
#include <vector>

namespace ao::util {

/// Terminal renderers for the paper's figures.
///
/// Figure 1 and Figure 3 are grouped bar charts (per chip / per size); Figure
/// 2 and Figure 4 are log-scale line plots over matrix size. The bench
/// binaries print both the exact numeric series (table + CSV) and one of
/// these charts so the *shape* the paper reports is visible in the terminal.

/// Grouped bar chart: groups on the y-axis, one bar per (group, series).
class BarChart {
 public:
  BarChart(std::string title, std::string unit);

  void set_reference_line(double value, std::string label);
  void add_group(const std::string& group_label);
  void add_bar(const std::string& series_label, double value);

  /// Width of the bar area in characters.
  std::string render(std::size_t width = 60) const;

 private:
  struct Bar {
    std::string label;
    double value;
  };
  struct Group {
    std::string label;
    std::vector<Bar> bars;
  };

  std::string title_;
  std::string unit_;
  double reference_value_ = 0.0;
  std::string reference_label_;
  bool has_reference_ = false;
  std::vector<Group> groups_;
};

/// Multi-series scatter/line plot on a character grid with optional log axes.
class LinePlot {
 public:
  LinePlot(std::string title, std::string x_label, std::string y_label);

  void set_log_x(bool log_x) { log_x_ = log_x; }
  void set_log_y(bool log_y) { log_y_ = log_y; }

  /// Adds a named series; `marker` is the character plotted at each point.
  void add_series(const std::string& name, char marker,
                  const std::vector<double>& xs, const std::vector<double>& ys);

  std::string render(std::size_t width = 72, std::size_t height = 20) const;

 private:
  struct Series {
    std::string name;
    char marker;
    std::vector<double> xs;
    std::vector<double> ys;
  };

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  bool log_x_ = false;
  bool log_y_ = false;
  std::vector<Series> series_;
};

}  // namespace ao::util
