#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ao::util {

/// Fixed-width text table renderer for the benchmark binaries. Reproduces the
/// row/column structure of the paper's tables (Table 1-3) and the series data
/// behind its figures in plain terminal output.
class TablePrinter {
 public:
  enum class Align { kLeft, kRight };

  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator at the current position.
  void add_separator();

  /// Sets the alignment of one column (default: left for first column, right
  /// for the rest, which suits "name | number | number" benchmark tables).
  void set_align(std::size_t column, Align align);

  /// Renders the table; `title` (if non-empty) is printed above it.
  std::string to_string(const std::string& title = {}) const;

  void print(std::ostream& os, const std::string& title = {}) const;

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
  std::vector<Align> aligns_;
};

}  // namespace ao::util
