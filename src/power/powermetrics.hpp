#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "power/power_model.hpp"

namespace ao::power {

/// Samplers the tool can enable, as `powermetrics -s cpu_power,gpu_power`.
struct SamplerSet {
  bool cpu_power = true;
  bool gpu_power = true;
  bool ane_power = false;

  static SamplerSet parse(const std::string& list);  ///< "cpu_power,gpu_power"
  std::string to_string() const;
};

/// Simulation of Apple's `powermetrics` utility in the exact mode the paper
/// drives it (Section 3.3):
///
///   powermetrics -i 0 -a 0 -s cpu_power,gpu_power -o FILENAME
///
/// i.e. no periodic sampling; the monitor idles until it receives SIGINFO,
/// at which point it emits one sample covering the time SINCE THE PREVIOUS
/// SIGNAL (or since startup) and resets. The paper sends one SIGINFO after a
/// two-second warm-up (resetting the sampler), runs the multiplication,
/// sends a second SIGINFO (capturing the run), then shuts the monitor down.
///
/// Simulated time comes from the SoC's clock; output is the tool's text
/// format, which PowerMetricsParser reads back — reproducing the paper's
/// "results are written into a text file, which is then parsed" pipeline.
class PowerMetrics {
 public:
  PowerMetrics(soc::Soc& soc, SamplerSet samplers = {});

  /// Starts the monitor (begins the first accumulation window).
  void start();

  /// SIGINFO: emits a sample for the window since the last marker and
  /// starts a new window. Returns the sample.
  PowerSample siginfo();

  /// Stops the monitor. Further siginfo() calls throw.
  void stop();

  bool running() const { return running_; }

  /// Everything the tool has written so far (the -o FILENAME content).
  const std::string& output_text() const { return output_; }

  /// All samples emitted so far.
  const std::vector<PowerSample>& samples() const { return samples_; }

 private:
  soc::Soc* soc_;
  SamplerSet samplers_;
  PowerModel model_;
  bool running_ = false;
  std::uint64_t window_start_ns_ = 0;
  int sample_index_ = 0;
  std::string output_;
  std::vector<PowerSample> samples_;
};

/// Parses powermetrics text output back into samples (the benchmark
/// framework's ingestion path).
std::vector<PowerSample> parse_powermetrics_output(const std::string& text);

}  // namespace ao::power
