#pragma once

#include <cstdint>

#include "soc/soc.hpp"

namespace ao::power {

/// One power reading over a sampling window, split the way powermetrics
/// reports it (cpu_power / gpu_power / ane_power / combined, in mW).
struct PowerSample {
  double window_seconds = 0.0;
  double cpu_mw = 0.0;       ///< P+E clusters and AMX (fed from the CPU)
  double gpu_mw = 0.0;
  double ane_mw = 0.0;
  double dram_mw = 0.0;
  double combined_mw = 0.0;  ///< CPU + GPU + ANE, as powermetrics sums it

  double combined_watts() const { return combined_mw / 1e3; }

  bool operator==(const PowerSample&) const = default;
};

/// Integrates the SoC's activity log into powermetrics-style readings.
///
/// Average power over a window = idle floor + activity energy / window. The
/// AMX coprocessor is part of the CPU complex, so its draw lands in cpu_mw —
/// which is why the paper's "CPU-Accelerate" rows carry CPU power.
class PowerModel {
 public:
  explicit PowerModel(const soc::Soc& soc);

  /// Average reading across [from_ns, to_ns) on the simulated timeline.
  PowerSample average_over(std::uint64_t from_ns, std::uint64_t to_ns) const;

  /// Total energy (J) drawn in the window, idle floor included.
  double energy_joules(std::uint64_t from_ns, std::uint64_t to_ns) const;

  /// The idle floor alone, in mW (what powermetrics shows at rest).
  PowerSample idle_floor(double window_seconds) const;

 private:
  const soc::Soc* soc_;
};

}  // namespace ao::power
