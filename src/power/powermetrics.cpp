#include "power/powermetrics.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/units.hpp"

namespace ao::power {

SamplerSet SamplerSet::parse(const std::string& list) {
  SamplerSet s;
  s.cpu_power = list.find("cpu_power") != std::string::npos;
  s.gpu_power = list.find("gpu_power") != std::string::npos;
  s.ane_power = list.find("ane_power") != std::string::npos;
  AO_REQUIRE(s.cpu_power || s.gpu_power || s.ane_power,
             "no known samplers in list: " + list);
  return s;
}

std::string SamplerSet::to_string() const {
  std::string out;
  auto append = [&out](const char* name) {
    if (!out.empty()) {
      out += ',';
    }
    out += name;
  };
  if (cpu_power) append("cpu_power");
  if (gpu_power) append("gpu_power");
  if (ane_power) append("ane_power");
  return out;
}

PowerMetrics::PowerMetrics(soc::Soc& soc, SamplerSet samplers)
    : soc_(&soc), samplers_(samplers), model_(soc) {}

void PowerMetrics::start() {
  AO_REQUIRE(!running_, "powermetrics is already running");
  running_ = true;
  window_start_ns_ = soc_->clock().now();
  sample_index_ = 0;
  std::ostringstream oss;
  oss << "Machine model: " << soc_->device().device << " ("
      << soc_->spec().name << ")\n"
      << "OS version: macOS " << soc_->device().macos_version << "\n"
      << "Samplers: " << samplers_.to_string() << "\n"
      << "Sampling: signal-driven (-i 0 -a 0); send SIGINFO to sample\n\n";
  output_ += oss.str();
}

PowerSample PowerMetrics::siginfo() {
  if (!running_) {
    throw util::StateError("SIGINFO sent to a stopped powermetrics monitor");
  }
  const std::uint64_t now = soc_->clock().now();
  AO_REQUIRE(now > window_start_ns_,
             "powermetrics window is empty (no simulated time elapsed)");
  const PowerSample sample = model_.average_over(window_start_ns_, now);
  window_start_ns_ = now;
  ++sample_index_;

  std::ostringstream oss;
  oss << "*** Sampled system activity (sample " << sample_index_ << ", "
      << util::format_fixed(sample.window_seconds * 1e3, 2) << "ms elapsed) ***\n"
      << "**** Processor usage ****\n";
  if (samplers_.cpu_power) {
    oss << "CPU Power: " << std::llround(sample.cpu_mw) << " mW\n";
  }
  if (samplers_.gpu_power) {
    oss << "GPU Power: " << std::llround(sample.gpu_mw) << " mW\n";
  }
  if (samplers_.ane_power) {
    oss << "ANE Power: " << std::llround(sample.ane_mw) << " mW\n";
  }
  oss << "Combined Power (CPU + GPU + ANE): " << std::llround(sample.combined_mw)
      << " mW\n\n";
  output_ += oss.str();
  samples_.push_back(sample);
  return sample;
}

void PowerMetrics::stop() {
  AO_REQUIRE(running_, "powermetrics is not running");
  running_ = false;
  output_ += "Monitor stopped.\n";
}

std::vector<PowerSample> parse_powermetrics_output(const std::string& text) {
  std::vector<PowerSample> samples;
  std::istringstream iss(text);
  std::string line;
  PowerSample current;
  bool in_sample = false;

  auto parse_mw = [](const std::string& l, const std::string& prefix,
                     double& out) {
    if (l.rfind(prefix, 0) != 0) {
      return false;
    }
    out = std::stod(l.substr(prefix.size()));
    return true;
  };

  while (std::getline(iss, line)) {
    if (line.rfind("*** Sampled system activity", 0) == 0) {
      in_sample = true;
      current = PowerSample{};
      const auto comma = line.find(", ");
      const auto ms_pos = line.find("ms elapsed");
      if (comma != std::string::npos && ms_pos != std::string::npos) {
        current.window_seconds =
            std::stod(line.substr(comma + 2, ms_pos - comma - 2)) / 1e3;
      }
      continue;
    }
    if (!in_sample) {
      continue;
    }
    parse_mw(line, "CPU Power: ", current.cpu_mw);
    parse_mw(line, "GPU Power: ", current.gpu_mw);
    parse_mw(line, "ANE Power: ", current.ane_mw);
    if (parse_mw(line, "Combined Power (CPU + GPU + ANE): ",
                 current.combined_mw)) {
      samples.push_back(current);
      in_sample = false;
    }
  }
  return samples;
}

}  // namespace ao::power
