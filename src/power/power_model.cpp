#include "power/power_model.hpp"

#include "util/error.hpp"

namespace ao::power {

PowerModel::PowerModel(const soc::Soc& soc) : soc_(&soc) {}

PowerSample PowerModel::idle_floor(double window_seconds) const {
  const auto& idle = soc_->calib().idle;
  PowerSample s;
  s.window_seconds = window_seconds;
  s.cpu_mw = idle.cpu_watts * 1e3;
  s.gpu_mw = idle.gpu_watts * 1e3;
  s.ane_mw = 0.0;
  s.dram_mw = idle.dram_watts * 1e3;
  s.combined_mw = s.cpu_mw + s.gpu_mw + s.ane_mw;
  return s;
}

PowerSample PowerModel::average_over(std::uint64_t from_ns,
                                     std::uint64_t to_ns) const {
  AO_REQUIRE(to_ns > from_ns, "power sampling window is empty");
  const double window_s = static_cast<double>(to_ns - from_ns) * 1e-9;
  const auto& log = soc_->activity();

  auto avg_mw = [&](soc::ComputeUnit unit) {
    return log.energy_in_window(unit, from_ns, to_ns) / window_s * 1e3;
  };

  PowerSample s = idle_floor(window_s);
  // AMX power is attributed to the CPU complex, as powermetrics reports it.
  s.cpu_mw += avg_mw(soc::ComputeUnit::kCpuPCluster) +
              avg_mw(soc::ComputeUnit::kCpuECluster) +
              avg_mw(soc::ComputeUnit::kAmx);
  s.gpu_mw += avg_mw(soc::ComputeUnit::kGpu);
  s.ane_mw += avg_mw(soc::ComputeUnit::kNeuralEngine);
  s.dram_mw += avg_mw(soc::ComputeUnit::kDram);
  s.combined_mw = s.cpu_mw + s.gpu_mw + s.ane_mw;
  return s;
}

double PowerModel::energy_joules(std::uint64_t from_ns, std::uint64_t to_ns) const {
  AO_REQUIRE(to_ns >= from_ns, "inverted energy window");
  const double window_s = static_cast<double>(to_ns - from_ns) * 1e-9;
  const auto& idle = soc_->calib().idle;
  const double idle_joules =
      (idle.cpu_watts + idle.gpu_watts + idle.dram_watts) * window_s;
  return idle_joules + soc_->activity().total_energy_in_window(from_ns, to_ns);
}

}  // namespace ao::power
