#include "obs/metrics.hpp"

#include <array>

namespace ao::obs {
namespace {

// The metric glossary — index = static_cast<size_t>(Metric). These names
// are protocol surface (the `metrics` command / ao_campaignctl metrics);
// docs/observability.md lists every one and CI enforces the listing
// (check_markdown_links.py --glossary reads this initializer).
constexpr std::array<const char*, kMetricCount> kMetricNames = {
    "ao_campaigns_total",
    "ao_campaigns_sharded_total",
    "ao_campaigns_aborted_total",
    "ao_campaigns_deadline_expired_total",
    "ao_queue_rejected_total",
    "ao_jobs_executed_total",
    "ao_cache_hits_total",
    "ao_records_streamed_total",
    "ao_merged_entries_total",
    "ao_remote_shards_total",
    "ao_shard_retries_total",
    "ao_outbox_blocked_total",
    "ao_outbox_dropped_total",
    "ao_plan_cache_hits_total",
    "ao_plan_cache_misses_total",
    "ao_queries_total",
    "ao_query_records_total",
    "ao_follows_total",
    "ao_stale_cursors_total",
    "ao_queue_depth",
    "ao_campaigns_running",
    "ao_outbox_peak_depth",
    "ao_workers_connected",
    "ao_workers_idle",
    "ao_worker_rtt_ns",
    "ao_worker_clock_offset_ns",
    "ao_phase_duration_ns",
};

constexpr std::array<const char*, kMetricCount> kMetricHelp = {
    "Campaigns completed since daemon start.",
    "Completed campaigns that ran sharded.",
    "Campaigns cancelled by the abort command.",
    "Campaigns cancelled by an expired deadline.",
    "Campaign submissions rejected at admission.",
    "Jobs executed by schedulers (local and worker-side).",
    "Jobs served from the warm result cache.",
    "Measurement records streamed to clients.",
    "Store entries merged from shard results.",
    "Shards executed on remote workers.",
    "Shards re-dispatched after a worker endpoint died.",
    "Times a session outbox filled and blocked its producer.",
    "Outbox lines discarded by campaign cancellation.",
    "Campaign checkouts served from the compiled plan cache.",
    "Campaign checkouts that had to compile their expansion.",
    "Store queries served through the secondary index.",
    "Entry lines streamed by query and follow replies.",
    "Campaign record streams resumed via the follow command.",
    "Reads rejected because their cursor outlived a store rewrite.",
    "Campaigns waiting in the admission queue.",
    "Campaigns currently running.",
    "Largest session outbox depth seen.",
    "Remote worker endpoints currently connected.",
    "Connected remote workers currently idle.",
    "Last heartbeat round-trip time per worker endpoint.",
    "Estimated worker-minus-daemon clock offset per endpoint.",
    "Distribution of span durations per lifecycle phase.",
};

/// The label *key* each labelled family uses; "" = unlabelled.
constexpr std::array<const char*, kMetricCount> kMetricLabelKeys = {
    "", "", "", "", "", "", "", "", "", "", "", "", "", "", "", "", "", "",
    "", "", "", "", "", "", "worker", "worker", "phase",
};

MetricKind kind_of(std::size_t index) {
  if (index >= static_cast<std::size_t>(Metric::kPhaseDurationNs)) {
    return MetricKind::kHistogram;
  }
  if (index >= static_cast<std::size_t>(Metric::kQueueDepth)) {
    return MetricKind::kGauge;
  }
  return MetricKind::kCounter;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
void append_label_value(std::string& out, const std::string& value) {
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

void append_sample_name(std::string& out, const char* family,
                        const char* suffix, const char* label_key,
                        const std::string& label_value,
                        const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  out += family;
  out += suffix;
  const bool labelled = label_key[0] != '\0' && !label_value.empty();
  if (!labelled && extra_key == nullptr) {
    return;
  }
  out += '{';
  if (labelled) {
    out += label_key;
    out += "=\"";
    append_label_value(out, label_value);
    out += '"';
    if (extra_key != nullptr) {
      out += ',';
    }
  }
  if (extra_key != nullptr) {
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
}

}  // namespace

const char* metric_name(Metric metric) {
  return kMetricNames[static_cast<std::size_t>(metric)];
}

MetricKind metric_kind(Metric metric) {
  return kind_of(static_cast<std::size_t>(metric));
}

const std::vector<std::uint64_t>& MetricsRegistry::histogram_buckets() {
  static const std::vector<std::uint64_t> kBuckets = {
      1'000,          // 1µs
      10'000,         // 10µs
      100'000,        // 100µs
      1'000'000,      // 1ms
      10'000'000,     // 10ms
      100'000'000,    // 100ms
      1'000'000'000,  // 1s
      10'000'000'000  // 10s
  };
  return kBuckets;
}

void MetricsRegistry::set(Metric metric, std::int64_t value,
                          const std::string& label) {
  std::lock_guard lock(mutex_);
  values_[static_cast<std::size_t>(metric)][label] = value;
}

void MetricsRegistry::clear(Metric metric) {
  std::lock_guard lock(mutex_);
  values_[static_cast<std::size_t>(metric)].clear();
  histograms_[static_cast<std::size_t>(metric)].clear();
}

void MetricsRegistry::replace(Metric metric,
                              std::map<std::string, std::int64_t> samples) {
  std::lock_guard lock(mutex_);
  values_[static_cast<std::size_t>(metric)] = std::move(samples);
}

void MetricsRegistry::observe(Metric metric, std::uint64_t value,
                              const std::string& label) {
  const auto& bounds = histogram_buckets();
  std::lock_guard lock(mutex_);
  Histogram& h = histograms_[static_cast<std::size_t>(metric)][label];
  if (h.buckets.empty()) {
    h.buckets.assign(bounds.size(), 0);
  }
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (value <= bounds[i]) {
      ++h.buckets[i];
    }
  }
  ++h.count;
  h.sum += value;
}

std::string MetricsRegistry::render() const {
  const auto& bounds = histogram_buckets();
  std::string out;
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const char* name = kMetricNames[i];
    const char* label_key = kMetricLabelKeys[i];
    const MetricKind kind = kind_of(i);
    out += "# HELP ";
    out += name;
    out += ' ';
    out += kMetricHelp[i];
    out += "\n# TYPE ";
    out += name;
    out += kind == MetricKind::kCounter
               ? " counter\n"
               : (kind == MetricKind::kGauge ? " gauge\n" : " histogram\n");
    if (kind == MetricKind::kHistogram) {
      for (const auto& [label, h] : histograms_[i]) {
        for (std::size_t b = 0; b < bounds.size(); ++b) {
          append_sample_name(out, name, "_bucket", label_key, label, "le",
                             std::to_string(bounds[b]));
          out += ' ' + std::to_string(h.buckets[b]) + '\n';
        }
        append_sample_name(out, name, "_bucket", label_key, label, "le",
                           "+Inf");
        out += ' ' + std::to_string(h.count) + '\n';
        append_sample_name(out, name, "_sum", label_key, label);
        out += ' ' + std::to_string(h.sum) + '\n';
        append_sample_name(out, name, "_count", label_key, label);
        out += ' ' + std::to_string(h.count) + '\n';
      }
      continue;
    }
    for (const auto& [label, value] : values_[i]) {
      append_sample_name(out, name, "", label_key, label);
      out += ' ' + std::to_string(value) + '\n';
    }
  }
  out += "# EOF\n";
  return out;
}

}  // namespace ao::obs
