#include "obs/profiler.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace ao::obs {
namespace {

// The phase glossary — index = static_cast<size_t>(Phase). These names are
// protocol surface; docs/observability.md lists every one and CI enforces
// the listing (check_markdown_links.py --glossary reads this initializer).
constexpr std::array<const char*, kPhaseCount> kPhaseNames = {
    "campaign",  "queue-wait", "admission", "schedule",  "shard",
    "execute",   "serialize",  "frame",     "transport", "merge",
    "retry",     "abort",      "plan",      "flush",     "query",
};

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One thread's stack of open scopes, across every live profiler: scopes
/// are strictly nested per thread, so one stack with (profiler uid, span
/// id) entries serves them all. Parent resolution walks down to the topmost
/// entry of the asking profiler.
struct OpenScopeEntry {
  std::uint64_t profiler_uid;
  std::uint64_t span_id;
};
thread_local std::vector<OpenScopeEntry> t_open_scopes;

/// This thread's registered buffer per profiler uid. Uids are never reused,
/// so an entry for a destroyed profiler can only go stale, never alias a
/// new one.
thread_local std::unordered_map<std::uint64_t, void*> t_buffers;

std::atomic<std::uint64_t> g_next_profiler_uid{1};

void json_escape_into(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

const char* phase_name(Phase phase) {
  return kPhaseNames[static_cast<std::size_t>(phase)];
}

std::optional<Phase> phase_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kPhaseNames.size(); ++i) {
    if (name == kPhaseNames[i]) {
      return static_cast<Phase>(i);
    }
  }
  return std::nullopt;
}

// ------------------------------------------------------- TimelineProfiler --

TimelineProfiler::TimelineProfiler(ClockFn clock)
    : clock_(std::move(clock)), uid_(g_next_profiler_uid.fetch_add(1)) {}

TimelineProfiler::~TimelineProfiler() = default;

std::uint64_t TimelineProfiler::now() const {
  return clock_ ? clock_() : steady_now_ns();
}

TimelineProfiler::ThreadBuffer& TimelineProfiler::local_buffer() {
  void*& cached = t_buffers[uid_];
  if (cached == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    cached = buffer.get();
    std::lock_guard lock(buffers_mutex_);
    buffers_.push_back(std::move(buffer));
  }
  return *static_cast<ThreadBuffer*>(cached);
}

void TimelineProfiler::append(Span span) {
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard lock(buffer.mutex);
  if (buffer.spans.size() >= kMaxSpansPerThread) {
    buffer.spans.erase(buffer.spans.begin());
    ++buffer.dropped;
  }
  buffer.spans.push_back(std::move(span));
}

std::uint64_t TimelineProfiler::resolve_parent(std::uint64_t requested) const {
  if (requested != kInheritParent) {
    return requested;
  }
  for (auto it = t_open_scopes.rbegin(); it != t_open_scopes.rend(); ++it) {
    if (it->profiler_uid == uid_) {
      return it->span_id;
    }
  }
  return 0;
}

std::uint64_t TimelineProfiler::record(Phase phase, std::uint64_t start_ns,
                                       std::uint64_t end_ns,
                                       std::uint64_t parent,
                                       std::string label) {
  Span span;
  span.id = next_id_.fetch_add(1);
  span.parent = resolve_parent(parent);
  span.phase = phase;
  span.start_ns = start_ns;
  span.duration_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  span.label = std::move(label);
  const std::uint64_t id = span.id;
  append(std::move(span));
  return id;
}

std::uint64_t TimelineProfiler::adopt(Span span) {
  span.id = next_id_.fetch_add(1);
  const std::uint64_t id = span.id;
  append(std::move(span));
  return id;
}

std::vector<Span> TimelineProfiler::snapshot() const {
  std::vector<Span> out;
  std::lock_guard lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard buffer_lock(buffer->mutex);
    out.insert(out.end(), buffer->spans.begin(), buffer->spans.end());
  }
  std::sort(out.begin(), out.end(),
            [](const Span& a, const Span& b) { return a.id < b.id; });
  return out;
}

std::vector<Span> TimelineProfiler::drain() {
  std::vector<Span> out;
  std::lock_guard lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard buffer_lock(buffer->mutex);
    out.insert(out.end(), std::make_move_iterator(buffer->spans.begin()),
               std::make_move_iterator(buffer->spans.end()));
    buffer->spans.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const Span& a, const Span& b) { return a.id < b.id; });
  return out;
}

std::size_t TimelineProfiler::span_count() const {
  std::size_t count = 0;
  std::lock_guard lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard buffer_lock(buffer->mutex);
    count += buffer->spans.size();
  }
  return count;
}

std::size_t TimelineProfiler::dropped() const {
  std::size_t count = 0;
  std::lock_guard lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard buffer_lock(buffer->mutex);
    count += buffer->dropped;
  }
  return count;
}

// ------------------------------------------------------------------ Scope --

TimelineProfiler::Scope::Scope(TimelineProfiler* profiler, Phase phase,
                               std::uint64_t parent, std::string label)
    : profiler_(profiler), phase_(phase), label_(std::move(label)) {
  if (profiler_ == nullptr) {
    return;
  }
  parent_ = profiler_->resolve_parent(parent);
  id_ = profiler_->next_id_.fetch_add(1);
  start_ns_ = profiler_->now();
  t_open_scopes.push_back({profiler_->uid_, id_});
}

TimelineProfiler::Scope::Scope(Scope&& other) noexcept
    : profiler_(other.profiler_),
      phase_(other.phase_),
      id_(other.id_),
      parent_(other.parent_),
      start_ns_(other.start_ns_),
      label_(std::move(other.label_)) {
  other.profiler_ = nullptr;  // the moved-from scope records nothing
}

void TimelineProfiler::Scope::close() {
  if (profiler_ == nullptr) {
    return;
  }
  TimelineProfiler* profiler = profiler_;
  profiler_ = nullptr;
  // Scopes are strictly nested per thread, so this scope's entry is the
  // topmost entry of its profiler — erase exactly it (a moved scope may
  // close on another position in pathological cases; search defensively).
  for (auto it = t_open_scopes.rbegin(); it != t_open_scopes.rend(); ++it) {
    if (it->profiler_uid == profiler->uid_ && it->span_id == id_) {
      t_open_scopes.erase(std::next(it).base());
      break;
    }
  }
  Span span;
  span.id = id_;
  span.parent = parent_;
  span.phase = phase_;
  span.start_ns = start_ns_;
  const std::uint64_t end_ns = profiler->now();
  span.duration_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  span.label = std::move(label_);
  profiler->append(std::move(span));
}

TimelineProfiler::Scope::~Scope() { close(); }

// ------------------------------------------------------------- aggregates --

std::map<Phase, PhaseStats> phase_stats(const std::vector<Span>& spans) {
  std::map<Phase, std::vector<std::uint64_t>> durations;
  for (const Span& span : spans) {
    durations[span.phase].push_back(span.duration_ns);
  }
  std::map<Phase, PhaseStats> out;
  for (auto& [phase, values] : durations) {
    std::sort(values.begin(), values.end());
    PhaseStats stats;
    stats.count = values.size();
    for (const std::uint64_t v : values) {
      stats.total_ns += v;
    }
    // Nearest-rank percentiles: ceil(p * n) treated as a 1-based rank.
    const auto rank = [&](double p) {
      const std::size_t r = static_cast<std::size_t>(
          p * static_cast<double>(values.size()) + 0.999999);
      return values[std::min(values.size(), std::max<std::size_t>(1, r)) - 1];
    };
    stats.p50_ns = rank(0.50);
    stats.p95_ns = rank(0.95);
    stats.max_ns = values.back();
    out.emplace(phase, stats);
  }
  return out;
}

std::vector<Span> span_subtree(const std::vector<Span>& spans,
                               std::uint64_t root) {
  // Parents always carry smaller ids than their children, so one ascending
  // pass over id-sorted spans reaches the whole subtree.
  std::vector<const Span*> ordered;
  ordered.reserve(spans.size());
  for (const Span& span : spans) {
    ordered.push_back(&span);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Span* a, const Span* b) { return a->id < b->id; });
  std::unordered_set<std::uint64_t> members{root};
  std::vector<Span> out;
  for (const Span* span : ordered) {
    if (span->id == root || members.count(span->parent) != 0) {
      members.insert(span->id);
      out.push_back(*span);
    }
  }
  return out;
}

std::string timeline_json(std::uint64_t campaign_id, const std::string& name,
                          const std::string& client,
                          const std::vector<Span>& spans) {
  std::string out = "{\n  \"schema\": \"ao-profile/1\",\n  \"campaign\": {";
  out += "\"id\": " + std::to_string(campaign_id) + ", \"name\": \"";
  json_escape_into(out, name);
  out += "\", \"client\": \"";
  json_escape_into(out, client);
  out += "\"},\n  \"phases\": {";
  bool first = true;
  for (const auto& [phase, stats] : phase_stats(spans)) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    out += phase_name(phase);
    out += "\": {\"count\": " + std::to_string(stats.count) +
           ", \"total_ns\": " + std::to_string(stats.total_ns) +
           ", \"p50_ns\": " + std::to_string(stats.p50_ns) +
           ", \"p95_ns\": " + std::to_string(stats.p95_ns) +
           ", \"max_ns\": " + std::to_string(stats.max_ns) + "}";
  }
  out += "\n  },\n  \"spans\": [";
  first = true;
  for (const Span& span : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"id\": " + std::to_string(span.id) +
           ", \"parent\": " + std::to_string(span.parent) + ", \"phase\": \"";
    out += phase_name(span.phase);
    out += "\", \"start_ns\": " + std::to_string(span.start_ns) +
           ", \"duration_ns\": " + std::to_string(span.duration_ns) +
           ", \"label\": \"";
    json_escape_into(out, span.label);
    out += "\"";
    // Worker-origin spans carry where they were measured; local spans omit
    // the key so pre-distributed artifacts stay byte-identical.
    if (!span.origin.empty()) {
      out += ", \"origin\": \"";
      json_escape_into(out, span.origin);
      out += "\"";
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace ao::obs
