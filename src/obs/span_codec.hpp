#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/profiler.hpp"

namespace ao::obs {

/// Version tag of the span wire payload — the same schema family as the
/// JSON artifacts, in the line form the shard transport's `spans` frame
/// carries (docs/observability.md#distributed-spans).
inline constexpr char kSpanPayloadVersion[] = "ao-profile/1";

/// Encodes a completed timeline as a `spans` frame payload:
///
///   ao-profile/1
///   origin <worker-name>
///   span <id> <parent> <phase-name> <start-ns> <duration-ns> [label...]
///
/// Timestamps are the *sender's* clock readings; the receiver aligns them
/// (graft_spans). Newlines inside labels would corrupt the line format and
/// are flattened to spaces.
std::string encode_spans(const std::string& origin,
                         const std::vector<Span>& spans);

/// Decodes a `spans` frame payload. Returns nullopt (and sets `*error`)
/// on a version mismatch or a malformed line — the caller drops the
/// telemetry, never the shard. Decoded spans keep the sender's ids,
/// parents, and timestamps; `*origin` receives the sender's name.
std::optional<std::vector<Span>> decode_spans(const std::string& payload,
                                              std::string* origin,
                                              std::string* error);

/// Grafts a worker-measured timeline under `parent` on the daemon's
/// profiler. Every span is stamped with `origin`, mapped from the worker
/// clock onto the daemon clock, clamped into [window_start, window_end]
/// (the enclosing transport span's observed window, so the graft nests
/// strictly inside it with no negative durations whatever the skew), and
/// re-identified with fresh daemon ids in the worker's own id order —
/// which keeps the topological id invariant. Roots, and spans whose
/// parent did not ship, attach to `parent`.
///
/// `offset_ns` is the worker clock minus the daemon clock (the registry's
/// heartbeat midpoint estimate) and is used when `has_offset`; otherwise
/// the earliest worker span is start-aligned to `window_start`. Returns
/// the number of grafted spans.
std::size_t graft_spans(TimelineProfiler& profiler, std::vector<Span> spans,
                        std::uint64_t parent, std::uint64_t window_start,
                        std::uint64_t window_end, bool has_offset,
                        std::int64_t offset_ns, const std::string& origin);

}  // namespace ao::obs
