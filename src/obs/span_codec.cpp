#include "obs/span_codec.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <unordered_map>

namespace ao::obs {
namespace {

void append_flattened(std::string& out, const std::string& text) {
  for (const char c : text) {
    out += (c == '\n' || c == '\r') ? ' ' : c;
  }
}

/// Strict uint64 token parse. istream >> uint64 accepts a leading '-' and
/// wraps the value modulo 2^64; a wire decoder must reject that, not let a
/// negative id scramble parent remapping silently.
bool parse_u64(const std::string& token, std::uint64_t& out) {
  const char* first = token.data();
  const char* last = first + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last && !token.empty();
}

}  // namespace

std::string encode_spans(const std::string& origin,
                         const std::vector<Span>& spans) {
  std::string out = kSpanPayloadVersion;
  out += "\norigin ";
  append_flattened(out, origin);
  out += '\n';
  for (const Span& span : spans) {
    out += "span " + std::to_string(span.id) + ' ' +
           std::to_string(span.parent) + ' ';
    out += phase_name(span.phase);
    out += ' ' + std::to_string(span.start_ns) + ' ' +
           std::to_string(span.duration_ns);
    if (!span.label.empty()) {
      out += ' ';
      append_flattened(out, span.label);
    }
    out += '\n';
  }
  return out;
}

std::optional<std::vector<Span>> decode_spans(const std::string& payload,
                                              std::string* origin,
                                              std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = why;
    }
    return std::nullopt;
  };
  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != kSpanPayloadVersion) {
    return fail("span payload version mismatch: " + line);
  }
  if (!std::getline(in, line) || line.rfind("origin ", 0) != 0) {
    return fail("span payload missing origin line");
  }
  if (origin != nullptr) {
    *origin = line.substr(7);
  }
  std::vector<Span> spans;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    std::string id_text;
    std::string parent_text;
    std::string phase_text;
    std::string start_text;
    std::string duration_text;
    Span span;
    fields >> tag >> id_text >> parent_text >> phase_text >> start_text >>
        duration_text;
    if (!fields || tag != "span" || !parse_u64(id_text, span.id) ||
        !parse_u64(parent_text, span.parent) ||
        !parse_u64(start_text, span.start_ns) ||
        !parse_u64(duration_text, span.duration_ns)) {
      return fail("malformed span line: " + line);
    }
    const auto phase = phase_from_name(phase_text);
    if (!phase.has_value()) {
      return fail("unknown span phase: " + phase_text);
    }
    span.phase = *phase;
    if (fields.get() == ' ') {
      std::getline(fields, span.label);
    }
    spans.push_back(std::move(span));
  }
  return spans;
}

std::size_t graft_spans(TimelineProfiler& profiler, std::vector<Span> spans,
                        std::uint64_t parent, std::uint64_t window_start,
                        std::uint64_t window_end, bool has_offset,
                        std::int64_t offset_ns, const std::string& origin) {
  if (spans.empty()) {
    return 0;
  }
  if (window_end < window_start) {
    window_end = window_start;
  }
  // Worker id order is a topological order of the worker's own span tree;
  // adopting in that order keeps parents ahead of children here too.
  std::sort(spans.begin(), spans.end(),
            [](const Span& a, const Span& b) { return a.id < b.id; });
  std::int64_t offset = offset_ns;
  if (!has_offset) {
    // No heartbeat estimate for this endpoint yet: start-align the worker
    // timeline to the window. Relative spacing inside it stays exact.
    std::uint64_t earliest = spans.front().start_ns;
    for (const Span& span : spans) {
      earliest = std::min(earliest, span.start_ns);
    }
    offset = static_cast<std::int64_t>(earliest) -
             static_cast<std::int64_t>(window_start);
  }
  const auto clamp = [&](std::int64_t value, std::uint64_t lo) {
    if (value < static_cast<std::int64_t>(lo)) {
      return lo;
    }
    if (value > static_cast<std::int64_t>(window_end)) {
      return window_end;
    }
    return static_cast<std::uint64_t>(value);
  };
  std::unordered_map<std::uint64_t, std::uint64_t> remapped;
  remapped.reserve(spans.size());
  for (Span& span : spans) {
    const std::int64_t aligned =
        static_cast<std::int64_t>(span.start_ns) - offset;
    Span adopted;
    adopted.start_ns = clamp(aligned, window_start);
    adopted.duration_ns =
        clamp(aligned + static_cast<std::int64_t>(span.duration_ns),
              adopted.start_ns) -
        adopted.start_ns;
    const auto mapped = remapped.find(span.parent);
    adopted.parent = mapped != remapped.end() ? mapped->second : parent;
    adopted.phase = span.phase;
    adopted.label = std::move(span.label);
    adopted.origin = origin;
    remapped.emplace(span.id, profiler.adopt(std::move(adopted)));
  }
  return spans.size();
}

}  // namespace ao::obs
