#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ao::obs {

/// Every metric of the daemon's Prometheus exposition surface, one
/// enumerator per time series family. Names/kinds/help live in
/// `kMetricNames` (and friends) in metrics.cpp; the names are protocol
/// surface, documented in the metric glossary of docs/observability.md and
/// kept in sync by check_markdown_links.py --glossary.
enum class Metric {
  // Counters — monotone lifetime totals, refreshed from Totals at scrape.
  kCampaignsTotal,
  kCampaignsShardedTotal,
  kCampaignsAbortedTotal,
  kCampaignsDeadlineExpiredTotal,
  kQueueRejectedTotal,
  kJobsExecutedTotal,
  kCacheHitsTotal,
  kRecordsStreamedTotal,
  kMergedEntriesTotal,
  kRemoteShardsTotal,
  kShardRetriesTotal,
  kOutboxBlockedTotal,
  kOutboxDroppedTotal,
  kPlanCacheHitsTotal,
  kPlanCacheMissesTotal,
  kQueriesTotal,
  kQueryRecordsTotal,
  kFollowsTotal,
  kStaleCursorsTotal,
  // Gauges — point-in-time fleet state.
  kQueueDepth,
  kCampaignsRunning,
  kOutboxPeakDepth,
  kWorkersConnected,
  kWorkersIdle,
  kWorkerRttNs,          ///< labelled worker="<name>"
  kWorkerClockOffsetNs,  ///< labelled worker="<name>"
  // Histograms — observed per completed campaign.
  kPhaseDurationNs,  ///< labelled phase="<phase-name>"
};

inline constexpr std::size_t kMetricCount =
    static_cast<std::size_t>(Metric::kPhaseDurationNs) + 1;

enum class MetricKind { kCounter, kGauge, kHistogram };

/// The exposed family name ("ao_campaigns_total", ...). Stable surface.
const char* metric_name(Metric metric);
MetricKind metric_kind(Metric metric);

/// Scrape-time metric store + Prometheus text renderer.
///
/// Counters and gauges are *set* to their current value at scrape time
/// (the daemon's Totals counters are already monotone, so the rendered
/// counters are too); histograms accumulate observations as campaigns
/// complete. Labelled families (worker=..., phase=...) hold one sample per
/// label value. Thread-safe.
class MetricsRegistry {
 public:
  /// Fixed histogram bucket upper bounds in nanoseconds (1µs … 10s); an
  /// implicit +Inf bucket tops them off.
  static const std::vector<std::uint64_t>& histogram_buckets();

  /// Sets a counter/gauge sample. `label` is the label *value* (the key is
  /// implied by the family); "" addresses the unlabelled sample.
  void set(Metric metric, std::int64_t value, const std::string& label = {});

  /// Drops every sample of a labelled family — workers come and go, and a
  /// retired endpoint's gauge must not linger in the exposition.
  void clear(Metric metric);

  /// Swaps a labelled family's full sample set in one step under the
  /// registry lock. Scrape-time rebuilds of per-worker gauges go through
  /// this, not clear()+set(): concurrent scrapes on other session threads
  /// must never render the family half-rebuilt.
  void replace(Metric metric, std::map<std::string, std::int64_t> samples);

  /// Adds one observation to a histogram family sample.
  void observe(Metric metric, std::uint64_t value,
               const std::string& label = {});

  /// The full exposition: `# HELP`/`# TYPE` metadata for every family
  /// (samples only where data exists) in Prometheus/OpenMetrics text
  /// format, terminated by the OpenMetrics `# EOF` marker — the line
  /// protocol's end-of-reply sentinel for the `metrics` command.
  std::string render() const;

 private:
  struct Histogram {
    std::vector<std::uint64_t> buckets;  ///< counts per histogram_buckets()
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::int64_t> values_[kMetricCount];
  std::map<std::string, Histogram> histograms_[kMetricCount];
};

}  // namespace ao::obs
