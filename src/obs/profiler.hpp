#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ao::obs {

/// The instrumented phases of the job/shard lifecycle, one enumerator per
/// span name. The names are protocol surface (`profile-span` reply lines,
/// `stats-phase` lines, the JSON artifacts) and are documented in the phase
/// glossary of docs/observability.md — CI keeps the two in sync through
/// check_markdown_links.py --glossary.
enum class Phase {
  kCampaign,   ///< one whole campaign, submit to done (the root span)
  kQueueWait,  ///< blocked in the CampaignQueue behind conflicting work
  kAdmission,  ///< quota/resource admission decision (CampaignQueue::submit)
  kSchedule,   ///< request expansion, group planning, shard planning
  kShard,      ///< one shard's full round-trip (local or remote)
  kExecute,    ///< one job executing on a leased simulated System
  kSerialize,  ///< encoding records/stores (entry lines, store snapshots)
  kFrame,      ///< wire-frame encode + write of the shard transport
  kTransport,  ///< one remote shard conversation over its socket
  kMerge,      ///< folding a shard store back into the warm cache
  kRetry,      ///< a shard re-dispatched after its worker endpoint died
  kAbort,      ///< a campaign cancelled (abort command / expired deadline)
  kPlan,       ///< plan-cache checkout: compiled-expansion lookup / compile
  kFlush,      ///< a batched records frame settling onto the wire
  kQuery,      ///< one indexed store query / follow replay (read path)
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kQuery) + 1;

/// The span name ("queue-wait", "execute", ...). Stable protocol surface.
const char* phase_name(Phase phase);

/// Reverse of phase_name(); nullopt for unknown names.
std::optional<Phase> phase_from_name(std::string_view name);

/// One completed span on a profiler's timeline. Ids are campaign-unique and
/// hierarchical: `parent` is the id of the enclosing span (0 = top level),
/// and a child's id is always greater than its parent's — the id order is a
/// topological order of the span tree.
struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  Phase phase = Phase::kCampaign;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::string label;   ///< free text: job kind, worker name, shard index...
  std::string origin;  ///< worker name for grafted remote spans; "" = local
};

/// Aggregate of every span of one phase — the `profile-phase` reply line
/// and the per-phase object of the JSON artifacts. Percentiles are
/// nearest-rank over the span durations.
struct PhaseStats {
  std::size_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Span-based timeline profiler for the campaign lifecycle.
///
/// Concurrency model: recording is contention-free in the common case —
/// every thread appends completed spans to its own registered buffer (one
/// uncontended mutex per thread, taken only by its owner and by snapshot());
/// span ids come from one atomic counter. snapshot()/drain() briefly lock
/// each buffer to collect.
///
/// Nesting: each thread keeps a stack of its open scopes. A new Scope
/// parents to the innermost open scope *of the same profiler* on its thread
/// (so a cache merge inside a shard conversation nests under the transport
/// span with no plumbing), or to an explicit parent id — the handoff for
/// work that hops threads, e.g. a shard driver parenting its spans under
/// the campaign root opened by the session thread.
///
/// The clock is injectable (`ClockFn` returning nanoseconds, monotonic);
/// the default is std::chrono::steady_clock. Tests inject a counter clock
/// for fully deterministic timelines.
class TimelineProfiler {
 public:
  using ClockFn = std::function<std::uint64_t()>;

  /// Parent sentinel: inherit the innermost open scope on this thread.
  static constexpr std::uint64_t kInheritParent = ~std::uint64_t{0};

  /// Spans retained per thread buffer; overflow drops the oldest-recorded
  /// spans of that thread and counts them in dropped().
  static constexpr std::size_t kMaxSpansPerThread = 1u << 16;

  /// `clock` {} selects the monotonic steady_clock.
  explicit TimelineProfiler(ClockFn clock = {});
  ~TimelineProfiler();
  TimelineProfiler(const TimelineProfiler&) = delete;
  TimelineProfiler& operator=(const TimelineProfiler&) = delete;

  /// Current clock reading in nanoseconds.
  std::uint64_t now() const;

  /// RAII span: opens at construction (allocating the id, pushing the
  /// thread's scope stack), records at close()/destruction. A Scope on a
  /// null profiler is a no-op — call sites never test the pointer.
  class Scope {
   public:
    Scope(TimelineProfiler* profiler, Phase phase,
          std::uint64_t parent = kInheritParent, std::string label = {});
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope(Scope&& other) noexcept;
    Scope& operator=(Scope&&) = delete;

    /// This span's id (0 on a null profiler) — the parent handle passed to
    /// work finishing on other threads.
    std::uint64_t id() const { return id_; }

    /// Records the span now instead of at destruction. Idempotent.
    void close();

   private:
    TimelineProfiler* profiler_;
    Phase phase_;
    std::uint64_t id_ = 0;
    std::uint64_t parent_ = 0;
    std::uint64_t start_ns_ = 0;
    std::string label_;
  };

  /// Records one span measured manually — for intervals whose start and end
  /// live on different threads (a local shard observed from the tail loop).
  /// Returns the span's id.
  std::uint64_t record(Phase phase, std::uint64_t start_ns,
                       std::uint64_t end_ns,
                       std::uint64_t parent = kInheritParent,
                       std::string label = {});

  /// Appends a span measured by *another* profiler (a worker timeline
  /// shipped over the wire), allocating it a fresh id here and returning
  /// it. `span.parent`, timestamps and origin are taken as given — the
  /// caller has already re-parented and clock-aligned them (see
  /// obs::graft_spans). Adopting a foreign timeline in its own id order
  /// preserves the topological id invariant: each span's remapped parent
  /// was adopted earlier and thus carries a smaller id.
  std::uint64_t adopt(Span span);

  /// Every completed span, sorted by id (parents before children).
  std::vector<Span> snapshot() const;

  /// snapshot() + clear: hands the completed spans over exactly once — the
  /// service drains after each campaign so a long-running daemon's memory
  /// stays bounded. Open scopes are unaffected (they record on close).
  std::vector<Span> drain();

  /// Completed spans currently buffered.
  std::size_t span_count() const;

  /// Spans lost to per-thread buffer overflow since construction.
  std::size_t dropped() const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<Span> spans;
    std::size_t dropped = 0;
  };

  ThreadBuffer& local_buffer();
  void append(Span span);
  std::uint64_t resolve_parent(std::uint64_t requested) const;

  const ClockFn clock_;
  const std::uint64_t uid_;  ///< process-unique; keys the thread-local map
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex buffers_mutex_;  ///< registration + collection
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// Per-phase aggregates over `spans` (nearest-rank percentiles).
std::map<Phase, PhaseStats> phase_stats(const std::vector<Span>& spans);

/// The spans reachable from `root` (inclusive), in id order. Requires the
/// profiler's id invariant (parents before children in id order), which one
/// ascending pass exploits.
std::vector<Span> span_subtree(const std::vector<Span>& spans,
                               std::uint64_t root);

/// One campaign's timeline as a JSON artifact (schema "ao-profile/1",
/// documented in docs/observability.md#artifact-schema): campaign identity,
/// per-phase stats, and the full span list. `ao_campaignd --profile-dir`
/// writes one such file per completed campaign; tools/bench_report.py folds
/// them into BENCH_*.json trajectory files.
std::string timeline_json(std::uint64_t campaign_id, const std::string& name,
                          const std::string& client,
                          const std::vector<Span>& spans);

}  // namespace ao::obs
