#include "service/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_set>
#include <vector>

#include "orchestrator/store_index.hpp"
#include "service/shard_planner.hpp"
#include "service/worker_link.hpp"
#include "service/worker_pool.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace ao::service {
namespace {

using orchestrator::CampaignScheduler;
using orchestrator::ExperimentJob;
using orchestrator::JobKind;
using orchestrator::JobQueue;
using orchestrator::MeasurementRecord;

/// Replies must stay line-oriented; exception text is folded onto one line.
std::string one_line(std::string text) {
  std::replace(text.begin(), text.end(), '\n', ' ');
  std::replace(text.begin(), text.end(), '\r', ' ');
  return text;
}

/// The structured error reply: stable code, message, and — when the failure
/// is about a specific input line — that line echoed back, so the client
/// can report exactly which of its request lines was rejected.
void reply_error(std::ostream& out, const std::string& code,
                 const std::string& message, const std::string& input = {}) {
  out << "error " << code << ' ' << one_line(message);
  if (!input.empty()) {
    out << " | line: " << one_line(input);
  }
  out << '\n';
}

/// Records a campaign will stream: one per job that produces a cacheable
/// record (every kind except the verify jobs, whose verdict rides on the
/// measurement's record).
std::size_t expected_record_count(
    const std::vector<orchestrator::Campaign::JobGroup>& groups) {
  std::size_t count = 0;
  for (const auto& group : groups) {
    for (const auto& job : group.jobs) {
      if (orchestrator::is_cacheable(job.kind)) {
        ++count;
      }
    }
  }
  return count;
}

/// Incremental reader over one shard's write-through store: consumes the
/// complete lines appended since the last poll (a half-flushed tail line is
/// left for the next round), skipping the version header.
struct StoreTail {
  std::string path;
  std::streamoff offset = 0;
  std::size_t shard_index = 0;
  std::size_t records = 0;  ///< entries streamed from this shard so far

  template <typename LineFn>
  void poll(LineFn&& on_line) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return;  // the worker has not created the store yet
    }
    in.seekg(offset);
    std::ostringstream chunk;
    chunk << in.rdbuf();
    const std::string buffered = chunk.str();
    std::size_t pos = 0;
    for (;;) {
      const std::size_t newline = buffered.find('\n', pos);
      if (newline == std::string::npos) {
        break;
      }
      const std::string line = buffered.substr(pos, newline - pos);
      pos = newline + 1;
      if (!line.empty() && line != orchestrator::store_header_line()) {
        on_line(line);
      }
    }
    offset += static_cast<std::streamoff>(pos);
  }
};

}  // namespace

/// Checks a scheduler out of the idle pool (or builds one) for exactly one
/// campaign. Concurrent campaigns each hold their own scheduler — run() is
/// not reentrant per instance — while sequential campaigns that agree on
/// options and concurrency reuse a warm SystemPool.
class CampaignService::SchedulerLease {
 public:
  SchedulerLease(CampaignService& service, const CampaignRequest& request)
      : service_(&service) {
    key_ = orchestrator::options_fingerprint(request.options());
    key_ = util::fnv1a_mix(key_, request.workers);
    {
      std::lock_guard lock(service.scheduler_pool_mutex_);
      const auto it = service.idle_schedulers_.find(key_);
      if (it != service.idle_schedulers_.end()) {
        scheduler_ = std::move(it->second);
        service.idle_schedulers_.erase(it);
      }
    }
    if (scheduler_ == nullptr) {
      CampaignScheduler::Options options;
      options.concurrency = request.workers;
      scheduler_ = std::make_unique<CampaignScheduler>(request.options(),
                                                       options,
                                                       &service.cache_);
    }
  }

  ~SchedulerLease() {
    std::lock_guard lock(service_->scheduler_pool_mutex_);
    if (service_->idle_schedulers_.size() < kMaxIdle) {
      service_->idle_schedulers_.emplace(key_, std::move(scheduler_));
    }
    // Beyond the cap the scheduler (and its SystemPool) is simply dropped —
    // bounded memory beats a marginally warmer pool.
  }

  CampaignScheduler& scheduler() { return *scheduler_; }

 private:
  static constexpr std::size_t kMaxIdle = 8;
  CampaignService* service_;
  std::uint64_t key_ = 0;
  std::unique_ptr<CampaignScheduler> scheduler_;
};

CampaignService::CampaignService(Config config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity),
      plan_cache_(config_.plan_cache_capacity),
      queue_(config_.limits),
      profiler_(config_.profile_clock) {
  if (!config_.store_path.empty()) {
    cache_.load(config_.store_path);
    cache_.persist_to(config_.store_path);
  }
  // The warm cache records its own serialize/merge spans — the service never
  // wraps cache calls itself, so shard merges are counted exactly once.
  cache_.set_profiler(&profiler_);
  registry_.configure({config_.heartbeat_interval_ns, config_.worker_clock});
}

std::string CampaignService::cancel_code(const CancelState& state) const {
  if (state.abort.load(std::memory_order_acquire)) {
    return "aborted";
  }
  if (state.deadline_ns != 0 && profiler_.now() >= state.deadline_ns) {
    return "deadline-exceeded";
  }
  return {};
}

void CampaignService::note_cancelled(const std::string& code) {
  std::lock_guard lock(totals_mutex_);
  if (code == "deadline-exceeded") {
    ++totals_.deadline_expired;
  } else {
    ++totals_.aborted;
  }
}

CampaignService::Totals CampaignService::totals() const {
  std::lock_guard lock(totals_mutex_);
  return totals_;
}

std::vector<CampaignService::CampaignTimeline> CampaignService::timelines()
    const {
  std::lock_guard lock(profile_mutex_);
  return {timelines_.begin(), timelines_.end()};
}

std::vector<std::string> CampaignService::start_log() const {
  std::lock_guard lock(totals_mutex_);
  return start_log_;
}

bool CampaignService::serve(std::istream& in, std::ostream& out) {
  RequestBuilder builder;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const std::vector<std::string> words = split_words(line);
    if (words.empty()) {
      continue;
    }
    try {
      if (builder.open()) {
        if (words[0] == "run") {
          const CampaignRequest request = builder.take();
          if (request.chips.empty()) {
            reply_error(out, "bad-request", "campaign needs a 'chips' line",
                        line);
          } else if (!request.has_work()) {
            reply_error(out, "bad-request",
                        "empty campaign: no job family requested", line);
          } else {
            run_campaign(request, out);
          }
        } else if (words[0] == "abort") {
          builder.discard();
          out << "ok abort\n";
        } else if (words[0] == "begin") {
          reply_error(out, "bad-state",
                      "nested begin (finish the open request with 'run' or "
                      "'abort')",
                      line);
        } else if (const auto error = builder.apply(line)) {
          reply_error(out, error->code, error->message, line);
        }
      } else if (words[0] == "begin") {
        if (const auto error =
                builder.begin(words.size() > 1 ? words[1] : "")) {
          reply_error(out, error->code, error->message, line);
        }
      } else if (words[0] == "worker") {
        // A remote shard worker announcing itself. The session converts
        // into a parked worker endpoint: park() blocks until the worker
        // dies (failure or shutdown), and campaign threads run frame
        // conversations over the connection in the meantime.
        const std::string requested = words.size() > 1 ? words[1] : "";
        if (!requested.empty() && !valid_campaign_name(requested)) {
          reply_error(out, "bad-name",
                      "invalid worker name (use [A-Za-z0-9._-], at most 64 "
                      "chars)",
                      line);
        } else {
          const std::string name =
              requested.empty()
                  ? "worker-" + std::to_string(next_worker_id_.fetch_add(1))
                  : requested;
          out << "ok worker " << name << '\n';
          out.flush();
          registry_.park(name, in, out);
          return false;  // the connection belonged to the worker
        }
      } else if (words[0] == "queue") {
        // Waiting campaigns in admission order; the terminal `queue` line
        // is what clients stop reading at.
        const auto waiting = queue_.waiting();
        for (const auto& entry : waiting) {
          out << "queue-entry " << entry.position << " name " << entry.name
              << " client " << entry.client << " priority " << entry.priority
              << " resources " << resources_to_string(entry.resources)
              << '\n';
        }
        out << "queue waiting " << waiting.size() << " running "
            << queue_.running_count() << '\n';
      } else if (words[0] == "abort") {
        // Cancel campaigns by name: queued ones are evicted before they ever
        // claim resources, running ones stop cooperatively at their next
        // between-jobs / between-shards check. The reply counts handles
        // flipped *now*; already-aborted campaigns are not counted twice.
        if (words.size() < 2) {
          reply_error(out, "bad-request", "abort needs a campaign name", line);
        } else {
          std::size_t cancelled = 0;
          {
            std::lock_guard lock(active_mutex_);
            for (const auto& state : active_) {
              if (state->name == words[1] &&
                  !state->abort.exchange(true, std::memory_order_acq_rel)) {
                ++cancelled;
                if (state->outbox != nullptr) {
                  // Discard queued records and unblock producers stalled on
                  // a slow client — abort must cut the campaign loose even
                  // from a session that stopped reading.
                  state->outbox->cancel();
                }
              }
            }
          }
          queue_.poke();  // queued tickets re-check their cancel predicate
          out << "ok abort " << words[1] << " cancelled " << cancelled << '\n';
        }
      } else if (words[0] == "ping") {
        out << "pong\n";
      } else if (words[0] == "stats") {
        // Connected workers and per-client queue depth/concurrency first;
        // the aggregate `stats` line is the terminal reply clients stop
        // reading at.
        for (const auto& worker : registry_.snapshot()) {
          // rtt-ns and clock-offset-ns are heartbeat estimates; both read 0
          // until the first sweep pings the endpoint (and the offset stays 0
          // for a worker whose pongs carry no clock reading).
          out << "stats-worker " << worker.name << ' '
              << (worker.idle ? "idle" : "busy") << " shards " << worker.shards
              << " busy-ns " << worker.busy_ns << " last-seen-ns "
              << worker.last_seen_age_ns << " rtt-ns " << worker.rtt_ns
              << " clock-offset-ns "
              << (worker.has_clock_offset ? worker.clock_offset_ns : 0)
              << '\n';
        }
        for (const auto& [client, s] : queue_.client_stats()) {
          out << "stats-client " << client << " queued " << s.queued
              << " running " << s.running << '\n';
        }
        {
          // Lifetime per-phase time aggregates from the timeline profiler —
          // only phases that ever recorded a span.
          std::lock_guard lock(profile_mutex_);
          for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
            const auto& [count, total_ns] = phase_totals_[i];
            if (count != 0) {
              out << "stats-phase "
                  << obs::phase_name(static_cast<obs::Phase>(i)) << " count "
                  << count << " total-ns " << total_ns << '\n';
            }
          }
        }
        const Totals t = totals();
        const orchestrator::PlanCache::Stats plans = plan_cache_.stats();
        out << "stats campaigns " << t.campaigns << " sharded "
            << t.sharded_campaigns << " records " << t.records_streamed
            << " executed " << t.jobs_executed << " hits " << t.cache_hits
            << " merged " << t.merged_entries << " cache-entries "
            << cache_.size() << " store-entries " << cache_.store_entries()
            << " running " << queue_.running_count() << " queued "
            << queue_.queued_count() << " peak " << queue_.peak_running()
            << " rejected " << queue_.rejections() << " remote-shards "
            << t.remote_shards << " workers " << registry_.connected_count()
            << " idle-workers " << registry_.idle_count() << " aborted "
            << t.aborted << " deadline-expired " << t.deadline_expired
            << " shard-retries " << t.shard_retries << " outbox-peak "
            << t.outbox_peak << " outbox-blocked " << t.outbox_blocked
            << " outbox-dropped " << t.outbox_dropped << " plan-hits "
            << plans.hits << " plan-misses " << plans.misses
            << " plan-entries " << plans.size << " queries " << t.queries
            << " query-records " << t.query_records << " follows "
            << t.follows << " stale-cursors " << t.stale_cursors << '\n';
      } else if (words[0] == "query") {
        reply_query(words, line, out);
      } else if (words[0] == "follow") {
        reply_follow(words, line, out);
      } else if (words[0] == "profile") {
        reply_profile(words.size() > 1 ? words[1] : "", out);
      } else if (words[0] == "metrics") {
        reply_metrics(out);
      } else if (words[0] == "compact") {
        if (cache_.persist_path().empty()) {
          reply_error(out, "no-store", "no write-through store attached",
                      line);
        } else {
          out << "ok compact " << cache_.compact() << " entries\n";
        }
      } else if (words[0] == "shutdown") {
        // Wake every parked worker session (they send their `bye` frames
        // and end) before telling the caller to stop accepting.
        registry_.shutdown();
        out << "ok shutdown\n";
        out.flush();
        return true;
      } else {
        reply_error(out, "unknown-command", "unknown command: " + words[0],
                    line);
      }
    } catch (const std::exception& e) {
      reply_error(out, "exec-failed", e.what(), line);
    }
    out.flush();
  }
  return false;
}

void CampaignService::reply_profile(const std::string& name,
                                    std::ostream& out) const {
  CampaignTimeline timeline;
  bool found = false;
  {
    std::lock_guard lock(profile_mutex_);
    for (auto it = timelines_.rbegin(); it != timelines_.rend(); ++it) {
      if (name.empty() || it->name == name) {
        timeline = *it;  // newest retained (of that name, when given)
        found = true;
        break;
      }
    }
  }
  if (!found) {
    out << "profile campaign 0 name - client - spans 0\n";
    return;
  }
  // Span lines first (id order = parents before children), then the
  // per-phase aggregates, then the terminal `profile` line clients stop
  // reading at. The origin is one token (`-` for local spans); the
  // free-text label goes last so spaces survive.
  for (const obs::Span& span : timeline.spans) {
    out << "profile-span " << span.id << ' ' << span.parent << ' '
        << obs::phase_name(span.phase) << ' ' << span.start_ns << ' '
        << span.duration_ns << ' '
        << (span.origin.empty() ? "-" : span.origin) << ' '
        << (span.label.empty() ? "-" : one_line(span.label)) << '\n';
  }
  for (const auto& [phase, stats] : obs::phase_stats(timeline.spans)) {
    out << "profile-phase " << obs::phase_name(phase) << " count "
        << stats.count << " total-ns " << stats.total_ns << " p50-ns "
        << stats.p50_ns << " p95-ns " << stats.p95_ns << " max-ns "
        << stats.max_ns << '\n';
  }
  out << "profile campaign " << timeline.id << " name " << timeline.name
      << " client " << timeline.client << " spans " << timeline.spans.size()
      << '\n';
}

void CampaignService::reply_metrics(std::ostream& out) {
  using obs::Metric;
  // Counters restate the lifetime Totals (already monotone — two scrapes
  // can only go up); gauges restate the current queue/registry state.
  const Totals t = totals();
  const auto count = [&](Metric metric, std::size_t value) {
    metrics_.set(metric, static_cast<std::int64_t>(value));
  };
  count(Metric::kCampaignsTotal, t.campaigns);
  count(Metric::kCampaignsShardedTotal, t.sharded_campaigns);
  count(Metric::kCampaignsAbortedTotal, t.aborted);
  count(Metric::kCampaignsDeadlineExpiredTotal, t.deadline_expired);
  count(Metric::kQueueRejectedTotal, queue_.rejections());
  count(Metric::kJobsExecutedTotal, t.jobs_executed);
  count(Metric::kCacheHitsTotal, t.cache_hits);
  count(Metric::kRecordsStreamedTotal, t.records_streamed);
  count(Metric::kMergedEntriesTotal, t.merged_entries);
  count(Metric::kRemoteShardsTotal, t.remote_shards);
  count(Metric::kShardRetriesTotal, t.shard_retries);
  count(Metric::kOutboxBlockedTotal, t.outbox_blocked);
  count(Metric::kOutboxDroppedTotal, t.outbox_dropped);
  const orchestrator::PlanCache::Stats plans = plan_cache_.stats();
  count(Metric::kPlanCacheHitsTotal, plans.hits);
  count(Metric::kPlanCacheMissesTotal, plans.misses);
  count(Metric::kQueriesTotal, t.queries);
  count(Metric::kQueryRecordsTotal, t.query_records);
  count(Metric::kFollowsTotal, t.follows);
  count(Metric::kStaleCursorsTotal, t.stale_cursors);
  count(Metric::kQueueDepth, queue_.queued_count());
  count(Metric::kCampaignsRunning, queue_.running_count());
  count(Metric::kOutboxPeakDepth, t.outbox_peak);
  count(Metric::kWorkersConnected, registry_.connected_count());
  count(Metric::kWorkersIdle, registry_.idle_count());
  // Per-endpoint gauges are rebuilt from scratch: a retired worker's series
  // must vanish from the exposition, not linger at its last value. Each
  // family is swapped atomically — sessions run on their own threads, and a
  // concurrent scrape must never see the rebuild half-done.
  std::map<std::string, std::int64_t> rtt_by_worker;
  std::map<std::string, std::int64_t> offset_by_worker;
  for (const auto& worker : registry_.snapshot()) {
    if (worker.rtt_ns != 0) {
      rtt_by_worker[worker.name] = static_cast<std::int64_t>(worker.rtt_ns);
    }
    if (worker.has_clock_offset) {
      offset_by_worker[worker.name] = worker.clock_offset_ns;
    }
  }
  metrics_.replace(Metric::kWorkerRttNs, std::move(rtt_by_worker));
  metrics_.replace(Metric::kWorkerClockOffsetNs, std::move(offset_by_worker));
  out << metrics_.render();
}

void CampaignService::finish_campaign_profile(std::uint64_t root_span,
                                              std::uint64_t id,
                                              const std::string& name,
                                              const std::string& client) {
  std::vector<obs::Span> spans = profiler_.drain();
  std::lock_guard lock(profile_mutex_);
  // Re-adopt the orphan pool: spans drained by earlier finishes while this
  // campaign was still running live there.
  spans.insert(spans.end(), orphan_spans_.begin(), orphan_spans_.end());
  std::sort(spans.begin(), spans.end(),
            [](const obs::Span& a, const obs::Span& b) { return a.id < b.id; });
  std::vector<obs::Span> mine = obs::span_subtree(spans, root_span);

  // Everything outside this campaign's subtree belongs to a concurrent
  // campaign that has not finished yet — keep it (newest first under the
  // cap) for that campaign's own finish.
  std::unordered_set<std::uint64_t> mine_ids;
  mine_ids.reserve(mine.size());
  for (const obs::Span& span : mine) {
    mine_ids.insert(span.id);
  }
  orphan_spans_.clear();
  for (obs::Span& span : spans) {
    if (mine_ids.count(span.id) == 0) {
      orphan_spans_.push_back(std::move(span));
    }
  }
  if (orphan_spans_.size() > kMaxOrphanSpans) {
    orphan_spans_.erase(orphan_spans_.begin(),
                        orphan_spans_.end() -
                            static_cast<std::ptrdiff_t>(kMaxOrphanSpans));
  }

  for (const auto& [phase, stats] : obs::phase_stats(mine)) {
    auto& [count, total_ns] = phase_totals_[static_cast<std::size_t>(phase)];
    count += stats.count;
    total_ns += stats.total_ns;
  }
  // Feed the per-phase duration histograms of the `metrics` exposition —
  // incremental, so a scrape between two campaigns stays monotone.
  for (const obs::Span& span : mine) {
    metrics_.observe(obs::Metric::kPhaseDurationNs, span.duration_ns,
                     obs::phase_name(span.phase));
  }

  if (!config_.profile_dir.empty()) {
    const std::string path = config_.profile_dir + "/" + name + "-c" +
                             std::to_string(id) + ".profile.json";
    std::ofstream artifact(path, std::ios::trunc);
    if (artifact) {
      artifact << obs::timeline_json(id, name, client, mine);
    }
    // An unwritable profile dir only costs the artifact, never the campaign.
  }

  timelines_.push_back({id, name, client, std::move(mine)});
  if (timelines_.size() > kMaxTimelines) {
    timelines_.pop_front();
  }
}

void CampaignService::run_campaign(const CampaignRequest& request,
                                   std::ostream& session_out) {
  // The campaign's root span: every phase of its lifecycle — admission,
  // queue wait, scheduling, shards, merges — nests under it, by thread-local
  // inheritance on this session thread and by explicit parent id on shard
  // driver and scheduler worker threads.
  obs::TimelineProfiler::Scope root(&profiler_, obs::Phase::kCampaign,
                                    /*parent=*/0, request.name);

  // Admission first: the queue decides whether this campaign may run now
  // (disjoint resource classes), must wait (conflict / quota / global
  // concurrency), or is rejected outright (queued-campaign quota).
  const ResourceMask resources = resources_for(request);
  CampaignQueue::Rejection rejection;
  std::unique_ptr<CampaignQueue::Ticket> ticket;
  {
    obs::TimelineProfiler::Scope admission(&profiler_, obs::Phase::kAdmission);
    ticket = queue_.submit(request.client, request.priority, resources,
                           &rejection, request.name);
  }
  if (ticket == nullptr) {
    session_out << "preempted-by-quota client " << request.client
                << " campaign " << request.name << '\n';
    reply_error(session_out, rejection.code, rejection.message, "run");
    session_out.flush();
    return;
  }

  // From here on every line the campaign writes flows through its bounded
  // outbox: record/progress lines are subject to backpressure (and dropped
  // after an abort), events and replies always get through. The real
  // session stream is only touched by the outbox's writer thread.
  SessionOutbox outbox(session_out, config_.outbox_capacity);
  OutboxStream out(outbox);

  auto cancel = std::make_shared<CancelState>();
  cancel->name = request.name;
  cancel->deadline_ns =
      request.deadline_ms == 0
          ? 0
          : profiler_.now() + request.deadline_ms * 1'000'000ull;
  cancel->outbox = &outbox;
  {
    std::lock_guard lock(active_mutex_);
    active_.push_back(cancel);
  }
  // Unregisters the cancel handle BEFORE the outbox dies (the abort command
  // dereferences state->outbox only for registered handles, under the same
  // lock), then folds the outbox's flow-control accounting into the totals.
  struct ActiveGuard {
    CampaignService& service;
    std::shared_ptr<CancelState> state;
    SessionOutbox& outbox;
    ~ActiveGuard() {
      {
        std::lock_guard lock(service.active_mutex_);
        state->outbox = nullptr;
        auto& active = service.active_;
        active.erase(std::remove(active.begin(), active.end(), state),
                     active.end());
      }
      outbox.close();
      const SessionOutbox::Stats stats = outbox.stats();
      std::lock_guard lock(service.totals_mutex_);
      service.totals_.outbox_peak =
          std::max(service.totals_.outbox_peak, stats.high_water);
      service.totals_.outbox_blocked += stats.blocked;
      service.totals_.outbox_dropped += stats.dropped;
    }
  } active_guard{*this, cancel, outbox};

  const std::uint64_t id = next_campaign_id_.fetch_add(1);
  cancel->id = id;
  std::size_t jobs = 0;
  std::size_t expected_records = 0;
  std::size_t shard_count = 0;
  std::size_t group_count = 0;
  const std::string plan_cache_key = plan_key(request);
  std::shared_ptr<const orchestrator::CompiledCampaign> compiled;
  {
    // Request expansion and shard sizing — the first `schedule` span; the
    // sharded path records another around its plan proper. Nested inside it,
    // a `plan` span labelled hit/miss covers the compiled-plan checkout
    // (compile time lands inside it on a miss).
    obs::TimelineProfiler::Scope schedule(&profiler_, obs::Phase::kSchedule,
                                          obs::TimelineProfiler::kInheritParent,
                                          "expand");
    const std::uint64_t plan_start = profiler_.now();
    bool compiled_here = false;
    compiled = plan_cache_.checkout(plan_cache_key, [&] {
      compiled_here = true;
      return orchestrator::compile_campaign(request.to_campaign());
    });
    profiler_.record(obs::Phase::kPlan, plan_start, profiler_.now(),
                     schedule.id(), compiled_here ? "miss" : "hit");
    group_count = compiled->groups.size();
    jobs = compiled->job_count;
    expected_records = expected_record_count(compiled->groups);
    // Never more shards than groups; a surplus would only spawn idle
    // workers.
    shard_count = std::min(request.shards, group_count);
  }

  // The header goes out before admission completes, so a queued client
  // knows its campaign id (and resource claim) while it waits.
  out << "ok campaign " << id << " jobs " << jobs << " records "
      << expected_records << " shards "
      << std::max<std::size_t>(1, shard_count) << " resources "
      << resources_to_string(resources) << " priority " << request.priority
      << " client " << request.client << '\n';
  out.flush();

  bool started = false;
  std::string queue_cancel;
  {
    // Time spent behind conflicting campaigns / quotas. Recorded even when
    // admission was immediate (a near-zero span documents the fast path).
    obs::TimelineProfiler::Scope queue_wait(&profiler_, obs::Phase::kQueueWait);
    started = ticket->wait(
        [&](std::size_t position) {
          out << "queued " << position << '\n';
          out.flush();
        },
        [&] {
          queue_cancel = cancel_code(*cancel);
          return !queue_cancel.empty();
        });
  }
  if (!started) {
    // Cancelled while still queued: the campaign never claimed resources —
    // report the eviction and release the ticket's queue slot.
    const std::uint64_t now = profiler_.now();
    profiler_.record(obs::Phase::kAbort, now, now, root.id(), queue_cancel);
    note_cancelled(queue_cancel);
    out << queue_cancel << " campaign " << id << '\n';
    out << "error " << queue_cancel << " campaign " << id
        << " cancelled while queued\n";
    out.flush();
    root.close();
    finish_campaign_profile(root.id(), id, request.name, request.client);
    return;
  }
  {
    std::lock_guard lock(totals_mutex_);
    // Bounded start history (the queue tests assert admission order on it;
    // stats introspection reads it) — a long-lived daemon must not grow it
    // per campaign forever.
    if (start_log_.size() >= kStartLogCapacity) {
      start_log_.erase(start_log_.begin());
    }
    start_log_.push_back(request.name);
  }
  out << "started campaign " << id << '\n';
  out.flush();

  // The campaign's follow journal: every record key in stream order, so a
  // disconnected client can replay the stream from the store later.
  const std::shared_ptr<CampaignJournal> journal =
      open_journal(id, request.name);

  // The cooperative stop hook the execution paths poll wherever stopping is
  // safe: between scheduler jobs, between remote shards, around the local
  // fallback. It never interrupts a measurement mid-flight.
  const orchestrator::StopFn should_stop = [this, cancel] {
    return cancel_code(*cancel);
  };

  // remote_only means sharded requests NEVER execute on this host — even
  // when the group count collapses the effective shard count to 1, the
  // single shard still goes to a remote worker (an operator running a
  // fleet daemon relies on that isolation; docs/operations.md).
  if (shard_count > 1 ||
      (config_.remote_only && request.shards > 1 && group_count != 0)) {
    run_sharded(request, compiled, plan_cache_key, id,
                std::max<std::size_t>(1, shard_count), expected_records,
                root.id(), should_stop, journal.get(), out);
  } else {
    run_in_process(request, compiled, id, expected_records, root.id(),
                   should_stop, journal.get(), out);
  }
  {
    // A journal that reaches this point replayed every record the campaign
    // settled; follow replies report it as `complete` (a cancelled campaign
    // keeps whatever it streamed before the cut, marked `partial`).
    std::lock_guard lock(journal_mutex_);
    journal->complete = cancel_code(*cancel).empty();
  }
  // The root span closes here so the drain below sees it; the timeline,
  // phase totals and (optionally) the JSON artifact settle with it.
  root.close();
  finish_campaign_profile(root.id(), id, request.name, request.client);
  // `ticket` dies here: the resource claim is released and the next
  // conflicting campaign in the queue wakes up.
}

void CampaignService::run_in_process(
    const CampaignRequest& request,
    const std::shared_ptr<const orchestrator::CompiledCampaign>& compiled,
    std::uint64_t id, std::size_t expected_records, std::uint64_t root_span,
    const orchestrator::StopFn& should_stop, CampaignJournal* journal,
    std::ostream& out) {
  JobQueue queue;
  orchestrator::push_groups(queue, compiled->groups);

  const std::uint64_t options_fp =
      orchestrator::options_fingerprint(request.options());
  std::mutex out_mutex;  // workers stream concurrently
  std::size_t streamed = 0;
  orchestrator::CampaignOutputs outputs;
  SchedulerLease lease(*this, request);
  // Per-job `execute` spans, parented under this campaign's root (worker
  // threads carry no inherited scope). The sink is cleared before the lease
  // returns the scheduler to the pool — the next campaign sets its own.
  lease.scheduler().set_profile_sink(&profiler_, root_span);
  struct SinkGuard {
    CampaignScheduler& scheduler;
    ~SinkGuard() { scheduler.set_profile_sink(nullptr); }
  } sink_guard{lease.scheduler()};
  try {
    outputs = lease.scheduler().run(
        queue, [&](const ExperimentJob& job, const MeasurementRecord& record,
                   bool /*from_cache*/) {
          // Record encoding + streamed write — a `serialize` span nested
          // under the job's `execute` span (the callback runs inside it).
          obs::TimelineProfiler::Scope serialize(
              &profiler_, obs::Phase::kSerialize,
              obs::TimelineProfiler::kInheritParent, "record");
          const orchestrator::CacheKey key =
              orchestrator::key_for_job(job, options_fp);
          journal_append(journal, key);
          std::lock_guard lock(out_mutex);
          out << "record " << orchestrator::format_store_entry(key, record)
              << '\n';
          ++streamed;
          out << "progress " << streamed << "/" << expected_records << '\n';
          out.flush();
        },
        should_stop);
  } catch (const orchestrator::CampaignStopped& e) {
    // The stop predicate fired between jobs: settled records kept their
    // cache entries, so a resubmit completes only the remainder.
    const std::uint64_t now = profiler_.now();
    profiler_.record(obs::Phase::kAbort, now, now, root_span, e.code());
    note_cancelled(e.code());
    {
      std::lock_guard lock(totals_mutex_);
      totals_.records_streamed += streamed;
    }
    out << e.code() << " campaign " << id << '\n';
    out << "error " << e.code() << " campaign " << id << " records "
        << streamed << " of " << expected_records << " streamed before stop\n";
    return;
  } catch (const std::exception& e) {
    // The scheduler is poisoned only for this run; the next campaign gets a
    // fresh run() on the same pool.
    out << "error exec-failed campaign " << id << " failed: "
        << one_line(e.what()) << '\n';
    return;
  }

  {
    std::lock_guard lock(totals_mutex_);
    ++totals_.campaigns;
    totals_.records_streamed += streamed;
    totals_.jobs_executed += outputs.stats.jobs_executed;
    totals_.cache_hits += outputs.stats.cache_hits;
  }
  out << "done campaign " << id << " records " << streamed << " executed "
      << outputs.stats.jobs_executed << " hits " << outputs.stats.cache_hits
      << '\n';
}

void CampaignService::run_sharded(
    const CampaignRequest& request,
    const std::shared_ptr<const orchestrator::CompiledCampaign>& compiled,
    const std::string& plan_cache_key, std::uint64_t id,
    std::size_t shard_count, std::size_t expected_records,
    std::uint64_t root_span, const orchestrator::StopFn& should_stop,
    CampaignJournal* journal, std::ostream& out) {
  const std::vector<orchestrator::Campaign::JobGroup>& groups =
      compiled->groups;
  const std::uint64_t options_fp =
      orchestrator::options_fingerprint(request.options());

  // Warm-cache serving + shard planning are scheduling work — one `schedule`
  // span (nested under the campaign root, still open on this thread).
  obs::TimelineProfiler::Scope schedule(&profiler_, obs::Phase::kSchedule,
                                        obs::TimelineProfiler::kInheritParent,
                                        "plan-shards");

  // Serve every group the warm cache already holds before planning shards:
  // a sharded rerun streams its repeated points instantly and only the
  // missing groups cost a worker. Each group has exactly one cacheable job
  // — its root — so a root hit settles the whole group.
  std::size_t streamed = 0;
  std::size_t warm_hits = 0;
  // Every entry line this campaign has streamed. A shard retried after its
  // worker died — or rerun on the local pool — replays records its first
  // attempt already shipped; the set keeps the client's record stream
  // exactly-once (identical keys carry bit-identical records, so the line
  // itself is the dedupe key).
  std::unordered_set<std::string> seen;
  std::vector<std::size_t> pending;  // group indices the workers must run
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const ExperimentJob& root = groups[i].jobs.front();
    std::optional<MeasurementRecord> hit;
    if (orchestrator::is_cacheable(root.kind)) {
      hit = cache_.lookup(orchestrator::key_for_job(root, options_fp));
    }
    if (hit.has_value()) {
      const orchestrator::CacheKey key =
          orchestrator::key_for_job(root, options_fp);
      const std::string entry = orchestrator::format_store_entry(key, *hit);
      seen.insert(entry);
      journal_append(journal, key);
      out << "record " << entry << '\n';
      ++streamed;
      ++warm_hits;
      out << "progress " << streamed << "/" << expected_records << '\n';
    } else {
      pending.push_back(i);
    }
  }
  out.flush();

  // Plan only the pending groups; plan indices are positions in `pending`,
  // mapped back to campaign group indices for the workers.
  const std::size_t effective_shards =
      std::max<std::size_t>(1, std::min(shard_count, pending.size()));
  const auto plan_pending = [&] {
    std::vector<orchestrator::Campaign::JobGroup> pending_groups;
    pending_groups.reserve(pending.size());
    for (const std::size_t index : pending) {
      pending_groups.push_back(groups[index]);
    }
    return plan_shards(pending_groups, effective_shards).shard_groups;
  };
  // When the warm cache served nothing, `pending` is the full ascending
  // group list — exactly the partition the PlanCache memoizes per shard
  // count. Any warm hit shrinks the pending set, and the memo no longer
  // applies; plan fresh.
  std::shared_ptr<const std::vector<std::vector<std::size_t>>> memoized;
  if (pending.size() == groups.size()) {
    memoized =
        plan_cache_.shard_partition(plan_cache_key, effective_shards,
                                    plan_pending);
  }
  const std::vector<std::vector<std::size_t>> planned =
      memoized == nullptr ? plan_pending()
                          : std::vector<std::vector<std::size_t>>{};
  const std::vector<std::vector<std::size_t>>& shard_groups =
      memoized == nullptr ? planned : *memoized;

  // Shard work lists: campaign group indices per non-empty shard. Which
  // transport runs them — remote workers over frames, or local workers
  // over tailed disk stores — is decided below; the plan is the same.
  std::vector<WorkerPool::ShardTask> tasks;
  for (std::size_t shard = 0; shard < shard_groups.size(); ++shard) {
    if (shard_groups[shard].empty()) {
      continue;
    }
    WorkerPool::ShardTask task;
    task.shard_index = shard;
    for (const std::size_t pending_index : shard_groups[shard]) {
      task.groups.push_back(pending[pending_index]);
    }
    tasks.push_back(std::move(task));
  }
  schedule.close();

  std::size_t merged = 0;
  std::size_t remote_executed = 0;
  std::size_t retries = 0;
  std::string failure;
  bool remote = false;
  std::vector<WorkerPool::ShardTask> local_tasks = tasks;
  if (!tasks.empty() &&
      (config_.remote_only || registry_.idle_count() > 0)) {
    // Remote transport: connected `ao_worker --connect` processes exchange
    // stores over their sockets — no shared filesystem. Falls back to the
    // local path (returns false) when every worker was snatched by a
    // concurrent campaign, unless remote_only forbids it.
    std::vector<WorkerPool::ShardTask> leftover;
    remote = run_shards_remote(request, tasks, expected_records, root_span,
                               should_stop, journal, &seen, &streamed,
                               &merged, &remote_executed, &retries, &leftover,
                               &failure, out);
    if (remote) {
      if (config_.remote_only) {
        // Leftover shards may not touch this host; report them (unless the
        // campaign was cancelled — then the cancel is the story).
        if (!leftover.empty() && failure.empty() &&
            (!should_stop || should_stop().empty())) {
          failure = "shard " + std::to_string(leftover.front().shard_index) +
                    " never ran (no healthy remote worker left; remote-only)";
        }
        local_tasks.clear();
      } else {
        // Shards that produced nothing remotely (a stale dead endpoint, a
        // worker lost before its first record) rerun on the local pool —
        // a flaky worker farm degrades to the local transport instead of
        // failing a campaign this daemon could run itself.
        local_tasks = std::move(leftover);
      }
    }
  }
  // Cancellation observed between the transports: leftover shards stay
  // unrun — the local pool has no mid-flight stop hook, so the check
  // happens before it launches anything.
  std::string stop_code = should_stop ? should_stop() : std::string{};
  if (!stop_code.empty()) {
    local_tasks.clear();
  }
  if (!local_tasks.empty()) {
    // Local transport: spawned processes (or threads) write per-shard disk
    // stores the service tails. The campaign id keeps concurrent sharded
    // campaigns' scratch files apart even when they share a name.
    const std::string base =
        config_.shard_dir + "/" + request.name + "-c" + std::to_string(id);
    std::vector<StoreTail> tails;
    for (WorkerPool::ShardTask& task : local_tasks) {
      task.store_path =
          base + "-shard" + std::to_string(task.shard_index) + ".aocache";
      std::remove(task.store_path.c_str());  // never tail a stale store
      tails.push_back({task.store_path, 0, task.shard_index, 0});
      out << "shard " << task.shard_index << " start local\n";
    }
    out.flush();
    const auto drain = [&] {
      for (StoreTail& tail : tails) {
        tail.poll([&](const std::string& line) {
          // Only structurally sound entries are streamed (the merge below
          // re-validates through ResultCache::load anyway), and only lines
          // no remote attempt of this shard already shipped.
          const auto parsed = orchestrator::parse_store_entry(line);
          if (parsed.has_value() && seen.insert(line).second) {
            journal_append(journal, parsed->first);
            out << "record " << line << '\n';
            ++streamed;
            ++tail.records;
            out << "progress " << streamed << "/" << expected_records
                << '\n';
          }
        });
      }
      out.flush();
    };

    WorkerPool pool(config_.worker_binary);
    const std::uint64_t shards_start_ns = profiler_.now();
    pool.start(request, base + ".request", local_tasks);
    while (pool.busy()) {
      drain();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    const std::vector<WorkerPool::ShardOutcome> outcomes = pool.wait();
    const std::uint64_t shards_end_ns = profiler_.now();
    drain();  // the final records written between the last poll and exit
    // One `shard` span per local shard, measured manually: the pool's
    // workers run in their own processes, so start/end are observed from
    // this tail loop, not from inside the shard.
    for (const auto& task : local_tasks) {
      profiler_.record(obs::Phase::kShard, shards_start_ns, shards_end_ns,
                       root_span,
                       "shard-" + std::to_string(task.shard_index) + " local");
    }

    // Merge every produced store into the warm cache (merge_store
    // propagates the entries to the service's own persistent store) —
    // conflict-free by CacheKey (two shards never run the same group, and
    // identical keys carry bit-identical records). A failed shard's partial
    // store still merges: its finished points are real measurements.
    for (const auto& task : local_tasks) {
      merged += cache_.merge_store(task.store_path);
    }
    for (const auto& outcome : outcomes) {
      std::size_t records = 0;
      for (const StoreTail& tail : tails) {
        if (tail.shard_index == outcome.shard_index) {
          records = tail.records;
        }
      }
      if (outcome.exit_code == 0) {
        out << "shard " << outcome.shard_index << " done records " << records
            << " worker local\n";
      } else {
        out << "shard " << outcome.shard_index << " error exit "
            << outcome.exit_code;
        if (!outcome.error.empty()) {
          out << ' ' << one_line(outcome.error);
        }
        out << '\n';
        if (failure.empty()) {
          failure = "shard " + std::to_string(outcome.shard_index) +
                    " failed (exit " + std::to_string(outcome.exit_code) +
                    ")" + (outcome.error.empty() ? "" : ": " + outcome.error);
        }
      }
    }
    out.flush();
  }

  {
    std::lock_guard lock(totals_mutex_);
    ++totals_.campaigns;
    ++totals_.sharded_campaigns;
    totals_.records_streamed += streamed;
    totals_.cache_hits += warm_hits;
    totals_.merged_entries += merged;
    totals_.remote_shards += remote_executed;
    totals_.shard_retries += retries;
  }
  if (!failure.empty()) {
    out << "error exec-failed campaign " << id << " " << one_line(failure)
        << '\n';
    return;
  }
  if (!stop_code.empty()) {
    // Cancelled mid-campaign: everything streamed/merged so far is real and
    // kept (the warm cache makes a resubmit finish only the remainder).
    const std::uint64_t now = profiler_.now();
    profiler_.record(obs::Phase::kAbort, now, now, root_span, stop_code);
    note_cancelled(stop_code);
    out << stop_code << " campaign " << id << '\n';
    out << "error " << stop_code << " campaign " << id << " records "
        << streamed << " of " << expected_records << " streamed before stop\n";
    return;
  }
  out << "done campaign " << id << " records " << streamed << " merged "
      << merged << " hits " << warm_hits << " shards " << tasks.size();
  if (remote) {
    out << " remote " << remote_executed;
  }
  out << '\n';
}

bool CampaignService::run_shards_remote(
    const CampaignRequest& request,
    const std::vector<WorkerPool::ShardTask>& tasks,
    std::size_t expected_records, std::uint64_t root_span,
    const orchestrator::StopFn& should_stop, CampaignJournal* journal,
    std::unordered_set<std::string>* seen, std::size_t* streamed,
    std::size_t* merged, std::size_t* remote_executed,
    std::size_t* retries_used, std::vector<WorkerPool::ShardTask>* leftover,
    std::string* failure, std::ostream& out) {
  // Retire endpoints that stopped answering before handing out leases: a
  // worker that died while parked must not cost a shard its first attempt.
  registry_.heartbeat();

  // Check out one lease per shard when possible; fewer leases simply run
  // the task list sequentially per worker. remote_only waits for the first
  // worker to connect (a launch race is normal operations); otherwise only
  // already-idle workers are taken.
  std::vector<std::unique_ptr<WorkerRegistry::Lease>> leases;
  auto first = registry_.acquire(config_.remote_only ? config_.remote_wait_ms
                                                     : 0);
  if (first == nullptr) {
    if (!config_.remote_only) {
      return false;  // all workers got snatched; run the shards locally
    }
    *failure = "no remote workers connected (remote-only mode; waited " +
               std::to_string(config_.remote_wait_ms) + " ms)";
    return true;
  }
  leases.push_back(std::move(first));
  while (leases.size() < tasks.size()) {
    auto lease = registry_.acquire(0);
    if (lease == nullptr) {
      break;
    }
    leases.push_back(std::move(lease));
  }

  // Shared work state, guarded by work_mutex: the undispatched work list
  // (a shard enters more than once only after its endpoint died), the
  // per-campaign retry budget, and each shard's settlement. partial_lines
  // banks the entry lines every lost attempt managed to ship — they merge
  // below even when no retry succeeds.
  struct Work {
    std::size_t task = 0;
    std::size_t attempt = 0;
  };
  std::mutex work_mutex;
  std::deque<Work> work;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    work.push_back({i, 0});
  }
  std::size_t retries_left = request.shard_retries;
  std::vector<char> settled(tasks.size(), 0);
  std::vector<RemoteShardOutcome> outcomes(tasks.size());
  std::vector<std::vector<std::string>> partial_lines(tasks.size());

  // All client writes (records, progress, shard events) synchronize on
  // out_mutex; `seen` is guarded by it too.
  std::mutex out_mutex;
  const auto stream_line = [&](const std::string& line) {
    // Stream each entry the moment its frame arrives — unless an earlier
    // attempt of a retried shard already shipped it. The merge below
    // re-validates everything through merge_buffer anyway.
    const auto parsed = orchestrator::parse_store_entry(line);
    if (!parsed.has_value()) {
      return;
    }
    obs::TimelineProfiler::Scope serialize(
        &profiler_, obs::Phase::kSerialize,
        obs::TimelineProfiler::kInheritParent, "record");
    std::lock_guard lock(out_mutex);
    if (!seen->insert(line).second) {
      return;
    }
    journal_append(journal, parsed->first);
    out << "record " << line << '\n';
    ++*streamed;
    out << "progress " << *streamed << "/" << expected_records << '\n';
    out.flush();
  };

  // One driver per leased worker drains the work list. A driver whose
  // endpoint dies requeues the shard (budget permitting), retires the lease
  // and exits — the retry runs on a DIFFERENT worker: a surviving driver,
  // or a fresh lease from the round loop below.
  const auto drive = [&](WorkerRegistry::Lease* lease) {
    for (;;) {
      if (should_stop && !should_stop().empty()) {
        return;  // cancelled: leave the remaining work unrun
      }
      Work item;
      {
        std::lock_guard lock(work_mutex);
        if (work.empty()) {
          return;
        }
        item = work.front();
        work.pop_front();
      }
      const std::size_t i = item.task;
      {
        std::lock_guard lock(out_mutex);
        out << "shard " << tasks[i].shard_index
            << (item.attempt == 0 ? " start" : " retry") << " worker "
            << lease->name() << '\n';
        out.flush();
      }
      if (item.attempt != 0) {
        // A `retry` marker span under the campaign root: when and where the
        // shard was re-dispatched (the attempt's own time is its `shard`
        // span, as always).
        const std::uint64_t now = profiler_.now();
        profiler_.record(obs::Phase::kRetry, now, now, root_span,
                         "shard-" + std::to_string(tasks[i].shard_index) +
                             " worker " + lease->name());
      }
      // One `shard` span per remote round-trip, parented explicitly under
      // the campaign root (this driver thread has no inherited scope); the
      // conversation's `transport` span nests under it inside
      // run_remote_shard.
      obs::TimelineProfiler::Scope shard_span(
          &profiler_, obs::Phase::kShard, root_span,
          "shard-" + std::to_string(tasks[i].shard_index) + " worker " +
              lease->name());
      // The graft context stamps this endpoint's name on the worker spans
      // its `spans` frame ships and aligns their clocks with the registry's
      // heartbeat offset estimate (start-aligned when none exists yet).
      ShardGraft graft;
      graft.origin = lease->name();
      graft.has_clock_offset = lease->clock_offset(&graft.clock_offset_ns);
      RemoteShardOutcome outcome = run_remote_shard(
          lease->in(), lease->out(), request, tasks[i].shard_index,
          tasks[i].groups, stream_line, &profiler_, &graft);
      shard_span.close();
      if (!outcome.connection_lost) {
        // Done, or a clean shard-error over a healthy connection: the shard
        // is settled either way and this worker keeps serving.
        if (outcome.ok) {
          lease->note_shard_done();
        }
        {
          std::lock_guard lock(out_mutex);
          if (outcome.ok) {
            out << "shard " << outcome.shard_index << " done records "
                << outcome.records << " worker " << lease->name() << '\n';
          } else {
            out << "shard " << outcome.shard_index << " error "
                << one_line(outcome.error) << '\n';
          }
          out.flush();
        }
        std::lock_guard lock(work_mutex);
        settled[i] = 1;
        outcomes[i] = std::move(outcome);
        continue;
      }
      // The endpoint died mid-conversation. Bank the lines that made it
      // across, then spend one retry if the budget allows — otherwise the
      // shard settles as lost.
      bool retrying = false;
      {
        std::lock_guard lock(work_mutex);
        auto& bank = partial_lines[i];
        bank.insert(bank.end(), outcome.lines.begin(), outcome.lines.end());
        if (retries_left > 0) {
          --retries_left;
          ++*retries_used;
          work.push_back({i, item.attempt + 1});
          retrying = true;
        } else {
          settled[i] = 1;
          outcomes[i] = std::move(outcome);
        }
      }
      {
        std::lock_guard lock(out_mutex);
        out << "shard " << tasks[i].shard_index << " lost worker "
            << lease->name()
            << (retrying ? " rescheduling" : " retry-budget-exhausted")
            << '\n';
        out.flush();
      }
      lease->mark_failed();
      return;  // this endpoint (and driver) is done
    }
  };

  // Rounds: run the current leases to completion, then — when dead
  // endpoints left requeued work and no driver survived — lease whatever
  // healthy workers remain and go again. No healthy worker left ends the
  // loop with the work unrun (it surfaces through `leftover`).
  for (;;) {
    std::vector<std::thread> drivers;
    drivers.reserve(leases.size());
    for (auto& lease_ptr : leases) {
      drivers.emplace_back(drive, lease_ptr.get());
    }
    for (std::thread& driver : drivers) {
      driver.join();
    }
    leases.clear();  // healthy workers return to the idle pool
    std::size_t remaining = 0;
    {
      std::lock_guard lock(work_mutex);
      remaining = work.size();
    }
    if (remaining == 0 || (should_stop && !should_stop().empty())) {
      break;
    }
    registry_.heartbeat();  // don't lease an endpoint that just died parked
    while (leases.size() < remaining) {
      auto lease = registry_.acquire(0);
      if (lease == nullptr) {
        break;
      }
      leases.push_back(std::move(lease));
    }
    if (leases.empty()) {
      break;  // nobody left to run the remaining shards
    }
  }

  // Merge what each shard shipped. A completed shard's final `store` frame
  // is authoritative (byte-for-byte the store a local worker would have
  // written) and already covers any banked partial lines — merges are
  // idempotent by CacheKey, identical keys carry bit-identical records.
  // For everything else the banked partials merge (real measurements are
  // never discarded) and the shard either lands in `leftover` or reports a
  // structured failure.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto merge_lines = [&](const std::vector<std::string>& lines) {
      if (lines.empty()) {
        return;
      }
      std::string partial = orchestrator::store_header_line();
      partial += '\n';
      for (const std::string& line : lines) {
        partial += line;
        partial += '\n';
      }
      *merged += cache_.merge_buffer(partial);
    };
    if (!settled[i]) {
      // Never dispatched, or still requeued when the drivers ran out (or
      // the campaign was cancelled): the caller decides what happens next.
      merge_lines(partial_lines[i]);
      leftover->push_back(tasks[i]);
      continue;
    }
    const RemoteShardOutcome& outcome = outcomes[i];
    if (outcome.ok) {
      ++*remote_executed;
      *merged += cache_.merge_buffer(outcome.store);
      continue;
    }
    if (outcome.connection_lost) {
      // Every attempt's endpoint died and the retry budget is spent. Under
      // remote_only that is a structured failure — never a hang, never a
      // local run; otherwise the local pool gets the shard (the `seen` set
      // keeps its replayed records off the client stream).
      merge_lines(partial_lines[i]);
      if (config_.remote_only) {
        if (failure->empty()) {
          *failure = "shard " + std::to_string(outcome.shard_index) +
                     " failed (retry budget exhausted): " +
                     one_line(outcome.error);
        }
      } else {
        leftover->push_back(tasks[i]);
      }
      continue;
    }
    // The shard itself failed — a shard-error frame over a healthy
    // connection. A clean failure is deterministic, so rerunning it (on any
    // transport) would only fail again with a worse diagnostic: merge what
    // arrived and report the real error.
    merge_lines(partial_lines[i]);
    merge_lines(outcome.lines);
    if (failure->empty()) {
      *failure = "shard " + std::to_string(outcome.shard_index) +
                 " failed: " + one_line(outcome.error);
    }
  }
  return true;
}

// ----------------------------------------------------------- read path ----

namespace {

/// Query replies default to one modest page; the cap bounds what a single
/// command can make the daemon read back from disk.
constexpr std::size_t kDefaultQueryLimit = 64;
constexpr std::size_t kMaxQueryLimit = 4096;

/// Strict decimal parse (the query grammar's size/limit values); rejects
/// empty strings, signs and any non-digit.
bool parse_decimal_u64(const std::string& text, std::uint64_t* value) {
  if (text.empty() || text.size() > 20) {
    return false;
  }
  std::uint64_t parsed = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *value = parsed;
  return true;
}

/// Reverse of orchestrator::to_string(JobKind) — the `kind` filter values
/// are the documented job-kind names ("gemm-measure", "sme-gemm", ...).
std::optional<JobKind> job_kind_from_name(const std::string& name) {
  for (std::size_t i = 0; i < orchestrator::kJobKindCount; ++i) {
    const auto kind = static_cast<JobKind>(i);
    if (orchestrator::to_string(kind) == name) {
      return kind;
    }
  }
  return std::nullopt;
}

}  // namespace

std::shared_ptr<CampaignService::CampaignJournal> CampaignService::open_journal(
    std::uint64_t id, const std::string& name) {
  auto journal = std::make_shared<CampaignJournal>();
  journal->id = id;
  journal->name = name;
  std::lock_guard lock(journal_mutex_);
  journals_.push_back(journal);
  while (journals_.size() > kMaxJournals) {
    journals_.pop_front();
  }
  return journal;
}

void CampaignService::journal_append(CampaignJournal* journal,
                                     const orchestrator::CacheKey& key) {
  if (journal == nullptr) {
    return;
  }
  std::lock_guard lock(journal_mutex_);
  journal->keys.push_back(key);
}

std::shared_ptr<CampaignService::CampaignJournal> CampaignService::find_journal(
    const std::string& name) const {
  std::lock_guard lock(journal_mutex_);
  for (auto it = journals_.rbegin(); it != journals_.rend(); ++it) {
    if ((*it)->name == name) {
      return *it;
    }
  }
  return nullptr;
}

void CampaignService::note_query_span(std::uint64_t started_ns,
                                      const std::string& label) {
  // Read-path spans have no campaign root to ride into a timeline, so their
  // phase totals and histogram observation settle here, directly.
  const std::uint64_t now = profiler_.now();
  profiler_.record(obs::Phase::kQuery, started_ns, now, 0, label);
  const std::uint64_t duration = now - started_ns;
  {
    std::lock_guard lock(profile_mutex_);
    auto& [count, total_ns] =
        phase_totals_[static_cast<std::size_t>(obs::Phase::kQuery)];
    ++count;
    total_ns += duration;
  }
  metrics_.observe(obs::Metric::kPhaseDurationNs, duration, "query");
}

void CampaignService::reply_query(const std::vector<std::string>& words,
                                  const std::string& line, std::ostream& out) {
  const std::uint64_t started_ns = profiler_.now();
  orchestrator::QueryFilter filter;
  std::size_t limit = kDefaultQueryLimit;
  std::string cursor;
  for (std::size_t i = 1; i < words.size(); i += 2) {
    if (i + 1 >= words.size()) {
      reply_error(out, "bad-query", "filter '" + words[i] + "' needs a value",
                  line);
      return;
    }
    const std::string& keyword = words[i];
    const std::string& value = words[i + 1];
    std::uint64_t number = 0;
    if (keyword == "kind") {
      const auto kind = job_kind_from_name(value);
      if (!kind.has_value()) {
        reply_error(out, "bad-query", "unknown job kind: " + value, line);
        return;
      }
      filter.kind = *kind;
    } else if (keyword == "chip") {
      try {
        filter.chip = soc::chip_model_from_string(value);
      } catch (const std::exception&) {
        reply_error(out, "bad-query", "unknown chip: " + value, line);
        return;
      }
    } else if (keyword == "impl") {
      try {
        filter.impl = gemm_impl_from_string(value);
      } catch (const std::exception&) {
        reply_error(out, "bad-query", "unknown impl: " + value, line);
        return;
      }
    } else if (keyword == "size") {
      if (!parse_decimal_u64(value, &number)) {
        reply_error(out, "bad-query", "bad size: " + value, line);
        return;
      }
      filter.n_min = filter.n_max = number;
    } else if (keyword == "size-min") {
      if (!parse_decimal_u64(value, &number)) {
        reply_error(out, "bad-query", "bad size-min: " + value, line);
        return;
      }
      filter.n_min = number;
    } else if (keyword == "size-max") {
      if (!parse_decimal_u64(value, &number)) {
        reply_error(out, "bad-query", "bad size-max: " + value, line);
        return;
      }
      filter.n_max = number;
    } else if (keyword == "limit") {
      if (!parse_decimal_u64(value, &number) || number < 1 ||
          number > kMaxQueryLimit) {
        reply_error(out, "bad-query",
                    "limit must be in [1, " +
                        std::to_string(kMaxQueryLimit) + "]: " + value,
                    line);
        return;
      }
      limit = static_cast<std::size_t>(number);
    } else if (keyword == "cursor") {
      cursor = value;
    } else {
      reply_error(out, "bad-query", "unknown query filter: " + keyword, line);
      return;
    }
  }

  std::string code;
  const auto page = cache_.query(filter, limit, cursor, &code);
  if (!page.has_value()) {
    if (code == "stale-cursor") {
      std::lock_guard lock(totals_mutex_);
      ++totals_.stale_cursors;
    }
    reply_error(out, code,
                code == "no-store" ? "no write-through store attached"
                : code == "bad-cursor"
                    ? "unparseable cursor token"
                    : "cursor outlived a store rewrite; restart the query",
                line);
    return;
  }
  for (const std::string& entry : page->lines) {
    out << "query-record " << entry << '\n';
  }
  out << "query-page count " << page->lines.size() << " matched "
      << page->matched << " generation " << page->generation << " read "
      << page->entries_read << " cursor "
      << (page->exhausted ? std::string("end") : page->cursor) << '\n';
  {
    std::lock_guard lock(totals_mutex_);
    ++totals_.queries;
    totals_.query_records += page->lines.size();
  }
  note_query_span(started_ns, "indexed read " +
                                  std::to_string(page->entries_read) + "/" +
                                  std::to_string(cache_.store_entries()) +
                                  " matched " +
                                  std::to_string(page->matched));
}

void CampaignService::reply_follow(const std::vector<std::string>& words,
                                   const std::string& line,
                                   std::ostream& out) {
  const std::uint64_t started_ns = profiler_.now();
  if (words.size() != 2 && !(words.size() == 4 && words[2] == "from")) {
    reply_error(out, "bad-request", "usage: follow <name> [from <cursor>]",
                line);
    return;
  }
  const std::string& name = words[1];
  if (!valid_campaign_name(name)) {
    reply_error(out, "bad-name", "invalid campaign name: " + name, line);
    return;
  }
  const std::shared_ptr<CampaignJournal> journal = find_journal(name);
  if (journal == nullptr) {
    reply_error(out, "unknown-campaign",
                "no retained record stream for campaign: " + name, line);
    return;
  }
  std::uint64_t journal_id = 0;
  std::vector<orchestrator::CacheKey> keys;
  bool complete = false;
  {
    // Snapshot under the lock; the replay below reads only the store, so a
    // still-running campaign keeps streaming while we serve the past.
    std::lock_guard lock(journal_mutex_);
    journal_id = journal->id;
    keys = journal->keys;
    complete = journal->complete;
  }
  std::uint64_t position = 0;
  if (words.size() == 4) {
    const auto cursor = decode_follow_cursor(words[3]);
    if (!cursor.has_value()) {
      reply_error(out, "bad-cursor", "unparseable follow cursor", line);
      return;
    }
    if (cursor->campaign_id != journal_id) {
      // A token from an older run of this name: its journal was superseded,
      // so replaying against the newer stream would duplicate or skip
      // records.
      {
        std::lock_guard lock(totals_mutex_);
        ++totals_.stale_cursors;
      }
      reply_error(out, "stale-cursor",
                  "cursor belongs to a superseded campaign run; restart the "
                  "follow",
                  line);
      return;
    }
    if (cursor->position > keys.size()) {
      reply_error(out, "bad-cursor", "cursor beyond the retained stream",
                  line);
      return;
    }
    position = cursor->position;
  }

  std::size_t sent = 0;
  for (std::size_t i = static_cast<std::size_t>(position); i < keys.size();
       ++i) {
    const auto entry = cache_.fetch_entry(keys[i]);
    if (!entry.has_value()) {
      {
        std::lock_guard lock(totals_mutex_);
        ++totals_.stale_cursors;
      }
      reply_error(out, "stale-cursor",
                  "record " + std::to_string(i) +
                      " left the store (evicted, then compacted away); "
                      "restart the follow",
                  line);
      return;
    }
    // Each record carries the token that resumes AFTER it — the client
    // keeps the last token it read and never sees a record twice.
    out << "follow-record " << encode_follow_cursor(journal_id, i + 1) << ' '
        << *entry << '\n';
    ++sent;
  }
  out << "follow campaign " << journal_id << " name " << name << " records "
      << sent << " position " << keys.size() << " cursor "
      << encode_follow_cursor(journal_id, keys.size()) << " state "
      << (complete ? "complete" : "partial") << '\n';
  {
    std::lock_guard lock(totals_mutex_);
    ++totals_.follows;
    totals_.query_records += sent;
  }
  note_query_span(started_ns,
                  "follow " + name + " records " + std::to_string(sent));
}

}  // namespace ao::service
