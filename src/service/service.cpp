#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

#include "service/shard_planner.hpp"
#include "service/worker_pool.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace ao::service {
namespace {

using orchestrator::CampaignScheduler;
using orchestrator::ExperimentJob;
using orchestrator::JobKind;
using orchestrator::JobQueue;
using orchestrator::MeasurementRecord;

/// Replies must stay line-oriented; exception text is folded onto one line.
std::string one_line(std::string text) {
  std::replace(text.begin(), text.end(), '\n', ' ');
  std::replace(text.begin(), text.end(), '\r', ' ');
  return text;
}

/// The structured error reply: stable code, message, and — when the failure
/// is about a specific input line — that line echoed back, so the client
/// can report exactly which of its request lines was rejected.
void reply_error(std::ostream& out, const std::string& code,
                 const std::string& message, const std::string& input = {}) {
  out << "error " << code << ' ' << one_line(message);
  if (!input.empty()) {
    out << " | line: " << one_line(input);
  }
  out << '\n';
}

/// Records a campaign will stream: one per job that produces a cacheable
/// record (every kind except the verify jobs, whose verdict rides on the
/// measurement's record).
std::size_t expected_record_count(
    const std::vector<orchestrator::Campaign::JobGroup>& groups) {
  std::size_t count = 0;
  for (const auto& group : groups) {
    for (const auto& job : group.jobs) {
      if (orchestrator::is_cacheable(job.kind)) {
        ++count;
      }
    }
  }
  return count;
}

/// Incremental reader over one shard's write-through store: consumes the
/// complete lines appended since the last poll (a half-flushed tail line is
/// left for the next round), skipping the version header.
struct StoreTail {
  std::string path;
  std::streamoff offset = 0;

  template <typename LineFn>
  void poll(LineFn&& on_line) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return;  // the worker has not created the store yet
    }
    in.seekg(offset);
    std::ostringstream chunk;
    chunk << in.rdbuf();
    const std::string buffered = chunk.str();
    std::size_t pos = 0;
    for (;;) {
      const std::size_t newline = buffered.find('\n', pos);
      if (newline == std::string::npos) {
        break;
      }
      const std::string line = buffered.substr(pos, newline - pos);
      pos = newline + 1;
      if (!line.empty() && line != orchestrator::store_header_line()) {
        on_line(line);
      }
    }
    offset += static_cast<std::streamoff>(pos);
  }
};

}  // namespace

/// Checks a scheduler out of the idle pool (or builds one) for exactly one
/// campaign. Concurrent campaigns each hold their own scheduler — run() is
/// not reentrant per instance — while sequential campaigns that agree on
/// options and concurrency reuse a warm SystemPool.
class CampaignService::SchedulerLease {
 public:
  SchedulerLease(CampaignService& service, const CampaignRequest& request)
      : service_(&service) {
    key_ = orchestrator::options_fingerprint(request.options());
    key_ = util::fnv1a_mix(key_, request.workers);
    {
      std::lock_guard lock(service.scheduler_pool_mutex_);
      const auto it = service.idle_schedulers_.find(key_);
      if (it != service.idle_schedulers_.end()) {
        scheduler_ = std::move(it->second);
        service.idle_schedulers_.erase(it);
      }
    }
    if (scheduler_ == nullptr) {
      CampaignScheduler::Options options;
      options.concurrency = request.workers;
      scheduler_ = std::make_unique<CampaignScheduler>(request.options(),
                                                       options,
                                                       &service.cache_);
    }
  }

  ~SchedulerLease() {
    std::lock_guard lock(service_->scheduler_pool_mutex_);
    if (service_->idle_schedulers_.size() < kMaxIdle) {
      service_->idle_schedulers_.emplace(key_, std::move(scheduler_));
    }
    // Beyond the cap the scheduler (and its SystemPool) is simply dropped —
    // bounded memory beats a marginally warmer pool.
  }

  CampaignScheduler& scheduler() { return *scheduler_; }

 private:
  static constexpr std::size_t kMaxIdle = 8;
  CampaignService* service_;
  std::uint64_t key_ = 0;
  std::unique_ptr<CampaignScheduler> scheduler_;
};

CampaignService::CampaignService(Config config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity),
      queue_(config_.limits) {
  if (!config_.store_path.empty()) {
    cache_.load(config_.store_path);
    cache_.persist_to(config_.store_path);
  }
}

CampaignService::Totals CampaignService::totals() const {
  std::lock_guard lock(totals_mutex_);
  return totals_;
}

std::vector<std::string> CampaignService::start_log() const {
  std::lock_guard lock(totals_mutex_);
  return start_log_;
}

bool CampaignService::serve(std::istream& in, std::ostream& out) {
  RequestBuilder builder;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const std::vector<std::string> words = split_words(line);
    if (words.empty()) {
      continue;
    }
    try {
      if (builder.open()) {
        if (words[0] == "run") {
          const CampaignRequest request = builder.take();
          if (request.chips.empty()) {
            reply_error(out, "bad-request", "campaign needs a 'chips' line",
                        line);
          } else if (!request.has_work()) {
            reply_error(out, "bad-request",
                        "empty campaign: no job family requested", line);
          } else {
            run_campaign(request, out);
          }
        } else if (words[0] == "abort") {
          builder.discard();
          out << "ok abort\n";
        } else if (words[0] == "begin") {
          reply_error(out, "bad-state",
                      "nested begin (finish the open request with 'run' or "
                      "'abort')",
                      line);
        } else if (const auto error = builder.apply(line)) {
          reply_error(out, error->code, error->message, line);
        }
      } else if (words[0] == "begin") {
        if (const auto error =
                builder.begin(words.size() > 1 ? words[1] : "")) {
          reply_error(out, error->code, error->message, line);
        }
      } else if (words[0] == "ping") {
        out << "pong\n";
      } else if (words[0] == "stats") {
        // Per-client queue depth/concurrency first; the aggregate `stats`
        // line is the terminal reply clients stop reading at.
        for (const auto& [client, s] : queue_.client_stats()) {
          out << "stats-client " << client << " queued " << s.queued
              << " running " << s.running << '\n';
        }
        const Totals t = totals();
        out << "stats campaigns " << t.campaigns << " sharded "
            << t.sharded_campaigns << " records " << t.records_streamed
            << " executed " << t.jobs_executed << " hits " << t.cache_hits
            << " merged " << t.merged_entries << " cache-entries "
            << cache_.size() << " store-entries " << cache_.store_entries()
            << " running " << queue_.running_count() << " queued "
            << queue_.queued_count() << " peak " << queue_.peak_running()
            << " rejected " << queue_.rejections() << '\n';
      } else if (words[0] == "compact") {
        if (cache_.persist_path().empty()) {
          reply_error(out, "no-store", "no write-through store attached",
                      line);
        } else {
          out << "ok compact " << cache_.compact() << " entries\n";
        }
      } else if (words[0] == "shutdown") {
        out << "ok shutdown\n";
        out.flush();
        return true;
      } else {
        reply_error(out, "unknown-command", "unknown command: " + words[0],
                    line);
      }
    } catch (const std::exception& e) {
      reply_error(out, "exec-failed", e.what(), line);
    }
    out.flush();
  }
  return false;
}

void CampaignService::run_campaign(const CampaignRequest& request,
                                   std::ostream& out) {
  // Admission first: the queue decides whether this campaign may run now
  // (disjoint resource classes), must wait (conflict / quota / global
  // concurrency), or is rejected outright (queued-campaign quota).
  const ResourceMask resources = resources_for(request);
  CampaignQueue::Rejection rejection;
  auto ticket =
      queue_.submit(request.client, request.priority, resources, &rejection);
  if (ticket == nullptr) {
    out << "preempted-by-quota client " << request.client << " campaign "
        << request.name << '\n';
    reply_error(out, rejection.code, rejection.message, "run");
    out.flush();
    return;
  }

  const std::uint64_t id = next_campaign_id_.fetch_add(1);
  const orchestrator::Campaign campaign = request.to_campaign();
  const auto groups = campaign.groups();
  std::size_t jobs = 0;
  for (const auto& group : groups) {
    jobs += group.jobs.size();
  }
  const std::size_t expected_records = expected_record_count(groups);
  // Never more shards than groups; a surplus would only spawn idle workers.
  const std::size_t shard_count = std::min(request.shards, groups.size());

  // The header goes out before admission completes, so a queued client
  // knows its campaign id (and resource claim) while it waits.
  out << "ok campaign " << id << " jobs " << jobs << " records "
      << expected_records << " shards "
      << std::max<std::size_t>(1, shard_count) << " resources "
      << resources_to_string(resources) << " priority " << request.priority
      << " client " << request.client << '\n';
  out.flush();

  ticket->wait([&](std::size_t position) {
    out << "queued " << position << '\n';
    out.flush();
  });
  {
    std::lock_guard lock(totals_mutex_);
    // Bounded start history (the queue tests assert admission order on it;
    // stats introspection reads it) — a long-lived daemon must not grow it
    // per campaign forever.
    if (start_log_.size() >= kStartLogCapacity) {
      start_log_.erase(start_log_.begin());
    }
    start_log_.push_back(request.name);
  }
  out << "started campaign " << id << '\n';
  out.flush();

  if (shard_count > 1) {
    run_sharded(request, id, shard_count, expected_records, out);
  } else {
    run_in_process(request, id, expected_records, out);
  }
  // `ticket` dies here: the resource claim is released and the next
  // conflicting campaign in the queue wakes up.
}

void CampaignService::run_in_process(const CampaignRequest& request,
                                     std::uint64_t id,
                                     std::size_t expected_records,
                                     std::ostream& out) {
  const orchestrator::Campaign campaign = request.to_campaign();
  JobQueue queue;
  campaign.expand(queue);

  const std::uint64_t options_fp =
      orchestrator::options_fingerprint(request.options());
  std::mutex out_mutex;  // workers stream concurrently
  std::size_t streamed = 0;
  orchestrator::CampaignOutputs outputs;
  SchedulerLease lease(*this, request);
  try {
    outputs = lease.scheduler().run(
        queue, [&](const ExperimentJob& job, const MeasurementRecord& record,
                   bool /*from_cache*/) {
          const orchestrator::CacheKey key =
              orchestrator::key_for_job(job, options_fp);
          std::lock_guard lock(out_mutex);
          out << "record " << orchestrator::format_store_entry(key, record)
              << '\n';
          ++streamed;
          out << "progress " << streamed << "/" << expected_records << '\n';
          out.flush();
        });
  } catch (const std::exception& e) {
    // The scheduler is poisoned only for this run; the next campaign gets a
    // fresh run() on the same pool.
    out << "error exec-failed campaign " << id << " failed: "
        << one_line(e.what()) << '\n';
    return;
  }

  {
    std::lock_guard lock(totals_mutex_);
    ++totals_.campaigns;
    totals_.records_streamed += streamed;
    totals_.jobs_executed += outputs.stats.jobs_executed;
    totals_.cache_hits += outputs.stats.cache_hits;
  }
  out << "done campaign " << id << " records " << streamed << " executed "
      << outputs.stats.jobs_executed << " hits " << outputs.stats.cache_hits
      << '\n';
}

void CampaignService::run_sharded(const CampaignRequest& request,
                                  std::uint64_t id, std::size_t shard_count,
                                  std::size_t expected_records,
                                  std::ostream& out) {
  const orchestrator::Campaign campaign = request.to_campaign();
  const auto groups = campaign.groups();
  const std::uint64_t options_fp =
      orchestrator::options_fingerprint(request.options());

  // Serve every group the warm cache already holds before planning shards:
  // a sharded rerun streams its repeated points instantly and only the
  // missing groups cost a worker. Each group has exactly one cacheable job
  // — its root — so a root hit settles the whole group.
  std::size_t streamed = 0;
  std::size_t warm_hits = 0;
  std::vector<std::size_t> pending;  // group indices the workers must run
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const ExperimentJob& root = groups[i].jobs.front();
    std::optional<MeasurementRecord> hit;
    if (orchestrator::is_cacheable(root.kind)) {
      hit = cache_.lookup(orchestrator::key_for_job(root, options_fp));
    }
    if (hit.has_value()) {
      out << "record "
          << orchestrator::format_store_entry(
                 orchestrator::key_for_job(root, options_fp), *hit)
          << '\n';
      ++streamed;
      ++warm_hits;
      out << "progress " << streamed << "/" << expected_records << '\n';
    } else {
      pending.push_back(i);
    }
  }
  out.flush();

  // Plan only the pending groups; plan indices are positions in `pending`,
  // mapped back to campaign group indices for the workers.
  std::vector<orchestrator::Campaign::JobGroup> pending_groups;
  pending_groups.reserve(pending.size());
  for (const std::size_t index : pending) {
    pending_groups.push_back(groups[index]);
  }
  const ShardPlan plan =
      plan_shards(pending_groups, std::max<std::size_t>(
                                      1, std::min(shard_count, pending.size())));

  // The campaign id keeps concurrent sharded campaigns' scratch files
  // apart even when they share a name.
  const std::string base =
      config_.shard_dir + "/" + request.name + "-c" + std::to_string(id);
  std::vector<WorkerPool::ShardTask> tasks;
  std::vector<StoreTail> tails;
  for (std::size_t shard = 0; shard < plan.shard_count(); ++shard) {
    if (plan.shard_groups[shard].empty()) {
      continue;
    }
    WorkerPool::ShardTask task;
    task.shard_index = shard;
    for (const std::size_t pending_index : plan.shard_groups[shard]) {
      task.groups.push_back(pending[pending_index]);
    }
    task.store_path = base + "-shard" + std::to_string(shard) + ".aocache";
    std::remove(task.store_path.c_str());  // never tail a stale store
    tails.push_back({task.store_path, 0});
    tasks.push_back(std::move(task));
  }
  const auto drain = [&] {
    for (StoreTail& tail : tails) {
      tail.poll([&](const std::string& line) {
        // Only structurally sound entries are streamed; the merge below
        // re-validates through ResultCache::load anyway.
        if (orchestrator::parse_store_entry(line).has_value()) {
          out << "record " << line << '\n';
          ++streamed;
          out << "progress " << streamed << "/" << expected_records << '\n';
        }
      });
    }
    out.flush();
  };

  WorkerPool pool(config_.worker_binary);
  std::vector<WorkerPool::ShardOutcome> outcomes;
  if (!tasks.empty()) {  // everything may have been served from the cache
    pool.start(request, base + ".request", tasks);
    while (pool.busy()) {
      drain();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    outcomes = pool.wait();
    drain();  // the final records written between the last poll and exit
  }

  // Merge every produced store into the warm cache (merge_store propagates
  // the entries to the service's own persistent store) — conflict-free by
  // CacheKey (two shards never run the same group, and identical keys carry
  // bit-identical records). A failed shard's partial store still merges:
  // its finished points are real measurements.
  std::size_t merged = 0;
  for (const auto& task : tasks) {
    merged += cache_.merge_store(task.store_path);
  }

  std::string failure;
  for (const auto& outcome : outcomes) {
    if (outcome.exit_code != 0) {
      failure = "shard " + std::to_string(outcome.shard_index) +
                " failed (exit " + std::to_string(outcome.exit_code) + ")" +
                (outcome.error.empty() ? "" : ": " + outcome.error);
      break;
    }
  }

  {
    std::lock_guard lock(totals_mutex_);
    ++totals_.campaigns;
    ++totals_.sharded_campaigns;
    totals_.records_streamed += streamed;
    totals_.cache_hits += warm_hits;
    totals_.merged_entries += merged;
  }
  if (!failure.empty()) {
    out << "error exec-failed campaign " << id << " " << one_line(failure)
        << '\n';
    return;
  }
  out << "done campaign " << id << " records " << streamed << " merged "
      << merged << " hits " << warm_hits << " shards " << tasks.size()
      << '\n';
}

}  // namespace ao::service
