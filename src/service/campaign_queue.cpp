#include "service/campaign_queue.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"

namespace ao::service {

ResourceMask resources_for(orchestrator::JobKind kind, soc::GemmImpl impl) {
  using orchestrator::JobKind;
  switch (kind) {
    case JobKind::kGemmMeasure:
    case JobKind::kGemmVerify:
      return soc::is_gpu_impl(impl) ? kResourceGpu : kResourceCpu;
    case JobKind::kStream:
      return kResourceCpu;
    case JobKind::kGpuStream:
      return kResourceGpu;
    case JobKind::kPowerIdle:
      // Package power samples the whole SoC: any concurrent activity on any
      // unit would show up in the window.
      return kResourceAll;
    case JobKind::kPrecisionStudy:
      // Accuracy is host math; throughput comes from the CPU/AMX curves.
      return kResourceCpu;
    case JobKind::kAneInference:
      return kResourceAne;
    case JobKind::kFp64Emulation:
      return kResourceGpu;
    case JobKind::kSmeGemm:
      return kResourceCpu;
  }
  throw util::InvalidArgument("unknown JobKind");
}

ResourceMask resources_for(const CampaignRequest& request) {
  using orchestrator::JobKind;
  ResourceMask mask = 0;
  if (!request.impls.empty() && !request.sizes.empty()) {
    for (const auto impl : request.impls) {
      mask |= resources_for(JobKind::kGemmMeasure, impl);
    }
  }
  const auto impl0 = soc::GemmImpl::kCpuSingle;  // ignored for non-GEMM kinds
  if (!request.stream_threads.empty()) {
    mask |= resources_for(JobKind::kStream, impl0);
  }
  if (request.gpu_stream) {
    mask |= resources_for(JobKind::kGpuStream, impl0);
  }
  if (!request.precision_sizes.empty()) {
    mask |= resources_for(JobKind::kPrecisionStudy, impl0);
  }
  if (!request.ane_sizes.empty()) {
    mask |= resources_for(JobKind::kAneInference, impl0);
  }
  if (!request.fp64emu_sizes.empty()) {
    mask |= resources_for(JobKind::kFp64Emulation, impl0);
  }
  if (!request.sme_sizes.empty()) {
    mask |= resources_for(JobKind::kSmeGemm, impl0);
  }
  if (request.power_idle) {
    mask |= resources_for(JobKind::kPowerIdle, impl0);
  }
  return mask;
}

std::string resources_to_string(ResourceMask mask) {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) {
      out += '+';
    }
    out += name;
  };
  if (mask & kResourceCpu) {
    add("cpu");
  }
  if (mask & kResourceGpu) {
    add("gpu");
  }
  if (mask & kResourceAne) {
    add("ane");
  }
  return out.empty() ? "none" : out;
}

CampaignQueue::CampaignQueue() : CampaignQueue(Limits{}) {}

CampaignQueue::CampaignQueue(Limits limits) : limits_(limits) {}

CampaignQueue::~CampaignQueue() {
  // Tickets borrow the queue; a live ticket here is a caller bug.
  AO_REQUIRE(entries_.empty(), "CampaignQueue destroyed with live tickets");
}

std::unique_ptr<CampaignQueue::Ticket> CampaignQueue::submit(
    const std::string& client, int priority, ResourceMask resources,
    Rejection* rejection, const std::string& name) {
  std::lock_guard lock(mutex_);
  if (limits_.max_queued_per_client != 0) {
    std::size_t queued = 0;
    for (const auto& [seq, entry] : entries_) {
      if (!entry.running && entry.client == client) {
        ++queued;
      }
    }
    if (queued >= limits_.max_queued_per_client) {
      ++rejections_;
      if (rejection != nullptr) {
        rejection->code = "quota-queued";
        rejection->message =
            "client '" + client + "' already has " + std::to_string(queued) +
            " queued campaign(s) (limit " +
            std::to_string(limits_.max_queued_per_client) + ")";
      }
      return nullptr;
    }
  }
  Entry entry;
  entry.seq = next_seq_++;
  entry.priority = priority;
  entry.client = client;
  entry.name = name;
  entry.resources = resources;
  const std::uint64_t seq = entry.seq;
  entries_.emplace(seq, std::move(entry));
  // A new waiter changes every later ticket's position.
  changed_.notify_all();
  return std::unique_ptr<Ticket>(new Ticket(*this, seq));
}

bool CampaignQueue::admissible_locked(const Entry& entry) const {
  if (limits_.max_running != 0 && running_ >= limits_.max_running) {
    return false;
  }
  std::map<std::string, std::size_t> running_per_client;
  for (const auto& [seq, other] : entries_) {
    if (!other.running) {
      continue;
    }
    if (other.resources & entry.resources) {
      return false;  // conflicts with an executing campaign
    }
    ++running_per_client[other.client];
  }
  const auto at_running_quota = [&](const std::string& client) {
    if (limits_.max_running_per_client == 0) {
      return false;
    }
    const auto it = running_per_client.find(client);
    return it != running_per_client.end() &&
           it->second >= limits_.max_running_per_client;
  };
  if (at_running_quota(entry.client)) {
    return false;
  }
  // Never overtake a conflicting better-ranked waiter: a lower-priority
  // campaign may backfill around a blocked one only when their resources
  // are disjoint (starting it cannot delay the better-ranked start).
  // Exception: a waiter held back by its *own client's* running quota does
  // not reserve its place against other clients — one tenant saturating
  // its quota must not idle a unit another tenant could use.
  for (const auto& [seq, other] : entries_) {
    if (other.running || other.seq == entry.seq) {
      continue;
    }
    if (rank_of(other) < rank_of(entry) &&
        (other.resources & entry.resources) &&
        !at_running_quota(other.client)) {
      return false;
    }
  }
  return true;
}

void CampaignQueue::start_locked(Entry& entry) {
  entry.running = true;
  ++running_;
  peak_running_ = std::max(peak_running_, running_);
  // Positions behind this ticket just improved.
  changed_.notify_all();
}

void CampaignQueue::release(std::uint64_t seq) {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(seq);
  if (it == entries_.end()) {
    return;
  }
  if (it->second.running) {
    --running_;
  }
  entries_.erase(it);
  changed_.notify_all();
}

std::size_t CampaignQueue::position_locked(const Entry& entry) const {
  std::size_t ahead = 0;
  for (const auto& [seq, other] : entries_) {
    if (!other.running && other.seq != entry.seq &&
        rank_of(other) < rank_of(entry)) {
      ++ahead;
    }
  }
  return ahead + 1;
}

std::size_t CampaignQueue::running_count() const {
  std::lock_guard lock(mutex_);
  return running_;
}

std::size_t CampaignQueue::queued_count() const {
  std::lock_guard lock(mutex_);
  return entries_.size() - running_;
}

std::size_t CampaignQueue::peak_running() const {
  std::lock_guard lock(mutex_);
  return peak_running_;
}

std::size_t CampaignQueue::rejections() const {
  std::lock_guard lock(mutex_);
  return rejections_;
}

std::map<std::string, CampaignQueue::ClientStats> CampaignQueue::client_stats()
    const {
  std::lock_guard lock(mutex_);
  std::map<std::string, ClientStats> stats;
  for (const auto& [seq, entry] : entries_) {
    ClientStats& s = stats[entry.client];
    if (entry.running) {
      ++s.running;
    } else {
      ++s.queued;
    }
  }
  return stats;
}

std::vector<CampaignQueue::WaitingCampaign> CampaignQueue::waiting() const {
  std::lock_guard lock(mutex_);
  std::vector<const Entry*> pending;
  for (const auto& [seq, entry] : entries_) {
    if (!entry.running) {
      pending.push_back(&entry);
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const Entry* a, const Entry* b) {
              return rank_of(*a) < rank_of(*b);
            });
  std::vector<WaitingCampaign> out;
  out.reserve(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    out.push_back({i + 1, pending[i]->name.empty() ? "-" : pending[i]->name,
                   pending[i]->client, pending[i]->priority,
                   pending[i]->resources});
  }
  return out;
}

void CampaignQueue::poke() {
  std::lock_guard lock(mutex_);
  changed_.notify_all();
}

CampaignQueue::Ticket::~Ticket() { queue_->release(seq_); }

bool CampaignQueue::Ticket::wait(
    const std::function<void(std::size_t)>& on_queued,
    const std::function<bool()>& cancelled) {
  // How often a waiting ticket re-polls its cancel predicate when nothing
  // else wakes it — the deadline-expiry detection latency for a queued
  // campaign (aborts are immediate via poke()).
  constexpr auto kPollInterval = std::chrono::milliseconds(50);
  std::unique_lock lock(queue_->mutex_);
  std::size_t reported = 0;  // 0 = nothing reported yet
  for (;;) {
    Entry& entry = queue_->entries_.at(seq_);
    if (entry.running) {
      return true;
    }
    // Cancellation beats admission: an aborted/expired campaign must never
    // grab its resources in the same wakeup that delivered the cancel.
    if (cancelled && cancelled()) {
      return false;
    }
    if (queue_->admissible_locked(entry)) {
      queue_->start_locked(entry);
      return true;
    }
    const std::size_t pos = queue_->position_locked(entry);
    if (on_queued && pos != reported) {
      reported = pos;
      // The callback runs with the queue lock RELEASED: the service writes
      // (and flushes) a protocol line here, and a client that stops reading
      // its socket must stall only its own session, never the whole queue.
      lock.unlock();
      on_queued(pos);
      lock.lock();
      continue;  // the queue may have changed while unlocked — re-evaluate
    }
    if (cancelled) {
      queue_->changed_.wait_for(lock, kPollInterval);
    } else {
      queue_->changed_.wait(lock);
    }
  }
}

bool CampaignQueue::Ticket::try_start() {
  std::lock_guard lock(queue_->mutex_);
  Entry& entry = queue_->entries_.at(seq_);
  if (entry.running) {
    return true;
  }
  if (!queue_->admissible_locked(entry)) {
    return false;
  }
  queue_->start_locked(entry);
  return true;
}

bool CampaignQueue::Ticket::started() const {
  std::lock_guard lock(queue_->mutex_);
  return queue_->entries_.at(seq_).running;
}

std::size_t CampaignQueue::Ticket::position() const {
  std::lock_guard lock(queue_->mutex_);
  const Entry& entry = queue_->entries_.at(seq_);
  return entry.running ? 0 : queue_->position_locked(entry);
}

}  // namespace ao::service
