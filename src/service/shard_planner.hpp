#pragma once

#include <cstddef>
#include <vector>

#include "orchestrator/campaign.hpp"

namespace ao::service {

/// A campaign's job groups partitioned across shards. Every group index
/// appears in exactly one shard; empty shards are possible when there are
/// fewer groups than shards.
struct ShardPlan {
  std::vector<std::vector<std::size_t>> shard_groups;  ///< per shard, sorted
  std::vector<double> shard_costs;                     ///< estimated work

  std::size_t shard_count() const { return shard_groups.size(); }
};

/// Relative cost estimate of one job group (the unit the planner balances).
/// GEMM-family groups scale with n^3, STREAM with bytes moved, the studies
/// with their functional host work — coarse, but enough to keep two shards
/// of a mixed campaign within the same order of magnitude of work.
double estimated_group_cost(const orchestrator::Campaign::JobGroup& group);

/// Partitions `groups` into `shard_count` shards by longest-processing-time
/// greedy assignment: groups sorted by descending cost, each placed on the
/// least-loaded shard. Deterministic — ties break on group index and shard
/// index — so a plan computed by the service addresses the same groups a
/// worker process expands from the same request.
ShardPlan plan_shards(const std::vector<orchestrator::Campaign::JobGroup>& groups,
                      std::size_t shard_count);

}  // namespace ao::service
