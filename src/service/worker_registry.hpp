#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ao::service {

/// The daemon-side pool of connected remote shard workers.
///
/// A remote `ao_worker` opens an ordinary client connection and announces
/// itself with a `worker <name>` hello line; the session thread then parks
/// the connection here (`park()` blocks for the worker's whole lifetime)
/// while campaign threads check endpoints out (`acquire()`) to run shard
/// conversations over them. Exactly one thread ever touches a worker's
/// streams: the parked session thread sleeps on a condition variable and
/// only wakes to say goodbye once the slot is dead, so a lease holder owns
/// the streams exclusively. The registry's heartbeat sweep (`heartbeat()`)
/// borrows idle endpoints the same way — a slot being pinged is leased to
/// the sweep, never to a campaign.
///
/// Lifecycle of one slot: idle → leased (acquire) → idle (healthy release)
/// or dead (release after `mark_failed()`, or `shutdown()`), with a side
/// trip idle → pinging → idle/dead driven by the heartbeat, and parked
/// session threads return only when their slot dies. Workers that fail
/// mid-conversation are never re-pooled — the stream position is unknown —
/// their sessions end and the worker process reconnects if it wants back in.
class WorkerRegistry {
 public:
  /// Injectable monotonic nanosecond clock (same shape as
  /// obs::TimelineProfiler::ClockFn): production uses steady_clock, the
  /// heartbeat tests drive a counter for deterministic retirement.
  using ClockFn = std::function<std::uint64_t()>;

  struct Config {
    /// An idle worker not heard from for this long is pinged by the next
    /// heartbeat() sweep; one that fails the ping is retired. 0 disables
    /// the sweep entirely (heartbeat() becomes a no-op).
    std::uint64_t heartbeat_interval_ns = 0;
    /// {} = steady_clock nanoseconds.
    ClockFn clock;
  };

  /// Exclusive checkout of one parked worker endpoint. Destroying the lease
  /// returns the worker to the idle pool, or retires it when mark_failed()
  /// was called (or the registry is shutting down).
  class Lease {
   public:
    ~Lease();
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    std::istream& in();
    std::ostream& out();
    const std::string& name() const;

    /// The conversation broke (short read/write, bad frame): the endpoint's
    /// stream position is unknowable, so the worker must not be re-pooled.
    void mark_failed() { failed_ = true; }

    /// Credits one completed shard to this worker's lifetime counters (the
    /// `stats-worker ... shards <n>` feed). Called by the shard driver after
    /// a successful conversation.
    void note_shard_done();

    /// The registry's latest heartbeat clock-offset estimate for this
    /// endpoint (worker clock minus daemon clock, midpoint method over the
    /// ping round trip). False when no pong has carried a clock reading
    /// yet — the shard driver then start-aligns grafted spans instead.
    bool clock_offset(std::int64_t* offset_ns) const;

   private:
    friend class WorkerRegistry;
    struct Slot;
    Lease(WorkerRegistry& registry, std::shared_ptr<Slot> slot)
        : registry_(&registry), slot_(std::move(slot)) {}

    WorkerRegistry* registry_;
    std::shared_ptr<Slot> slot_;
    bool failed_ = false;
  };

  struct WorkerInfo {
    std::string name;
    bool idle = false;
    std::size_t shards = 0;     ///< shards completed over the slot's lifetime
    std::uint64_t busy_ns = 0;  ///< cumulative leased time (ongoing included)
    /// Time since the endpoint last proved itself alive (parked, ponged a
    /// heartbeat, or finished a lease) — the `stats-worker ... last-seen-ns`
    /// feed.
    std::uint64_t last_seen_age_ns = 0;
    /// Last heartbeat round-trip time (`stats-worker ... rtt-ns`); 0 until
    /// the first sweep pings this endpoint.
    std::uint64_t rtt_ns = 0;
    /// Estimated worker-minus-daemon clock offset (midpoint method), valid
    /// when has_clock_offset — the `stats-worker ... clock-offset-ns` feed
    /// and the span-graft alignment input.
    std::int64_t clock_offset_ns = 0;
    bool has_clock_offset = false;
  };

  WorkerRegistry() = default;
  explicit WorkerRegistry(Config config);
  ~WorkerRegistry();
  WorkerRegistry(const WorkerRegistry&) = delete;
  WorkerRegistry& operator=(const WorkerRegistry&) = delete;

  /// Replaces the heartbeat configuration. Call before workers connect (the
  /// daemon configures at startup); not synchronized against a concurrent
  /// heartbeat() sweep.
  void configure(Config config);

  /// Parks a connected worker endpoint and BLOCKS until the worker dies: a
  /// lease holder marked it failed, a heartbeat went unanswered, or the
  /// registry shut down. On return (after a best-effort `bye` frame so a
  /// healthy remote process exits cleanly) the caller owns the streams again
  /// and should end the session. Called from the worker's session thread.
  void park(const std::string& name, std::istream& in, std::ostream& out);

  /// Checks out an idle worker. `wait_ms` 0 returns immediately when none
  /// is idle; positive waits up to that long for one to appear (a worker
  /// connecting, or another campaign releasing one). Returns nullptr on
  /// timeout or shutdown.
  std::unique_ptr<Lease> acquire(int wait_ms);

  /// One liveness sweep: pings every idle worker whose last-seen age has
  /// reached the configured interval and retires those that fail to pong —
  /// a dead endpoint is gone *before* a campaign can check it out. Blocks
  /// for the ping round trips (the daemon drives it from a background
  /// thread; the service also sweeps once before leasing shard workers).
  /// Returns the number of workers retired. No-op when the interval is 0.
  std::size_t heartbeat();

  std::size_t idle_count() const;
  std::size_t connected_count() const;
  /// Connected workers, registration order — the `stats`/`queue`
  /// introspection feed.
  std::vector<WorkerInfo> snapshot() const;

  /// Retires every idle worker (leased ones retire on release) and wakes
  /// their parked sessions; acquire() fails from now on. Idempotent.
  void shutdown();

 private:
  void release(const std::shared_ptr<Lease::Slot>& slot, bool failed);
  void note_shard_done(const std::shared_ptr<Lease::Slot>& slot);
  std::uint64_t now_ns() const;

  Config config_;
  mutable std::mutex mutex_;
  std::condition_variable changed_;
  std::vector<std::shared_ptr<Lease::Slot>> slots_;
  bool shutting_down_ = false;
};

}  // namespace ao::service
