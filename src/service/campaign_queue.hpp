#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "orchestrator/job.hpp"
#include "service/protocol.hpp"

namespace ao::service {

/// The SoC execution units a campaign contends on. The paper's methodology
/// (Sections 3–4) needs exclusive access to the unit *being measured* — but
/// a GEMM sweep on the GPU and a STREAM sweep on the CPU exercise different
/// units, so the service runs them concurrently and only serializes
/// campaigns whose resource classes overlap.
enum ResourceClass : unsigned {
  kResourceCpu = 1u << 0,  ///< CPU cores, NEON and the AMX/SME coprocessor
  kResourceGpu = 1u << 1,  ///< the Metal GPU (incl. MPS and FP64 emulation)
  kResourceAne = 1u << 2,  ///< the Neural Engine / Core ML dispatch path
};

/// Bit-or of ResourceClass values.
using ResourceMask = unsigned;

inline constexpr ResourceMask kResourceAll =
    kResourceCpu | kResourceGpu | kResourceAne;

/// The resource classes one job touches. GEMM kinds depend on where the
/// implementation executes, so `impl` is consulted for them (and ignored for
/// every other kind). kPowerIdle samples package power and claims the whole
/// SoC. Verification is host math outside the simulated SoC and adds
/// nothing to its measurement's mask.
ResourceMask resources_for(orchestrator::JobKind kind, soc::GemmImpl impl);

/// Union of resources_for() over every job family the request enables — the
/// admission key of one campaign.
ResourceMask resources_for(const CampaignRequest& request);

/// "cpu", "cpu+gpu", "cpu+gpu+ane", ... ("none" for an empty mask).
std::string resources_to_string(ResourceMask mask);

/// Admission control for concurrent campaigns: campaigns with disjoint
/// resource masks run concurrently, conflicting ones queue — higher
/// `priority` first, FIFO within a priority — and per-client quotas bound
/// how much any one client can occupy or enqueue. Backfill never overtakes
/// a conflicting better-ranked waiter, except one held back purely by its
/// own client's running quota: that waiter's claim never idles a unit
/// another tenant could use.
///
/// The queue tracks *tickets*, not campaigns: submit() hands back a Ticket
/// the caller blocks on (Ticket::wait) until its campaign may start; the
/// Ticket's destruction releases the claim. All methods are thread-safe;
/// a Ticket must be driven by one thread at a time.
class CampaignQueue {
 public:
  struct Limits {
    /// Campaigns executing concurrently, service-wide. 0 = unlimited.
    std::size_t max_running = 4;
    /// Campaigns one client may have executing at once. 0 = unlimited.
    std::size_t max_running_per_client = 2;
    /// Campaigns one client may have *waiting* at once; a submit beyond
    /// this is rejected outright (structured error, never silently
    /// dropped). 0 = unlimited.
    std::size_t max_queued_per_client = 8;
  };

  /// Why a submit was refused: a stable machine-readable code
  /// ("quota-queued") plus a human-readable message.
  struct Rejection {
    std::string code;
    std::string message;
  };

  struct ClientStats {
    std::size_t queued = 0;
    std::size_t running = 0;
  };

  /// One waiting campaign as the `queue` introspection command reports it.
  struct WaitingCampaign {
    std::size_t position = 0;  ///< 1 = next to start
    std::string name;          ///< campaign name ("-" when unnamed)
    std::string client;
    int priority = 0;
    ResourceMask resources = 0;
  };

  class Ticket;

  CampaignQueue();  ///< default Limits
  explicit CampaignQueue(Limits limits);
  ~CampaignQueue();
  CampaignQueue(const CampaignQueue&) = delete;
  CampaignQueue& operator=(const CampaignQueue&) = delete;

  /// Registers a campaign for admission. Returns nullptr (with `rejection`
  /// filled, when given) if `client` already has max_queued_per_client
  /// campaigns waiting; otherwise the ticket is queued and must be waited
  /// on. Priorities order the wait; they never evict a running campaign.
  /// `name` is carried for introspection only (the `queue` command).
  std::unique_ptr<Ticket> submit(const std::string& client, int priority,
                                 ResourceMask resources,
                                 Rejection* rejection = nullptr,
                                 const std::string& name = {});

  Limits limits() const { return limits_; }
  std::size_t running_count() const;
  std::size_t queued_count() const;
  /// High-water mark of concurrently running campaigns.
  std::size_t peak_running() const;
  /// Submits refused by a quota.
  std::size_t rejections() const;
  /// Queue depth and concurrency per client (clients with no live tickets
  /// are absent).
  std::map<std::string, ClientStats> client_stats() const;
  /// Snapshot of every waiting (not yet running) campaign in start order —
  /// position 1 is the next to be admitted. The `queue` command's feed.
  std::vector<WaitingCampaign> waiting() const;

  /// Wakes every blocked Ticket::wait so it re-evaluates its cancel
  /// predicate immediately — the `abort` command's lever against a queued
  /// campaign (without it, cancellation would ride the poll interval).
  void poke();

 private:
  struct Entry {
    std::uint64_t seq = 0;  ///< submission order; ties within a priority
    int priority = 0;
    std::string client;
    std::string name;  ///< introspection only; never keys any decision
    ResourceMask resources = 0;
    bool running = false;
  };

  /// Waiting tickets rank (-priority, seq): begin() is the next to start.
  using Rank = std::pair<int, std::uint64_t>;
  static Rank rank_of(const Entry& e) { return {-e.priority, e.seq}; }

  bool admissible_locked(const Entry& entry) const;
  void start_locked(Entry& entry);
  void release(std::uint64_t seq);
  std::size_t position_locked(const Entry& entry) const;

  const Limits limits_;
  mutable std::mutex mutex_;
  std::condition_variable changed_;
  std::map<std::uint64_t, Entry> entries_;  ///< every live ticket, by seq
  std::uint64_t next_seq_ = 1;
  std::size_t running_ = 0;
  std::size_t peak_running_ = 0;
  std::size_t rejections_ = 0;
};

/// One campaign's place in the queue. Destroying the ticket releases its
/// claim (the queue slot while waiting, the resource claim while running)
/// and wakes every other waiter.
class CampaignQueue::Ticket {
 public:
  ~Ticket();
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;

  /// Blocks until the campaign may start — or, with `cancelled` given,
  /// until that predicate turns true while the ticket is still waiting.
  /// Returns true when the campaign started (it is running and holds its
  /// resources until the ticket dies); false when it was cancelled before
  /// admission (the ticket holds only its queue slot — destroy it).
  /// `on_queued` (optional) is invoked with the 1-based queue position
  /// whenever the ticket has to wait and whenever that position changes —
  /// the service forwards these as `queued <pos>` protocol events.
  /// `cancelled` is polled on every wakeup and every kPollInterval (abort
  /// uses CampaignQueue::poke() to make its cancellation immediate;
  /// deadline expiry rides the poll). A ticket that already started is
  /// never cancelled here — running campaigns stop cooperatively in the
  /// scheduler instead.
  bool wait(const std::function<void(std::size_t)>& on_queued = {},
            const std::function<bool()>& cancelled = {});

  /// Non-blocking admission attempt: true when the campaign started (or had
  /// already started). The deterministic hook the queue tests drive instead
  /// of racing threads.
  bool try_start();

  bool started() const;
  /// 1-based position among waiting tickets; 0 once running.
  std::size_t position() const;

 private:
  friend class CampaignQueue;
  Ticket(CampaignQueue& queue, std::uint64_t seq) : queue_(&queue), seq_(seq) {}

  CampaignQueue* queue_;
  std::uint64_t seq_;
};

}  // namespace ao::service
