// ao_campaignd: the long-running campaign service over a unix socket.
//
// Binds the socket, then accepts client sessions sequentially; each session
// speaks the line protocol of docs/service.md (submit sweep requests, read
// streamed records). The warm result cache — optionally disk-persistent —
// survives across sessions, so every client benefits from every previous
// campaign's measurements. A `shutdown` command exits cleanly.
//
//   ao_campaignd --socket <path> [--store <file>] [--capacity <n>]
//                [--worker-binary <path>] [--shard-dir <dir>] [--stdio]
//
// --worker-binary defaults to the ao_worker next to this executable (shards
// run in-process when it does not exist); --stdio serves one session over
// stdin/stdout instead of a socket (debugging, pipes).

#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "service/service.hpp"
#include "service/socket.hpp"

namespace {

std::string directory_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

bool file_exists(const std::string& path) {
  return static_cast<bool>(std::ifstream(path));
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  ao::service::CampaignService::Config config;
  bool stdio = false;
  bool worker_binary_set = false;
  for (int i = 1; i < argc; ++i) {
    const auto needs_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::cerr << "ao_campaignd: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      socket_path = needs_value("--socket");
    } else if (std::strcmp(argv[i], "--store") == 0) {
      config.store_path = needs_value("--store");
    } else if (std::strcmp(argv[i], "--capacity") == 0) {
      const std::string value = needs_value("--capacity");
      try {
        config.cache_capacity = static_cast<std::size_t>(std::stoul(value));
      } catch (const std::exception&) {
        std::cerr << "ao_campaignd: --capacity needs a positive integer, got '"
                  << value << "'\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--worker-binary") == 0) {
      config.worker_binary = needs_value("--worker-binary");
      worker_binary_set = true;
    } else if (std::strcmp(argv[i], "--shard-dir") == 0) {
      config.shard_dir = needs_value("--shard-dir");
    } else if (std::strcmp(argv[i], "--stdio") == 0) {
      stdio = true;
    } else {
      std::cerr << "ao_campaignd: unknown option " << argv[i] << "\n";
      return 2;
    }
  }
  if (!stdio && socket_path.empty()) {
    std::cerr << "usage: ao_campaignd --socket <path> [--store <file>] "
                 "[--capacity <n>] [--worker-binary <path>] "
                 "[--shard-dir <dir>] [--stdio]\n";
    return 2;
  }

  if (!worker_binary_set) {
    // Default to the sibling ao_worker; fall back to in-process shards when
    // the binary is not there.
    const std::string sibling = directory_of(argv[0]) + "/ao_worker";
    if (file_exists(sibling)) {
      config.worker_binary = sibling;
    }
  }

  // A client that disconnects mid-stream must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);

  ao::service::CampaignService service(std::move(config));
  if (stdio) {
    service.serve(std::cin, std::cout);
    return 0;
  }

  try {
    ao::service::UnixServerSocket server(socket_path);
    std::cerr << "ao_campaignd: listening on " << socket_path << "\n";
    for (;;) {
      const int fd = server.accept_fd();
      if (fd < 0) {
        std::cerr << "ao_campaignd: accept failed, exiting\n";
        return 1;
      }
      ao::service::SocketStream stream(fd);
      if (service.serve(stream, stream)) {
        std::cerr << "ao_campaignd: shutdown requested\n";
        return 0;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "ao_campaignd: " << e.what() << "\n";
    return 1;
  }
}
