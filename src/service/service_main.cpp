// ao_campaignd: the long-running campaign service over a unix socket
// and/or a TCP port.
//
// Binds the listening socket(s) and serves every client session on its own
// thread — the service is multi-tenant: campaigns whose resource classes
// (CPU/AMX vs GPU vs ANE) are disjoint execute concurrently, conflicting
// ones queue by priority, and per-client quotas bound queue depth and
// concurrency. The warm result cache — optionally disk-persistent — is
// shared by every session, so each client benefits from every previous
// campaign's measurements. Remote `ao_worker --connect` processes use the
// same listeners: their `worker` hello converts the session into a parked
// shard worker that campaigns farm work to over binary-safe frames
// (docs/operations.md). A `shutdown` command from any session exits
// cleanly once running sessions drain.
//
//   ao_campaignd --socket <path> [--tcp <port>] [--store <file>]
//                [--capacity <n>] [--worker-binary <path>]
//                [--shard-dir <dir>] [--stdio] [--remote-only]
//                [--max-running <n>] [--max-running-per-client <n>]
//                [--max-queued-per-client <n>] [--profile-dir <dir>]
//                [--heartbeat-ms <n>] [--outbox-capacity <n>]
//
// --tcp additionally listens on 0.0.0.0:<port> — how workers (and clients)
// on other machines reach the daemon. --remote-only refuses to run shards
// locally: sharded campaigns wait for connected remote workers instead
// (the multi-machine deployment mode; see docs/operations.md).
// --worker-binary defaults to the ao_worker next to this executable
// (shards run in-process when it does not exist); --stdio serves one
// session over stdin/stdout instead of a socket (debugging, pipes). The
// quota flags take 0 for "unlimited"; defaults are in CampaignQueue::Limits.
// --profile-dir enables the timeline profiler's perf artifacts: one
// `<name>-c<id>.profile.json` per completed campaign (docs/observability.md);
// the directory is created if absent.
// --heartbeat-ms (default 5000; 0 disables) pings parked remote workers
// that have been silent that long and retires endpoints that fail to pong —
// a worker that died without a FIN never costs a shard its first attempt.
// --outbox-capacity (default 1024) bounds each campaign's outbound record
// queue: a client that stops reading stalls only its own campaign's
// producers, never daemon memory (docs/operations.md#failure-handling).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"
#include "service/socket.hpp"

namespace {

std::string directory_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

bool file_exists(const std::string& path) {
  return static_cast<bool>(std::ifstream(path));
}

/// One thread per live session, reaped on every accept so a long-running
/// daemon's thread table is bounded by *concurrent* clients (and parked
/// workers), not by the total ever served. Shared by both accept loops.
class SessionSet {
 public:
  template <typename Fn>
  void spawn(Fn&& fn) {
    auto session = std::make_unique<Session>();
    Session* state = session.get();
    state->thread = std::thread([state, fn = std::forward<Fn>(fn)] {
      fn();
      state->finished.store(true, std::memory_order_release);
    });
    std::lock_guard lock(mutex_);
    reap_locked();
    sessions_.push_back(std::move(session));
  }

  void join_all() {
    std::lock_guard lock(mutex_);
    for (const auto& session : sessions_) {
      session->thread.join();
    }
    sessions_.clear();
  }

 private:
  struct Session {
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void reap_locked() {
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if ((*it)->finished.load(std::memory_order_acquire)) {
        (*it)->thread.join();
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::mutex mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  long tcp_port = 0;
  ao::service::CampaignService::Config config;
  bool stdio = false;
  bool worker_binary_set = false;
  std::size_t heartbeat_ms = 5000;  // 0 = no liveness probing
  for (int i = 1; i < argc; ++i) {
    const auto needs_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::cerr << "ao_campaignd: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    const auto needs_count = [&](const char* flag) -> std::size_t {
      const std::string value = needs_value(flag);
      // All-digits only: std::stoul alone would wrap "-1" to huge and
      // silently truncate "4x" — a typo'd quota flag must not yield an
      // unlimited service without a diagnostic.
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        std::cerr << "ao_campaignd: " << flag
                  << " needs a non-negative integer, got '" << value << "'\n";
        std::exit(2);
      }
      try {
        return static_cast<std::size_t>(std::stoul(value));
      } catch (const std::exception&) {
        std::cerr << "ao_campaignd: " << flag << " value out of range: '"
                  << value << "'\n";
        std::exit(2);
      }
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      socket_path = needs_value("--socket");
    } else if (std::strcmp(argv[i], "--tcp") == 0) {
      const std::size_t port = needs_count("--tcp");
      if (port == 0 || port > 65535) {
        std::cerr << "ao_campaignd: --tcp needs a port in [1, 65535]\n";
        return 2;
      }
      tcp_port = static_cast<long>(port);
    } else if (std::strcmp(argv[i], "--store") == 0) {
      config.store_path = needs_value("--store");
    } else if (std::strcmp(argv[i], "--capacity") == 0) {
      const std::size_t capacity = needs_count("--capacity");
      if (capacity == 0) {
        std::cerr << "ao_campaignd: --capacity needs a positive integer\n";
        return 2;
      }
      config.cache_capacity = capacity;
    } else if (std::strcmp(argv[i], "--worker-binary") == 0) {
      config.worker_binary = needs_value("--worker-binary");
      worker_binary_set = true;
    } else if (std::strcmp(argv[i], "--shard-dir") == 0) {
      config.shard_dir = needs_value("--shard-dir");
    } else if (std::strcmp(argv[i], "--remote-only") == 0) {
      config.remote_only = true;
    } else if (std::strcmp(argv[i], "--max-running") == 0) {
      config.limits.max_running = needs_count("--max-running");
    } else if (std::strcmp(argv[i], "--max-running-per-client") == 0) {
      config.limits.max_running_per_client =
          needs_count("--max-running-per-client");
    } else if (std::strcmp(argv[i], "--max-queued-per-client") == 0) {
      config.limits.max_queued_per_client =
          needs_count("--max-queued-per-client");
    } else if (std::strcmp(argv[i], "--profile-dir") == 0) {
      config.profile_dir = needs_value("--profile-dir");
    } else if (std::strcmp(argv[i], "--heartbeat-ms") == 0) {
      heartbeat_ms = needs_count("--heartbeat-ms");
    } else if (std::strcmp(argv[i], "--outbox-capacity") == 0) {
      const std::size_t capacity = needs_count("--outbox-capacity");
      if (capacity == 0) {
        std::cerr
            << "ao_campaignd: --outbox-capacity needs a positive integer\n";
        return 2;
      }
      config.outbox_capacity = capacity;
    } else if (std::strcmp(argv[i], "--stdio") == 0) {
      stdio = true;
    } else {
      std::cerr << "ao_campaignd: unknown option " << argv[i] << "\n";
      return 2;
    }
  }
  if (!stdio && socket_path.empty() && tcp_port == 0) {
    std::cerr << "usage: ao_campaignd --socket <path> [--tcp <port>] "
                 "[--store <file>] [--capacity <n>] "
                 "[--worker-binary <path>] [--shard-dir <dir>] [--stdio] "
                 "[--remote-only] [--max-running <n>] "
                 "[--max-running-per-client <n>] "
                 "[--max-queued-per-client <n>] [--profile-dir <dir>] "
                 "[--heartbeat-ms <n>] [--outbox-capacity <n>]\n";
    return 2;
  }

  if (!config.profile_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config.profile_dir, ec);
    if (ec) {
      std::cerr << "ao_campaignd: cannot create --profile-dir "
                << config.profile_dir << ": " << ec.message() << "\n";
      return 2;
    }
  }

  if (!worker_binary_set) {
    // Default to the sibling ao_worker; fall back to in-process shards when
    // the binary is not there.
    const std::string sibling = directory_of(argv[0]) + "/ao_worker";
    if (file_exists(sibling)) {
      config.worker_binary = sibling;
    }
  }

  // A client that disconnects mid-stream must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);

  config.heartbeat_interval_ns =
      static_cast<std::uint64_t>(heartbeat_ms) * 1'000'000ull;
  ao::service::CampaignService service(std::move(config));
  if (stdio) {
    service.serve(std::cin, std::cout);
    return 0;
  }

  // The liveness sweep: ping parked workers that have been silent past the
  // interval and retire the ones that fail to pong. Runs in its own thread
  // — the registry serializes it against checkouts — and wakes often enough
  // to notice shutdown promptly without busying the CPU.
  std::atomic<bool> heartbeat_stop{false};
  std::thread heartbeat_thread;
  if (heartbeat_ms != 0) {
    heartbeat_thread = std::thread([&service, &heartbeat_stop, heartbeat_ms] {
      const auto step = std::chrono::milliseconds(
          std::min<std::size_t>(200, std::max<std::size_t>(1, heartbeat_ms)));
      auto next_sweep =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(heartbeat_ms);
      while (!heartbeat_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(step);
        if (std::chrono::steady_clock::now() < next_sweep) {
          continue;
        }
        const std::size_t retired = service.workers().heartbeat();
        if (retired != 0) {
          std::cerr << "ao_campaignd: heartbeat retired " << retired
                    << " dead worker(s)\n";
        }
        next_sweep = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(heartbeat_ms);
      }
    });
  }
  struct HeartbeatGuard {
    std::atomic<bool>& stop;
    std::thread& thread;
    ~HeartbeatGuard() {
      stop.store(true, std::memory_order_release);
      if (thread.joinable()) {
        thread.join();
      }
    }
  } heartbeat_guard{heartbeat_stop, heartbeat_thread};

  try {
    std::unique_ptr<ao::service::UnixServerSocket> unix_server;
    std::unique_ptr<ao::service::TcpServerSocket> tcp_server;
    if (!socket_path.empty()) {
      unix_server =
          std::make_unique<ao::service::UnixServerSocket>(socket_path);
      std::cerr << "ao_campaignd: listening on " << socket_path << "\n";
    }
    if (tcp_port != 0) {
      tcp_server = std::make_unique<ao::service::TcpServerSocket>(
          static_cast<std::uint16_t>(tcp_port));
      std::cerr << "ao_campaignd: listening on tcp port " << tcp_port << "\n";
    }

    std::atomic<bool> stop{false};            // any reason to stop accepting
    std::atomic<bool> clean_shutdown{false};  // the `shutdown` command
    SessionSet sessions;
    // Wake every accept loop so it can observe the stop flag.
    const auto poke_listeners = [&] {
      if (unix_server != nullptr) {
        const int poke = ao::service::connect_unix(socket_path);
        if (poke >= 0) {
          ::close(poke);
        }
      }
      if (tcp_server != nullptr) {
        const int poke = ao::service::connect_tcp(
            "127.0.0.1", static_cast<std::uint16_t>(tcp_port));
        if (poke >= 0) {
          ::close(poke);
        }
      }
    };
    const auto accept_loop = [&](auto& server) {
      while (!stop.load(std::memory_order_acquire)) {
        const int fd = server.accept_fd();
        if (fd < 0) {
          if (!stop.load(std::memory_order_acquire)) {
            std::cerr << "ao_campaignd: accept failed, exiting\n";
            // Take the sibling listener down too.
            stop.store(true, std::memory_order_release);
            poke_listeners();
          }
          break;
        }
        if (stop.load(std::memory_order_acquire)) {
          ::close(fd);  // the wake-up connection (or a late client)
          break;
        }
        // One thread per session: concurrent clients submit concurrently,
        // the CampaignQueue decides what actually runs in parallel, and
        // worker hellos park inside serve() until shutdown.
        sessions.spawn([fd, &service, &stop, &clean_shutdown,
                        &poke_listeners] {
          ao::service::SocketStream stream(fd);
          if (service.serve(stream, stream)) {
            clean_shutdown.store(true, std::memory_order_release);
            stop.store(true, std::memory_order_release);
            poke_listeners();
          }
        });
      }
    };

    std::thread tcp_thread;
    if (tcp_server != nullptr && unix_server != nullptr) {
      tcp_thread = std::thread([&] { accept_loop(*tcp_server); });
    }
    if (unix_server != nullptr) {
      accept_loop(*unix_server);
    } else {
      accept_loop(*tcp_server);
    }
    if (tcp_thread.joinable()) {
      tcp_thread.join();
    }
    // A dying accept loop (socket error) must still release any parked
    // worker sessions before joining them.
    service.workers().shutdown();
    sessions.join_all();
    if (clean_shutdown.load(std::memory_order_acquire)) {
      std::cerr << "ao_campaignd: shutdown requested\n";
      return 0;
    }
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "ao_campaignd: " << e.what() << "\n";
    return 1;
  }
}
