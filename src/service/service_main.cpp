// ao_campaignd: the long-running campaign service over a unix socket.
//
// Binds the socket and serves every client session on its own thread — the
// service is multi-tenant: campaigns whose resource classes (CPU/AMX vs GPU
// vs ANE) are disjoint execute concurrently, conflicting ones queue by
// priority, and per-client quotas bound queue depth and concurrency. The
// warm result cache — optionally disk-persistent — is shared by every
// session, so each client benefits from every previous campaign's
// measurements. A `shutdown` command from any session exits cleanly once
// running sessions drain.
//
//   ao_campaignd --socket <path> [--store <file>] [--capacity <n>]
//                [--worker-binary <path>] [--shard-dir <dir>] [--stdio]
//                [--max-running <n>] [--max-running-per-client <n>]
//                [--max-queued-per-client <n>]
//
// --worker-binary defaults to the ao_worker next to this executable (shards
// run in-process when it does not exist); --stdio serves one session over
// stdin/stdout instead of a socket (debugging, pipes). The quota flags take
// 0 for "unlimited"; defaults are in CampaignQueue::Limits.

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"
#include "service/socket.hpp"

namespace {

std::string directory_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

bool file_exists(const std::string& path) {
  return static_cast<bool>(std::ifstream(path));
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  ao::service::CampaignService::Config config;
  bool stdio = false;
  bool worker_binary_set = false;
  for (int i = 1; i < argc; ++i) {
    const auto needs_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::cerr << "ao_campaignd: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    const auto needs_count = [&](const char* flag) -> std::size_t {
      const std::string value = needs_value(flag);
      // All-digits only: std::stoul alone would wrap "-1" to huge and
      // silently truncate "4x" — a typo'd quota flag must not yield an
      // unlimited service without a diagnostic.
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        std::cerr << "ao_campaignd: " << flag
                  << " needs a non-negative integer, got '" << value << "'\n";
        std::exit(2);
      }
      try {
        return static_cast<std::size_t>(std::stoul(value));
      } catch (const std::exception&) {
        std::cerr << "ao_campaignd: " << flag << " value out of range: '"
                  << value << "'\n";
        std::exit(2);
      }
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      socket_path = needs_value("--socket");
    } else if (std::strcmp(argv[i], "--store") == 0) {
      config.store_path = needs_value("--store");
    } else if (std::strcmp(argv[i], "--capacity") == 0) {
      const std::size_t capacity = needs_count("--capacity");
      if (capacity == 0) {
        std::cerr << "ao_campaignd: --capacity needs a positive integer\n";
        return 2;
      }
      config.cache_capacity = capacity;
    } else if (std::strcmp(argv[i], "--worker-binary") == 0) {
      config.worker_binary = needs_value("--worker-binary");
      worker_binary_set = true;
    } else if (std::strcmp(argv[i], "--shard-dir") == 0) {
      config.shard_dir = needs_value("--shard-dir");
    } else if (std::strcmp(argv[i], "--max-running") == 0) {
      config.limits.max_running = needs_count("--max-running");
    } else if (std::strcmp(argv[i], "--max-running-per-client") == 0) {
      config.limits.max_running_per_client =
          needs_count("--max-running-per-client");
    } else if (std::strcmp(argv[i], "--max-queued-per-client") == 0) {
      config.limits.max_queued_per_client =
          needs_count("--max-queued-per-client");
    } else if (std::strcmp(argv[i], "--stdio") == 0) {
      stdio = true;
    } else {
      std::cerr << "ao_campaignd: unknown option " << argv[i] << "\n";
      return 2;
    }
  }
  if (!stdio && socket_path.empty()) {
    std::cerr << "usage: ao_campaignd --socket <path> [--store <file>] "
                 "[--capacity <n>] [--worker-binary <path>] "
                 "[--shard-dir <dir>] [--stdio] [--max-running <n>] "
                 "[--max-running-per-client <n>] "
                 "[--max-queued-per-client <n>]\n";
    return 2;
  }

  if (!worker_binary_set) {
    // Default to the sibling ao_worker; fall back to in-process shards when
    // the binary is not there.
    const std::string sibling = directory_of(argv[0]) + "/ao_worker";
    if (file_exists(sibling)) {
      config.worker_binary = sibling;
    }
  }

  // A client that disconnects mid-stream must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);

  ao::service::CampaignService service(std::move(config));
  if (stdio) {
    service.serve(std::cin, std::cout);
    return 0;
  }

  try {
    ao::service::UnixServerSocket server(socket_path);
    std::cerr << "ao_campaignd: listening on " << socket_path << "\n";
    std::atomic<bool> shutting_down{false};
    // One thread per live session, reaped on every accept so a long-running
    // daemon's thread table is bounded by *concurrent* clients, not by the
    // total ever served.
    struct Session {
      std::thread thread;
      std::atomic<bool> finished{false};
    };
    std::vector<std::unique_ptr<Session>> sessions;
    const auto reap_finished = [&sessions] {
      for (auto it = sessions.begin(); it != sessions.end();) {
        if ((*it)->finished.load(std::memory_order_acquire)) {
          (*it)->thread.join();
          it = sessions.erase(it);
        } else {
          ++it;
        }
      }
    };
    while (!shutting_down.load(std::memory_order_acquire)) {
      const int fd = server.accept_fd();
      if (fd < 0) {
        std::cerr << "ao_campaignd: accept failed, exiting\n";
        break;
      }
      reap_finished();
      if (shutting_down.load(std::memory_order_acquire)) {
        ::close(fd);  // the wake-up connection (or a late client)
        break;
      }
      // One thread per session: concurrent clients submit concurrently and
      // the CampaignQueue decides what actually runs in parallel.
      auto session = std::make_unique<Session>();
      Session* state = session.get();
      state->thread = std::thread(
          [fd, state, &service, &shutting_down, &socket_path] {
            {
              ao::service::SocketStream stream(fd);
              if (service.serve(stream, stream)) {
                shutting_down.store(true, std::memory_order_release);
                // Poke the accept loop awake so it can observe the flag.
                const int poke = ao::service::connect_unix(socket_path);
                if (poke >= 0) {
                  ::close(poke);
                }
              }
            }
            state->finished.store(true, std::memory_order_release);
          });
      sessions.push_back(std::move(session));
    }
    for (const auto& session : sessions) {
      session->thread.join();
    }
    if (shutting_down.load(std::memory_order_acquire)) {
      std::cerr << "ao_campaignd: shutdown requested\n";
      return 0;
    }
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "ao_campaignd: " << e.what() << "\n";
    return 1;
  }
}
