#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "orchestrator/campaign.hpp"
#include "soc/chip_spec.hpp"

namespace ao::service {

/// One declarative sweep request, as the campaign service's line protocol
/// describes it (grammar in docs/service.md). A request addresses every
/// JobKind the orchestrator schedules: the GEMM grid (when both `impls` and
/// `sizes` are set), CPU/GPU STREAM, precision, ANE, FP64 emulation, SME and
/// idle power. `workers` is the per-campaign scheduler concurrency;
/// `shards` > 1 splits the job graph across worker processes.
struct CampaignRequest {
  std::string name = "campaign";
  /// Submitting client identity ("client <id>" line) — the unit the
  /// service's per-client quotas and queue stats are keyed on. Same
  /// filesystem-safe charset as campaign names; default for clients that
  /// don't identify themselves.
  std::string client = "anon";
  /// Queue priority ("priority <n>" line, [0, 100]): when campaigns
  /// conflict on a resource class, higher priority starts first; ties keep
  /// submission order. Never preempts a running campaign.
  int priority = 0;
  std::vector<soc::ChipModel> chips;
  std::vector<soc::GemmImpl> impls;
  std::vector<std::size_t> sizes;
  int repetitions = 5;
  std::uint64_t matrix_seed = 42;
  std::size_t verify_n_max = 256;
  /// Uniform functional ceiling override for every implementation (nullopt
  /// keeps the harness defaults; 0 = model-only).
  std::optional<std::size_t> functional_n_max;
  std::vector<int> stream_threads;
  int stream_repetitions = 10;
  std::size_t stream_elements = 0;
  bool gpu_stream = false;
  int gpu_stream_repetitions = 20;
  std::size_t gpu_stream_elements = 0;
  std::vector<std::size_t> precision_sizes;
  std::uint64_t precision_seed = 99;
  std::vector<std::size_t> ane_sizes;
  bool ane_functional = true;
  std::vector<std::size_t> fp64emu_sizes;
  std::uint64_t fp64emu_seed = 41;
  std::vector<std::size_t> sme_sizes;
  std::uint64_t sme_seed = 77;
  bool power_idle = false;
  double power_window_seconds = 1.0;
  std::size_t workers = 1;
  std::size_t shards = 1;
  /// Wall-clock budget ("deadline <ms>" line, milliseconds): a campaign
  /// still queued when it expires is cancelled with `deadline-exceeded`; a
  /// running one stops cooperatively between jobs. 0 = no deadline.
  std::uint64_t deadline_ms = 0;
  /// Per-campaign shard retry budget ("retries <n>" line, [0, 16]): how
  /// many times shards lost to dying remote endpoints may be re-dispatched
  /// to *different* endpoints before falling back locally (or failing,
  /// under --remote-only).
  std::size_t shard_retries = 2;

  bool operator==(const CampaignRequest&) const = default;

  /// True when at least one job family is requested.
  bool has_work() const;

  /// The GEMM experiment options this request describes (also the source of
  /// the options fingerprint that keys its cache entries).
  harness::GemmExperiment::Options options() const;

  /// The equivalent Campaign builder — cache and concurrency are attached
  /// by the caller.
  orchestrator::Campaign to_campaign() const;

  /// Serializes the request as a protocol block ("begin" … "run") that
  /// parses back to an equal request — the worker handoff format.
  std::vector<std::string> to_lines() const;
};

/// Whitespace tokenizer shared by the protocol parser and the service's
/// session loop.
std::vector<std::string> split_words(const std::string& line);

/// True when `name` may name a campaign. Names are embedded in shard-store
/// and request file paths by the service, so only [A-Za-z0-9._-] is
/// accepted (no path separators), "." / ".." are rejected, and length is
/// capped at 64. Client ids share the same rule (they land in stats lines
/// and quota messages).
bool valid_campaign_name(const std::string& name);

/// One rejected protocol line: a stable machine-readable code plus the
/// human-readable message. The service echoes both — and the offending
/// input line — in its `error` replies, so a client can report actionable
/// failures instead of guessing which of its lines was bad.
///
/// Codes are part of the protocol surface (documented in docs/service.md):
///   bad-directive   unknown or malformed setter line
///   bad-name        invalid campaign name on `begin`
///   bad-state       command out of sequence (nested begin, run w/o begin…)
///   bad-request     a structurally complete request that cannot run
///                   (no chips, no work)
///   unknown-command command word the service does not know
///   quota-queued    per-client queued-campaign quota exhausted
///   exec-failed     the campaign threw while executing
///   no-store        store command without a write-through store attached
///   aborted         the campaign was cancelled by an `abort <name>` command
///   deadline-exceeded  the campaign's `deadline <ms>` budget ran out
///   bad-query       malformed `query` filter (unknown predicate or value)
///   bad-cursor      unparseable/forged resume token on `query`/`follow`
///   stale-cursor    structurally valid cursor whose store generation (or
///                   retained campaign journal) was rewritten underneath it
///   unknown-campaign  `follow` for a campaign no journal remembers
struct ProtocolError {
  std::string code;
  std::string message;
};

/// Incremental parser for the request block of the protocol: feed it the
/// lines between "begin" and "run". Setter grammar errors are reported per
/// line; the session stays alive.
class RequestBuilder {
 public:
  /// Opens a new request ("begin [name]" was read). Returns nullopt on
  /// success, the error otherwise (a request already open, or an invalid
  /// name); an empty name keeps the default.
  std::optional<ProtocolError> begin(const std::string& name);

  bool open() const { return open_; }

  /// Applies one setter line to the open request. Returns nullopt on
  /// success, the error otherwise. Unknown directives are errors.
  std::optional<ProtocolError> apply(const std::string& line);

  /// Closes the block and hands the request over ("run" was read).
  CampaignRequest take();

  /// Discards the open request ("abort").
  void discard();

 private:
  bool open_ = false;
  CampaignRequest request_;
};

/// Parses a full request block (the to_lines() format: "begin" … "run").
/// Returns nullopt and sets `error` on the first malformed line.
std::optional<CampaignRequest> parse_request_lines(
    const std::vector<std::string>& lines, std::string* error);

/// The request's plan-cache key: the to_lines() block with every line that
/// cannot change the expansion stripped (identity — begin/client/priority —
/// and scheduling — workers/shards/deadline/retries — plus the "run"
/// terminator), joined by newlines. Two requests share a key exactly when
/// Campaign::groups() would return the same group list; the PlanCache
/// compares keys by string equality, so distinct option sets can never
/// collide.
std::string plan_key(const CampaignRequest& request);

/// Lowercased figure-legend name → GemmImpl ("cpu-single", "gpu-mps", …).
/// Throws util::InvalidArgument for unknown names.
soc::GemmImpl gemm_impl_from_string(const std::string& name);

/// Resume token of a `follow` stream: `aof1.<campaign-id>.<position>.<digest>`
/// (lowercase hex fields; digest = store digest of the token up to its final
/// dot). Position = records already delivered; the reply resumes with the
/// next one, so a client that replays its last token never sees a record
/// twice. The same FNV-1a digest as store entry lines keeps truncated or
/// bit-flipped tokens structurally rejectable.
std::string encode_follow_cursor(std::uint64_t campaign_id,
                                 std::uint64_t position);

struct FollowCursor {
  std::uint64_t campaign_id = 0;
  std::uint64_t position = 0;
};

/// Returns nullopt on any malformation (wrong magic, missing or non-hex
/// fields, digest mismatch).
std::optional<FollowCursor> decode_follow_cursor(const std::string& token);

}  // namespace ao::service
