#include "service/frame.hpp"

#include <istream>
#include <ostream>

#include "orchestrator/result_cache.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace ao::service {
namespace {

void set_error(std::string* error, const char* reason) {
  if (error != nullptr) {
    *error = reason;
  }
}

}  // namespace

bool valid_frame_type(std::string_view type) {
  if (type.empty() || type.size() > 32) {
    return false;
  }
  for (const char c : type) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-')) {
      return false;
    }
  }
  return true;
}

void encode_frame_into(std::string& out, std::string_view type,
                       std::string_view payload) {
  AO_REQUIRE(valid_frame_type(type),
             "frame type must be [a-z0-9-], 1-32 chars: " + std::string(type));
  AO_REQUIRE(payload.size() <= kMaxFramePayload,
             "frame payload exceeds kMaxFramePayload");
  // One reserve covers the whole frame: header (magic + type + two hex
  // tokens, ≤ 74 bytes) + payload + terminator. Against a recycled buffer
  // whose capacity already fits, this allocates nothing.
  out.reserve(out.size() + payload.size() + kMaxFrameHeader);
  out += kFrameMagic;
  out += ' ';
  out += type;
  out += ' ';
  out += util::to_hex_u64(payload.size());
  out += ' ';
  out += util::to_hex_u64(
      orchestrator::store_digest(payload.data(), payload.size()));
  out += '\n';
  out += payload;
  out += '\n';
}

std::string encode_frame(const Frame& frame) {
  std::string out;
  encode_frame_into(out, frame.type, frame.payload);
  return out;
}

void write_frame(std::ostream& out, const Frame& frame) {
  out << encode_frame(frame);
  out.flush();
}

void FrameWriter::write(std::ostream& out, std::string_view type,
                        std::string_view payload) {
  buffer_.clear();  // capacity survives; steady state allocates nothing
  encode_frame_into(buffer_, type, payload);
  out.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  out.flush();
}

std::optional<Frame> read_frame(std::istream& in, std::string* error) {
  // Bounded header read: kMaxFramePayload caps the payload allocation, but
  // only a cap here keeps a peer streaming newline-free garbage from
  // growing the header string without bound.
  std::string header;
  for (;;) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      set_error(error, header.empty() ? "closed" : "frame-truncated");
      return std::nullopt;
    }
    if (c == '\n') {
      break;
    }
    if (header.size() >= kMaxFrameHeader) {
      set_error(error, "bad-frame-header");
      return std::nullopt;
    }
    header.push_back(static_cast<char>(c));
  }
  if (!header.empty() && header.back() == '\r') {
    header.pop_back();  // the line protocol tolerates CRLF; so do frames
  }

  // "@frame1 <type> <length> <digest>" — exactly four space-split tokens.
  std::string tokens[4];
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos < header.size() && count < 4) {
    const std::size_t space = header.find(' ', pos);
    const std::size_t end = space == std::string::npos ? header.size() : space;
    tokens[count++] = header.substr(pos, end - pos);
    pos = end + 1;
  }
  if (count != 4 || pos <= header.size() || tokens[0] != kFrameMagic ||
      !valid_frame_type(tokens[1])) {
    set_error(error, "bad-frame-header");
    return std::nullopt;
  }
  std::uint64_t length = 0;
  std::uint64_t digest = 0;
  if (!util::parse_hex_u64(tokens[2], length) ||
      !util::parse_hex_u64(tokens[3], digest)) {
    set_error(error, "bad-frame-header");
    return std::nullopt;
  }
  if (length > kMaxFramePayload) {
    // Refuse before allocating: a flipped bit in the length token must not
    // become a multi-gigabyte allocation.
    set_error(error, "frame-oversized");
    return std::nullopt;
  }

  Frame frame;
  frame.type = tokens[1];
  frame.payload.resize(static_cast<std::size_t>(length));
  if (length > 0 &&
      !in.read(frame.payload.data(), static_cast<std::streamsize>(length))) {
    set_error(error, "frame-truncated");
    return std::nullopt;
  }
  const int terminator = in.get();
  if (terminator != '\n') {
    set_error(error, "frame-truncated");
    return std::nullopt;
  }
  if (orchestrator::store_digest(frame.payload.data(), frame.payload.size()) !=
      digest) {
    set_error(error, "frame-digest-mismatch");
    return std::nullopt;
  }
  set_error(error, "");
  return frame;
}

}  // namespace ao::service
