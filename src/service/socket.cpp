#include "service/socket.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace ao::service {
namespace {

int make_unix_socket() { return ::socket(AF_UNIX, SOCK_STREAM, 0); }

bool fill_address(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return false;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(in_buf_, in_buf_, in_buf_);
  setp(out_buf_, out_buf_ + kBufferSize);
}

FdStreamBuf::~FdStreamBuf() {
  flush_out();
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) {
    return traits_type::to_int_type(*gptr());
  }
  // A request/reply protocol: everything written must be on the wire before
  // blocking for the peer's next line.
  flush_out();
  ssize_t got;
  do {
    got = ::read(fd_, in_buf_, kBufferSize);
  } while (got < 0 && errno == EINTR);
  if (got <= 0) {
    return traits_type::eof();
  }
  setg(in_buf_, in_buf_, in_buf_ + got);
  return traits_type::to_int_type(*gptr());
}

bool FdStreamBuf::flush_out() {
  const char* begin = pbase();
  const char* end = pptr();
  while (begin < end) {
    ssize_t wrote;
    do {
      wrote = ::write(fd_, begin, static_cast<std::size_t>(end - begin));
    } while (wrote < 0 && errno == EINTR);
    if (wrote <= 0) {
      setp(out_buf_, out_buf_ + kBufferSize);
      return false;  // peer gone; the stream goes bad on the next sync
    }
    begin += wrote;
  }
  setp(out_buf_, out_buf_ + kBufferSize);
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!flush_out()) {
    return traits_type::eof();
  }
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return flush_out() ? 0 : -1; }

SocketStream::SocketStream(int fd) : std::iostream(nullptr), buf_(fd) {
  rdbuf(&buf_);
}

UnixServerSocket::UnixServerSocket(const std::string& path)
    : path_(path), fd_(make_unix_socket()) {
  if (fd_ < 0) {
    throw util::Error("cannot create unix socket");
  }
  sockaddr_un addr{};
  if (!fill_address(path_, addr)) {
    ::close(fd_);
    throw util::InvalidArgument("bad unix socket path: " + path_);
  }
  ::unlink(path_.c_str());  // a stale socket file from a dead server
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 8) != 0) {
    ::close(fd_);
    throw util::Error("cannot bind/listen on unix socket: " + path_);
  }
}

UnixServerSocket::~UnixServerSocket() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  ::unlink(path_.c_str());
}

int UnixServerSocket::accept_fd() {
  ssize_t fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  return static_cast<int>(fd);
}

namespace {

void set_nodelay(int fd) {
  // Request/reply lines and flushed frames: send immediately, don't Nagle.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpServerSocket::TcpServerSocket(std::uint16_t port)
    : port_(port), fd_(::socket(AF_INET, SOCK_STREAM, 0)) {
  if (fd_ < 0) {
    throw util::Error("cannot create TCP socket");
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd_, 8) != 0) {
    ::close(fd_);
    throw util::Error("cannot bind/listen on TCP port " +
                      std::to_string(port));
  }
}

TcpServerSocket::~TcpServerSocket() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

int TcpServerSocket::accept_fd() {
  ssize_t fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd >= 0) {
    set_nodelay(static_cast<int>(fd));
  }
  return static_cast<int>(fd);
}

int connect_tcp(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &results) != 0) {
    return -1;
  }
  int fd = -1;
  for (const addrinfo* it = results; it != nullptr; it = it->ai_next) {
    fd = ::socket(it->ai_family, it->ai_socktype, it->ai_protocol);
    if (fd < 0) {
      continue;
    }
    if (::connect(fd, it->ai_addr, it->ai_addrlen) == 0) {
      set_nodelay(fd);
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  return fd;
}

bool parse_host_port(const std::string& spec, std::string* host,
                     std::uint16_t* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return false;
  }
  std::uint32_t value = 0;
  for (std::size_t i = colon + 1; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
    if (value > 65535) {
      return false;
    }
  }
  if (value == 0) {
    return false;
  }
  if (host != nullptr) {
    *host = spec.substr(0, colon);
  }
  if (port != nullptr) {
    *port = static_cast<std::uint16_t>(value);
  }
  return true;
}

int connect_endpoint(const std::string& spec) {
  std::string host;
  std::uint16_t port = 0;
  // A unix path that happens to contain ":<digits>" can be disambiguated by
  // writing it as "./name:123".
  if (spec.find('/') == std::string::npos &&
      parse_host_port(spec, &host, &port)) {
    return connect_tcp(host, port);
  }
  return connect_unix(spec);
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (!fill_address(path, addr)) {
    return -1;
  }
  const int fd = make_unix_socket();
  if (fd < 0) {
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace ao::service
