#include "service/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace ao::service {
namespace {

int make_unix_socket() { return ::socket(AF_UNIX, SOCK_STREAM, 0); }

bool fill_address(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return false;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(in_buf_, in_buf_, in_buf_);
  setp(out_buf_, out_buf_ + kBufferSize);
}

FdStreamBuf::~FdStreamBuf() {
  flush_out();
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) {
    return traits_type::to_int_type(*gptr());
  }
  // A request/reply protocol: everything written must be on the wire before
  // blocking for the peer's next line.
  flush_out();
  ssize_t got;
  do {
    got = ::read(fd_, in_buf_, kBufferSize);
  } while (got < 0 && errno == EINTR);
  if (got <= 0) {
    return traits_type::eof();
  }
  setg(in_buf_, in_buf_, in_buf_ + got);
  return traits_type::to_int_type(*gptr());
}

bool FdStreamBuf::flush_out() {
  const char* begin = pbase();
  const char* end = pptr();
  while (begin < end) {
    ssize_t wrote;
    do {
      wrote = ::write(fd_, begin, static_cast<std::size_t>(end - begin));
    } while (wrote < 0 && errno == EINTR);
    if (wrote <= 0) {
      setp(out_buf_, out_buf_ + kBufferSize);
      return false;  // peer gone; the stream goes bad on the next sync
    }
    begin += wrote;
  }
  setp(out_buf_, out_buf_ + kBufferSize);
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!flush_out()) {
    return traits_type::eof();
  }
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return flush_out() ? 0 : -1; }

SocketStream::SocketStream(int fd) : std::iostream(nullptr), buf_(fd) {
  rdbuf(&buf_);
}

UnixServerSocket::UnixServerSocket(const std::string& path)
    : path_(path), fd_(make_unix_socket()) {
  if (fd_ < 0) {
    throw util::Error("cannot create unix socket");
  }
  sockaddr_un addr{};
  if (!fill_address(path_, addr)) {
    ::close(fd_);
    throw util::InvalidArgument("bad unix socket path: " + path_);
  }
  ::unlink(path_.c_str());  // a stale socket file from a dead server
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 8) != 0) {
    ::close(fd_);
    throw util::Error("cannot bind/listen on unix socket: " + path_);
  }
}

UnixServerSocket::~UnixServerSocket() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  ::unlink(path_.c_str());
}

int UnixServerSocket::accept_fd() {
  ssize_t fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  return static_cast<int>(fd);
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (!fill_address(path, addr)) {
    return -1;
  }
  const int fd = make_unix_socket();
  if (fd < 0) {
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace ao::service
