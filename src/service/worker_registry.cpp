#include "service/worker_registry.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <ostream>

#include "service/frame.hpp"

namespace ao::service {

/// One parked worker connection. The streams belong to the session thread
/// blocked in park(); a Lease borrows them while state == kLeased, the
/// heartbeat sweep while state == kPinging.
struct WorkerRegistry::Lease::Slot {
  enum class State { kIdle, kLeased, kPinging, kDead };

  std::string name;
  std::istream* in = nullptr;
  std::ostream* out = nullptr;
  State state = State::kIdle;
  std::size_t shards_completed = 0;
  std::uint64_t busy_ns = 0;  ///< closed leases; an open one adds live time
  std::chrono::steady_clock::time_point leased_at;
  std::uint64_t last_seen_ns = 0;  ///< config clock; park/pong/release update
  std::uint64_t rtt_ns = 0;        ///< last heartbeat round trip, config clock
  std::int64_t clock_offset_ns = 0;  ///< worker clock − daemon clock estimate
  bool has_clock_offset = false;     ///< a pong carried a clock reading
};

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

WorkerRegistry::Lease::~Lease() { registry_->release(slot_, failed_); }

void WorkerRegistry::Lease::note_shard_done() {
  registry_->note_shard_done(slot_);
}

std::istream& WorkerRegistry::Lease::in() { return *slot_->in; }

std::ostream& WorkerRegistry::Lease::out() { return *slot_->out; }

const std::string& WorkerRegistry::Lease::name() const { return slot_->name; }

bool WorkerRegistry::Lease::clock_offset(std::int64_t* offset_ns) const {
  std::lock_guard lock(registry_->mutex_);
  if (!slot_->has_clock_offset) {
    return false;
  }
  if (offset_ns != nullptr) {
    *offset_ns = slot_->clock_offset_ns;
  }
  return true;
}

WorkerRegistry::WorkerRegistry(Config config) : config_(std::move(config)) {}

WorkerRegistry::~WorkerRegistry() { shutdown(); }

void WorkerRegistry::configure(Config config) { config_ = std::move(config); }

std::uint64_t WorkerRegistry::now_ns() const {
  if (config_.clock) {
    return config_.clock();
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void WorkerRegistry::park(const std::string& name, std::istream& in,
                          std::ostream& out) {
  using Slot = Lease::Slot;
  auto slot = std::make_shared<Slot>();
  slot->name = name;
  slot->in = &in;
  slot->out = &out;
  slot->last_seen_ns = now_ns();
  {
    std::unique_lock lock(mutex_);
    if (shutting_down_) {
      lock.unlock();
      write_frame(out, {kFrameBye, {}});
      return;
    }
    slots_.push_back(slot);
    changed_.notify_all();  // an acquire() may be waiting for a worker
    changed_.wait(lock, [&] { return slot->state == Slot::State::kDead; });
    slots_.erase(std::find(slots_.begin(), slots_.end(), slot));
  }
  // Best-effort goodbye: on a healthy shutdown the remote process reads it
  // and exits 0; on a broken stream the write just fails silently.
  write_frame(out, {kFrameBye, {}});
}

std::unique_ptr<WorkerRegistry::Lease> WorkerRegistry::acquire(int wait_ms) {
  using Slot = Lease::Slot;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(std::max(0, wait_ms));
  std::unique_lock lock(mutex_);
  const auto any_idle = [&] {
    return std::any_of(slots_.begin(), slots_.end(), [](const auto& slot) {
      return slot->state == Slot::State::kIdle;
    });
  };
  for (;;) {
    if (shutting_down_) {
      return nullptr;
    }
    for (const auto& slot : slots_) {
      if (slot->state == Slot::State::kIdle) {
        slot->state = Slot::State::kLeased;
        slot->leased_at = std::chrono::steady_clock::now();
        return std::unique_ptr<Lease>(new Lease(*this, slot));
      }
    }
    if (wait_ms <= 0) {
      return nullptr;
    }
    // Predicate form, not bare wait_until: a park() whose notify lands as
    // the deadline expires makes the bare form report cv_status::timeout
    // even though an idle worker now exists, and returning nullptr then
    // loses a connected worker for this campaign. The predicate is
    // re-evaluated one final time AT the deadline, so that worker is seen
    // and the loop leases it.
    if (!changed_.wait_until(lock, deadline,
                             [&] { return shutting_down_ || any_idle(); })) {
      return nullptr;  // deadline passed with genuinely no idle worker
    }
  }
}

std::size_t WorkerRegistry::heartbeat() {
  using Slot = Lease::Slot;
  std::vector<std::shared_ptr<Slot>> due;
  {
    std::lock_guard lock(mutex_);
    if (config_.heartbeat_interval_ns == 0 || shutting_down_) {
      return 0;
    }
    const std::uint64_t now = now_ns();
    for (const auto& slot : slots_) {
      if (slot->state == Slot::State::kIdle &&
          now - slot->last_seen_ns >= config_.heartbeat_interval_ns) {
        // The sweep borrows the endpoint exactly like a lease would:
        // kPinging keeps acquire() off the streams while the round trip is
        // in flight.
        slot->state = Slot::State::kPinging;
        due.push_back(slot);
      }
    }
  }
  std::size_t retired = 0;
  for (const auto& slot : due) {
    // Stream I/O outside the lock: a stalled endpoint blocks this sweep,
    // never the registry. The round trip is timed on the registry clock and
    // a pong payload carrying the worker's clock reading yields a midpoint
    // clock-offset estimate: the reading is assumed taken at sent + rtt/2,
    // so offset = worker_clock − (sent + rtt/2). An empty pong (an older
    // worker) still proves liveness, it just estimates nothing.
    bool alive = false;
    std::uint64_t worker_clock = 0;
    bool have_worker_clock = false;
    const std::uint64_t sent_ns = now_ns();
    write_frame(*slot->out, {kFramePing, {}});
    if (*slot->out) {
      std::string error;
      const auto reply = read_frame(*slot->in, &error);
      alive = reply.has_value() && reply->type == kFramePong;
      if (alive && !reply->payload.empty()) {
        // from_chars, not stoull: a junk or out-of-range payload must read
        // as "no clock reading", never as an exception on this thread — the
        // pong still proves liveness either way.
        const char* first = reply->payload.data();
        const char* last = first + reply->payload.size();
        const auto [ptr, ec] = std::from_chars(first, last, worker_clock);
        have_worker_clock = ec == std::errc{} && ptr == last;
      }
    }
    const std::uint64_t received_ns = now_ns();
    std::lock_guard lock(mutex_);
    if (alive && !shutting_down_) {
      slot->last_seen_ns = now_ns();
      slot->rtt_ns = received_ns - sent_ns;
      if (have_worker_clock) {
        const std::uint64_t midpoint = sent_ns + slot->rtt_ns / 2;
        slot->clock_offset_ns = static_cast<std::int64_t>(worker_clock) -
                                static_cast<std::int64_t>(midpoint);
        slot->has_clock_offset = true;
      }
      slot->state = Slot::State::kIdle;
    } else {
      slot->state = Slot::State::kDead;
      ++retired;
    }
    changed_.notify_all();  // wake the parked session (dead) or an acquire
  }
  return retired;
}

void WorkerRegistry::release(const std::shared_ptr<Lease::Slot>& slot,
                             bool failed) {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  if (slot->state == Slot::State::kLeased) {
    slot->busy_ns += elapsed_ns(slot->leased_at);
  }
  if (failed || shutting_down_) {
    slot->state = Slot::State::kDead;
  } else {
    slot->state = Slot::State::kIdle;
    slot->last_seen_ns = now_ns();  // a healthy conversation proves liveness
  }
  changed_.notify_all();
}

void WorkerRegistry::note_shard_done(
    const std::shared_ptr<Lease::Slot>& slot) {
  std::lock_guard lock(mutex_);
  ++slot->shards_completed;
}

std::size_t WorkerRegistry::idle_count() const {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(), [](const auto& slot) {
        return slot->state == Slot::State::kIdle;
      }));
}

std::size_t WorkerRegistry::connected_count() const {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(), [](const auto& slot) {
        return slot->state != Slot::State::kDead;
      }));
}

std::vector<WorkerRegistry::WorkerInfo> WorkerRegistry::snapshot() const {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  const std::uint64_t now = now_ns();
  std::vector<WorkerInfo> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    if (slot->state != Slot::State::kDead) {
      WorkerInfo info;
      info.name = slot->name;
      info.idle = slot->state == Slot::State::kIdle;
      info.shards = slot->shards_completed;
      info.busy_ns = slot->busy_ns;
      if (slot->state == Slot::State::kLeased) {
        info.busy_ns += elapsed_ns(slot->leased_at);  // the lease is live
      }
      info.last_seen_age_ns =
          now >= slot->last_seen_ns ? now - slot->last_seen_ns : 0;
      info.rtt_ns = slot->rtt_ns;
      info.clock_offset_ns = slot->clock_offset_ns;
      info.has_clock_offset = slot->has_clock_offset;
      out.push_back(std::move(info));
    }
  }
  return out;
}

void WorkerRegistry::shutdown() {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  shutting_down_ = true;
  for (const auto& slot : slots_) {
    if (slot->state == Slot::State::kIdle) {
      slot->state = Slot::State::kDead;
    }
  }
  changed_.notify_all();
}

}  // namespace ao::service
