#include "service/worker_registry.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "service/frame.hpp"

namespace ao::service {

/// One parked worker connection. The streams belong to the session thread
/// blocked in park(); a Lease borrows them while state == kLeased.
struct WorkerRegistry::Lease::Slot {
  enum class State { kIdle, kLeased, kDead };

  std::string name;
  std::istream* in = nullptr;
  std::ostream* out = nullptr;
  State state = State::kIdle;
  std::size_t shards_completed = 0;
  std::uint64_t busy_ns = 0;  ///< closed leases; an open one adds live time
  std::chrono::steady_clock::time_point leased_at;
};

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

WorkerRegistry::Lease::~Lease() { registry_->release(slot_, failed_); }

void WorkerRegistry::Lease::note_shard_done() {
  registry_->note_shard_done(slot_);
}

std::istream& WorkerRegistry::Lease::in() { return *slot_->in; }

std::ostream& WorkerRegistry::Lease::out() { return *slot_->out; }

const std::string& WorkerRegistry::Lease::name() const { return slot_->name; }

WorkerRegistry::~WorkerRegistry() { shutdown(); }

void WorkerRegistry::park(const std::string& name, std::istream& in,
                          std::ostream& out) {
  using Slot = Lease::Slot;
  auto slot = std::make_shared<Slot>();
  slot->name = name;
  slot->in = &in;
  slot->out = &out;
  {
    std::unique_lock lock(mutex_);
    if (shutting_down_) {
      lock.unlock();
      write_frame(out, {kFrameBye, {}});
      return;
    }
    slots_.push_back(slot);
    changed_.notify_all();  // an acquire() may be waiting for a worker
    changed_.wait(lock, [&] { return slot->state == Slot::State::kDead; });
    slots_.erase(std::find(slots_.begin(), slots_.end(), slot));
  }
  // Best-effort goodbye: on a healthy shutdown the remote process reads it
  // and exits 0; on a broken stream the write just fails silently.
  write_frame(out, {kFrameBye, {}});
}

std::unique_ptr<WorkerRegistry::Lease> WorkerRegistry::acquire(int wait_ms) {
  using Slot = Lease::Slot;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(std::max(0, wait_ms));
  std::unique_lock lock(mutex_);
  for (;;) {
    if (shutting_down_) {
      return nullptr;
    }
    for (const auto& slot : slots_) {
      if (slot->state == Slot::State::kIdle) {
        slot->state = Slot::State::kLeased;
        slot->leased_at = std::chrono::steady_clock::now();
        return std::unique_ptr<Lease>(new Lease(*this, slot));
      }
    }
    if (wait_ms <= 0 ||
        changed_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return nullptr;
    }
  }
}

void WorkerRegistry::release(const std::shared_ptr<Lease::Slot>& slot,
                             bool failed) {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  if (slot->state == Slot::State::kLeased) {
    slot->busy_ns += elapsed_ns(slot->leased_at);
  }
  slot->state = (failed || shutting_down_) ? Slot::State::kDead
                                           : Slot::State::kIdle;
  changed_.notify_all();
}

void WorkerRegistry::note_shard_done(
    const std::shared_ptr<Lease::Slot>& slot) {
  std::lock_guard lock(mutex_);
  ++slot->shards_completed;
}

std::size_t WorkerRegistry::idle_count() const {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(), [](const auto& slot) {
        return slot->state == Slot::State::kIdle;
      }));
}

std::size_t WorkerRegistry::connected_count() const {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(), [](const auto& slot) {
        return slot->state != Slot::State::kDead;
      }));
}

std::vector<WorkerRegistry::WorkerInfo> WorkerRegistry::snapshot() const {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  std::vector<WorkerInfo> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    if (slot->state != Slot::State::kDead) {
      WorkerInfo info;
      info.name = slot->name;
      info.idle = slot->state == Slot::State::kIdle;
      info.shards = slot->shards_completed;
      info.busy_ns = slot->busy_ns;
      if (slot->state == Slot::State::kLeased) {
        info.busy_ns += elapsed_ns(slot->leased_at);  // the lease is live
      }
      out.push_back(std::move(info));
    }
  }
  return out;
}

void WorkerRegistry::shutdown() {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  shutting_down_ = true;
  for (const auto& slot : slots_) {
    if (slot->state == Slot::State::kIdle) {
      slot->state = Slot::State::kDead;
    }
  }
  changed_.notify_all();
}

}  // namespace ao::service
