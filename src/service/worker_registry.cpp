#include "service/worker_registry.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "service/frame.hpp"

namespace ao::service {

/// One parked worker connection. The streams belong to the session thread
/// blocked in park(); a Lease borrows them while state == kLeased.
struct WorkerRegistry::Lease::Slot {
  enum class State { kIdle, kLeased, kDead };

  std::string name;
  std::istream* in = nullptr;
  std::ostream* out = nullptr;
  State state = State::kIdle;
};

WorkerRegistry::Lease::~Lease() { registry_->release(slot_, failed_); }

std::istream& WorkerRegistry::Lease::in() { return *slot_->in; }

std::ostream& WorkerRegistry::Lease::out() { return *slot_->out; }

const std::string& WorkerRegistry::Lease::name() const { return slot_->name; }

WorkerRegistry::~WorkerRegistry() { shutdown(); }

void WorkerRegistry::park(const std::string& name, std::istream& in,
                          std::ostream& out) {
  using Slot = Lease::Slot;
  auto slot = std::make_shared<Slot>();
  slot->name = name;
  slot->in = &in;
  slot->out = &out;
  {
    std::unique_lock lock(mutex_);
    if (shutting_down_) {
      lock.unlock();
      write_frame(out, {kFrameBye, {}});
      return;
    }
    slots_.push_back(slot);
    changed_.notify_all();  // an acquire() may be waiting for a worker
    changed_.wait(lock, [&] { return slot->state == Slot::State::kDead; });
    slots_.erase(std::find(slots_.begin(), slots_.end(), slot));
  }
  // Best-effort goodbye: on a healthy shutdown the remote process reads it
  // and exits 0; on a broken stream the write just fails silently.
  write_frame(out, {kFrameBye, {}});
}

std::unique_ptr<WorkerRegistry::Lease> WorkerRegistry::acquire(int wait_ms) {
  using Slot = Lease::Slot;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(std::max(0, wait_ms));
  std::unique_lock lock(mutex_);
  for (;;) {
    if (shutting_down_) {
      return nullptr;
    }
    for (const auto& slot : slots_) {
      if (slot->state == Slot::State::kIdle) {
        slot->state = Slot::State::kLeased;
        return std::unique_ptr<Lease>(new Lease(*this, slot));
      }
    }
    if (wait_ms <= 0 ||
        changed_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return nullptr;
    }
  }
}

void WorkerRegistry::release(const std::shared_ptr<Lease::Slot>& slot,
                             bool failed) {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  slot->state = (failed || shutting_down_) ? Slot::State::kDead
                                           : Slot::State::kIdle;
  changed_.notify_all();
}

std::size_t WorkerRegistry::idle_count() const {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(), [](const auto& slot) {
        return slot->state == Slot::State::kIdle;
      }));
}

std::size_t WorkerRegistry::connected_count() const {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(), [](const auto& slot) {
        return slot->state != Slot::State::kDead;
      }));
}

std::vector<WorkerRegistry::WorkerInfo> WorkerRegistry::snapshot() const {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  std::vector<WorkerInfo> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    if (slot->state != Slot::State::kDead) {
      out.push_back({slot->name, slot->state == Slot::State::kIdle});
    }
  }
  return out;
}

void WorkerRegistry::shutdown() {
  using Slot = Lease::Slot;
  std::lock_guard lock(mutex_);
  shutting_down_ = true;
  for (const auto& slot : slots_) {
    if (slot->state == Slot::State::kIdle) {
      slot->state = Slot::State::kDead;
    }
  }
  changed_.notify_all();
}

}  // namespace ao::service
