#pragma once

#include <memory>
#include <string>
#include <vector>

#include "service/protocol.hpp"

namespace ao::service {

/// Executes one shard of a campaign in this process: expands the named
/// groups (indices into `request.to_campaign().groups()`), runs them on a
/// private scheduler with `request.workers` threads, and write-throughs
/// every record into a fresh store at `store_path`. Returns "" on success,
/// the error message otherwise. This is the whole body of the `ao_worker`
/// binary — the disk store is the only exchange format between a worker and
/// the service that spawned it.
std::string run_shard(const CampaignRequest& request,
                      const std::vector<std::size_t>& groups,
                      const std::string& store_path);

/// Farms a campaign's shards out to workers.
///
/// Two execution modes:
///  - process mode (a worker binary path is configured): each shard is a
///    spawned `ao_worker` process handed the request block as a file plus
///    its group list; crash isolation and true multi-process parallelism.
///  - in-process mode (empty binary path): each shard runs run_shard() on a
///    std::thread — same store contract, no process boundary (tests and
///    environments without the binary).
///
/// Either way every shard produces an independent result store the caller
/// tails for streaming and merges (conflict-free, by CacheKey) afterwards.
class WorkerPool {
 public:
  struct ShardTask {
    std::size_t shard_index = 0;
    std::vector<std::size_t> groups;  ///< campaign group indices
    std::string store_path;           ///< fresh write-through store target
  };

  struct ShardOutcome {
    std::size_t shard_index = 0;
    int exit_code = 0;    ///< 0 = success (thread mode: 0/1)
    std::string error;    ///< thread-mode failures and lost processes;
                          ///< exiting processes report via stderr
  };

  /// `worker_binary` "" selects in-process mode.
  explicit WorkerPool(std::string worker_binary = {});
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Launches every shard and returns immediately. In process mode the
  /// request block is written to `request_file` for the workers to read.
  /// Empty shards are skipped. Must not be called while busy().
  void start(const CampaignRequest& request, const std::string& request_file,
             std::vector<ShardTask> tasks);

  /// True while any shard is still executing.
  bool busy();

  /// Blocks until every shard finishes; returns outcomes sorted by shard
  /// index. Idempotent.
  std::vector<ShardOutcome> wait();

 private:
  struct Running;

  std::string worker_binary_;
  std::vector<std::unique_ptr<Running>> running_;
  std::vector<ShardOutcome> outcomes_;
};

}  // namespace ao::service
