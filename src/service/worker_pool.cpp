#include "service/worker_pool.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>

#include "orchestrator/result_cache.hpp"
#include "orchestrator/scheduler.hpp"
#include "util/error.hpp"

namespace ao::service {

std::string run_shard(const CampaignRequest& request,
                      const std::vector<std::size_t>& groups,
                      const std::string& store_path) {
  try {
    AO_REQUIRE(!store_path.empty(), "shard needs a store path");
    // A fresh store per shard: remove leftovers so a stale file from an
    // earlier campaign can never leak records into this one.
    std::remove(store_path.c_str());
    orchestrator::ResultCache cache;
    // The store is a streaming exchange file: the service tails it by byte
    // offset while this shard runs, so it must stay strictly append-only —
    // no automatic rewrites. Evicted entries remain in the append log and
    // are recovered by the service's merge_store().
    cache.set_compaction_policy(0.0);
    cache.persist_to(store_path);

    orchestrator::Campaign campaign = request.to_campaign();
    orchestrator::JobQueue queue;
    campaign.expand_subset(queue, groups);

    orchestrator::CampaignScheduler::Options scheduler_options;
    scheduler_options.concurrency = request.workers;
    orchestrator::CampaignScheduler scheduler(request.options(),
                                              scheduler_options, &cache);
    scheduler.run(queue);
    return {};
  } catch (const std::exception& e) {
    return e.what();
  }
}

struct WorkerPool::Running {
  ShardTask task;
  // Process mode.
  pid_t pid = -1;
  // Thread mode.
  std::thread thread;
  std::atomic<bool> done{false};
  int exit_code = 0;
  std::string error;  ///< written by the thread before `done` is set
};

WorkerPool::WorkerPool(std::string worker_binary)
    : worker_binary_(std::move(worker_binary)) {}

WorkerPool::~WorkerPool() { wait(); }

void WorkerPool::start(const CampaignRequest& request,
                       const std::string& request_file,
                       std::vector<ShardTask> tasks) {
  AO_REQUIRE(running_.empty(), "WorkerPool is already running a campaign");
  outcomes_.clear();

  const bool process_mode = !worker_binary_.empty();
  if (process_mode) {
    AO_REQUIRE(!request_file.empty(), "process mode needs a request file");
    std::ofstream out(request_file, std::ios::trunc);
    if (!out) {
      throw util::Error("cannot write worker request file: " + request_file);
    }
    for (const std::string& line : request.to_lines()) {
      out << line << '\n';
    }
    if (!out) {
      throw util::Error("short write to worker request file: " + request_file);
    }
  }

  for (ShardTask& task : tasks) {
    if (task.groups.empty()) {
      continue;  // nothing to run; no store is produced
    }
    auto running = std::make_unique<Running>();
    running->task = std::move(task);

    if (process_mode) {
      std::string groups_csv;
      for (const std::size_t g : running->task.groups) {
        if (!groups_csv.empty()) {
          groups_csv += ',';
        }
        groups_csv += std::to_string(g);
      }
      const pid_t pid = fork();
      if (pid < 0) {
        throw util::Error("fork() failed spawning a shard worker");
      }
      if (pid == 0) {
        // Child: exec the worker binary; _exit on failure so no destructors
        // of the half-copied parent state run.
        const char* argv[] = {worker_binary_.c_str(),
                              "--request",
                              request_file.c_str(),
                              "--groups",
                              groups_csv.c_str(),
                              "--store",
                              running->task.store_path.c_str(),
                              nullptr};
        execv(worker_binary_.c_str(), const_cast<char* const*>(argv));
        std::perror("execv ao_worker");
        _exit(127);
      }
      running->pid = pid;
    } else {
      Running* state = running.get();
      const CampaignRequest request_copy = request;
      state->thread = std::thread([state, request_copy] {
        state->error = run_shard(request_copy, state->task.groups,
                                 state->task.store_path);
        state->exit_code = state->error.empty() ? 0 : 1;
        state->done.store(true, std::memory_order_release);
      });
    }
    running_.push_back(std::move(running));
  }
}

bool WorkerPool::busy() {
  for (const auto& running : running_) {
    if (running->pid >= 0) {
      int status = 0;
      const pid_t reaped = waitpid(running->pid, &status, WNOHANG);
      if (reaped == 0) {
        return true;  // still executing
      }
      if (reaped > 0) {
        running->exit_code =
            WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
      } else {
        // waitpid failed (e.g. the child was auto-reaped under an
        // inherited SIGCHLD=SIG_IGN): the worker is lost, which must never
        // read as success — its store may be incomplete.
        running->exit_code = 255;
        running->error = "worker process lost (waitpid failed)";
      }
      running->pid = -1;
      running->done.store(true, std::memory_order_release);
    } else if (!running->done.load(std::memory_order_acquire)) {
      return true;
    }
  }
  return false;
}

std::vector<WorkerPool::ShardOutcome> WorkerPool::wait() {
  for (auto& running : running_) {
    if (running->pid >= 0) {
      int status = 0;
      if (waitpid(running->pid, &status, 0) > 0) {
        running->exit_code =
            WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
      } else {
        running->exit_code = 255;  // lost worker: never report success
        running->error = "worker process lost (waitpid failed)";
      }
      running->pid = -1;
    }
    if (running->thread.joinable()) {
      running->thread.join();
    }
    ShardOutcome outcome;
    outcome.shard_index = running->task.shard_index;
    outcome.exit_code = running->exit_code;
    outcome.error = running->error;
    outcomes_.push_back(outcome);
  }
  running_.clear();
  std::sort(outcomes_.begin(), outcomes_.end(),
            [](const ShardOutcome& a, const ShardOutcome& b) {
              return a.shard_index < b.shard_index;
            });
  return outcomes_;
}

}  // namespace ao::service
