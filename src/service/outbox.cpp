#include "service/outbox.hpp"

#include <algorithm>
#include <utility>

namespace ao::service {

SessionOutbox::SessionOutbox(std::ostream& sink, std::size_t capacity)
    : sink_(&sink), capacity_(std::max<std::size_t>(1, capacity)) {
  writer_ = std::thread([this] { writer_loop(); });
}

SessionOutbox::~SessionOutbox() { close(); }

void SessionOutbox::writer_loop() {
  for (;;) {
    Item item;
    bool flush_now = false;
    {
      std::unique_lock lock(mutex_);
      items_.wait(lock, [&] { return !queue_.empty() || closing_; });
      if (queue_.empty()) {
        return;  // closing and fully drained
      }
      item = std::move(queue_.front());
      queue_.pop_front();
      // Flush when the burst is over (or on every control line — a protocol
      // event is a turn the client must see), batching the data torrent.
      flush_now = queue_.empty() || item.control;
      space_.notify_all();
    }
    // The write happens OUTSIDE the lock: a client that stopped reading
    // blocks this thread in the socket write, while cancel()/stats() (and
    // producers, until the queue fills) stay responsive.
    *sink_ << item.line << '\n';
    if (flush_now) {
      sink_->flush();
    }
  }
}

void SessionOutbox::push_data(std::string line) {
  std::unique_lock lock(mutex_);
  if (cancelled_) {
    ++dropped_;
    return;
  }
  if (queue_.size() >= capacity_) {
    ++blocked_;  // the backpressure case: this producer now waits
    space_.wait(lock, [&] {
      return queue_.size() < capacity_ || cancelled_ || closing_;
    });
    if (cancelled_) {
      ++dropped_;
      return;
    }
  }
  queue_.push_back({std::move(line), /*control=*/false});
  high_water_ = std::max(high_water_, queue_.size());
  items_.notify_one();
}

void SessionOutbox::push_control(std::string line) {
  std::lock_guard lock(mutex_);
  // Control lines ignore the capacity: they are rare, bounded by the
  // protocol (events + one terminal reply), and must survive cancel.
  queue_.push_back({std::move(line), /*control=*/true});
  high_water_ = std::max(high_water_, queue_.size());
  items_.notify_one();
}

void SessionOutbox::cancel() {
  std::lock_guard lock(mutex_);
  cancelled_ = true;
  const std::size_t before = queue_.size();
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [](const Item& item) { return !item.control; }),
               queue_.end());
  dropped_ += before - queue_.size();
  space_.notify_all();  // unblock producers stuck behind a stalled client
  items_.notify_one();
}

void SessionOutbox::close() {
  // Only the owning session thread (and its destructor) calls close, so the
  // joinable() check is race-free.
  {
    std::lock_guard lock(mutex_);
    closing_ = true;
    space_.notify_all();
    items_.notify_one();
  }
  if (writer_.joinable()) {
    writer_.join();
  }
}

bool SessionOutbox::cancelled() const {
  std::lock_guard lock(mutex_);
  return cancelled_;
}

SessionOutbox::Stats SessionOutbox::stats() const {
  std::lock_guard lock(mutex_);
  return {capacity_, high_water_, blocked_, dropped_};
}

OutboxStream::OutboxStream(SessionOutbox& outbox)
    : std::ostream(nullptr), buf_(outbox) {
  rdbuf(&buf_);
}

std::ostream::int_type OutboxStream::LineBuf::overflow(int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof())) {
    return traits_type::not_eof(ch);
  }
  if (traits_type::to_char_type(ch) == '\n') {
    deliver();
  } else {
    line_.push_back(traits_type::to_char_type(ch));
  }
  return ch;
}

std::streamsize OutboxStream::LineBuf::xsputn(const char* s,
                                              std::streamsize n) {
  for (std::streamsize i = 0; i < n; ++i) {
    if (s[i] == '\n') {
      deliver();
    } else {
      line_.push_back(s[i]);
    }
  }
  return n;
}

void OutboxStream::LineBuf::deliver() {
  const bool data = line_.rfind("record ", 0) == 0 ||
                    line_.rfind("progress ", 0) == 0;
  if (data) {
    outbox_->push_data(std::move(line_));
  } else {
    outbox_->push_control(std::move(line_));
  }
  line_.clear();
}

}  // namespace ao::service
