#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace ao::service {

// Binary-safe, length-prefixed frames embedded in the service's line
// protocol — the transport the distributed shard workers use to ship
// record batches and whole result stores over a socket instead of a shared
// filesystem (grammar in docs/service.md#wire-format-frames):
//
//   @frame1 <type> <length> <digest>\n
//   <length raw payload bytes>\n
//
// The magic carries the frame-format version (`@frame` + kFrameVersion);
// a reader that sees any other magic rejects the stream rather than guess.
// <length> and <digest> are lowercase hex like every store token; <digest>
// is orchestrator::store_digest() (FNV-1a) over the payload bytes — the
// same digest the disk store's entry lines use, one definition for both
// codecs. The trailing newline keeps a frame hexdump-readable and lets a
// line-oriented peer resynchronize after a frame it skipped.

/// Bumped whenever the header layout changes; read_frame() rejects frames
/// written by any other version (the magic token embeds it).
inline constexpr int kFrameVersion = 1;
inline constexpr char kFrameMagic[] = "@frame1";

/// Hard payload ceiling (64 MiB): a corrupt length token must never make
/// the reader allocate unbounded memory. Far above any real store — the
/// CI campaigns ship a few KiB.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;

/// Header-line ceiling. A well-formed header is ≤ 74 bytes (magic + type +
/// two hex tokens); a peer streaming newline-free garbage is cut off here
/// instead of growing a string without bound.
inline constexpr std::size_t kMaxFrameHeader = 128;

// Frame types of the worker conversation (docs/service.md#wire-format-frames).
inline constexpr char kFrameTask[] = "task";          ///< daemon → worker
inline constexpr char kFrameRecords[] = "records";    ///< worker → daemon
inline constexpr char kFrameStore[] = "store";        ///< worker → daemon
inline constexpr char kFrameShardError[] = "shard-error";  ///< worker → daemon
inline constexpr char kFrameBye[] = "bye";            ///< daemon → worker
inline constexpr char kFramePing[] = "ping";          ///< daemon → worker
inline constexpr char kFramePong[] = "pong";          ///< worker → daemon
inline constexpr char kFrameSpans[] = "spans";        ///< worker → daemon

/// One frame: a short lowercase type token plus an arbitrary byte payload.
struct Frame {
  std::string type;
  std::string payload;

  bool operator==(const Frame&) const = default;
};

/// True for the type tokens write_frame() accepts: [a-z0-9-], 1–32 chars.
bool valid_frame_type(std::string_view type);

/// Appends one encoded frame (header line + payload + newline) to `out`
/// without clearing it — the allocation-free core every frame writer shares.
/// Throws util::InvalidArgument for an invalid type or an oversized payload.
void encode_frame_into(std::string& out, std::string_view type,
                       std::string_view payload);

/// Encodes the frame as header line + payload + newline. Throws
/// util::InvalidArgument for an invalid type or an oversized payload.
std::string encode_frame(const Frame& frame);

/// encode_frame() straight onto a stream, then flushes — a frame is a
/// protocol turn, so the peer must see it immediately.
void write_frame(std::ostream& out, const Frame& frame);

/// Reusable frame encoder for one link/session: the encode buffer is owned
/// by the writer and recycled across frames, so a long conversation stops
/// paying one string allocation (and two stream writes) per frame. Each
/// frame is emitted as ONE ostream write of header+payload+terminator —
/// scatter-gather style: the pieces are gathered into the reused buffer and
/// hit the stream in a single put, then a flush (a frame is a protocol
/// turn; the peer must see it immediately).
///
/// NOT thread-safe: one FrameWriter per session/link, owned by whoever owns
/// the ostream. Concurrent sessions must each hold their own writer — the
/// buffer contents of an in-flight write are live exactly until write()
/// returns, and never alias another session's frames.
class FrameWriter {
 public:
  /// Encodes and writes one frame. Same validation (and exceptions) as
  /// encode_frame(); stream state after the write is the caller's to check.
  void write(std::ostream& out, std::string_view type,
             std::string_view payload);

  /// Bytes currently reserved by the reused encode buffer — test
  /// introspection for the no-per-frame-allocation property.
  std::size_t buffer_capacity() const { return buffer_.capacity(); }

 private:
  std::string buffer_;
};

/// Reads one frame. Returns nullopt with `error` set to a stable reason on
/// any failure: "closed" (EOF before a header), "bad-frame-header"
/// (wrong magic/version or malformed tokens), "frame-oversized" (length
/// above kMaxFramePayload), "frame-truncated" (stream ended inside the
/// payload or the trailing newline is missing), "frame-digest-mismatch"
/// (payload bytes disagree with the header digest). The caller decides
/// whether a failure poisons the connection; this parser never throws.
std::optional<Frame> read_frame(std::istream& in, std::string* error = nullptr);

}  // namespace ao::service
