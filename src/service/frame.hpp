#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

namespace ao::service {

// Binary-safe, length-prefixed frames embedded in the service's line
// protocol — the transport the distributed shard workers use to ship
// record batches and whole result stores over a socket instead of a shared
// filesystem (grammar in docs/service.md#wire-format-frames):
//
//   @frame1 <type> <length> <digest>\n
//   <length raw payload bytes>\n
//
// The magic carries the frame-format version (`@frame` + kFrameVersion);
// a reader that sees any other magic rejects the stream rather than guess.
// <length> and <digest> are lowercase hex like every store token; <digest>
// is orchestrator::store_digest() (FNV-1a) over the payload bytes — the
// same digest the disk store's entry lines use, one definition for both
// codecs. The trailing newline keeps a frame hexdump-readable and lets a
// line-oriented peer resynchronize after a frame it skipped.

/// Bumped whenever the header layout changes; read_frame() rejects frames
/// written by any other version (the magic token embeds it).
inline constexpr int kFrameVersion = 1;
inline constexpr char kFrameMagic[] = "@frame1";

/// Hard payload ceiling (64 MiB): a corrupt length token must never make
/// the reader allocate unbounded memory. Far above any real store — the
/// CI campaigns ship a few KiB.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;

/// Header-line ceiling. A well-formed header is ≤ 74 bytes (magic + type +
/// two hex tokens); a peer streaming newline-free garbage is cut off here
/// instead of growing a string without bound.
inline constexpr std::size_t kMaxFrameHeader = 128;

// Frame types of the worker conversation (docs/service.md#wire-format-frames).
inline constexpr char kFrameTask[] = "task";          ///< daemon → worker
inline constexpr char kFrameRecords[] = "records";    ///< worker → daemon
inline constexpr char kFrameStore[] = "store";        ///< worker → daemon
inline constexpr char kFrameShardError[] = "shard-error";  ///< worker → daemon
inline constexpr char kFrameBye[] = "bye";            ///< daemon → worker
inline constexpr char kFramePing[] = "ping";          ///< daemon → worker
inline constexpr char kFramePong[] = "pong";          ///< worker → daemon
inline constexpr char kFrameSpans[] = "spans";        ///< worker → daemon

/// One frame: a short lowercase type token plus an arbitrary byte payload.
struct Frame {
  std::string type;
  std::string payload;

  bool operator==(const Frame&) const = default;
};

/// True for the type tokens write_frame() accepts: [a-z0-9-], 1–32 chars.
bool valid_frame_type(const std::string& type);

/// Encodes the frame as header line + payload + newline. Throws
/// util::InvalidArgument for an invalid type or an oversized payload.
std::string encode_frame(const Frame& frame);

/// encode_frame() straight onto a stream, then flushes — a frame is a
/// protocol turn, so the peer must see it immediately.
void write_frame(std::ostream& out, const Frame& frame);

/// Reads one frame. Returns nullopt with `error` set to a stable reason on
/// any failure: "closed" (EOF before a header), "bad-frame-header"
/// (wrong magic/version or malformed tokens), "frame-oversized" (length
/// above kMaxFramePayload), "frame-truncated" (stream ended inside the
/// payload or the trailing newline is missing), "frame-digest-mismatch"
/// (payload bytes disagree with the header digest). The caller decides
/// whether a failure poisons the connection; this parser never throws.
std::optional<Frame> read_frame(std::istream& in, std::string* error = nullptr);

}  // namespace ao::service
