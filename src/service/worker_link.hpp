#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/profiler.hpp"
#include "service/protocol.hpp"

namespace ao::service {

// The frame conversation between the campaign service and a remote shard
// worker (sequence diagram in docs/service.md#wire-format-frames). The
// worker side (`run_worker_session`) and the daemon side
// (`run_remote_shard`) are both transport-agnostic — any istream/ostream
// pair — so the same code runs over a unix socket, a TCP connection, the
// stdio of an ssh bridge (`ao_worker --stdio-frames`) and the socketpairs
// the tests drive.

/// One shard assignment as the `task` frame payload carries it.
struct RemoteTask {
  std::size_t shard_index = 0;
  std::vector<std::size_t> groups;  ///< campaign group indices
  CampaignRequest request;
};

/// Parses a "1,2,3" index list (digits and commas only; no empty list).
/// Shared by the task payload codec and `ao_worker`'s `--groups` flag.
bool parse_index_csv(const std::string& csv, std::vector<std::size_t>& out);

/// Serializes a shard assignment into the `task` frame payload:
/// "shard <i>" and "groups <csv>" lines followed by the request block
/// (CampaignRequest::to_lines()).
std::string encode_task(const CampaignRequest& request,
                        std::size_t shard_index,
                        const std::vector<std::size_t>& groups);

/// Parses an encode_task() payload. Returns nullopt and sets `error` on any
/// malformed line.
std::optional<RemoteTask> decode_task(const std::string& payload,
                                      std::string* error = nullptr);

/// Knobs of a worker session; the defaults are production behaviour.
struct WorkerSessionOptions {
  /// Clock behind the worker-side timeline profiler and the clock readings
  /// shipped in `pong` payloads (the daemon's offset estimation input).
  /// {} selects the monotonic steady_clock; tests inject counter clocks
  /// for deterministic distributed timelines.
  obs::TimelineProfiler::ClockFn clock;
  /// Up to this many settled records coalesce into one `records` frame
  /// (newline-separated entry lines — the daemon's reader splits either
  /// shape). 1 restores the one-frame-per-record wire behaviour; 0 is
  /// clamped to 1. Each flush records a `flush` span.
  std::size_t record_batch = 16;
  /// Flush deadline for a partially filled batch: once the oldest buffered
  /// record has waited this long it is flushed with whatever joined it
  /// (checked as records settle; the end of the shard always flushes, so a
  /// deadline never strands records).
  std::uint64_t batch_flush_ns = 5'000'000;
};

/// The whole body of a remote `ao_worker`: sends the `worker <name>` hello,
/// waits for the service's ack, then loops — `task` frame in, the shard's
/// records out as batched `records` frames (up to `record_batch` settled
/// records per frame, bounded by the flush deadline), closed by a
/// `spans` frame carrying the shard's worker-side timeline (execute/
/// serialize/frame spans, ao-profile/1 payload) and a `store` frame
/// carrying the shard's full serialized result store (or a `shard-error`
/// frame after the spans; the worker stays alive for the next task either
/// way). `ping` frames (the registry's liveness probes) are answered with
/// `pong` carrying this worker's current clock reading — the daemon pairs
/// it with the ping round-trip to estimate the clock offset that aligns
/// shipped spans. Returns the process exit code: 0 after a `bye` frame or
/// a clean EOF (the daemon went away), nonzero on a protocol violation.
int run_worker_session(std::istream& in, std::ostream& out,
                       const std::string& name,
                       WorkerSessionOptions options = {});

/// Daemon-side outcome of one remote shard conversation.
struct RemoteShardOutcome {
  std::size_t shard_index = 0;
  bool ok = false;
  /// True when the connection itself broke (the worker must be retired);
  /// false for a shard that failed cleanly over a healthy connection.
  bool connection_lost = false;
  std::string error;
  std::size_t records = 0;  ///< entry lines received incrementally
  std::string store;        ///< the final `store` frame payload ("" if lost)
  /// Every entry line received via `records` frames — the partial-merge
  /// fallback when the worker died before its `store` frame.
  std::vector<std::string> lines;
  /// Worker-origin spans grafted onto the daemon profiler (0 when the
  /// worker shipped none or no profiler was attached).
  std::size_t worker_spans = 0;
};

/// Per-endpoint context for grafting the worker's shipped timeline
/// (`spans` frame) onto the daemon profiler.
struct ShardGraft {
  /// Worker name stamped as the grafted spans' `origin`. "" falls back to
  /// the name the payload itself carries.
  std::string origin;
  /// Heartbeat clock-offset estimate for this endpoint (worker clock minus
  /// daemon clock, midpoint method — WorkerRegistry). When absent the
  /// graft start-aligns the worker timeline to the transport window.
  bool has_clock_offset = false;
  std::int64_t clock_offset_ns = 0;
};

/// Runs one shard on a checked-out remote worker: writes the `task` frame,
/// forwards each incoming entry line to `on_record` (live streaming), and
/// returns when the worker's `store` / `shard-error` frame arrives or the
/// connection dies. Blocking; the caller owns the streams exclusively.
///
/// With `profiler` set the whole conversation records a `transport` span
/// (inheriting the calling thread's open scope — the driver's shard span),
/// with nested `frame` spans for the task-frame write and each records-frame
/// decode, and the worker's shipped timeline (`spans` frame) grafted under
/// the transport span: clock-aligned per `graft`, clamped into the
/// transport window (so worker spans nest strictly inside it with no
/// negative durations), stamped with the worker's origin name.
RemoteShardOutcome run_remote_shard(
    std::istream& in, std::ostream& out, const CampaignRequest& request,
    std::size_t shard_index, const std::vector<std::size_t>& groups,
    const std::function<void(const std::string& entry_line)>& on_record,
    obs::TimelineProfiler* profiler = nullptr,
    const ShardGraft* graft = nullptr);

}  // namespace ao::service
