#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <streambuf>
#include <string>
#include <thread>

namespace ao::service {

/// Bounded per-campaign outbound line queue — the service's flow control
/// against slow clients. A dedicated writer thread drains queued lines into
/// the session's real stream; producers (scheduler record callbacks, shard
/// drivers, the session thread itself) enqueue instead of writing.
///
/// Two classes of line, two policies:
///  - **data** (`push_data`: record/progress streams) blocks the producer
///    once `capacity` lines are queued — a client that stops reading stalls
///    exactly the shard drains feeding it, never daemon memory — and is
///    dropped outright after cancel() (an aborted campaign owes no more
///    records).
///  - **control** (`push_control`: protocol events, the final done/error
///    line) is never blocked and never dropped, so a cancelled campaign
///    still terminates its stream with a well-formed reply.
///
/// cancel() discards every queued data line and unblocks stuck producers —
/// which is also what lets `abort` cut a campaign loose from a stalled
/// session: the producer blocked in push_data() returns, the scheduler's
/// stop predicate fires at the next between-jobs check.
///
/// High-water/blocked/dropped accounting feeds the `stats` line.
class SessionOutbox {
 public:
  struct Stats {
    std::size_t capacity = 0;
    std::size_t high_water = 0;  ///< max lines ever queued at once
    std::size_t blocked = 0;     ///< data pushes that had to wait for room
    std::size_t dropped = 0;     ///< data lines discarded by cancel()
  };

  /// The writer thread starts immediately; `sink` must outlive close().
  /// `capacity` 0 is clamped to 1 (an unbounded outbox defeats the point).
  SessionOutbox(std::ostream& sink, std::size_t capacity);
  ~SessionOutbox();  ///< close()
  SessionOutbox(const SessionOutbox&) = delete;
  SessionOutbox& operator=(const SessionOutbox&) = delete;

  /// Enqueues one record/progress line (no trailing newline). Blocks while
  /// the queue is at capacity; after cancel() the line is counted dropped
  /// and discarded immediately.
  void push_data(std::string line);

  /// Enqueues one protocol event/reply line. Never blocks on capacity,
  /// never dropped — delivery order relative to data lines is preserved
  /// (one FIFO).
  void push_control(std::string line);

  /// Cancels the data stream: queued data lines are discarded, producers
  /// blocked in push_data() return, and every later push_data() is dropped.
  /// Control lines keep flowing. Idempotent, safe from any thread.
  void cancel();

  /// Drains everything still queued, then joins the writer. Producers must
  /// be done by now (the campaign has returned). Idempotent.
  void close();

  bool cancelled() const;
  Stats stats() const;

 private:
  struct Item {
    std::string line;
    bool control = false;
  };

  void writer_loop();

  std::ostream* sink_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable space_;  ///< producers wait for queue room
  std::condition_variable items_;  ///< the writer waits for work
  std::deque<Item> queue_;
  bool cancelled_ = false;
  bool closing_ = false;
  std::size_t high_water_ = 0;
  std::size_t blocked_ = 0;
  std::size_t dropped_ = 0;
  std::thread writer_;
};

/// std::ostream adapter that routes complete lines into a SessionOutbox,
/// classifying them by their protocol prefix: `record ` and `progress `
/// lines are data (bounded, droppable), everything else — queued/started/
/// shard events, done/error replies — is control. This is what lets the
/// campaign execution paths keep writing `out << ...` unchanged while a
/// campaign runs under flow control.
class OutboxStream : public std::ostream {
 public:
  explicit OutboxStream(SessionOutbox& outbox);

 private:
  class LineBuf : public std::streambuf {
   public:
    explicit LineBuf(SessionOutbox& outbox) : outbox_(&outbox) {}

   protected:
    int_type overflow(int_type ch) override;
    std::streamsize xsputn(const char* s, std::streamsize n) override;
    int sync() override { return 0; }  // the writer thread flushes

   private:
    void deliver();

    SessionOutbox* outbox_;
    std::string line_;
  };

  LineBuf buf_;
};

}  // namespace ao::service
