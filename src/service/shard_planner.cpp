#include "service/shard_planner.hpp"

#include <algorithm>
#include <numeric>

#include "stream/cpu_stream.hpp"
#include "stream/gpu_stream.hpp"
#include "util/error.hpp"

namespace ao::service {
namespace {

using orchestrator::ExperimentJob;
using orchestrator::JobKind;

double estimated_job_cost(const ExperimentJob& job) {
  const auto n = static_cast<double>(job.n);
  switch (job.kind) {
    case JobKind::kGemmMeasure:
      return n * n * n;
    case JobKind::kGemmVerify:
      return n * n;
    case JobKind::kStream: {
      const auto elements =
          job.stream_elements != 0
              ? static_cast<double>(job.stream_elements)
              : static_cast<double>(stream::CpuStream::kDefaultElements);
      return elements * job.stream_repetitions;
    }
    case JobKind::kGpuStream: {
      const auto elements =
          job.stream_elements != 0
              ? static_cast<double>(job.stream_elements)
              : static_cast<double>(stream::GpuStream::kDefaultElements);
      return elements * job.stream_repetitions;
    }
    case JobKind::kPowerIdle:
      return 1.0;
    case JobKind::kPrecisionStudy:
      return 4.0 * n * n * n;  // four formats, each a functional GEMM
    case JobKind::kAneInference: {
      const double m = job.ane_m != 0 ? static_cast<double>(job.ane_m) : n;
      const double k = job.ane_k != 0 ? static_cast<double>(job.ane_k) : n;
      return job.ane_functional ? m * n * k : 1.0;
    }
    case JobKind::kFp64Emulation:
      // Reference GEMM + emulated GEMM + FP32 error sweep, all host-side.
      return 3.0 * n * n * n;
    case JobKind::kSmeGemm:
      return 2.0 * n * n * n;  // SME run + AMX reference
  }
  throw util::InvalidArgument("unknown JobKind");
}

}  // namespace

double estimated_group_cost(const orchestrator::Campaign::JobGroup& group) {
  double cost = 0.0;
  for (const ExperimentJob& job : group.jobs) {
    cost += estimated_job_cost(job);
  }
  return cost;
}

ShardPlan plan_shards(
    const std::vector<orchestrator::Campaign::JobGroup>& groups,
    std::size_t shard_count) {
  AO_REQUIRE(shard_count >= 1, "need at least one shard");
  ShardPlan plan;
  plan.shard_groups.resize(shard_count);
  plan.shard_costs.assign(shard_count, 0.0);

  // LPT greedy: heaviest group first onto the least-loaded shard. Sorting is
  // stable on (cost desc, index asc) so the plan is a pure function of the
  // group list.
  std::vector<double> costs(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    costs[i] = estimated_group_cost(groups[i]);
  }
  std::vector<std::size_t> order(groups.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (costs[a] != costs[b]) {
      return costs[a] > costs[b];
    }
    return a < b;
  });
  for (const std::size_t index : order) {
    const auto lightest = static_cast<std::size_t>(std::distance(
        plan.shard_costs.begin(),
        std::min_element(plan.shard_costs.begin(), plan.shard_costs.end())));
    plan.shard_groups[lightest].push_back(index);
    plan.shard_costs[lightest] += costs[index];
  }
  for (auto& shard : plan.shard_groups) {
    std::sort(shard.begin(), shard.end());
  }
  return plan;
}

}  // namespace ao::service
