#include "service/worker_link.hpp"

#include <algorithm>
#include <iostream>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>

#include "obs/span_codec.hpp"
#include "orchestrator/campaign.hpp"
#include "orchestrator/plan_cache.hpp"
#include "orchestrator/result_cache.hpp"
#include "orchestrator/scheduler.hpp"
#include "service/frame.hpp"

namespace ao::service {

bool parse_index_csv(const std::string& csv, std::vector<std::size_t>& out) {
  out.clear();
  std::size_t value = 0;
  bool in_number = false;
  for (const char c : csv) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::size_t>(c - '0');
      in_number = true;
    } else if (c == ',' && in_number) {
      out.push_back(value);
      value = 0;
      in_number = false;
    } else {
      return false;
    }
  }
  if (in_number) {
    out.push_back(value);
  }
  return !out.empty();
}

namespace {

std::string join_index_csv(const std::vector<std::size_t>& values) {
  std::string out;
  for (const std::size_t v : values) {
    if (!out.empty()) {
      out += ',';
    }
    out += std::to_string(v);
  }
  return out;
}

/// Coalesces settled entry lines into batched `records` frames: lines
/// accumulate (newline-separated) in a reused buffer and settle onto the
/// wire as one frame per flush — batch-full, deadline-expired, or the
/// end-of-shard flush. Callers serialize access through the shard's
/// out_mutex; the buffer keeps its capacity across flushes.
class RecordBatcher {
 public:
  RecordBatcher(std::ostream& out, FrameWriter& writer,
                obs::TimelineProfiler& profiler, std::size_t batch,
                std::uint64_t flush_ns)
      : out_(out),
        writer_(writer),
        profiler_(profiler),
        batch_(std::max<std::size_t>(1, batch)),
        flush_ns_(flush_ns) {}

  void add(const std::string& line) {
    if (buffered_ == 0) {
      first_buffered_ns_ = profiler_.now();
    } else {
      buffer_ += '\n';
    }
    buffer_ += line;
    ++buffered_;
    if (buffered_ >= batch_ ||
        profiler_.now() - first_buffered_ns_ >= flush_ns_) {
      flush();
    }
  }

  /// Writes the buffered lines as one `records` frame under a `flush` span
  /// (no-op when empty). Also the end-of-shard and failure-path drain — a
  /// worker never strands settled records behind an exception.
  void flush() {
    if (buffered_ == 0) {
      return;
    }
    obs::TimelineProfiler::Scope flush_span(
        &profiler_, obs::Phase::kFlush, obs::TimelineProfiler::kInheritParent,
        "records");
    writer_.write(out_, kFrameRecords, buffer_);
    buffer_.clear();  // capacity survives for the next batch
    buffered_ = 0;
  }

 private:
  std::ostream& out_;
  FrameWriter& writer_;
  obs::TimelineProfiler& profiler_;
  std::size_t batch_;
  std::uint64_t flush_ns_;
  std::string buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t first_buffered_ns_ = 0;
};

/// Runs one task's shard, streams its records as batched frames, and closes
/// with the shard's worker-side timeline (`spans` frame) followed by the
/// authoritative `store` frame. Any exception propagates to the caller
/// (buffered records are flushed first), which ships whatever the profiler
/// measured and a `shard-error` frame.
void execute_task(const RemoteTask& task, std::ostream& out,
                  obs::TimelineProfiler& profiler, const std::string& origin,
                  FrameWriter& writer, orchestrator::PlanCache& plans,
                  const WorkerSessionOptions& options) {
  orchestrator::JobQueue queue;
  {
    // Compiled-expansion checkout: a session running many shards of the
    // same campaign expands it once. The `plan` span's label says whether
    // this checkout compiled.
    const std::uint64_t plan_start = profiler.now();
    bool compiled_here = false;
    const auto compiled =
        plans.checkout(plan_key(task.request), [&] {
          compiled_here = true;
          return orchestrator::compile_campaign(task.request.to_campaign());
        });
    orchestrator::push_group_subset(queue, compiled->groups, task.groups);
    profiler.record(obs::Phase::kPlan, plan_start, profiler.now(), 0,
                    compiled_here ? "miss" : "hit");
  }

  // Capacity covers the whole shard so the final `store` frame —
  // serialize_store() over the retained set — can never have evicted a
  // record the daemon is owed.
  orchestrator::ResultCache cache(std::max<std::size_t>(4096, queue.total()));
  cache.set_profiler(&profiler);
  orchestrator::CampaignScheduler::Options scheduler_options;
  scheduler_options.concurrency = task.request.workers;
  orchestrator::CampaignScheduler scheduler(task.request.options(),
                                            scheduler_options, &cache);
  scheduler.set_profile_sink(&profiler, 0);
  const std::uint64_t options_fp =
      orchestrator::options_fingerprint(task.request.options());

  std::mutex out_mutex;  // scheduler workers stream concurrently
  RecordBatcher batcher(out, writer, profiler, options.record_batch,
                        options.batch_flush_ns);
  try {
    scheduler.run(queue, [&](const orchestrator::ExperimentJob& job,
                             const orchestrator::MeasurementRecord& record,
                             bool /*from_cache*/) {
      // The callback runs inside the job's `execute` span, so both scopes
      // nest under it.
      obs::TimelineProfiler::Scope serialize(
          &profiler, obs::Phase::kSerialize,
          obs::TimelineProfiler::kInheritParent, "record");
      const std::string line = orchestrator::format_store_entry(
          orchestrator::key_for_job(job, options_fp), record);
      serialize.close();
      std::lock_guard lock(out_mutex);
      batcher.add(line);
    });
  } catch (...) {
    // Records settled before the failure are real measurements the daemon
    // can merge; flush them ahead of the shard-error the caller ships.
    std::lock_guard lock(out_mutex);
    batcher.flush();
    throw;
  }
  batcher.flush();  // the partial final batch (workers are joined by now)
  // The authoritative shard result: byte-for-byte what a local worker's
  // write-through store file would hold after the same run.
  const std::string store = cache.serialize_store();
  // The timeline ships *before* the store so the daemon's shard
  // conversation handles it inline — the store frame stays the settling
  // frame, and peers that never send spans change nothing.
  writer.write(out, kFrameSpans, obs::encode_spans(origin, profiler.drain()));
  writer.write(out, kFrameStore, store);
}

}  // namespace

std::string encode_task(const CampaignRequest& request,
                        std::size_t shard_index,
                        const std::vector<std::size_t>& groups) {
  std::string payload = "shard " + std::to_string(shard_index) + "\n";
  payload += "groups " + join_index_csv(groups) + "\n";
  for (const std::string& line : request.to_lines()) {
    payload += line;
    payload += '\n';
  }
  return payload;
}

std::optional<RemoteTask> decode_task(const std::string& payload,
                                      std::string* error) {
  const auto fail = [&](const std::string& message) -> std::optional<RemoteTask> {
    if (error != nullptr) {
      *error = message;
    }
    return std::nullopt;
  };
  std::istringstream in(payload);
  RemoteTask task;
  std::string line;

  if (!std::getline(in, line) || line.rfind("shard ", 0) != 0) {
    return fail("task payload must start with a 'shard <i>' line");
  }
  std::vector<std::size_t> one;
  if (!parse_index_csv(line.substr(6), one) || one.size() != 1) {
    return fail("malformed shard index: " + line);
  }
  task.shard_index = one[0];

  if (!std::getline(in, line) || line.rfind("groups ", 0) != 0 ||
      !parse_index_csv(line.substr(7), task.groups)) {
    return fail("task payload needs a 'groups <i,j,...>' line");
  }

  std::vector<std::string> request_lines;
  while (std::getline(in, line)) {
    request_lines.push_back(line);
  }
  std::string parse_error;
  const auto request = parse_request_lines(request_lines, &parse_error);
  if (!request.has_value()) {
    return fail("malformed request block: " + parse_error);
  }
  task.request = *request;
  return task;
}

int run_worker_session(std::istream& in, std::ostream& out,
                       const std::string& name, WorkerSessionOptions options) {
  // One profiler per session: each task drains it, so a timeline never
  // bleeds into the next shard's `spans` frame. The frame writer and plan
  // cache are session-owned too: every frame of the conversation recycles
  // one encode buffer, and repeated shards of one campaign expand it once.
  obs::TimelineProfiler profiler(options.clock);
  FrameWriter writer;
  orchestrator::PlanCache plans(8);
  out << "worker " << name << '\n';
  out.flush();
  std::string reply;
  if (!std::getline(in, reply)) {
    std::cerr << "ao_worker: connection closed before the hello ack\n";
    return 1;
  }
  if (!reply.empty() && reply.back() == '\r') {
    reply.pop_back();
  }
  if (reply.rfind("ok worker", 0) != 0) {
    std::cerr << "ao_worker: service refused the hello: " << reply << "\n";
    return 1;
  }

  for (;;) {
    std::string error;
    const auto frame = read_frame(in, &error);
    if (!frame.has_value()) {
      if (error == "closed") {
        return 0;  // the daemon went away; nothing owed
      }
      std::cerr << "ao_worker: bad frame from the service (" << error << ")\n";
      return 1;
    }
    if (frame->type == kFrameBye) {
      return 0;
    }
    if (frame->type == kFramePing) {
      // Liveness probe from the registry's heartbeat sweep: answer and keep
      // waiting for work. Parked workers that stop ponging are retired. The
      // payload is this worker's current clock reading — paired with the
      // ping round-trip it gives the daemon a midpoint clock-offset
      // estimate for aligning this worker's shipped spans.
      writer.write(out, kFramePong, std::to_string(profiler.now()));
      continue;
    }
    if (frame->type != kFrameTask) {
      std::cerr << "ao_worker: unexpected frame type: " << frame->type << "\n";
      return 1;
    }
    std::string task_error;
    const auto task = decode_task(frame->payload, &task_error);
    if (!task.has_value()) {
      writer.write(out, kFrameShardError, "malformed task: " + task_error);
      continue;
    }
    try {
      execute_task(*task, out, profiler, name, writer, plans, options);
    } catch (const std::exception& e) {
      // The shard failed but the connection is healthy: ship whatever the
      // timeline measured before the failure, report, and stay available
      // for the next task.
      writer.write(out, kFrameSpans, obs::encode_spans(name, profiler.drain()));
      writer.write(out, kFrameShardError, e.what());
    }
  }
}

RemoteShardOutcome run_remote_shard(
    std::istream& in, std::ostream& out, const CampaignRequest& request,
    std::size_t shard_index, const std::vector<std::size_t>& groups,
    const std::function<void(const std::string& entry_line)>& on_record,
    obs::TimelineProfiler* profiler, const ShardGraft* graft) {
  RemoteShardOutcome outcome;
  outcome.shard_index = shard_index;

  // The whole conversation is one transport span; frame encode/decode work
  // nests inside it (the blocking read_frame waits are transport time — the
  // worker is computing — not frame time).
  obs::TimelineProfiler::Scope transport(
      profiler, obs::Phase::kTransport,
      obs::TimelineProfiler::kInheritParent,
      "shard-" + std::to_string(shard_index));
  // The graft window: worker spans are clamped into [window_start, "now" at
  // settle], which lies strictly inside the transport span whatever the
  // clocks did — causal nesting and non-negative durations by construction.
  const std::uint64_t window_start = profiler != nullptr ? profiler->now() : 0;
  std::vector<obs::Span> pending_spans;
  std::string payload_origin;
  const auto settle_graft = [&] {
    if (profiler == nullptr || pending_spans.empty()) {
      return;
    }
    const std::string& origin = graft != nullptr && !graft->origin.empty()
                                    ? graft->origin
                                    : payload_origin;
    outcome.worker_spans = obs::graft_spans(
        *profiler, std::move(pending_spans), transport.id(), window_start,
        profiler->now(), graft != nullptr && graft->has_clock_offset,
        graft != nullptr ? graft->clock_offset_ns : 0, origin);
  };

  {
    obs::TimelineProfiler::Scope frame_span(profiler, obs::Phase::kFrame,
                                            obs::TimelineProfiler::kInheritParent,
                                            "task");
    write_frame(out, {kFrameTask, encode_task(request, shard_index, groups)});
  }
  if (!out) {
    outcome.connection_lost = true;
    outcome.error = "worker connection failed writing the task frame";
    return outcome;
  }

  for (;;) {
    std::string error;
    const auto frame = read_frame(in, &error);
    if (!frame.has_value()) {
      outcome.connection_lost = true;
      outcome.error = "worker connection failed (" + error + ")";
      return outcome;
    }
    if (frame->type == kFrameRecords) {
      obs::TimelineProfiler::Scope frame_span(
          profiler, obs::Phase::kFrame,
          obs::TimelineProfiler::kInheritParent, "records");
      std::istringstream lines(frame->payload);
      std::string line;
      while (std::getline(lines, line)) {
        if (line.empty()) {
          continue;
        }
        outcome.lines.push_back(line);
        ++outcome.records;
        if (on_record) {
          on_record(line);
        }
      }
    } else if (frame->type == kFrameSpans) {
      obs::TimelineProfiler::Scope frame_span(
          profiler, obs::Phase::kFrame,
          obs::TimelineProfiler::kInheritParent, "spans");
      std::string decode_error;
      auto decoded =
          obs::decode_spans(frame->payload, &payload_origin, &decode_error);
      if (decoded.has_value()) {
        // Grafted when the settling frame arrives — a worker that dies
        // between its spans and its store leaves a rescheduled shard, and
        // the retry attempt's timeline replaces this one.
        pending_spans = std::move(*decoded);
      }
      // A payload that fails to decode is version-skewed telemetry: drop
      // the spans, never the shard.
    } else if (frame->type == kFrameStore) {
      outcome.store = frame->payload;
      // The store frame is authoritative; the incrementally collected lines
      // were only the died-before-store fallback. Dropping them halves the
      // per-shard memory held until the merge.
      outcome.lines.clear();
      outcome.lines.shrink_to_fit();
      outcome.ok = true;
      settle_graft();
      return outcome;
    } else if (frame->type == kFrameShardError) {
      outcome.error = frame->payload;
      settle_graft();
      return outcome;
    } else {
      // Unknown frame type: a version-skewed worker. The stream position is
      // still sound (frames are length-prefixed) but the conversation is
      // not — retire the endpoint.
      outcome.connection_lost = true;
      outcome.error = "unexpected frame type from worker: " + frame->type;
      return outcome;
    }
  }
}

}  // namespace ao::service
