#include "service/worker_link.hpp"

#include <algorithm>
#include <iostream>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>

#include "orchestrator/campaign.hpp"
#include "orchestrator/result_cache.hpp"
#include "orchestrator/scheduler.hpp"
#include "service/frame.hpp"

namespace ao::service {

bool parse_index_csv(const std::string& csv, std::vector<std::size_t>& out) {
  out.clear();
  std::size_t value = 0;
  bool in_number = false;
  for (const char c : csv) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::size_t>(c - '0');
      in_number = true;
    } else if (c == ',' && in_number) {
      out.push_back(value);
      value = 0;
      in_number = false;
    } else {
      return false;
    }
  }
  if (in_number) {
    out.push_back(value);
  }
  return !out.empty();
}

namespace {

std::string join_index_csv(const std::vector<std::size_t>& values) {
  std::string out;
  for (const std::size_t v : values) {
    if (!out.empty()) {
      out += ',';
    }
    out += std::to_string(v);
  }
  return out;
}

/// Runs one task's shard and streams its records as frames. Any exception
/// propagates to the caller, which reports it as a `shard-error` frame.
void execute_task(const RemoteTask& task, std::ostream& out) {
  orchestrator::Campaign campaign = task.request.to_campaign();
  orchestrator::JobQueue queue;
  campaign.expand_subset(queue, task.groups);

  // Capacity covers the whole shard so the final `store` frame —
  // serialize_store() over the retained set — can never have evicted a
  // record the daemon is owed.
  orchestrator::ResultCache cache(std::max<std::size_t>(4096, queue.total()));
  orchestrator::CampaignScheduler::Options scheduler_options;
  scheduler_options.concurrency = task.request.workers;
  orchestrator::CampaignScheduler scheduler(task.request.options(),
                                            scheduler_options, &cache);
  const std::uint64_t options_fp =
      orchestrator::options_fingerprint(task.request.options());

  std::mutex out_mutex;  // scheduler workers stream concurrently
  scheduler.run(queue, [&](const orchestrator::ExperimentJob& job,
                           const orchestrator::MeasurementRecord& record,
                           bool /*from_cache*/) {
    const std::string line = orchestrator::format_store_entry(
        orchestrator::key_for_job(job, options_fp), record);
    std::lock_guard lock(out_mutex);
    write_frame(out, {kFrameRecords, line});
  });
  // The authoritative shard result: byte-for-byte what a local worker's
  // write-through store file would hold after the same run.
  write_frame(out, {kFrameStore, cache.serialize_store()});
}

}  // namespace

std::string encode_task(const CampaignRequest& request,
                        std::size_t shard_index,
                        const std::vector<std::size_t>& groups) {
  std::string payload = "shard " + std::to_string(shard_index) + "\n";
  payload += "groups " + join_index_csv(groups) + "\n";
  for (const std::string& line : request.to_lines()) {
    payload += line;
    payload += '\n';
  }
  return payload;
}

std::optional<RemoteTask> decode_task(const std::string& payload,
                                      std::string* error) {
  const auto fail = [&](const std::string& message) -> std::optional<RemoteTask> {
    if (error != nullptr) {
      *error = message;
    }
    return std::nullopt;
  };
  std::istringstream in(payload);
  RemoteTask task;
  std::string line;

  if (!std::getline(in, line) || line.rfind("shard ", 0) != 0) {
    return fail("task payload must start with a 'shard <i>' line");
  }
  std::vector<std::size_t> one;
  if (!parse_index_csv(line.substr(6), one) || one.size() != 1) {
    return fail("malformed shard index: " + line);
  }
  task.shard_index = one[0];

  if (!std::getline(in, line) || line.rfind("groups ", 0) != 0 ||
      !parse_index_csv(line.substr(7), task.groups)) {
    return fail("task payload needs a 'groups <i,j,...>' line");
  }

  std::vector<std::string> request_lines;
  while (std::getline(in, line)) {
    request_lines.push_back(line);
  }
  std::string parse_error;
  const auto request = parse_request_lines(request_lines, &parse_error);
  if (!request.has_value()) {
    return fail("malformed request block: " + parse_error);
  }
  task.request = *request;
  return task;
}

int run_worker_session(std::istream& in, std::ostream& out,
                       const std::string& name) {
  out << "worker " << name << '\n';
  out.flush();
  std::string reply;
  if (!std::getline(in, reply)) {
    std::cerr << "ao_worker: connection closed before the hello ack\n";
    return 1;
  }
  if (!reply.empty() && reply.back() == '\r') {
    reply.pop_back();
  }
  if (reply.rfind("ok worker", 0) != 0) {
    std::cerr << "ao_worker: service refused the hello: " << reply << "\n";
    return 1;
  }

  for (;;) {
    std::string error;
    const auto frame = read_frame(in, &error);
    if (!frame.has_value()) {
      if (error == "closed") {
        return 0;  // the daemon went away; nothing owed
      }
      std::cerr << "ao_worker: bad frame from the service (" << error << ")\n";
      return 1;
    }
    if (frame->type == kFrameBye) {
      return 0;
    }
    if (frame->type == kFramePing) {
      // Liveness probe from the registry's heartbeat sweep: answer and keep
      // waiting for work. Parked workers that stop ponging are retired.
      write_frame(out, {kFramePong, {}});
      continue;
    }
    if (frame->type != kFrameTask) {
      std::cerr << "ao_worker: unexpected frame type: " << frame->type << "\n";
      return 1;
    }
    std::string task_error;
    const auto task = decode_task(frame->payload, &task_error);
    if (!task.has_value()) {
      write_frame(out, {kFrameShardError, "malformed task: " + task_error});
      continue;
    }
    try {
      execute_task(*task, out);
    } catch (const std::exception& e) {
      // The shard failed but the connection is healthy: report and stay
      // available for the next task.
      write_frame(out, {kFrameShardError, e.what()});
    }
  }
}

RemoteShardOutcome run_remote_shard(
    std::istream& in, std::ostream& out, const CampaignRequest& request,
    std::size_t shard_index, const std::vector<std::size_t>& groups,
    const std::function<void(const std::string& entry_line)>& on_record,
    obs::TimelineProfiler* profiler) {
  RemoteShardOutcome outcome;
  outcome.shard_index = shard_index;

  // The whole conversation is one transport span; frame encode/decode work
  // nests inside it (the blocking read_frame waits are transport time — the
  // worker is computing — not frame time).
  obs::TimelineProfiler::Scope transport(
      profiler, obs::Phase::kTransport,
      obs::TimelineProfiler::kInheritParent,
      "shard-" + std::to_string(shard_index));

  {
    obs::TimelineProfiler::Scope frame_span(profiler, obs::Phase::kFrame,
                                            obs::TimelineProfiler::kInheritParent,
                                            "task");
    write_frame(out, {kFrameTask, encode_task(request, shard_index, groups)});
  }
  if (!out) {
    outcome.connection_lost = true;
    outcome.error = "worker connection failed writing the task frame";
    return outcome;
  }

  for (;;) {
    std::string error;
    const auto frame = read_frame(in, &error);
    if (!frame.has_value()) {
      outcome.connection_lost = true;
      outcome.error = "worker connection failed (" + error + ")";
      return outcome;
    }
    if (frame->type == kFrameRecords) {
      obs::TimelineProfiler::Scope frame_span(
          profiler, obs::Phase::kFrame,
          obs::TimelineProfiler::kInheritParent, "records");
      std::istringstream lines(frame->payload);
      std::string line;
      while (std::getline(lines, line)) {
        if (line.empty()) {
          continue;
        }
        outcome.lines.push_back(line);
        ++outcome.records;
        if (on_record) {
          on_record(line);
        }
      }
    } else if (frame->type == kFrameStore) {
      outcome.store = frame->payload;
      // The store frame is authoritative; the incrementally collected lines
      // were only the died-before-store fallback. Dropping them halves the
      // per-shard memory held until the merge.
      outcome.lines.clear();
      outcome.lines.shrink_to_fit();
      outcome.ok = true;
      return outcome;
    } else if (frame->type == kFrameShardError) {
      outcome.error = frame->payload;
      return outcome;
    } else {
      // Unknown frame type: a version-skewed worker. The stream position is
      // still sound (frames are length-prefixed) but the conversation is
      // not — retire the endpoint.
      outcome.connection_lost = true;
      outcome.error = "unexpected frame type from worker: " + frame->type;
      return outcome;
    }
  }
}

}  // namespace ao::service
