#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>

#include "orchestrator/result_cache.hpp"
#include "orchestrator/scheduler.hpp"
#include "service/protocol.hpp"

namespace ao::service {

/// The long-running campaign engine: accepts declarative sweep requests
/// over a line protocol (docs/service.md), schedules them through a shared
/// CampaignScheduler against one warm ResultCache, and streams each
/// MeasurementRecord back the moment it settles — the client reads results
/// while the campaign is still running.
///
/// Requests with `shards > 1` are partitioned by the ShardPlanner and farmed
/// out to WorkerPool workers (spawned `ao_worker` processes, or in-process
/// threads when no binary is configured). Each shard writes an independent
/// versioned disk store; the service tails those stores to stream records
/// live and merges them back into its warm cache — conflict-free, keyed by
/// CacheKey — when the workers finish.
///
/// Transport-agnostic: serve() speaks the protocol over any istream/ostream
/// pair. `ao_campaignd` runs it over a unix socket; the tests run it over
/// stringstreams. Sessions are stateless between campaigns, so sequential
/// clients share every previously measured point.
class CampaignService {
 public:
  struct Config {
    std::size_t cache_capacity = 4096;
    /// When set: the warm cache loads this store at startup and
    /// write-throughs (and auto-compacts) every new point to it.
    std::string store_path;
    /// Directory for per-campaign shard stores and worker request files.
    std::string shard_dir = ".";
    /// Path of the `ao_worker` binary; "" runs shards in-process.
    std::string worker_binary;
  };

  struct Totals {
    std::size_t campaigns = 0;
    std::size_t sharded_campaigns = 0;
    std::size_t records_streamed = 0;
    /// Jobs executed by in-process campaigns. Sharded work runs in worker
    /// processes whose schedulers don't report back; it shows up as
    /// merged_entries instead.
    std::size_t jobs_executed = 0;
    std::size_t cache_hits = 0;      ///< in-process scheduler hits + warm
                                     ///< groups served before sharding
    std::size_t merged_entries = 0;  ///< shard-store entries merged back
  };

  explicit CampaignService(Config config);

  /// Handles one protocol session until the stream ends or a `shutdown`
  /// command arrives; returns true on shutdown. Malformed lines get an
  /// `error` reply and the session continues — a bad request never takes
  /// the service down.
  bool serve(std::istream& in, std::ostream& out);

  orchestrator::ResultCache& cache() { return cache_; }
  Totals totals() const;

 private:
  void run_campaign(const CampaignRequest& request, std::ostream& out);
  void run_in_process(const CampaignRequest& request, std::uint64_t id,
                      std::size_t expected_records, std::ostream& out);
  void run_sharded(const CampaignRequest& request, std::uint64_t id,
                   std::size_t shard_count, std::size_t expected_records,
                   std::ostream& out);
  orchestrator::CampaignScheduler& scheduler_for(const CampaignRequest& request);

  Config config_;
  orchestrator::ResultCache cache_;
  std::mutex run_mutex_;  ///< one campaign executes at a time
  std::uint64_t next_campaign_id_ = 1;
  /// The shared scheduler, rebuilt only when a request's experiment options
  /// or concurrency differ from the previous campaign's — its SystemPool
  /// stays warm across campaigns that agree.
  std::unique_ptr<orchestrator::CampaignScheduler> scheduler_;
  std::uint64_t scheduler_key_ = 0;
  mutable std::mutex totals_mutex_;
  Totals totals_;
};

}  // namespace ao::service
