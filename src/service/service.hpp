#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "orchestrator/result_cache.hpp"
#include "orchestrator/scheduler.hpp"
#include "service/campaign_queue.hpp"
#include "service/protocol.hpp"

namespace ao::service {

/// The long-running campaign engine: accepts declarative sweep requests
/// over a line protocol (docs/service.md), schedules them through the
/// CampaignQueue against one warm, thread-safe ResultCache, and streams
/// each MeasurementRecord back the moment it settles — the client reads
/// results while the campaign is still running.
///
/// The service is multi-tenant: serve() is safe to call from one thread per
/// client session (`ao_campaignd` spawns one per accepted connection), and
/// campaigns whose resource classes (CPU/AMX vs GPU vs ANE, derived from
/// the JobKinds the request enables) are disjoint execute *concurrently*,
/// each on its own checked-out CampaignScheduler, all sharing the one warm
/// cache. Conflicting campaigns queue — higher `priority` first, FIFO
/// within a priority — and per-client quotas bound queue depth and
/// concurrency (quota violations get structured `error` replies).
///
/// Requests with `shards > 1` are partitioned by the ShardPlanner and farmed
/// out to WorkerPool workers (spawned `ao_worker` processes, or in-process
/// threads when no binary is configured). Each shard writes an independent
/// versioned disk store; the service tails those stores to stream records
/// live and merges them back into its warm cache — conflict-free, keyed by
/// CacheKey — when the workers finish.
///
/// Transport-agnostic: serve() speaks the protocol over any istream/ostream
/// pair. `ao_campaignd` runs it over a unix socket; the tests run it over
/// stringstreams. Sessions are stateless between campaigns, so sequential
/// clients share every previously measured point.
class CampaignService {
 public:
  struct Config {
    std::size_t cache_capacity = 4096;
    /// When set: the warm cache loads this store at startup and
    /// write-throughs (and auto-compacts) every new point to it.
    std::string store_path;
    /// Directory for per-campaign shard stores and worker request files.
    std::string shard_dir = ".";
    /// Path of the `ao_worker` binary; "" runs shards in-process.
    std::string worker_binary;
    /// Admission limits: global concurrency, per-client running and queued
    /// quotas (see CampaignQueue::Limits).
    CampaignQueue::Limits limits;
  };

  struct Totals {
    std::size_t campaigns = 0;
    std::size_t sharded_campaigns = 0;
    std::size_t records_streamed = 0;
    /// Jobs executed by in-process campaigns. Sharded work runs in worker
    /// processes whose schedulers don't report back; it shows up as
    /// merged_entries instead.
    std::size_t jobs_executed = 0;
    std::size_t cache_hits = 0;      ///< in-process scheduler hits + warm
                                     ///< groups served before sharding
    std::size_t merged_entries = 0;  ///< shard-store entries merged back
  };

  explicit CampaignService(Config config);

  /// Handles one protocol session until the stream ends or a `shutdown`
  /// command arrives; returns true on shutdown. Malformed lines get an
  /// `error` reply (stable code + the offending input line) and the session
  /// continues — a bad request never takes the service down. Thread-safe:
  /// concurrent sessions share the queue, the cache and the totals.
  bool serve(std::istream& in, std::ostream& out);

  orchestrator::ResultCache& cache() { return cache_; }
  CampaignQueue& queue() { return queue_; }
  Totals totals() const;
  /// Campaign names in the order the queue admitted them (most recent
  /// kStartLogCapacity entries) — the observable start order the queue
  /// tests assert on.
  std::vector<std::string> start_log() const;

 private:
  /// A CampaignScheduler checked out of the idle pool (or freshly built)
  /// for the duration of one campaign; returned on destruction so its warm
  /// SystemPool serves the next campaign with the same options/concurrency.
  class SchedulerLease;

  void run_campaign(const CampaignRequest& request, std::ostream& out);
  void run_in_process(const CampaignRequest& request, std::uint64_t id,
                      std::size_t expected_records, std::ostream& out);
  void run_sharded(const CampaignRequest& request, std::uint64_t id,
                   std::size_t shard_count, std::size_t expected_records,
                   std::ostream& out);

  Config config_;
  orchestrator::ResultCache cache_;
  CampaignQueue queue_;
  std::atomic<std::uint64_t> next_campaign_id_{1};

  /// Idle schedulers keyed by (options fingerprint, concurrency): a
  /// campaign checks one out exclusively and returns it, so concurrent
  /// campaigns never share a scheduler while SystemPools stay warm across
  /// sequential campaigns that agree on their options.
  std::mutex scheduler_pool_mutex_;
  std::multimap<std::uint64_t,
                std::unique_ptr<orchestrator::CampaignScheduler>>
      idle_schedulers_;

  /// Retained start_log() depth; old entries roll off.
  static constexpr std::size_t kStartLogCapacity = 64;

  mutable std::mutex totals_mutex_;
  Totals totals_;
  std::vector<std::string> start_log_;
};

}  // namespace ao::service
