#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "orchestrator/plan_cache.hpp"
#include "orchestrator/result_cache.hpp"
#include "orchestrator/scheduler.hpp"
#include "service/campaign_queue.hpp"
#include "service/outbox.hpp"
#include "service/protocol.hpp"
#include "service/worker_pool.hpp"
#include "service/worker_registry.hpp"

namespace ao::service {

/// The long-running campaign engine: accepts declarative sweep requests
/// over a line protocol (docs/service.md), schedules them through the
/// CampaignQueue against one warm, thread-safe ResultCache, and streams
/// each MeasurementRecord back the moment it settles — the client reads
/// results while the campaign is still running.
///
/// The service is multi-tenant: serve() is safe to call from one thread per
/// client session (`ao_campaignd` spawns one per accepted connection), and
/// campaigns whose resource classes (CPU/AMX vs GPU vs ANE, derived from
/// the JobKinds the request enables) are disjoint execute *concurrently*,
/// each on its own checked-out CampaignScheduler, all sharing the one warm
/// cache. Conflicting campaigns queue — higher `priority` first, FIFO
/// within a priority — and per-client quotas bound queue depth and
/// concurrency (quota violations get structured `error` replies).
///
/// Requests with `shards > 1` are partitioned by the ShardPlanner and run
/// over one of two transports:
///  - **remote workers** (preferred when any are connected, mandatory with
///    `remote_only`): `ao_worker --connect` processes — on this machine or
///    any other — that announced themselves with a `worker` hello and sit
///    parked in the WorkerRegistry. Each shard is shipped as a `task` frame
///    and the worker streams `records` frames back, closed by a `store`
///    frame carrying its full result store; no shared filesystem anywhere
///    (docs/service.md#wire-format-frames).
///  - **local workers**: WorkerPool-spawned `ao_worker` processes (or
///    in-process threads) exchanging results through per-shard disk stores
///    the service tails.
/// Either way the client observes records live, shards merge back into the
/// warm cache conflict-free by CacheKey, and the merged result is
/// bit-identical to a single-process run.
///
/// Transport-agnostic: serve() speaks the protocol over any istream/ostream
/// pair. `ao_campaignd` runs it over a unix socket; the tests run it over
/// stringstreams. Sessions are stateless between campaigns, so sequential
/// clients share every previously measured point.
class CampaignService {
 public:
  struct Config {
    std::size_t cache_capacity = 4096;
    /// When set: the warm cache loads this store at startup and
    /// write-throughs (and auto-compacts) every new point to it.
    std::string store_path;
    /// Directory for per-campaign shard stores and worker request files.
    std::string shard_dir = ".";
    /// Path of the `ao_worker` binary; "" runs shards in-process.
    std::string worker_binary;
    /// Never run shards locally: every sharded campaign waits up to
    /// `remote_wait_ms` for a connected remote worker and fails otherwise.
    /// Off, shards prefer remote workers when any are idle and fall back
    /// to the local WorkerPool when none are.
    bool remote_only = false;
    /// How long a remote-only sharded campaign waits for its first remote
    /// worker before failing.
    int remote_wait_ms = 15000;
    /// Admission limits: global concurrency, per-client running and queued
    /// quotas (see CampaignQueue::Limits).
    CampaignQueue::Limits limits;
    /// When set: one JSON timeline artifact (obs::timeline_json) is written
    /// here per completed campaign, as `<name>-c<id>.profile.json`. The
    /// directory must exist (ao_campaignd --profile-dir creates it).
    std::string profile_dir;
    /// Clock for the built-in timeline profiler; {} = steady_clock. Tests
    /// inject a counter for deterministic timelines. Campaign deadlines
    /// (`deadline <ms>`) are measured on this clock too.
    obs::TimelineProfiler::ClockFn profile_clock;
    /// Heartbeat interval for parked remote workers: an idle worker not
    /// heard from for this long is pinged (and retired when it fails to
    /// pong) by WorkerRegistry::heartbeat() — the daemon drives the sweep
    /// from a background thread, and the service sweeps once before leasing
    /// shard workers. 0 disables liveness probing.
    std::uint64_t heartbeat_interval_ns = 0;
    /// Clock for the worker registry's last-seen bookkeeping;
    /// {} = steady_clock. Tests inject a counter.
    WorkerRegistry::ClockFn worker_clock;
    /// Per-campaign outbound line queue depth: record/progress producers
    /// block once this many lines wait on a slow client (see
    /// SessionOutbox). Protocol events and replies are exempt.
    std::size_t outbox_capacity = 1024;
    /// Retained compiled campaign expansions (orchestrator::PlanCache):
    /// repeated campaigns skip the groups() walk at checkout. At least 1.
    std::size_t plan_cache_capacity = 64;
  };

  struct Totals {
    std::size_t campaigns = 0;
    std::size_t sharded_campaigns = 0;
    std::size_t records_streamed = 0;
    /// Jobs executed by in-process campaigns. Sharded work runs in worker
    /// processes whose schedulers don't report back; it shows up as
    /// merged_entries instead.
    std::size_t jobs_executed = 0;
    std::size_t cache_hits = 0;      ///< in-process scheduler hits + warm
                                     ///< groups served before sharding
    std::size_t merged_entries = 0;  ///< shard-store entries merged back
    std::size_t remote_shards = 0;   ///< shards executed on remote workers
    std::size_t aborted = 0;           ///< campaigns cancelled by `abort`
    std::size_t deadline_expired = 0;  ///< campaigns past their `deadline`
    std::size_t shard_retries = 0;     ///< shards re-dispatched after a
                                       ///< worker endpoint died mid-shard
    std::size_t outbox_peak = 0;     ///< deepest per-campaign outbox queue
    std::size_t outbox_blocked = 0;  ///< record pushes stalled by a slow
                                     ///< client (backpressure events)
    std::size_t outbox_dropped = 0;  ///< record lines dropped by aborts
    std::size_t queries = 0;         ///< `query` commands served
    std::size_t query_records = 0;   ///< entry lines streamed by query/follow
    std::size_t follows = 0;         ///< `follow` streams served
    std::size_t stale_cursors = 0;   ///< reads rejected with `stale-cursor`
  };

  explicit CampaignService(Config config);

  /// Handles one protocol session until the stream ends or a `shutdown`
  /// command arrives; returns true on shutdown. Malformed lines get an
  /// `error` reply (stable code + the offending input line) and the session
  /// continues — a bad request never takes the service down. Thread-safe:
  /// concurrent sessions share the queue, the cache and the totals.
  bool serve(std::istream& in, std::ostream& out);

  /// One completed campaign's retained span timeline — what the `profile`
  /// command replays. The service keeps the most recent kMaxTimelines.
  struct CampaignTimeline {
    std::uint64_t id = 0;
    std::string name;
    std::string client;
    std::vector<obs::Span> spans;  ///< id order (parents before children)
  };

  orchestrator::ResultCache& cache() { return cache_; }
  /// The compiled-expansion cache consulted at every campaign checkout.
  orchestrator::PlanCache& plan_cache() { return plan_cache_; }
  CampaignQueue& queue() { return queue_; }
  /// The pool of connected remote shard workers (`worker` hello sessions).
  WorkerRegistry& workers() { return registry_; }
  /// The built-in timeline profiler (tests inspect spans through it).
  obs::TimelineProfiler& profiler() { return profiler_; }
  /// Retained per-campaign timelines, oldest first.
  std::vector<CampaignTimeline> timelines() const;
  Totals totals() const;
  /// Campaign names in the order the queue admitted them (most recent
  /// kStartLogCapacity entries) — the observable start order the queue
  /// tests assert on.
  std::vector<std::string> start_log() const;

 private:
  /// A CampaignScheduler checked out of the idle pool (or freshly built)
  /// for the duration of one campaign; returned on destruction so its warm
  /// SystemPool serves the next campaign with the same options/concurrency.
  class SchedulerLease;

  /// One in-flight campaign's cancellation handle, shared between its
  /// session thread and the `abort` command. `abort <name>` flips `abort`
  /// and cancels the outbox; the deadline is an absolute instant on the
  /// profiler clock, checked wherever the campaign can stop cooperatively
  /// (queue wait, between scheduler jobs, between remote shards).
  struct CancelState {
    std::uint64_t id = 0;
    std::string name;
    std::uint64_t deadline_ns = 0;  ///< profiler-clock instant; 0 = none
    std::atomic<bool> abort{false};
    SessionOutbox* outbox = nullptr;  ///< guarded by active_mutex_
  };

  /// "aborted" / "deadline-exceeded" when the campaign must stop, "" while
  /// it may continue. Abort wins when both apply.
  std::string cancel_code(const CancelState& state) const;
  /// Folds one cancelled campaign into the totals.
  void note_cancelled(const std::string& code);

  struct CampaignJournal;  // defined below, next to its helpers

  void run_campaign(const CampaignRequest& request, std::ostream& session_out);
  /// Both execution paths receive the campaign's compiled expansion (a
  /// PlanCache checkout made in run_campaign) instead of re-expanding the
  /// request; run_sharded also gets the plan key so it can consult the
  /// shard-partition memo.
  /// `journal` (may be null) records every streamed CacheKey for `follow`.
  void run_in_process(
      const CampaignRequest& request,
      const std::shared_ptr<const orchestrator::CompiledCampaign>& compiled,
      std::uint64_t id, std::size_t expected_records, std::uint64_t root_span,
      const orchestrator::StopFn& should_stop, CampaignJournal* journal,
      std::ostream& out);
  void run_sharded(
      const CampaignRequest& request,
      const std::shared_ptr<const orchestrator::CompiledCampaign>& compiled,
      const std::string& plan_cache_key, std::uint64_t id,
      std::size_t shard_count, std::size_t expected_records,
      std::uint64_t root_span, const orchestrator::StopFn& should_stop,
      CampaignJournal* journal, std::ostream& out);
  /// Runs the planned shard tasks on checked-out remote workers (one driver
  /// thread per lease draining a shared work queue). Returns false when no
  /// worker could be leased and local fallback is allowed; true when remote
  /// execution happened (or remote-only failed), with `streamed`, `merged`,
  /// `remote_executed` (shards a worker completed), `retries_used` and
  /// `failure` updated. A shard whose endpoint dies mid-conversation is
  /// re-dispatched to a *different* worker while the request's per-campaign
  /// retry budget lasts; `seen` dedupes the entry lines a retry replays so
  /// the client never reads a record twice. Shards that exhausted the
  /// budget (or never ran) land in `leftover`: the caller reruns them
  /// locally — or, under remote_only, reports them as a structured failure.
  bool run_shards_remote(const CampaignRequest& request,
                         const std::vector<WorkerPool::ShardTask>& tasks,
                         std::size_t expected_records, std::uint64_t root_span,
                         const orchestrator::StopFn& should_stop,
                         CampaignJournal* journal,
                         std::unordered_set<std::string>* seen,
                         std::size_t* streamed, std::size_t* merged,
                         std::size_t* remote_executed,
                         std::size_t* retries_used,
                         std::vector<WorkerPool::ShardTask>* leftover,
                         std::string* failure, std::ostream& out);

  /// Settles one finished campaign's telemetry: drains the profiler, pulls
  /// the root's subtree out (spans of still-running concurrent campaigns go
  /// back to the orphan pool), folds its per-phase stats into the `stats`
  /// totals, retains the timeline for the `profile` command, and — with
  /// Config::profile_dir set — writes the JSON artifact. The campaign's root
  /// span must already be closed.
  void finish_campaign_profile(std::uint64_t root_span, std::uint64_t id,
                               const std::string& name,
                               const std::string& client);
  /// Handles the `profile [name]` command: replays the newest retained
  /// timeline (newest of that campaign name, with one given).
  void reply_profile(const std::string& name, std::ostream& out) const;
  /// Handles the `metrics` command: refreshes the counter/gauge samples
  /// from the lifetime totals and fleet state (both already monotone where
  /// Prometheus requires it) and streams the text exposition, terminated by
  /// the `# EOF` marker.
  void reply_metrics(std::ostream& out);

  /// The record stream of one campaign, retained for `follow` replays: the
  /// CacheKeys of every record the campaign streamed (or would have
  /// streamed), in emission order, deduplicated exactly like the live
  /// stream. The records themselves stay in the result store; a replay
  /// re-reads them through ResultCache::fetch_entry().
  struct CampaignJournal {
    std::uint64_t id = 0;
    std::string name;
    std::vector<orchestrator::CacheKey> keys;  ///< guarded by journal_mutex_
    bool complete = false;  ///< the campaign finished (vs died / was cut)
  };

  /// Registers a fresh journal for a starting campaign (old ones roll off
  /// beyond kMaxJournals) and returns it.
  std::shared_ptr<CampaignJournal> open_journal(std::uint64_t id,
                                                const std::string& name);
  void journal_append(CampaignJournal* journal,
                      const orchestrator::CacheKey& key);
  /// Newest retained journal named `name`; nullptr when none survives.
  std::shared_ptr<CampaignJournal> find_journal(const std::string& name) const;

  /// Handles `query [filters...]`: an indexed, snapshot-isolated page of
  /// store entries (docs/service.md#queries).
  void reply_query(const std::vector<std::string>& words,
                   const std::string& line, std::ostream& out);
  /// Handles `follow <name> [from <cursor>]`: replays a campaign's record
  /// stream from the store, resuming after the cursor.
  void reply_follow(const std::vector<std::string>& words,
                    const std::string& line, std::ostream& out);
  /// Settles one read-path command's telemetry: the kQuery span plus its
  /// phase totals/histogram (read spans have no campaign root to ride).
  void note_query_span(std::uint64_t started_ns, const std::string& label);

  Config config_;
  orchestrator::ResultCache cache_;
  orchestrator::PlanCache plan_cache_;
  CampaignQueue queue_;
  WorkerRegistry registry_;
  std::atomic<std::uint64_t> next_campaign_id_{1};
  std::atomic<std::uint64_t> next_worker_id_{1};

  /// Idle schedulers keyed by (options fingerprint, concurrency): a
  /// campaign checks one out exclusively and returns it, so concurrent
  /// campaigns never share a scheduler while SystemPools stay warm across
  /// sequential campaigns that agree on their options.
  std::mutex scheduler_pool_mutex_;
  std::multimap<std::uint64_t,
                std::unique_ptr<orchestrator::CampaignScheduler>>
      idle_schedulers_;

  /// Retained start_log() depth; old entries roll off.
  static constexpr std::size_t kStartLogCapacity = 64;

  mutable std::mutex totals_mutex_;
  Totals totals_;
  std::vector<std::string> start_log_;

  /// Every in-flight campaign's cancellation handle — what `abort <name>`
  /// scans. Entries are registered after admission and removed before the
  /// campaign's outbox closes.
  std::mutex active_mutex_;
  std::vector<std::shared_ptr<CancelState>> active_;

  /// Timeline telemetry. The profiler drains after every campaign, so a
  /// long-running daemon's span memory is bounded by kMaxTimelines retained
  /// timelines plus kMaxOrphanSpans spans of still-running campaigns.
  static constexpr std::size_t kMaxTimelines = 8;
  static constexpr std::size_t kMaxOrphanSpans = 4096;
  obs::TimelineProfiler profiler_;
  mutable std::mutex profile_mutex_;
  std::deque<CampaignTimeline> timelines_;
  std::vector<obs::Span> orphan_spans_;  ///< drained, not yet rooted
  /// Lifetime per-phase aggregates (count, total_ns) — the `stats-phase`
  /// feed; indexed by static_cast<size_t>(Phase).
  std::array<std::pair<std::size_t, std::uint64_t>, obs::kPhaseCount>
      phase_totals_{};

  /// The Prometheus exposition surface behind the `metrics` command.
  /// Histograms accumulate as campaigns finish; counters and gauges are
  /// refreshed from Totals / queue / registry at scrape time.
  obs::MetricsRegistry metrics_;

  /// Recent campaigns' record streams for `follow` (bounded, oldest first).
  static constexpr std::size_t kMaxJournals = 8;
  mutable std::mutex journal_mutex_;
  std::deque<std::shared_ptr<CampaignJournal>> journals_;
};

}  // namespace ao::service
