// ao_worker: one shard (or a stream of shards) of a service campaign in its
// own process. Three modes:
//
//   ao_worker --request <file> --groups <i,j,...> --store <file>
//     Local batch mode, spawned by the service's WorkerPool on the same
//     machine: expand exactly those job groups, run them, write-through
//     every record into the named store (which the service tails and
//     merges). stdout stays silent; errors go to stderr and the exit code.
//
//   ao_worker --connect <endpoint> [--name <id>]
//     Remote mode: connect to a campaign daemon — a unix socket path, or
//     host:port for a daemon listening with --tcp on another machine —
//     announce with a `worker` hello, then serve `task` frames until the
//     daemon says bye: records stream back as frames and each shard closes
//     with its worker-side span timeline (`spans` frame — the daemon grafts
//     it into the campaign profile) and its full result store, all over the
//     socket. No shared filesystem anywhere. Heartbeat pings are answered
//     with this process's monotonic clock reading, which the daemon uses to
//     align shipped spans onto its own timeline.
//
//   ao_worker --stdio-frames [--name <id>]
//     The same frame conversation over stdin/stdout — for bridged
//     transports (e.g. `ssh host ao_worker --stdio-frames` with the far
//     end socat-ed into the daemon socket) and for driving the worker
//     loop deterministically in tests.

#include <unistd.h>

#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "service/socket.hpp"
#include "service/worker_link.hpp"
#include "service/worker_pool.hpp"

namespace {

int usage() {
  std::cerr << "usage: ao_worker --request <file> --groups <i,j,...> "
               "--store <file>\n"
               "       ao_worker --connect <socket-path | host:port> "
               "[--name <id>] [--batch <n>] [--batch-flush-ms <ms>]\n"
               "       ao_worker --stdio-frames [--name <id>] [--batch <n>] "
               "[--batch-flush-ms <ms>]\n";
  return 2;
}

bool parse_count(const char* text, std::size_t& out) {
  std::size_t value = 0;
  const char* p = text;
  if (*p == '\0') {
    return false;
  }
  for (; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return false;
    }
    value = value * 10 + static_cast<std::size_t>(*p - '0');
  }
  out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // A daemon that dies mid-write must surface as a failed write (clean
  // "daemon went away" exit), not a SIGPIPE kill.
  std::signal(SIGPIPE, SIG_IGN);
  std::string request_path;
  std::string groups_csv;
  std::string store_path;
  std::string connect_endpoint;
  std::string name;
  bool stdio_frames = false;
  ao::service::WorkerSessionOptions session_options;
  for (int i = 1; i < argc; ++i) {
    const auto needs_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "ao_worker: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--request") == 0) {
      request_path = needs_value("--request");
    } else if (std::strcmp(argv[i], "--groups") == 0) {
      groups_csv = needs_value("--groups");
    } else if (std::strcmp(argv[i], "--store") == 0) {
      store_path = needs_value("--store");
    } else if (std::strcmp(argv[i], "--connect") == 0) {
      connect_endpoint = needs_value("--connect");
    } else if (std::strcmp(argv[i], "--name") == 0) {
      name = needs_value("--name");
    } else if (std::strcmp(argv[i], "--stdio-frames") == 0) {
      stdio_frames = true;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      if (!parse_count(needs_value("--batch"), session_options.record_batch) ||
          session_options.record_batch == 0) {
        std::cerr << "ao_worker: --batch needs a positive integer\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--batch-flush-ms") == 0) {
      std::size_t ms = 0;
      if (!parse_count(needs_value("--batch-flush-ms"), ms)) {
        std::cerr << "ao_worker: --batch-flush-ms needs an integer\n";
        return 2;
      }
      session_options.batch_flush_ns = ms * 1'000'000ull;
    } else {
      std::cerr << "ao_worker: unknown option " << argv[i] << "\n";
      return 2;
    }
  }

  if (name.empty()) {
    name = "w" + std::to_string(::getpid());
  }
  if (!ao::service::valid_campaign_name(name)) {
    std::cerr << "ao_worker: invalid --name (use [A-Za-z0-9._-], at most 64 "
                 "chars)\n";
    return 2;
  }

  const int modes = (connect_endpoint.empty() ? 0 : 1) +
                    (stdio_frames ? 1 : 0) +
                    (request_path.empty() && groups_csv.empty() &&
                             store_path.empty()
                         ? 0
                         : 1);
  if (modes != 1) {
    return usage();
  }

  if (stdio_frames) {
    return ao::service::run_worker_session(std::cin, std::cout, name,
                                           session_options);
  }

  if (!connect_endpoint.empty()) {
    const int fd = ao::service::connect_endpoint(connect_endpoint);
    if (fd < 0) {
      std::cerr << "ao_worker: cannot connect to " << connect_endpoint
                << "\n";
      return 1;
    }
    ao::service::SocketStream stream(fd);
    return ao::service::run_worker_session(stream, stream, name,
                                           session_options);
  }

  if (request_path.empty() || groups_csv.empty() || store_path.empty()) {
    return usage();
  }

  std::ifstream in(request_path);
  if (!in) {
    std::cerr << "ao_worker: cannot read request file " << request_path
              << "\n";
    return 2;
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  std::string error;
  const auto request = ao::service::parse_request_lines(lines, &error);
  if (!request.has_value()) {
    std::cerr << "ao_worker: malformed request: " << error << "\n";
    return 2;
  }

  std::vector<std::size_t> groups;
  if (!ao::service::parse_index_csv(groups_csv, groups)) {
    std::cerr << "ao_worker: malformed group list: " << groups_csv << "\n";
    return 2;
  }

  const std::string shard_error =
      ao::service::run_shard(*request, groups, store_path);
  if (!shard_error.empty()) {
    std::cerr << "ao_worker: shard failed: " << shard_error << "\n";
    return 1;
  }
  return 0;
}
