// ao_worker: one shard of a service campaign in its own process.
//
// The CampaignService's WorkerPool spawns this binary with the campaign
// request serialized to a file plus the shard's group list; the worker
// expands exactly those job groups, runs them, and write-throughs every
// record into the named store — which the service tails for streaming and
// merges when the worker exits. stdout stays silent; errors go to stderr
// and the exit code.
//
//   ao_worker --request <file> --groups <i,j,...> --store <file>

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "service/worker_pool.hpp"

namespace {

bool parse_groups(const std::string& csv, std::vector<std::size_t>& out) {
  std::size_t value = 0;
  bool in_number = false;
  for (const char c : csv) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::size_t>(c - '0');
      in_number = true;
    } else if (c == ',' && in_number) {
      out.push_back(value);
      value = 0;
      in_number = false;
    } else {
      return false;
    }
  }
  if (in_number) {
    out.push_back(value);
  }
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string request_path;
  std::string groups_csv;
  std::string store_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--request") == 0) {
      request_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--groups") == 0) {
      groups_csv = argv[i + 1];
    } else if (std::strcmp(argv[i], "--store") == 0) {
      store_path = argv[i + 1];
    } else {
      std::cerr << "ao_worker: unknown option " << argv[i] << "\n";
      return 2;
    }
  }
  if (request_path.empty() || groups_csv.empty() || store_path.empty()) {
    std::cerr << "usage: ao_worker --request <file> --groups <i,j,...> "
                 "--store <file>\n";
    return 2;
  }

  std::ifstream in(request_path);
  if (!in) {
    std::cerr << "ao_worker: cannot read request file " << request_path
              << "\n";
    return 2;
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  std::string error;
  const auto request = ao::service::parse_request_lines(lines, &error);
  if (!request.has_value()) {
    std::cerr << "ao_worker: malformed request: " << error << "\n";
    return 2;
  }

  std::vector<std::size_t> groups;
  if (!parse_groups(groups_csv, groups)) {
    std::cerr << "ao_worker: malformed group list: " << groups_csv << "\n";
    return 2;
  }

  const std::string shard_error =
      ao::service::run_shard(*request, groups, store_path);
  if (!shard_error.empty()) {
    std::cerr << "ao_worker: shard failed: " << shard_error << "\n";
    return 1;
  }
  return 0;
}
