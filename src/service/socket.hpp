#pragma once

#include <iostream>
#include <memory>
#include <streambuf>
#include <string>

namespace ao::service {

/// Buffered std::streambuf over a file descriptor — what lets the campaign
/// service speak its line protocol identically over a unix socket and over
/// the stringstreams the tests drive it with.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd);
  ~FdStreamBuf() override;
  FdStreamBuf(const FdStreamBuf&) = delete;
  FdStreamBuf& operator=(const FdStreamBuf&) = delete;

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool flush_out();

  static constexpr std::size_t kBufferSize = 4096;
  int fd_;
  char in_buf_[kBufferSize];
  char out_buf_[kBufferSize];
};

/// iostream over a connected socket fd; closes the fd on destruction.
class SocketStream : public std::iostream {
 public:
  explicit SocketStream(int fd);
  ~SocketStream() override = default;

 private:
  FdStreamBuf buf_;
};

/// Listening unix-domain socket. The constructor unlinks any stale socket
/// file at `path`, binds and listens; the destructor closes and unlinks.
class UnixServerSocket {
 public:
  explicit UnixServerSocket(const std::string& path);
  ~UnixServerSocket();
  UnixServerSocket(const UnixServerSocket&) = delete;
  UnixServerSocket& operator=(const UnixServerSocket&) = delete;

  /// Blocks for the next client; returns a connected fd, or -1 when the
  /// socket was shut down or accept failed.
  int accept_fd();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_;
};

/// Connects to a unix-domain socket; returns the fd or -1 on failure.
int connect_unix(const std::string& path);

}  // namespace ao::service
