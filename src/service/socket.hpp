#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <streambuf>
#include <string>

namespace ao::service {

/// Buffered std::streambuf over a file descriptor — what lets the campaign
/// service speak its line protocol identically over a unix socket and over
/// the stringstreams the tests drive it with.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd);
  ~FdStreamBuf() override;
  FdStreamBuf(const FdStreamBuf&) = delete;
  FdStreamBuf& operator=(const FdStreamBuf&) = delete;

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool flush_out();

  static constexpr std::size_t kBufferSize = 4096;
  int fd_;
  char in_buf_[kBufferSize];
  char out_buf_[kBufferSize];
};

/// iostream over a connected socket fd; closes the fd on destruction.
class SocketStream : public std::iostream {
 public:
  explicit SocketStream(int fd);
  ~SocketStream() override = default;

 private:
  FdStreamBuf buf_;
};

/// Listening unix-domain socket. The constructor unlinks any stale socket
/// file at `path`, binds and listens; the destructor closes and unlinks.
class UnixServerSocket {
 public:
  explicit UnixServerSocket(const std::string& path);
  ~UnixServerSocket();
  UnixServerSocket(const UnixServerSocket&) = delete;
  UnixServerSocket& operator=(const UnixServerSocket&) = delete;

  /// Blocks for the next client; returns a connected fd, or -1 when the
  /// socket was shut down or accept failed.
  int accept_fd();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_;
};

/// Connects to a unix-domain socket; returns the fd or -1 on failure.
int connect_unix(const std::string& path);

/// Listening TCP socket on 0.0.0.0:<port> (SO_REUSEADDR) — what lets
/// `ao_worker --connect host:port` processes on *other machines* join a
/// campaign daemon. Accepted connections get TCP_NODELAY: the protocol is
/// small request/reply lines and frames, so latency beats batching.
class TcpServerSocket {
 public:
  explicit TcpServerSocket(std::uint16_t port);
  ~TcpServerSocket();
  TcpServerSocket(const TcpServerSocket&) = delete;
  TcpServerSocket& operator=(const TcpServerSocket&) = delete;

  /// Blocks for the next client; returns a connected fd, or -1 when the
  /// socket was shut down or accept failed.
  int accept_fd();

  std::uint16_t port() const { return port_; }

 private:
  std::uint16_t port_;
  int fd_;
};

/// Connects to host:port (name resolution via getaddrinfo, TCP_NODELAY
/// set); returns the fd or -1 on failure.
int connect_tcp(const std::string& host, std::uint16_t port);

/// Splits "host:port" at the LAST colon (IPv6 literals aside, a unix path
/// containing a colon is addressed by prefixing "./"). Returns false when
/// the tail is not a valid port number or the host is empty.
bool parse_host_port(const std::string& spec, std::string* host,
                     std::uint16_t* port);

/// Connects to an endpoint spec: "host:port" → TCP, anything else → unix
/// socket path. Returns the fd or -1 on failure.
int connect_endpoint(const std::string& spec);

}  // namespace ao::service
