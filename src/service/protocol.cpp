#include "service/protocol.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "orchestrator/result_cache.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace ao::service {
namespace {

std::vector<std::string> split_csv(const std::string& token) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(token);
  while (std::getline(in, part, ',')) {
    if (!part.empty()) {
      parts.push_back(part);
    }
  }
  return parts;
}

std::string lowercase(const std::string& s) {
  std::string out(s.size(), '\0');
  std::transform(s.begin(), s.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool parse_u64_token(const std::string& token, std::uint64_t& value) {
  if (token.empty()) {
    return false;
  }
  value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      return false;
    }
    if (value > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10) {
      return false;  // overflow
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

bool parse_size_list(const std::string& token, std::vector<std::size_t>& out) {
  out.clear();
  for (const std::string& part : split_csv(token)) {
    std::uint64_t value = 0;
    if (!parse_u64_token(part, value)) {
      return false;
    }
    out.push_back(static_cast<std::size_t>(value));
  }
  return !out.empty();
}

bool parse_int_list(const std::string& token, std::vector<int>& out) {
  out.clear();
  for (const std::string& part : split_csv(token)) {
    std::uint64_t value = 0;
    if (!parse_u64_token(part, value) || value > INT32_MAX) {
      return false;
    }
    out.push_back(static_cast<int>(value));
  }
  return !out.empty();
}

bool parse_double_token(const std::string& token, double& value) {
  std::istringstream in(token);
  return static_cast<bool>(in >> value) && in.eof();
}

std::string join_sizes(const std::vector<std::size_t>& values) {
  std::string out;
  for (const std::size_t v : values) {
    if (!out.empty()) {
      out += ',';
    }
    out += std::to_string(v);
  }
  return out;
}

std::string join_ints(const std::vector<int>& values) {
  std::string out;
  for (const int v : values) {
    if (!out.empty()) {
      out += ',';
    }
    out += std::to_string(v);
  }
  return out;
}

}  // namespace

std::vector<std::string> split_words(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> words;
  std::string word;
  while (in >> word) {
    words.push_back(word);
  }
  return words;
}

bool valid_campaign_name(const std::string& name) {
  if (name.empty() || name.size() > 64 || name == "." || name == "..") {
    return false;
  }
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '.' || c == '_' || c == '-';
  });
}

soc::GemmImpl gemm_impl_from_string(const std::string& name) {
  const std::string lowered = lowercase(name);
  for (const auto impl : soc::kAllGemmImpls) {
    if (lowered == lowercase(soc::to_string(impl))) {
      return impl;
    }
  }
  throw util::InvalidArgument("unknown GEMM implementation: " + name);
}

bool CampaignRequest::has_work() const {
  const bool gemm = !impls.empty() && !sizes.empty();
  return gemm || !stream_threads.empty() || gpu_stream ||
         !precision_sizes.empty() || !ane_sizes.empty() ||
         !fp64emu_sizes.empty() || !sme_sizes.empty() || power_idle;
}

harness::GemmExperiment::Options CampaignRequest::options() const {
  harness::GemmExperiment::Options options;
  options.repetitions = repetitions;
  options.matrix_seed = matrix_seed;
  options.verify_n_max = verify_n_max;
  if (functional_n_max.has_value()) {
    for (auto& [impl, ceiling] : options.functional_n_max) {
      ceiling = *functional_n_max;
    }
  }
  return options;
}

orchestrator::Campaign CampaignRequest::to_campaign() const {
  orchestrator::Campaign campaign;
  campaign.chips(chips).impls(impls).sizes(sizes).options(options());
  if (!stream_threads.empty()) {
    campaign.stream_sweep(stream_threads, stream_repetitions, stream_elements);
  }
  if (gpu_stream) {
    campaign.gpu_stream(gpu_stream_repetitions, gpu_stream_elements);
  }
  if (!precision_sizes.empty()) {
    campaign.precision_study(precision_sizes, precision_seed);
  }
  if (!ane_sizes.empty()) {
    campaign.ane_inference(ane_sizes, ane_functional);
  }
  if (!fp64emu_sizes.empty()) {
    campaign.fp64_emulation(fp64emu_sizes, fp64emu_seed);
  }
  if (!sme_sizes.empty()) {
    campaign.sme_gemm(sme_sizes, sme_seed);
  }
  if (power_idle) {
    campaign.power_idle(power_window_seconds);
  }
  return campaign;
}

std::vector<std::string> CampaignRequest::to_lines() const {
  std::vector<std::string> lines;
  lines.push_back("begin " + name);
  lines.push_back("client " + client);
  lines.push_back("priority " + std::to_string(priority));
  if (!chips.empty()) {
    std::string value;
    for (const auto chip : chips) {
      if (!value.empty()) {
        value += ',';
      }
      value += lowercase(soc::to_string(chip));
    }
    lines.push_back("chips " + value);
  }
  if (!impls.empty()) {
    std::string value;
    for (const auto impl : impls) {
      if (!value.empty()) {
        value += ',';
      }
      value += lowercase(soc::to_string(impl));
    }
    lines.push_back("impls " + value);
  }
  if (!sizes.empty()) {
    lines.push_back("sizes " + join_sizes(sizes));
  }
  lines.push_back("repetitions " + std::to_string(repetitions));
  lines.push_back("seed " + std::to_string(matrix_seed));
  lines.push_back("verify-max " + std::to_string(verify_n_max));
  if (functional_n_max.has_value()) {
    lines.push_back("functional-max " + std::to_string(*functional_n_max));
  }
  if (!stream_threads.empty()) {
    lines.push_back("stream " + join_ints(stream_threads) + ' ' +
                    std::to_string(stream_repetitions) + ' ' +
                    std::to_string(stream_elements));
  }
  if (gpu_stream) {
    lines.push_back("gpu-stream " + std::to_string(gpu_stream_repetitions) +
                    ' ' + std::to_string(gpu_stream_elements));
  }
  if (!precision_sizes.empty()) {
    lines.push_back("precision " + join_sizes(precision_sizes) + ' ' +
                    std::to_string(precision_seed));
  }
  if (!ane_sizes.empty()) {
    lines.push_back("ane " + join_sizes(ane_sizes) + ' ' +
                    std::string(ane_functional ? "functional" : "model"));
  }
  if (!fp64emu_sizes.empty()) {
    lines.push_back("fp64emu " + join_sizes(fp64emu_sizes) + ' ' +
                    std::to_string(fp64emu_seed));
  }
  if (!sme_sizes.empty()) {
    lines.push_back("sme " + join_sizes(sme_sizes) + ' ' +
                    std::to_string(sme_seed));
  }
  if (power_idle) {
    std::ostringstream power;
    // max_digits10 so the window survives the text round trip exactly.
    power << "power " << std::setprecision(17) << power_window_seconds;
    lines.push_back(power.str());
  }
  lines.push_back("workers " + std::to_string(workers));
  lines.push_back("shards " + std::to_string(shards));
  if (deadline_ms != 0) {
    lines.push_back("deadline " + std::to_string(deadline_ms));
  }
  lines.push_back("retries " + std::to_string(shard_retries));
  lines.push_back("run");
  return lines;
}

std::string plan_key(const CampaignRequest& request) {
  // Expansion depends on every to_lines() line EXCEPT identity and
  // scheduling: to_campaign() never reads name/client/priority or
  // workers/shards/deadline/retries, so requests differing only there share
  // a compiled plan (that sharing is the point of the cache).
  static constexpr const char* kSkipPrefixes[] = {
      "begin ",   "client ",   "priority ", "workers ",
      "shards ",  "deadline ", "retries ",
  };
  std::string key;
  for (const std::string& line : request.to_lines()) {
    if (line == "run") {
      continue;
    }
    bool skip = false;
    for (const char* prefix : kSkipPrefixes) {
      if (line.rfind(prefix, 0) == 0) {
        skip = true;
        break;
      }
    }
    if (skip) {
      continue;
    }
    key += line;
    key += '\n';
  }
  return key;
}

std::optional<ProtocolError> RequestBuilder::begin(const std::string& name) {
  if (open_) {
    return ProtocolError{
        "bad-state",
        "nested begin (finish the open request with 'run' or 'abort')"};
  }
  if (!name.empty() && !valid_campaign_name(name)) {
    // The name becomes part of shard-store file paths; never let a client
    // smuggle path separators (or an unprintable mess) into the filesystem.
    return ProtocolError{
        "bad-name",
        "invalid campaign name (use [A-Za-z0-9._-], at most 64 chars)"};
  }
  request_ = CampaignRequest{};
  if (!name.empty()) {
    request_.name = name;
  }
  open_ = true;
  return std::nullopt;
}

namespace {

/// The setter grammar proper; returns the error message for a bad line.
/// apply() wraps every message in the "bad-directive" protocol code.
std::optional<std::string> apply_setter(CampaignRequest& request_,
                                        const std::string& line) {
  const std::vector<std::string> words = split_words(line);
  if (words.empty()) {
    return std::nullopt;  // blank lines are ignored
  }
  const std::string& directive = words[0];
  const auto arg = [&](std::size_t i) -> const std::string& {
    static const std::string kEmpty;
    return i < words.size() ? words[i] : kEmpty;
  };
  const auto require_u64 = [&](std::size_t i,
                               std::uint64_t& value) -> bool {
    return parse_u64_token(arg(i), value);
  };

  std::uint64_t u64 = 0;
  if (directive == "chips") {
    std::vector<soc::ChipModel> chips;
    for (const std::string& part : split_csv(arg(1))) {
      try {
        chips.push_back(soc::chip_model_from_string(part));
      } catch (const util::Error&) {
        return "unknown chip: " + part;
      }
    }
    if (chips.empty()) {
      return "chips needs a comma-separated list (m1,m2,...)";
    }
    request_.chips = std::move(chips);
  } else if (directive == "impls") {
    std::vector<soc::GemmImpl> impls;
    for (const std::string& part : split_csv(arg(1))) {
      try {
        impls.push_back(gemm_impl_from_string(part));
      } catch (const util::Error&) {
        return "unknown implementation: " + part;
      }
    }
    if (impls.empty()) {
      return "impls needs a comma-separated list (cpu-single,gpu-mps,...)";
    }
    request_.impls = std::move(impls);
  } else if (directive == "sizes") {
    if (!parse_size_list(arg(1), request_.sizes)) {
      return "sizes needs a comma-separated list of matrix sizes";
    }
  } else if (directive == "repetitions") {
    if (!require_u64(1, u64) || u64 == 0 || u64 > 1000) {
      return "repetitions needs an integer in [1, 1000]";
    }
    request_.repetitions = static_cast<int>(u64);
  } else if (directive == "seed") {
    if (!require_u64(1, u64)) {
      return "seed needs an unsigned integer";
    }
    request_.matrix_seed = u64;
  } else if (directive == "verify-max") {
    if (!require_u64(1, u64)) {
      return "verify-max needs an unsigned integer";
    }
    request_.verify_n_max = static_cast<std::size_t>(u64);
  } else if (directive == "functional-max") {
    if (!require_u64(1, u64)) {
      return "functional-max needs an unsigned integer";
    }
    request_.functional_n_max = static_cast<std::size_t>(u64);
  } else if (directive == "stream") {
    if (!parse_int_list(arg(1), request_.stream_threads)) {
      return "stream needs a comma-separated list of thread counts";
    }
    if (words.size() > 2) {
      if (!require_u64(2, u64) || u64 == 0) {
        return "stream repetitions must be a positive integer";
      }
      request_.stream_repetitions = static_cast<int>(u64);
    }
    if (words.size() > 3) {
      if (!require_u64(3, u64)) {
        return "stream elements must be an unsigned integer";
      }
      request_.stream_elements = static_cast<std::size_t>(u64);
    }
  } else if (directive == "gpu-stream") {
    request_.gpu_stream = true;
    if (words.size() > 1) {
      if (!require_u64(1, u64) || u64 == 0) {
        return "gpu-stream repetitions must be a positive integer";
      }
      request_.gpu_stream_repetitions = static_cast<int>(u64);
    }
    if (words.size() > 2) {
      if (!require_u64(2, u64)) {
        return "gpu-stream elements must be an unsigned integer";
      }
      request_.gpu_stream_elements = static_cast<std::size_t>(u64);
    }
  } else if (directive == "precision") {
    if (!parse_size_list(arg(1), request_.precision_sizes)) {
      return "precision needs a comma-separated list of matrix sizes";
    }
    if (words.size() > 2) {
      if (!require_u64(2, u64)) {
        return "precision seed must be an unsigned integer";
      }
      request_.precision_seed = u64;
    }
  } else if (directive == "ane") {
    if (!parse_size_list(arg(1), request_.ane_sizes)) {
      return "ane needs a comma-separated list of matrix sizes";
    }
    if (words.size() > 2) {
      const std::string mode = lowercase(arg(2));
      if (mode == "functional") {
        request_.ane_functional = true;
      } else if (mode == "model") {
        request_.ane_functional = false;
      } else {
        return "ane mode must be 'functional' or 'model'";
      }
    }
  } else if (directive == "fp64emu") {
    if (!parse_size_list(arg(1), request_.fp64emu_sizes)) {
      return "fp64emu needs a comma-separated list of matrix sizes";
    }
    if (words.size() > 2) {
      if (!require_u64(2, u64)) {
        return "fp64emu seed must be an unsigned integer";
      }
      request_.fp64emu_seed = u64;
    }
  } else if (directive == "sme") {
    if (!parse_size_list(arg(1), request_.sme_sizes)) {
      return "sme needs a comma-separated list of matrix sizes";
    }
    if (words.size() > 2) {
      if (!require_u64(2, u64)) {
        return "sme seed must be an unsigned integer";
      }
      request_.sme_seed = u64;
    }
  } else if (directive == "power") {
    request_.power_idle = true;
    if (words.size() > 1) {
      double window = 0.0;
      if (!parse_double_token(arg(1), window) || window <= 0.0) {
        return "power window must be a positive number of seconds";
      }
      request_.power_window_seconds = window;
    }
  } else if (directive == "workers") {
    if (!require_u64(1, u64) || u64 == 0 || u64 > 256) {
      return "workers needs an integer in [1, 256]";
    }
    request_.workers = static_cast<std::size_t>(u64);
  } else if (directive == "shards") {
    if (!require_u64(1, u64) || u64 == 0 || u64 > 64) {
      return "shards needs an integer in [1, 64]";
    }
    request_.shards = static_cast<std::size_t>(u64);
  } else if (directive == "deadline") {
    // 0 clears the deadline, matching the field default; the ceiling only
    // guards against a typo'd token overflowing downstream ns arithmetic.
    if (!require_u64(1, u64) || u64 > 86'400'000) {
      return "deadline needs a millisecond budget in [0, 86400000]";
    }
    request_.deadline_ms = u64;
  } else if (directive == "retries") {
    if (!require_u64(1, u64) || u64 > 16) {
      return "retries needs an integer in [0, 16]";
    }
    request_.shard_retries = static_cast<std::size_t>(u64);
  } else if (directive == "priority") {
    if (!require_u64(1, u64) || u64 > 100) {
      return "priority needs an integer in [0, 100]";
    }
    request_.priority = static_cast<int>(u64);
  } else if (directive == "client") {
    // Client ids key quotas and stats lines; same charset as names.
    if (!valid_campaign_name(arg(1))) {
      return "client needs an id of [A-Za-z0-9._-], at most 64 chars";
    }
    request_.client = arg(1);
  } else {
    return "unknown directive: " + directive;
  }
  return std::nullopt;
}

}  // namespace

std::optional<ProtocolError> RequestBuilder::apply(const std::string& line) {
  if (!open_) {
    return ProtocolError{"bad-state", "no open request (send 'begin' first)"};
  }
  if (auto message = apply_setter(request_, line)) {
    return ProtocolError{"bad-directive", std::move(*message)};
  }
  return std::nullopt;
}

CampaignRequest RequestBuilder::take() {
  open_ = false;
  return std::move(request_);
}

void RequestBuilder::discard() {
  open_ = false;
  request_ = CampaignRequest{};
}

std::optional<CampaignRequest> parse_request_lines(
    const std::vector<std::string>& lines, std::string* error) {
  RequestBuilder builder;
  for (const std::string& line : lines) {
    const std::vector<std::string> words = split_words(line);
    if (words.empty()) {
      continue;
    }
    if (words[0] == "begin") {
      if (const auto begin_error =
              builder.begin(words.size() > 1 ? words[1] : "")) {
        if (error != nullptr) {
          *error = begin_error->message;
        }
        return std::nullopt;
      }
      continue;
    }
    if (words[0] == "run") {
      if (!builder.open()) {
        if (error != nullptr) {
          *error = "run without begin";
        }
        return std::nullopt;
      }
      return builder.take();
    }
    if (const auto line_error = builder.apply(line)) {
      if (error != nullptr) {
        *error = line_error->message;
      }
      return std::nullopt;
    }
  }
  if (error != nullptr) {
    *error = "request block never reached 'run'";
  }
  return std::nullopt;
}

std::string encode_follow_cursor(std::uint64_t campaign_id,
                                 std::uint64_t position) {
  std::string body = "aof1.";
  body += util::to_hex_u64(campaign_id);
  body += '.';
  body += util::to_hex_u64(position);
  return body + '.' +
         util::to_hex_u64(
             orchestrator::store_digest(body.data(), body.size()));
}

std::optional<FollowCursor> decode_follow_cursor(const std::string& token) {
  // aof1.<campaign-id>.<position>.<digest>
  const std::size_t first = token.find('.');
  if (first == std::string::npos || token.substr(0, first) != "aof1") {
    return std::nullopt;
  }
  const std::size_t second = token.find('.', first + 1);
  const std::size_t third =
      second == std::string::npos ? second : token.find('.', second + 1);
  if (third == std::string::npos ||
      token.find('.', third + 1) != std::string::npos) {
    return std::nullopt;
  }
  std::uint64_t digest = 0;
  if (!util::parse_hex_u64(token.substr(third + 1), digest) ||
      digest != orchestrator::store_digest(token.data(), third)) {
    return std::nullopt;
  }
  FollowCursor cursor;
  if (!util::parse_hex_u64(token.substr(first + 1, second - first - 1),
                           cursor.campaign_id) ||
      !util::parse_hex_u64(token.substr(second + 1, third - second - 1),
                           cursor.position)) {
    return std::nullopt;
  }
  return cursor;
}

}  // namespace ao::service
