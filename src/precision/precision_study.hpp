#pragma once

#include <string>
#include <vector>

#include "soc/chip_spec.hpp"

namespace ao::precision {

/// The numeric formats the M-series exposes across its units (Table 1 and
/// Sections 2.1-2.3): FP64 on the CPU only, FP32 everywhere, FP16 on
/// GPU/ANE/AMX, plus double-single emulation as the GPU's FP64 workaround.
enum class Format {
  kFp64Cpu,        ///< native double (CPU / AMX)
  kFp64Emulated,   ///< double-single on the GPU
  kFp32,           ///< native FP32 (GPU / CPU / AMX)
  kFp16,           ///< half precision (GPU / ANE / AMX)
};

std::string to_string(Format format);

/// One row of the mixed-precision study: accuracy and modeled throughput of
/// a GEMM at one format — the experiment the paper names as future work
/// ("future studies could explore the impact of mixed-precision workloads on
/// computational efficiency and accuracy", Section 7).
struct StudyResult {
  Format format{};
  std::size_t n = 0;
  double max_abs_error = 0.0;     ///< vs the FP64 reference
  double mean_abs_error = 0.0;
  double significant_digits = 0.0;  ///< -log10(relative error)
  double modeled_gflops = 0.0;    ///< effective rate on the given chip
  std::string executing_unit;

  bool operator==(const StudyResult&) const = default;
};

/// Runs the GEMM accuracy study at size n on uniformly random [0,1) inputs:
/// computes the FP64 reference once, then each format's result functionally,
/// and attaches the modeled throughput for `chip`.
std::vector<StudyResult> run_gemm_precision_study(soc::ChipModel chip,
                                                  std::size_t n,
                                                  std::uint64_t seed = 99);

}  // namespace ao::precision
