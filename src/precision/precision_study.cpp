#include "precision/precision_study.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "amx/float16.hpp"
#include "fp64emu/double_single.hpp"
#include "soc/calibration.hpp"
#include "soc/perf_model.hpp"
#include "soc/soc.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ao::precision {

std::string to_string(Format format) {
  switch (format) {
    case Format::kFp64Cpu:
      return "FP64 (CPU native)";
    case Format::kFp64Emulated:
      return "FP64 (GPU emulated, double-single)";
    case Format::kFp32:
      return "FP32 (native)";
    case Format::kFp16:
      return "FP16 (GPU/ANE)";
  }
  return "unknown";
}

namespace {

/// FP64 reference GEMM (the ground truth).
std::vector<double> gemm_fp64(const std::vector<double>& a,
                              const std::vector<double>& b, std::size_t n) {
  std::vector<double> c(n * n, 0.0);
  util::global_pool().parallel_for(n, [&](std::size_t i) {
    for (std::size_t kk = 0; kk < n; ++kk) {
      const double a_ik = a[i * n + kk];
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += a_ik * b[kk * n + j];
      }
    }
  });
  return c;
}

/// GEMM with inputs/arithmetic rounded through a per-element quantizer.
template <typename Quantize>
std::vector<double> gemm_quantized(const std::vector<double>& a,
                                   const std::vector<double>& b, std::size_t n,
                                   Quantize quantize) {
  std::vector<double> qa(n * n);
  std::vector<double> qb(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    qa[i] = quantize(a[i]);
    qb[i] = quantize(b[i]);
  }
  std::vector<double> c(n * n, 0.0);
  util::global_pool().parallel_for(n, [&](std::size_t i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;  // FP32 paths accumulate in FP32; modeled below
      for (std::size_t kk = 0; kk < n; ++kk) {
        acc = quantize(acc + quantize(qa[i * n + kk] * qb[kk * n + j]));
      }
      c[i * n + j] = acc;
    }
  });
  return c;
}

/// GEMM in double-single arithmetic (the GPU emulation path, bit-faithful).
std::vector<double> gemm_double_single(const std::vector<double>& a,
                                       const std::vector<double>& b,
                                       std::size_t n) {
  using fp64emu::DoubleSingle;
  std::vector<DoubleSingle> dsa(n * n);
  std::vector<DoubleSingle> dsb(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    dsa[i] = DoubleSingle::from_double(a[i]);
    dsb[i] = DoubleSingle::from_double(b[i]);
  }
  std::vector<double> c(n * n);
  util::global_pool().parallel_for(n, [&](std::size_t i) {
    for (std::size_t j = 0; j < n; ++j) {
      DoubleSingle acc;
      for (std::size_t kk = 0; kk < n; ++kk) {
        acc = fp64emu::ds_fma(dsa[i * n + kk], dsb[kk * n + j], acc);
      }
      c[i * n + j] = acc.to_double();
    }
  });
  return c;
}

StudyResult make_result(Format format, std::size_t n,
                        const std::vector<double>& reference,
                        const std::vector<double>& value) {
  StudyResult r;
  r.format = format;
  r.n = n;
  double worst = 0.0;
  double sum = 0.0;
  double ref_scale = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double err = std::fabs(reference[i] - value[i]);
    worst = std::max(worst, err);
    sum += err;
    ref_scale = std::max(ref_scale, std::fabs(reference[i]));
  }
  r.max_abs_error = worst;
  r.mean_abs_error = sum / static_cast<double>(reference.size());
  const double rel = worst / std::max(ref_scale, 1e-300);
  r.significant_digits = rel > 0.0 ? -std::log10(rel) : 16.0;
  return r;
}

}  // namespace

std::vector<StudyResult> run_gemm_precision_study(soc::ChipModel chip,
                                                  std::size_t n,
                                                  std::uint64_t seed) {
  AO_REQUIRE(n >= 8 && n <= 1024, "study sizes are functional: keep n small");
  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  util::fill_uniform(std::span<double>(a), seed);
  util::fill_uniform(std::span<double>(b), seed + 1);

  const std::vector<double> reference = gemm_fp64(a, b, n);

  soc::Soc soc(chip);
  soc::PerfModel perf(soc);
  const double fp32_gflops = perf.gemm_gflops(soc::GemmImpl::kGpuMps, 4096);

  std::vector<StudyResult> results;

  {
    StudyResult r = make_result(Format::kFp64Cpu, n, reference, reference);
    // FP64 runs on the CPU at roughly half the AMX FP32 rate.
    r.modeled_gflops =
        soc::gemm_calibration(chip, soc::GemmImpl::kCpuAccelerate).peak_gflops /
        2.0;
    r.executing_unit = "CPU/AMX";
    results.push_back(r);
  }
  {
    StudyResult r = make_result(Format::kFp64Emulated, n, reference,
                                gemm_double_single(a, b, n));
    // Each emulated FMA costs kFlopsPerDsFma FP32 ops on the GPU.
    r.modeled_gflops = fp32_gflops / fp64emu::kFlopsPerDsFma * 2.0;
    r.executing_unit = "GPU (double-single)";
    results.push_back(r);
  }
  {
    StudyResult r = make_result(
        Format::kFp32, n, reference, gemm_quantized(a, b, n, [](double v) {
          return static_cast<double>(static_cast<float>(v));
        }));
    r.modeled_gflops = fp32_gflops;
    r.executing_unit = "GPU (MPS)";
    results.push_back(r);
  }
  {
    StudyResult r = make_result(
        Format::kFp16, n, reference, gemm_quantized(a, b, n, [](double v) {
          // FP16 storage, FP32 accumulate (the ANE/AMX mixed mode): quantize
          // products, keep the running sum in FP32.
          return static_cast<double>(amx::half_to_float(
              amx::float_to_half(static_cast<float>(v))));
        }));
    r.modeled_gflops = fp32_gflops * 2.0;  // FP16 runs ~2x FP32 on the GPU
    r.executing_unit = "GPU/ANE (FP16)";
    results.push_back(r);
  }
  return results;
}

}  // namespace ao::precision
