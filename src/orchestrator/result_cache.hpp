#pragma once

#include <cstdint>
#include <fstream>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/profiler.hpp"
#include "orchestrator/job.hpp"
#include "orchestrator/record.hpp"

namespace ao::orchestrator {

/// Content identity of one measurement point, for any cacheable JobKind.
/// Two campaigns that agree on every field would measure bit-identical
/// results (the simulator is a pure function of the job description and the
/// experiment options), so the cached record can stand in for a re-run.
///
/// `impl` and `n` stay structured for the GEMM family (the hot path and the
/// one humans debug); every other kind-specific field — thread counts,
/// array sizes, repetitions, ANE shapes, study seeds — is folded into
/// `payload_fingerprint` by key_for_job().
struct CacheKey {
  JobKind kind = JobKind::kGemmMeasure;
  soc::ChipModel chip = soc::ChipModel::kM1;
  soc::GemmImpl impl = soc::GemmImpl::kCpuSingle;
  std::size_t n = 0;
  std::uint64_t payload_fingerprint = 0;
  std::uint64_t options_fingerprint = 0;

  bool operator==(const CacheKey&) const = default;

  /// Digest of all six fields — the in-memory hash and the key's content
  /// address. (The on-disk store writes the six fields individually, not
  /// this digest, so entries stay inspectable.)
  std::uint64_t fingerprint() const;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const;
};

/// Location of one entry line inside a write-through store file — the unit
/// the StoreIndex (store_index.hpp) maps keys to.
struct StoreRef {
  CacheKey key;
  std::uint64_t offset = 0;  ///< byte offset of the entry line
  std::uint32_t length = 0;  ///< line length, excluding the newline

  bool operator==(const StoreRef&) const = default;
};

class StoreIndex;
struct QueryFilter;

/// Builds the cache key for a job: structured fields plus the digest of the
/// kind-specific payload. `options_fp` is the campaign-wide
/// options_fingerprint().
CacheKey key_for_job(const ExperimentJob& job, std::uint64_t options_fp);

/// FNV-1a digest of every Options field that can change a measurement:
/// repetitions, verification ceiling, power sampling, warm-up, matrix seed
/// and the per-impl functional ceilings.
std::uint64_t options_fingerprint(const harness::GemmExperiment::Options& options);

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::size_t loaded = 0;          ///< entries read from disk stores
  std::size_t load_rejected = 0;   ///< corrupt / mismatched entries skipped
  std::size_t compactions = 0;     ///< write-through store rewrites
};

// Store framing constants, shared by every codec that reads or writes store
// content: the disk store, the service's streamed `record` replies and the
// wire frames of the distributed shard transport (docs/service.md). One
// definition, so the disk and socket paths cannot drift.
inline constexpr char kStoreHeaderPrefix[] = "ao-result-cache v";
inline constexpr char kStoreEntryPrefix[] = "entry ";
inline constexpr char kStoreDigestSeparator[] = " # ";

/// The digest every store codec shares: FNV-1a over the raw bytes. Entry
/// lines digest the line up to (excluding) kStoreDigestSeparator; wire
/// frames digest their whole payload.
std::uint64_t store_digest(const void* data, std::size_t size);

/// One on-disk store entry line for (key, record): the "entry ... # digest"
/// framing the versioned store and the service's streamed `record` replies
/// share (layout in docs/orchestrator.md).
std::string format_store_entry(const CacheKey& key,
                               const MeasurementRecord& record);

/// Parses a line written by format_store_entry(). Returns nullopt on any
/// corruption: bad digest, missing tokens, out-of-range enumerators, or a
/// record shape that disagrees with the key's kind.
std::optional<std::pair<CacheKey, MeasurementRecord>> parse_store_entry(
    const std::string& line);

/// The store's "ao-result-cache v<N>" first line.
std::string store_header_line();

/// Thread-safe LRU cache of finished measurements — any MeasurementRecord
/// alternative, keyed by CacheKey. Repeated campaigns and overlapping sweeps
/// service already-measured points from here instead of re-running the
/// simulator.
///
/// Thread-safety contract (docs/orchestrator.md#thread-safety): every
/// public method may be called concurrently from any number of threads —
/// the campaign service shares one instance between concurrently executing
/// scheduler instances. Internally two locks split the work: `mutex_`
/// guards the LRU state and is never held across disk I/O on the hot path,
/// while `io_mutex_` serializes the write-through stream — so a slow
/// write-through append never stalls another campaign's lookup()/insert().
/// insert() still returns only after its entry is flushed to the attached
/// store (the service's shard tailing depends on that), and two inserts of
/// the same key are benign: keys are content addresses, so equal keys carry
/// bit-identical records.
///
/// The cache can be backed by a versioned on-disk store (the format is
/// specified in docs/orchestrator.md): load() warms it from a previous
/// process's file, save() snapshots it, and persist_to() switches it to
/// write-through mode where every insertion is appended immediately — so a
/// campaign that dies mid-run still leaves its finished points behind.
class ResultCache {
 public:
  /// Bumped whenever the entry layout changes; load() rejects files written
  /// by any other version.
  static constexpr int kFormatVersion = 1;

  using Entry = std::pair<CacheKey, MeasurementRecord>;

  /// `capacity` = maximum retained measurements; at least 1.
  explicit ResultCache(std::size_t capacity = 4096);
  ~ResultCache();

  /// Returns the cached record and refreshes its recency, or nullopt.
  std::optional<MeasurementRecord> lookup(const CacheKey& key);

  /// Inserts (or refreshes) a record, evicting the least recently used
  /// entry when full. In write-through mode the entry is also appended to
  /// the backing file.
  void insert(const CacheKey& key, const MeasurementRecord& record);

  bool contains(const CacheKey& key) const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Drops every in-memory entry; a write-through backing file is untouched.
  void clear();

  /// Snapshot of the retained entries, most recently used first — the
  /// service's shard merge and the tests inspect stores through this.
  std::vector<Entry> entries() const;

  CacheStats stats() const;

  // ------------------------------------------------------- persistence ----

  /// Writes a snapshot of the IN-MEMORY entries to `path` (least recent
  /// first, so a reload reconstructs the recency order). Returns entries
  /// written. Saving onto the active write-through path compacts the store
  /// down to the retained set (the append stream is reattached to the new
  /// file) — a write-through log can hold more than `capacity` entries, so
  /// load() the store first if evicted points must survive the compaction.
  /// Throws util::Error when the file cannot be created.
  std::size_t save(const std::string& path);

  /// Merges the entries of a store written by save() or write-through into
  /// this cache. Individually corrupt entries (bad digest, truncated tail,
  /// unknown record shape) are skipped and counted in stats().load_rejected;
  /// a missing file loads nothing; a version-mismatched or unrecognizable
  /// header rejects the whole file. Returns entries loaded.
  std::size_t load(const std::string& path);

  /// Like load(), but every merged entry also propagates to the attached
  /// write-through store — ingesting a foreign store (a shard worker's, a
  /// peer machine's) into a persistent cache. load() stays append-free so
  /// warming from one's own store never duplicates it.
  std::size_t merge_store(const std::string& path);

  /// The store exactly as save() would write it (version header + retained
  /// entries, least recent first), as one in-memory buffer: the wire twin
  /// of save(). A remote shard worker ships this over its socket instead of
  /// writing a store file (docs/service.md#wire-format-frames). The buffer
  /// is built behind one up-front reserve of serialize_size_hint() bytes —
  /// a whole snapshot costs a single allocation, not one per appended
  /// entry.
  std::string serialize_store() const;

  /// Upper bound on serialize_store().size(), computed from token counts
  /// without formatting anything (see serialized_record_size_bound()).
  /// serialize_store() reserves exactly this, so `hint >= size` is the
  /// single-allocation invariant the regression tests probe.
  std::size_t serialize_size_hint() const;

  /// merge_store() from an in-memory buffer — the receiving end of
  /// serialize_store(): same header check, per-entry digest validation,
  /// load_rejected accounting and write-through propagation. Returns
  /// entries merged; a version-mismatched or unrecognizable first line
  /// rejects the whole buffer.
  std::size_t merge_buffer(const std::string& buffer);

  /// Write-through mode: appends every future insertion to `path`,
  /// creating the file (with its version header) if absent. Existing
  /// contents are NOT loaded — call load() first to warm up. Pass "" to
  /// detach. Throws util::Error when the file cannot be opened.
  void persist_to(const std::string& path);

  /// Path of the write-through backing file ("" when detached).
  const std::string& persist_path() const { return persist_path_; }

  /// Rewrites the write-through store down to the retained in-memory set
  /// (same caveat as save(): evicted or never-loaded on-disk entries do not
  /// survive — load() first when they must). Requires write-through mode;
  /// returns entries written.
  std::size_t compact();

  /// Auto-compaction policy for write-through mode: after an append, when
  /// the store holds at least `min_entries` lines and the live/stored ratio
  /// (retained entries / store lines) drops below `min_live_ratio`, the
  /// store is compacted in place. Duplicate keys are what push the ratio
  /// down — every re-measurement appends a line while the retained set
  /// keeps one. Ratio 0 disables.
  ///
  /// Automatic rewrites only happen while the retained set *covers* the
  /// store (attached to a fresh/empty store, or to one the cache fully
  /// loaded, with no eviction since), so they can only ever drop duplicate
  /// or corrupt lines — never a measurement that lives only on disk. An LRU
  /// eviction, a `clear()`, or attaching to a store that was never loaded
  /// all suspend auto-compaction; explicit `compact()` still obeys the
  /// caller (with its documented data-loss caveat).
  void set_compaction_policy(double min_live_ratio,
                             std::size_t min_entries = 256);

  /// Entry lines the active write-through store currently holds (retained +
  /// duplicates + evicted); 0 when detached.
  std::size_t store_entries() const;

  // ------------------------------------------------------ query engine ----

  /// One page of a `query` reply: verbatim store entry lines in
  /// cache_key_less order (store_index.hpp), plus the cursor that resumes
  /// strictly after them.
  struct QueryPage {
    std::vector<std::string> lines;  ///< store bytes, newest line per key
    std::size_t matched = 0;   ///< matches at/after this page's start
    bool exhausted = true;     ///< no match remains past lines.back()
    std::string cursor;        ///< resume token; "" when exhausted
    std::uint64_t generation = 0;  ///< store revision the page was cut from
    std::size_t entries_read = 0;  ///< store lines actually fetched
  };

  /// Serves one page of matching store entries through the secondary index —
  /// at most `limit` seeks into the store file instead of a full replay.
  /// Snapshot isolation: the page is cut against one store generation; if a
  /// compaction rewrites the store mid-read, a first page transparently
  /// retries while a cursor resume fails with "stale-cursor" (the caller
  /// restarts its traversal). `cursor` is the token of a previous page (""
  /// for the first). On failure returns nullopt with *error_code set to
  /// "no-store", "bad-cursor" or "stale-cursor".
  std::optional<QueryPage> query(const QueryFilter& filter, std::size_t limit,
                                 const std::string& cursor,
                                 std::string* error_code) const;

  /// The newest store entry line for `key`: formatted from memory when the
  /// key is retained (without perturbing recency), else seeked out of the
  /// indexed store. nullopt when the key is gone from both. The `follow`
  /// replay path reads through this.
  std::optional<std::string> fetch_entry(const CacheKey& key) const;

  /// Store revision counter: stamped on attach, bumped by every rewrite of
  /// the active store (compaction, save() onto it). 0 = detached. Cursors
  /// carry it so stale readers fail structurally (docs/service.md).
  std::uint64_t store_generation() const;

  /// The live secondary index (docs/orchestrator.md#store-index).
  const StoreIndex& store_index() const { return *store_index_; }

  /// Attaches a timeline profiler: save()/serialize_store() record
  /// `serialize` spans and merge_store()/merge_buffer() record `merge`
  /// spans, inheriting the calling thread's open scope (so a merge inside a
  /// shard conversation nests under that transport span). Set before the
  /// cache is shared between threads; nullptr (the default) detaches.
  void set_profiler(obs::TimelineProfiler* profiler) { profiler_ = profiler; }

 private:
  /// LRU bookkeeping under mutex_. When write_through and a store is
  /// attached, the formatted entry line is returned through `line_out`
  /// (appended by the caller under io_mutex_, after mutex_ is released) and
  /// `compact_out` reports whether the auto-compaction policy fired.
  void insert_locked(const CacheKey& key, const MeasurementRecord& record,
                     bool write_through, std::string* line_out,
                     bool* compact_out);
  /// Appends one formatted entry line for `key` to the write-through stream
  /// and indexes its offset (no-op when `line` is empty or the store is
  /// detached). Takes io_mutex_ only.
  void append_line(const std::string& line, const CacheKey& key);
  /// Compacts the attached store if still attached — the deferred half of
  /// an auto-compaction decision made under mutex_.
  void compact_if_attached();
  std::size_t save_locked(const std::string& path);
  /// Writes the header + retained entries (least recent first) to `out` —
  /// the one body behind save_locked() and serialize_store(). When `refs`
  /// is non-null it receives each entry's (key, offset, length) and
  /// `*total_bytes` the full store size — the compaction path rebuilds the
  /// index from them.
  void write_store_locked(std::ostream& out, std::vector<StoreRef>* refs,
                          std::uint64_t* total_bytes) const;
  std::size_t serialize_size_hint_locked() const;
  std::size_t load_impl(const std::string& path, bool write_through);
  /// The shared merge loop behind load()/merge_store()/merge_buffer().
  /// `source_path` is non-empty only for file sources (it feeds the
  /// fully-loaded-path bookkeeping that arms auto-compaction).
  std::size_t load_stream(std::istream& in, bool write_through,
                          const std::string& source_path);

  /// Lock order: mutex_ before io_mutex_; io_mutex_ is also taken alone
  /// (insert's append path), never the other way around.
  mutable std::mutex mutex_;     ///< LRU list, index, stats, store metadata
  mutable std::mutex io_mutex_;  ///< persist_out_ stream and store files
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> index_;
  CacheStats stats_;
  std::ofstream persist_out_;  ///< guarded by io_mutex_
  std::string persist_path_;   ///< guarded by mutex_ ("" = detached)
  std::size_t store_entries_ = 0;  ///< entry lines in the active store
  std::uint64_t store_bytes_ = 0;  ///< store file size; guarded by io_mutex_
  /// Monotonic store-revision source (guarded by mutex_, which every writer
  /// of the store file holds); the current revision lives in store_index_.
  std::uint64_t next_generation_ = 0;
  /// Secondary index over the active store (internally locked; its mutex is
  /// a leaf — taken under mutex_/io_mutex_, never the reverse).
  std::unique_ptr<StoreIndex> store_index_;
  double compact_min_live_ratio_ = 0.5;
  std::size_t compact_min_entries_ = 256;
  /// True while every valid entry line of the active store has its key
  /// retained in memory — the precondition for a lossless automatic
  /// rewrite. Cleared by evictions and clear().
  bool store_covered_ = false;
  /// Path of the last load() whose entries are all still retained (no
  /// eviction since); persist_to() of the same path starts covered.
  std::string fully_loaded_path_;
  obs::TimelineProfiler* profiler_ = nullptr;  ///< set before sharing
};

}  // namespace ao::orchestrator
