#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "harness/experiment.hpp"

namespace ao::orchestrator {

/// Content identity of one GEMM measurement point. Two campaigns that agree
/// on every field would measure bit-identical results (the simulator is a
/// pure function of chip, implementation, size and experiment options — the
/// matrix seed is part of the options fingerprint), so the cached
/// measurement can stand in for a re-run.
struct CacheKey {
  soc::ChipModel chip = soc::ChipModel::kM1;
  soc::GemmImpl impl = soc::GemmImpl::kCpuSingle;
  std::size_t n = 0;
  std::uint64_t options_fingerprint = 0;

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const;
};

/// FNV-1a digest of every Options field that can change a measurement:
/// repetitions, verification ceiling, power sampling, warm-up, matrix seed
/// and the per-impl functional ceilings.
std::uint64_t options_fingerprint(const harness::GemmExperiment::Options& options);

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
};

/// Thread-safe LRU cache of finished GEMM measurements. Repeated campaigns
/// and overlapping sweeps service already-measured points from here instead
/// of re-running the simulator.
class ResultCache {
 public:
  /// `capacity` = maximum retained measurements; at least 1.
  explicit ResultCache(std::size_t capacity = 4096);

  /// Returns the cached measurement and refreshes its recency, or nullopt.
  std::optional<harness::GemmMeasurement> lookup(const CacheKey& key);

  /// Inserts (or refreshes) a measurement, evicting the least recently used
  /// entry when full.
  void insert(const CacheKey& key, const harness::GemmMeasurement& m);

  bool contains(const CacheKey& key) const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

  CacheStats stats() const;

 private:
  using Entry = std::pair<CacheKey, harness::GemmMeasurement>;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> index_;
  CacheStats stats_;
};

}  // namespace ao::orchestrator
