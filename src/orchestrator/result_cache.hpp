#pragma once

#include <cstdint>
#include <fstream>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "harness/experiment.hpp"
#include "orchestrator/job.hpp"
#include "orchestrator/record.hpp"

namespace ao::orchestrator {

/// Content identity of one measurement point, for any cacheable JobKind.
/// Two campaigns that agree on every field would measure bit-identical
/// results (the simulator is a pure function of the job description and the
/// experiment options), so the cached record can stand in for a re-run.
///
/// `impl` and `n` stay structured for the GEMM family (the hot path and the
/// one humans debug); every other kind-specific field — thread counts,
/// array sizes, repetitions, ANE shapes, study seeds — is folded into
/// `payload_fingerprint` by key_for_job().
struct CacheKey {
  JobKind kind = JobKind::kGemmMeasure;
  soc::ChipModel chip = soc::ChipModel::kM1;
  soc::GemmImpl impl = soc::GemmImpl::kCpuSingle;
  std::size_t n = 0;
  std::uint64_t payload_fingerprint = 0;
  std::uint64_t options_fingerprint = 0;

  bool operator==(const CacheKey&) const = default;

  /// Digest of all six fields — the in-memory hash and the key's content
  /// address. (The on-disk store writes the six fields individually, not
  /// this digest, so entries stay inspectable.)
  std::uint64_t fingerprint() const;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const;
};

/// Builds the cache key for a job: structured fields plus the digest of the
/// kind-specific payload. `options_fp` is the campaign-wide
/// options_fingerprint().
CacheKey key_for_job(const ExperimentJob& job, std::uint64_t options_fp);

/// FNV-1a digest of every Options field that can change a measurement:
/// repetitions, verification ceiling, power sampling, warm-up, matrix seed
/// and the per-impl functional ceilings.
std::uint64_t options_fingerprint(const harness::GemmExperiment::Options& options);

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::size_t loaded = 0;          ///< entries read from disk stores
  std::size_t load_rejected = 0;   ///< corrupt / mismatched entries skipped
};

/// Thread-safe LRU cache of finished measurements — any MeasurementRecord
/// alternative, keyed by CacheKey. Repeated campaigns and overlapping sweeps
/// service already-measured points from here instead of re-running the
/// simulator.
///
/// The cache can be backed by a versioned on-disk store (the format is
/// specified in docs/orchestrator.md): load() warms it from a previous
/// process's file, save() snapshots it, and persist_to() switches it to
/// write-through mode where every insertion is appended immediately — so a
/// campaign that dies mid-run still leaves its finished points behind.
class ResultCache {
 public:
  /// Bumped whenever the entry layout changes; load() rejects files written
  /// by any other version.
  static constexpr int kFormatVersion = 1;

  /// `capacity` = maximum retained measurements; at least 1.
  explicit ResultCache(std::size_t capacity = 4096);

  /// Returns the cached record and refreshes its recency, or nullopt.
  std::optional<MeasurementRecord> lookup(const CacheKey& key);

  /// Inserts (or refreshes) a record, evicting the least recently used
  /// entry when full. In write-through mode the entry is also appended to
  /// the backing file.
  void insert(const CacheKey& key, const MeasurementRecord& record);

  bool contains(const CacheKey& key) const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Drops every in-memory entry; a write-through backing file is untouched.
  void clear();

  CacheStats stats() const;

  // ------------------------------------------------------- persistence ----

  /// Writes a snapshot of the IN-MEMORY entries to `path` (least recent
  /// first, so a reload reconstructs the recency order). Returns entries
  /// written. Saving onto the active write-through path compacts the store
  /// down to the retained set (the append stream is reattached to the new
  /// file) — a write-through log can hold more than `capacity` entries, so
  /// load() the store first if evicted points must survive the compaction.
  /// Throws util::Error when the file cannot be created.
  std::size_t save(const std::string& path);

  /// Merges the entries of a store written by save() or write-through into
  /// this cache. Individually corrupt entries (bad digest, truncated tail,
  /// unknown record shape) are skipped and counted in stats().load_rejected;
  /// a missing file loads nothing; a version-mismatched or unrecognizable
  /// header rejects the whole file. Returns entries loaded.
  std::size_t load(const std::string& path);

  /// Write-through mode: appends every future insertion to `path`,
  /// creating the file (with its version header) if absent. Existing
  /// contents are NOT loaded — call load() first to warm up. Pass "" to
  /// detach. Throws util::Error when the file cannot be opened.
  void persist_to(const std::string& path);

  /// Path of the write-through backing file ("" when detached).
  const std::string& persist_path() const { return persist_path_; }

 private:
  using Entry = std::pair<CacheKey, MeasurementRecord>;

  void insert_locked(const CacheKey& key, const MeasurementRecord& record,
                     bool write_through);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> index_;
  CacheStats stats_;
  std::ofstream persist_out_;
  std::string persist_path_;
};

}  // namespace ao::orchestrator
