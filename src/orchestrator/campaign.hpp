#pragma once

#include <cstdint>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/matrix_workload.hpp"
#include "orchestrator/job.hpp"
#include "orchestrator/result_cache.hpp"
#include "orchestrator/scheduler.hpp"

namespace ao::orchestrator {

/// Aggregated campaign output plus helpers for the reporting layer.
struct CampaignResult {
  std::vector<harness::GemmMeasurement> gemm;  ///< sorted (chip, n, impl)
  std::vector<StreamRecord> stream;            ///< CPU and GPU points
  std::vector<PrecisionRecord> precision;
  std::vector<AneRecord> ane;
  std::vector<PowerRecord> power;
  std::vector<Fp64EmuRecord> fp64emu;
  std::vector<SmeRecord> sme;
  CampaignStats stats;

  /// Re-orders the GEMM measurements into the serial suite's historical row
  /// order: chips in the order they first appear in `gemm`'s canonical
  /// sort, sizes outer, implementations inner. Points the paper skips are
  /// simply absent.
  std::vector<harness::GemmMeasurement> ordered(
      const std::vector<std::size_t>& sizes,
      const std::vector<soc::GemmImpl>& impls) const;
};

/// Builder-style front end of the orchestrator: describes a benchmark
/// campaign as (chips x implementations x sizes) plus any mix of STREAM,
/// precision, ANE and power work, expands it into a dependency-ordered
/// JobQueue (verification jobs depend on their measurement jobs; the
/// paper's skip rules are honored), and runs it on a CampaignScheduler.
///
///   orchestrator::ResultCache cache;
///   cache.load("results.aocache");       // warm from a previous process
///   cache.persist_to("results.aocache"); // write-through new points
///   orchestrator::Campaign campaign;
///   campaign.chips({soc::ChipModel::kM1, soc::ChipModel::kM2})
///       .sizes(harness::figure2_sizes())
///       .stream_sweep({1, 4, 8})
///       .gpu_stream()
///       .precision_study({256})
///       .ane_inference({512})
///       .cache(&cache)
///       .concurrency(8);
///   auto result = campaign.run();   // result.gemm/stream/precision/ane
///
/// Unset dimensions default to the paper's full grid: all four chips, all
/// six Table-2 implementations, all ten sizes.
class Campaign {
 public:
  Campaign& chips(std::vector<soc::ChipModel> chips);
  Campaign& impls(std::vector<soc::GemmImpl> impls);
  Campaign& sizes(std::vector<std::size_t> sizes);
  Campaign& options(harness::GemmExperiment::Options options);
  /// Worker count for the scheduler; 0 = hardware concurrency, 1 = serial.
  Campaign& concurrency(std::size_t workers);
  /// Attaches a (caller-owned) cache; overlapping and repeated campaigns
  /// service already-measured points from it.
  Campaign& cache(ResultCache* cache);
  /// Adds one CPU STREAM job per (chip, thread count). `elements` 0 keeps
  /// the paper's array sizing.
  Campaign& stream_sweep(std::vector<int> thread_counts, int repetitions = 10,
                         std::size_t elements = 0);
  /// Adds one GPU STREAM job per chip (the paper's 20-repetition MSL run).
  Campaign& gpu_stream(int repetitions = 20, std::size_t elements = 0);
  /// Adds one mixed-precision GEMM study job per (chip, size).
  Campaign& precision_study(std::vector<std::size_t> sizes,
                            std::uint64_t seed = 99);
  /// Adds one Core ML FP16 GEMM dispatch job per (chip, size), square
  /// n x n x n. Functional jobs really multiply (and record the output
  /// spot-check); keep sizes modest.
  Campaign& ane_inference(std::vector<std::size_t> sizes,
                          bool functional = true);
  /// Adds one double-single FP64-emulation GEMM study job per (chip, size);
  /// functional on the simulated GPU, so keep sizes modest.
  Campaign& fp64_emulation(std::vector<std::size_t> sizes,
                           std::uint64_t seed = 41);
  /// Adds one SME-vs-AMX GEMM job per (chip, size).
  Campaign& sme_gemm(std::vector<std::size_t> sizes, std::uint64_t seed = 77);
  /// Adds one idle-floor power job per chip.
  Campaign& power_idle(double window_seconds = 1.0);
  /// Attaches a (caller-owned) timeline profiler: run() records a `campaign`
  /// root span, a `schedule` span around expansion, and per-job `execute`
  /// spans through the scheduler. nullptr (the default) disables.
  Campaign& profiler(obs::TimelineProfiler* profiler);

  /// One independently schedulable unit of the sweep: a measurement job
  /// plus the jobs that depend on it (today: its verify job). Groups are the
  /// granularity campaigns shard at — no dependency edge ever crosses a
  /// group, so any subset of groups is a self-contained job graph.
  struct JobGroup {
    std::vector<ExperimentJob> jobs;  ///< jobs[0] is the root; the rest
                                      ///< depend on it
  };

  /// The sweep as an ordered group list. The order (and so each group's
  /// index) is deterministic for a given campaign description — shard plans
  /// built by one process address the same groups in another.
  std::vector<JobGroup> groups() const;

  /// Expands the sweep into `queue`. Exposed for tests and custom
  /// schedulers; run() does this internally.
  void expand(JobQueue& queue) const;

  /// Expands only the named groups (indices into groups()) — the shard-
  /// subset form the campaign service's workers run.
  void expand_subset(JobQueue& queue,
                     const std::vector<std::size_t>& group_indices) const;

  /// Number of jobs expand() would push.
  std::size_t job_count() const;

  /// Expands and executes the campaign.
  CampaignResult run();

 private:
  std::vector<soc::ChipModel> chips_{soc::kAllChipModels.begin(),
                                     soc::kAllChipModels.end()};
  std::vector<soc::GemmImpl> impls_{soc::kAllGemmImpls.begin(),
                                    soc::kAllGemmImpls.end()};
  std::vector<std::size_t> sizes_ = harness::paper_sizes();
  harness::GemmExperiment::Options options_;
  std::size_t concurrency_ = 0;
  ResultCache* cache_ = nullptr;
  obs::TimelineProfiler* profiler_ = nullptr;
  std::vector<int> stream_thread_counts_;
  int stream_repetitions_ = 10;
  std::size_t stream_elements_ = 0;
  bool gpu_stream_ = false;
  int gpu_stream_repetitions_ = 20;
  std::size_t gpu_stream_elements_ = 0;
  std::vector<std::size_t> precision_sizes_;
  std::uint64_t precision_seed_ = 99;
  std::vector<std::size_t> ane_sizes_;
  bool ane_functional_ = true;
  std::vector<std::size_t> fp64emu_sizes_;
  std::uint64_t fp64emu_seed_ = 41;
  std::vector<std::size_t> sme_sizes_;
  std::uint64_t sme_seed_ = 77;
  bool power_idle_ = false;
  double power_window_seconds_ = 1.0;
};

/// Pushes every group into `queue` with the group-internal dependency edges
/// (jobs[0] is the root; the rest depend on it) — expand() for a group list
/// that is already materialized. The PlanCache's consumers rebuild queues
/// from compiled expansions through these instead of re-running groups().
void push_groups(JobQueue& queue,
                 const std::vector<Campaign::JobGroup>& groups);

/// Pushes only the named groups (indices into `groups`) — expand_subset()
/// for a materialized group list. Throws util::InvalidArgument on an
/// out-of-range index.
void push_group_subset(JobQueue& queue,
                       const std::vector<Campaign::JobGroup>& groups,
                       const std::vector<std::size_t>& group_indices);

}  // namespace ao::orchestrator
