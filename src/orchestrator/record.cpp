#include "orchestrator/record.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "util/error.hpp"
#include "util/hex.hpp"

namespace ao::orchestrator {
namespace {

// Token stream primitives. Every numeric value is one lowercase-hex token of
// its bit pattern; strings are hex-encoded bytes ("-" when empty). The
// writer and reader below are the only code that knows this encoding — the
// entry framing (header, digest) lives in result_cache.cpp.

void put_u64(std::ostringstream& out, std::uint64_t value) {
  out << ' ' << util::to_hex_u64(value);
}

void put_double(std::ostringstream& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

void put_float(std::ostringstream& out, float value) {
  put_u64(out, std::bit_cast<std::uint32_t>(value));
}

void put_string(std::ostringstream& out, const std::string& value) {
  if (value.empty()) {
    out << " -";
    return;
  }
  out << ' ';
  for (const char c : value) {
    constexpr char kHex[] = "0123456789abcdef";
    out << kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]
        << kHex[static_cast<unsigned char>(c) & 0xf];
  }
}

/// Pull-parser over the token stream; any failure latches `ok = false` and
/// every subsequent read returns a zero value.
class TokenReader {
 public:
  explicit TokenReader(const std::string& tokens) : in_(tokens) {}

  bool ok() const { return ok_; }

  /// True when the stream was fully consumed without errors.
  bool exhausted() {
    std::string extra;
    return ok_ && !(in_ >> extra);
  }

  std::string raw() {
    std::string token;
    if (!(in_ >> token)) {
      ok_ = false;
      return {};
    }
    return token;
  }

  std::uint64_t u64() {
    const std::string token = raw();
    std::uint64_t value = 0;
    if (!ok_ || !util::parse_hex_u64(token, value)) {
      ok_ = false;
      return 0;
    }
    return value;
  }

  double dbl() { return std::bit_cast<double>(u64()); }

  float flt() { return std::bit_cast<float>(static_cast<std::uint32_t>(u64())); }

  bool boolean() { return u64() != 0; }

  std::size_t size() { return static_cast<std::size_t>(u64()); }

  template <typename Enum>
  Enum enumerator(std::uint64_t max_value) {
    const std::uint64_t raw_value = u64();
    if (raw_value > max_value) {
      ok_ = false;
      return Enum{};
    }
    return static_cast<Enum>(raw_value);
  }

  std::string str() {
    const std::string token = raw();
    if (!ok_) {
      return {};
    }
    if (token == "-") {
      return {};
    }
    if (token.size() % 2 != 0) {
      ok_ = false;
      return {};
    }
    const auto nibble = [this](char c) -> unsigned {
      if (c >= '0' && c <= '9') {
        return static_cast<unsigned>(c - '0');
      }
      if (c >= 'a' && c <= 'f') {
        return static_cast<unsigned>(c - 'a' + 10);
      }
      ok_ = false;
      return 0;
    };
    std::string value;
    value.reserve(token.size() / 2);
    for (std::size_t i = 0; i < token.size(); i += 2) {
      value.push_back(static_cast<char>((nibble(token[i]) << 4) |
                                        nibble(token[i + 1])));
    }
    return value;
  }

 private:
  std::istringstream in_;
  bool ok_ = true;
};

constexpr std::uint64_t kMaxChip =
    static_cast<std::uint64_t>(soc::ChipModel::kM4);
constexpr std::uint64_t kMaxImpl =
    static_cast<std::uint64_t>(soc::GemmImpl::kGpuMps);
constexpr std::uint64_t kMaxKernel =
    static_cast<std::uint64_t>(soc::StreamKernel::kTriad);
constexpr std::uint64_t kMaxFormat =
    static_cast<std::uint64_t>(precision::Format::kFp16);
constexpr std::uint64_t kMaxTarget =
    static_cast<std::uint64_t>(ane::DispatchTarget::kCpu);

/// Caps for the variable-length sections, so a corrupt count can't make the
/// loader attempt a multi-gigabyte allocation.
constexpr std::size_t kMaxSamples = 1u << 16;
constexpr std::size_t kMaxRows = 1u << 10;

// ------------------------------------------------------------- writers -----

void write_gemm(std::ostringstream& out, const harness::GemmMeasurement& m) {
  put_u64(out, static_cast<std::uint64_t>(m.chip));
  put_u64(out, static_cast<std::uint64_t>(m.impl));
  put_u64(out, m.n);
  put_u64(out, m.time_ns.count());
  for (const double v : m.time_ns.values()) {
    put_double(out, v);
  }
  put_double(out, m.best_gflops);
  put_double(out, m.mean_gflops);
  put_double(out, m.power_mw);
  put_double(out, m.cpu_power_mw);
  put_double(out, m.gpu_power_mw);
  put_double(out, m.gflops_per_watt);
  put_u64(out, m.functional ? 1 : 0);
  put_u64(out, m.verified ? 1 : 0);
  put_float(out, m.max_error);
}

void write_stream(std::ostringstream& out, const StreamRecord& r) {
  put_u64(out, static_cast<std::uint64_t>(r.chip));
  put_u64(out, r.gpu ? 1 : 0);
  put_u64(out, static_cast<std::uint64_t>(r.run.threads));
  for (const auto& k : r.run.kernels) {
    put_u64(out, static_cast<std::uint64_t>(k.kernel));
    put_u64(out, k.bytes_per_pass);
    put_double(out, k.best_gbs);
    put_double(out, k.avg_gbs);
    put_double(out, k.min_time_ns);
  }
}

void write_precision(std::ostringstream& out, const PrecisionRecord& r) {
  put_u64(out, static_cast<std::uint64_t>(r.chip));
  put_u64(out, r.n);
  put_u64(out, r.seed);
  put_u64(out, r.rows.size());
  for (const auto& row : r.rows) {
    put_u64(out, static_cast<std::uint64_t>(row.format));
    put_u64(out, row.n);
    put_double(out, row.max_abs_error);
    put_double(out, row.mean_abs_error);
    put_double(out, row.significant_digits);
    put_double(out, row.modeled_gflops);
    put_string(out, row.executing_unit);
  }
}

void write_ane(std::ostringstream& out, const AneRecord& r) {
  put_u64(out, static_cast<std::uint64_t>(r.chip));
  put_u64(out, r.m);
  put_u64(out, r.n);
  put_u64(out, r.k);
  put_u64(out, static_cast<std::uint64_t>(r.target));
  put_double(out, r.duration_ns);
  put_double(out, r.gflops);
  put_double(out, r.gflops_per_watt);
  put_double(out, r.mean_output);
}

void write_power(std::ostringstream& out, const PowerRecord& r) {
  put_u64(out, static_cast<std::uint64_t>(r.chip));
  put_double(out, r.sample.window_seconds);
  put_double(out, r.sample.cpu_mw);
  put_double(out, r.sample.gpu_mw);
  put_double(out, r.sample.ane_mw);
  put_double(out, r.sample.dram_mw);
  put_double(out, r.sample.combined_mw);
}

void write_fp64emu(std::ostringstream& out, const Fp64EmuRecord& r) {
  put_u64(out, static_cast<std::uint64_t>(r.chip));
  put_u64(out, r.n);
  put_u64(out, r.seed);
  put_double(out, r.emu_max_abs_error);
  put_double(out, r.fp32_max_abs_error);
  put_double(out, r.emulated_gflops);
  put_double(out, r.fp32_gflops);
}

void write_sme(std::ostringstream& out, const SmeRecord& r) {
  put_u64(out, static_cast<std::uint64_t>(r.chip));
  put_u64(out, r.n);
  put_u64(out, r.seed);
  put_double(out, r.max_abs_diff);
  put_u64(out, r.matches_amx ? 1 : 0);
  put_double(out, r.mean_output);
  put_double(out, r.modeled_gflops);
}

// ------------------------------------------------------------- readers -----

std::optional<MeasurementRecord> read_gemm(TokenReader& in) {
  harness::GemmMeasurement m;
  m.chip = in.enumerator<soc::ChipModel>(kMaxChip);
  m.impl = in.enumerator<soc::GemmImpl>(kMaxImpl);
  m.n = in.size();
  const std::size_t samples = in.size();
  if (!in.ok() || samples > kMaxSamples) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < samples; ++i) {
    m.time_ns.add(in.dbl());
  }
  m.best_gflops = in.dbl();
  m.mean_gflops = in.dbl();
  m.power_mw = in.dbl();
  m.cpu_power_mw = in.dbl();
  m.gpu_power_mw = in.dbl();
  m.gflops_per_watt = in.dbl();
  m.functional = in.boolean();
  m.verified = in.boolean();
  m.max_error = in.flt();
  if (!in.exhausted()) {
    return std::nullopt;
  }
  return m;
}

std::optional<MeasurementRecord> read_stream(TokenReader& in) {
  StreamRecord r;
  r.chip = in.enumerator<soc::ChipModel>(kMaxChip);
  r.gpu = in.boolean();
  r.run.threads = static_cast<int>(in.u64());
  for (auto& k : r.run.kernels) {
    k.kernel = in.enumerator<soc::StreamKernel>(kMaxKernel);
    k.bytes_per_pass = in.u64();
    k.best_gbs = in.dbl();
    k.avg_gbs = in.dbl();
    k.min_time_ns = in.dbl();
  }
  if (!in.exhausted()) {
    return std::nullopt;
  }
  return r;
}

std::optional<MeasurementRecord> read_precision(TokenReader& in) {
  PrecisionRecord r;
  r.chip = in.enumerator<soc::ChipModel>(kMaxChip);
  r.n = in.size();
  r.seed = in.u64();
  const std::size_t rows = in.size();
  if (!in.ok() || rows > kMaxRows) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < rows; ++i) {
    precision::StudyResult row;
    row.format = in.enumerator<precision::Format>(kMaxFormat);
    row.n = in.size();
    row.max_abs_error = in.dbl();
    row.mean_abs_error = in.dbl();
    row.significant_digits = in.dbl();
    row.modeled_gflops = in.dbl();
    row.executing_unit = in.str();
    r.rows.push_back(std::move(row));
  }
  if (!in.exhausted()) {
    return std::nullopt;
  }
  return r;
}

std::optional<MeasurementRecord> read_ane(TokenReader& in) {
  AneRecord r;
  r.chip = in.enumerator<soc::ChipModel>(kMaxChip);
  r.m = in.size();
  r.n = in.size();
  r.k = in.size();
  r.target = in.enumerator<ane::DispatchTarget>(kMaxTarget);
  r.duration_ns = in.dbl();
  r.gflops = in.dbl();
  r.gflops_per_watt = in.dbl();
  r.mean_output = in.dbl();
  if (!in.exhausted()) {
    return std::nullopt;
  }
  return r;
}

std::optional<MeasurementRecord> read_power(TokenReader& in) {
  PowerRecord r;
  r.chip = in.enumerator<soc::ChipModel>(kMaxChip);
  r.sample.window_seconds = in.dbl();
  r.sample.cpu_mw = in.dbl();
  r.sample.gpu_mw = in.dbl();
  r.sample.ane_mw = in.dbl();
  r.sample.dram_mw = in.dbl();
  r.sample.combined_mw = in.dbl();
  if (!in.exhausted()) {
    return std::nullopt;
  }
  return r;
}

std::optional<MeasurementRecord> read_fp64emu(TokenReader& in) {
  Fp64EmuRecord r;
  r.chip = in.enumerator<soc::ChipModel>(kMaxChip);
  r.n = in.size();
  r.seed = in.u64();
  r.emu_max_abs_error = in.dbl();
  r.fp32_max_abs_error = in.dbl();
  r.emulated_gflops = in.dbl();
  r.fp32_gflops = in.dbl();
  if (!in.exhausted()) {
    return std::nullopt;
  }
  return r;
}

std::optional<MeasurementRecord> read_sme(TokenReader& in) {
  SmeRecord r;
  r.chip = in.enumerator<soc::ChipModel>(kMaxChip);
  r.n = in.size();
  r.seed = in.u64();
  r.max_abs_diff = in.dbl();
  r.matches_amx = in.boolean();
  r.mean_output = in.dbl();
  r.modeled_gflops = in.dbl();
  if (!in.exhausted()) {
    return std::nullopt;
  }
  return r;
}

}  // namespace

RecordKind record_kind(const MeasurementRecord& record) {
  return static_cast<RecordKind>(record.index());
}

std::string to_string(RecordKind kind) {
  switch (kind) {
    case RecordKind::kGemm:
      return "gemm";
    case RecordKind::kStream:
      return "stream";
    case RecordKind::kPrecision:
      return "precision";
    case RecordKind::kAne:
      return "ane";
    case RecordKind::kPower:
      return "power";
    case RecordKind::kFp64Emu:
      return "fp64emu";
    case RecordKind::kSme:
      return "sme";
  }
  throw util::InvalidArgument("unknown RecordKind");
}

std::string serialize_record(const MeasurementRecord& record) {
  std::ostringstream out;
  out << to_string(record_kind(record));
  std::visit(
      [&out](const auto& value) {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, harness::GemmMeasurement>) {
          write_gemm(out, value);
        } else if constexpr (std::is_same_v<T, StreamRecord>) {
          write_stream(out, value);
        } else if constexpr (std::is_same_v<T, PrecisionRecord>) {
          write_precision(out, value);
        } else if constexpr (std::is_same_v<T, AneRecord>) {
          write_ane(out, value);
        } else if constexpr (std::is_same_v<T, PowerRecord>) {
          write_power(out, value);
        } else if constexpr (std::is_same_v<T, Fp64EmuRecord>) {
          write_fp64emu(out, value);
        } else {
          write_sme(out, value);
        }
      },
      record);
  return out.str();
}

std::size_t serialized_record_size_bound(const MeasurementRecord& record) {
  // Every numeric token put_u64/put_double/put_float emits is a space plus
  // at most 16 hex digits; a string token is a space plus two hex bytes per
  // character (or " -" when empty). The counts below mirror the write_*
  // functions token for token — a new field there must be counted here.
  constexpr std::size_t kNumericToken = 17;
  const std::size_t tokens = std::visit(
      [](const auto& value) -> std::size_t {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, harness::GemmMeasurement>) {
          return 13 + value.time_ns.values().size();
        } else if constexpr (std::is_same_v<T, StreamRecord>) {
          return 3 + value.run.kernels.size() * 5;
        } else if constexpr (std::is_same_v<T, PrecisionRecord>) {
          std::size_t count = 4 + value.rows.size() * 6;
          std::size_t string_bytes = 0;
          for (const auto& row : value.rows) {
            string_bytes += 1 + std::max<std::size_t>(
                                    1, 2 * row.executing_unit.size());
          }
          // Fold the string bytes into whole numeric-token units, rounding
          // up, so one multiply below covers both shapes.
          return count + (string_bytes + kNumericToken - 1) / kNumericToken;
        } else if constexpr (std::is_same_v<T, AneRecord>) {
          return 9;
        } else if constexpr (std::is_same_v<T, PowerRecord>) {
          return 7;
        } else if constexpr (std::is_same_v<T, Fp64EmuRecord>) {
          return 7;
        } else {
          return 7;  // SmeRecord
        }
      },
      record);
  return to_string(record_kind(record)).size() + tokens * kNumericToken;
}

std::optional<MeasurementRecord> deserialize_record(const std::string& tokens) {
  TokenReader in(tokens);
  const std::string tag = in.raw();
  if (!in.ok()) {
    return std::nullopt;
  }
  std::optional<MeasurementRecord> record;
  if (tag == "gemm") {
    record = read_gemm(in);
  } else if (tag == "stream") {
    record = read_stream(in);
  } else if (tag == "precision") {
    record = read_precision(in);
  } else if (tag == "ane") {
    record = read_ane(in);
  } else if (tag == "power") {
    record = read_power(in);
  } else if (tag == "fp64emu") {
    record = read_fp64emu(in);
  } else if (tag == "sme") {
    record = read_sme(in);
  } else {
    return std::nullopt;
  }
  if (!record.has_value() || !in.ok()) {
    return std::nullopt;
  }
  return record;
}

}  // namespace ao::orchestrator
