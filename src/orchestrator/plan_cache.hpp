#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "orchestrator/campaign.hpp"

namespace ao::orchestrator {

/// One compiled campaign expansion: the deterministic output of
/// Campaign::groups() plus the counts the service derives from it. Immutable
/// once published by the PlanCache — consumers rebuild JobQueues from it with
/// push_groups()/push_group_subset() instead of re-expanding the request.
struct CompiledCampaign {
  std::vector<Campaign::JobGroup> groups;
  std::size_t job_count = 0;  ///< sum of group.jobs.size()
};

/// Builds a CompiledCampaign from a campaign description (groups() once,
/// count the jobs).
CompiledCampaign compile_campaign(const Campaign& campaign);

/// Content-keyed LRU cache of compiled campaign expansions — the
/// orchestration twin of the ResultCache: repeated campaigns skip the
/// (chips × impls × sizes) expansion walk the same way repeated measurements
/// skip the simulator.
///
/// Keys are the FULL canonical text of every request field that can change
/// the expansion (service::plan_key()); the map compares them by string
/// equality, so two distinct option sets can never collide — there is no
/// hash to collide on. Requests that differ only in identity or scheduling
/// fields (client, priority, worker/shard counts, deadline) intentionally
/// share a compilation: those fields cannot change groups().
///
/// Each entry also memoizes full-set LPT shard partitions per shard count
/// (shard_partition()): group-index lists over the WHOLE group list, valid
/// only when every group is pending — the caller must fall back to planning
/// when a warm result cache already settled some groups.
///
/// Thread-safe; compile callbacks run OUTSIDE the lock (expansion can be
/// slow), so two concurrent misses on one key may both compile — benign,
/// expansion is deterministic and the second insert is dropped.
class PlanCache {
 public:
  struct Stats {
    std::size_t hits = 0;       ///< checkouts served from the cache
    std::size_t misses = 0;     ///< checkouts that compiled
    std::size_t evictions = 0;  ///< entries dropped by the LRU bound
    std::size_t size = 0;       ///< entries currently retained
  };

  /// `capacity` = maximum retained compilations; at least 1.
  explicit PlanCache(std::size_t capacity = 64);

  /// Returns the compiled expansion for `key`, refreshing its recency;
  /// compiles via `compile` on a miss (outside the lock) and retains the
  /// result, evicting the least recently used entry when full. The returned
  /// pointer stays valid past an eviction — holders share the immutable
  /// compilation.
  std::shared_ptr<const CompiledCampaign> checkout(
      const std::string& key, const std::function<CompiledCampaign()>& compile);

  /// The memoized full-set shard partition for (key, shard_count): per-shard
  /// sorted group-index lists over compiled.groups. Computes via `plan` on
  /// the first request (outside the lock) and remembers it on the entry.
  /// Returns nullptr when `key` is not resident (checkout() first) — the
  /// partition memo never resurrects an evicted compilation.
  std::shared_ptr<const std::vector<std::vector<std::size_t>>> shard_partition(
      const std::string& key, std::size_t shard_count,
      const std::function<std::vector<std::vector<std::size_t>>()>& plan);

  Stats stats() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  void clear();

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CompiledCampaign> compiled;
    /// shard_count → full-set partition (group indices per shard).
    std::map<std::size_t,
             std::shared_ptr<const std::vector<std::vector<std::size_t>>>>
        partitions;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace ao::orchestrator
