#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "soc/benchmark_taxonomy.hpp"
#include "soc/chip_spec.hpp"

namespace ao::orchestrator {

/// Queue-assigned job identity. 0 is never assigned.
using JobId = std::uint64_t;
inline constexpr JobId kInvalidJob = 0;

/// The measurement families a campaign schedules. Verification is its own
/// kind so it can be expressed as a dependent job and run off the
/// measurement critical path (it needs host buffers, not a simulated
/// System).
enum class JobKind {
  kGemmMeasure,     ///< one (chip, impl, n) timing + power point
  kGemmVerify,      ///< checks a measurement's output against the reference
  kStream,          ///< one CPU STREAM run at a fixed thread count
  kPowerIdle,       ///< one powermetrics idle-floor sample
  kGpuStream,       ///< one GPU STREAM run (Figure 1's MSL port)
  kPrecisionStudy,  ///< one mixed-precision GEMM accuracy study at size n
  kAneInference,    ///< one Core ML FP16 GEMM dispatch (ANE or fallback)
  kFp64Emulation,   ///< one double-single FP64 GEMM study on the GPU at size n
  kSmeGemm,         ///< one SME FMOPA GEMM vs the AMX reference at size n
};

/// Number of JobKind enumerators (the enum is dense from 0).
inline constexpr std::size_t kJobKindCount =
    static_cast<std::size_t>(JobKind::kSmeGemm) + 1;

std::string to_string(JobKind kind);

/// True for kinds whose result is a pure function of the job description —
/// those the ResultCache retains and the disk store persists. Verification
/// is transient: it needs the measurement's live host buffers.
bool is_cacheable(JobKind kind);

/// One schedulable unit of campaign work. A job is a *description* — the
/// CampaignScheduler interprets it against a leased simulated System. Only
/// the fields relevant to `kind` are meaningful.
struct ExperimentJob {
  JobId id = kInvalidJob;  ///< assigned by JobQueue::push
  JobKind kind = JobKind::kGemmMeasure;
  /// Higher-priority jobs are popped first among the ready set (ties break
  /// on id, so equal-priority work keeps submission order). Campaigns use
  /// the matrix size, starting the heavyweight points early.
  int priority = 0;

  soc::ChipModel chip = soc::ChipModel::kM1;

  /// GEMM payload (kGemmMeasure / kGemmVerify). `n` doubles as the matrix
  /// size of kPrecisionStudy and kAneInference jobs.
  soc::GemmImpl impl = soc::GemmImpl::kCpuSingle;
  std::size_t n = 0;
  /// For kGemmVerify: the measurement job whose output is checked.
  JobId parent = kInvalidJob;
  /// For kGemmMeasure: a verify job depends on this one, so the scheduler
  /// must hold the output buffer until that job has consumed it.
  bool expects_verify = false;

  /// STREAM payload (kStream / kGpuStream). `stream_threads` is CPU-only;
  /// `stream_elements` 0 means the module's paper-default array size.
  int stream_threads = 1;
  int stream_repetitions = 10;
  std::size_t stream_elements = 0;

  /// Power payload (kPowerIdle).
  double power_window_seconds = 1.0;

  /// Operand seed for the kinds that generate their own matrices
  /// (kPrecisionStudy, kAneInference, kFp64Emulation, kSmeGemm); the size of
  /// all four is `n`.
  std::uint64_t study_seed = 99;

  /// ANE payload (kAneInference): an ane_m x n x ane_k FP16 GEMM through the
  /// Core ML dispatch model; 0 dimensions default to `n` (square).
  std::size_t ane_m = 0;
  std::size_t ane_k = 0;
  bool ane_functional = true;
};

/// Thread-safe, priority-ordered queue of experiment jobs with dependency
/// edges. Dependencies must already be in the queue when a job is pushed,
/// which makes the graph a DAG by construction. Workers drain it with
/// pop_ready()/mark_done(); pop_ready() blocks while jobs are in flight and
/// returns nullopt once every job has been marked done.
class JobQueue {
 public:
  /// Adds a job; `deps` must name existing jobs (done deps are allowed and
  /// count as satisfied). Returns the assigned id.
  JobId push(ExperimentJob job, const std::vector<JobId>& deps = {});

  /// Blocks until some job is ready (all deps done), then returns the
  /// highest-priority one. Returns nullopt when every pushed job is done.
  std::optional<ExperimentJob> pop_ready();

  /// Non-blocking pop_ready(): nullopt when nothing is ready *right now*.
  std::optional<ExperimentJob> try_pop_ready();

  /// Marks a popped job complete, unblocking its dependents.
  void mark_done(JobId id);

  /// Blocks until every pushed job has been marked done.
  void wait_all_done();

  std::size_t total() const;
  std::size_t done_count() const;
  bool all_done() const;

  /// Snapshot of every job ever pushed, in id order — the scheduler plans
  /// its per-size batches from this before draining the queue.
  std::vector<ExperimentJob> jobs() const;

 private:
  struct Node {
    ExperimentJob job;
    std::size_t unmet_deps = 0;
    std::vector<JobId> dependents;
    bool popped = false;
    bool done = false;
  };

  // Ready ordering: (-priority, id) so the set's begin() is the
  // highest-priority, earliest-submitted job.
  using ReadyKey = std::pair<int, JobId>;

  std::optional<ExperimentJob> take_ready_locked();

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::condition_variable done_cv_;
  std::map<JobId, Node> nodes_;
  std::set<ReadyKey> ready_;
  JobId next_id_ = 1;
  std::size_t done_count_ = 0;
};

}  // namespace ao::orchestrator
