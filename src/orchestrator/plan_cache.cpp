#include "orchestrator/plan_cache.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace ao::orchestrator {

CompiledCampaign compile_campaign(const Campaign& campaign) {
  CompiledCampaign compiled;
  compiled.groups = campaign.groups();
  for (const Campaign::JobGroup& group : compiled.groups) {
    compiled.job_count += group.jobs.size();
  }
  return compiled;
}

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

std::shared_ptr<const CompiledCampaign> PlanCache::checkout(
    const std::string& key, const std::function<CompiledCampaign()>& compile) {
  AO_REQUIRE(!key.empty(), "plan-cache key must not be empty");
  {
    std::lock_guard lock(mutex_);
    const auto found = index_.find(key);
    if (found != index_.end()) {
      lru_.splice(lru_.begin(), lru_, found->second);
      ++stats_.hits;
      return found->second->compiled;
    }
    ++stats_.misses;
  }
  // Compile outside the lock: expansion walks the whole sweep. A concurrent
  // miss on the same key compiles redundantly but deterministically; the
  // loser's insert below is dropped in favor of the resident entry.
  auto compiled = std::make_shared<const CompiledCampaign>(compile());
  std::lock_guard lock(mutex_);
  const auto found = index_.find(key);
  if (found != index_.end()) {
    lru_.splice(lru_.begin(), lru_, found->second);
    return found->second->compiled;
  }
  lru_.push_front(Entry{key, compiled, {}});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return compiled;
}

std::shared_ptr<const std::vector<std::vector<std::size_t>>>
PlanCache::shard_partition(
    const std::string& key, std::size_t shard_count,
    const std::function<std::vector<std::vector<std::size_t>>()>& plan) {
  {
    std::lock_guard lock(mutex_);
    const auto found = index_.find(key);
    if (found == index_.end()) {
      return nullptr;
    }
    const auto memo = found->second->partitions.find(shard_count);
    if (memo != found->second->partitions.end()) {
      return memo->second;
    }
  }
  auto partition =
      std::make_shared<const std::vector<std::vector<std::size_t>>>(plan());
  std::lock_guard lock(mutex_);
  const auto found = index_.find(key);
  if (found == index_.end()) {
    // Evicted while planning: hand the caller its partition anyway, but
    // don't resurrect the entry.
    return partition;
  }
  const auto [memo, inserted] =
      found->second->partitions.emplace(shard_count, partition);
  return memo->second;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard lock(mutex_);
  Stats out = stats_;
  out.size = lru_.size();
  return out;
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

void PlanCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace ao::orchestrator
