#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "orchestrator/result_cache.hpp"

namespace ao::orchestrator {

/// Total order over CacheKey — kind major, then chip, impl, n and the two
/// fingerprints. This is THE deterministic order of every query reply: two
/// stores holding the same entries page identically regardless of insertion
/// or compaction history.
bool cache_key_less(const CacheKey& a, const CacheKey& b);

/// Filter predicates of the `query` protocol command (docs/service.md).
/// Every field is optional; an empty filter matches the whole store. Exact
/// size is expressed as n_min == n_max.
struct QueryFilter {
  std::optional<JobKind> kind;
  std::optional<soc::ChipModel> chip;
  std::optional<soc::GemmImpl> impl;
  std::optional<std::uint64_t> n_min;
  std::optional<std::uint64_t> n_max;

  bool matches(const CacheKey& key) const;
};

/// In-memory secondary index over the write-through result store: CacheKey
/// -> byte offset of that key's newest entry line. The owning ResultCache
/// keeps it current on every append, rebuilds it (with fresh offsets) on
/// compaction, and scans it up from a cold store on attach — queries then
/// seek straight to their matching lines instead of replaying the file.
///
/// Snapshot isolation contract: the index carries the store `generation`,
/// bumped on every rewrite of the backing file. A reader captures the
/// generation with its refs; if the generation moved before its reads
/// finished, the offsets may point at reclaimed bytes and the reader must
/// restart (or surface `stale-cursor` when resuming from a client token).
///
/// Thread-safe; one internal mutex, never held by callers.
class StoreIndex {
 public:
  /// (key, offset, length) of one entry line — StoreRef from
  /// result_cache.hpp, so ResultCache can name it without a cycle.
  using Ref = StoreRef;

  /// A page worth of matching refs, in cache_key_less order.
  struct Selection {
    std::vector<Ref> refs;
    std::size_t matched = 0;  ///< total keys matching the filter
    bool exhausted = false;   ///< no match remains beyond refs.back()
  };

  /// Drops every ref and stamps the next store revision. Generation 0 means
  /// "no store attached".
  void reset(std::uint64_t generation);

  /// Wholesale replacement — the compaction path: the store was rewritten,
  /// every offset is fresh.
  void rebuild(std::vector<Ref> refs, std::uint64_t generation);

  /// Records (or refreshes) the newest line for `key`. Later offsets win:
  /// a duplicate append shadows the older line, exactly like load() replay.
  void add(const CacheKey& key, std::uint64_t offset, std::size_t length);

  std::uint64_t generation() const;
  std::size_t size() const;

  /// Matching refs strictly after `after` (exclusive; nullopt = from the
  /// start), capped at `limit`. `matched` counts every remaining match, so
  /// a pager can report totals without fetching lines. Kind-bounded filters
  /// stop at the end of their kind range instead of walking the whole map.
  Selection collect(const QueryFilter& filter,
                    const std::optional<CacheKey>& after,
                    std::size_t limit) const;

  std::optional<Ref> find(const CacheKey& key) const;

  /// Every ref in cache_key_less order — the rebuild-equivalence tests
  /// compare incremental and cold-scanned indexes through this.
  std::vector<Ref> snapshot() const;

 private:
  struct KeyLess {
    bool operator()(const CacheKey& a, const CacheKey& b) const {
      return cache_key_less(a, b);
    }
  };

  mutable std::mutex mutex_;
  std::map<CacheKey, Ref, KeyLess> refs_;
  std::uint64_t generation_ = 0;
};

/// Resume token of a paged query: `aoq1.<generation>.<six key fields>.<digest>`,
/// every numeric field lowercase hex, digest = store_digest of the token up
/// to (excluding) its final dot — a truncated, bit-flipped or hand-rolled
/// token fails decode instead of resuming from a wrong position.
std::string encode_query_cursor(std::uint64_t generation, const CacheKey& last);

struct QueryCursor {
  std::uint64_t generation = 0;
  CacheKey last;  ///< last key the client saw; resume strictly after it
};

/// Returns nullopt on any malformation: wrong magic, missing fields,
/// non-hex digits, out-of-range enumerators or a digest mismatch.
std::optional<QueryCursor> decode_query_cursor(const std::string& token);

}  // namespace ao::orchestrator
