#include "orchestrator/campaign.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "util/error.hpp"

namespace ao::orchestrator {

std::vector<harness::GemmMeasurement> CampaignResult::ordered(
    const std::vector<std::size_t>& sizes,
    const std::vector<soc::GemmImpl>& impls) const {
  // Preserve the chip grouping of the canonical sort, then emit the serial
  // suite's size-major / implementation-minor row order within each chip.
  std::vector<soc::ChipModel> chip_order;
  for (const auto& m : gemm) {
    if (std::find(chip_order.begin(), chip_order.end(), m.chip) ==
        chip_order.end()) {
      chip_order.push_back(m.chip);
    }
  }
  std::map<std::tuple<soc::ChipModel, std::size_t, soc::GemmImpl>,
           const harness::GemmMeasurement*>
      by_point;
  for (const auto& m : gemm) {
    by_point.emplace(std::tuple(m.chip, m.n, m.impl), &m);
  }
  std::vector<harness::GemmMeasurement> out;
  out.reserve(gemm.size());
  for (const auto chip : chip_order) {
    for (const std::size_t n : sizes) {
      for (const auto impl : impls) {
        const auto it = by_point.find(std::tuple(chip, n, impl));
        if (it != by_point.end()) {
          out.push_back(*it->second);
        }
      }
    }
  }
  return out;
}

Campaign& Campaign::chips(std::vector<soc::ChipModel> chips) {
  chips_ = std::move(chips);
  return *this;
}

Campaign& Campaign::impls(std::vector<soc::GemmImpl> impls) {
  impls_ = std::move(impls);
  return *this;
}

Campaign& Campaign::sizes(std::vector<std::size_t> sizes) {
  sizes_ = std::move(sizes);
  return *this;
}

Campaign& Campaign::options(harness::GemmExperiment::Options options) {
  options_ = std::move(options);
  return *this;
}

Campaign& Campaign::concurrency(std::size_t workers) {
  concurrency_ = workers;
  return *this;
}

Campaign& Campaign::cache(ResultCache* cache) {
  cache_ = cache;
  return *this;
}

Campaign& Campaign::stream_sweep(std::vector<int> thread_counts,
                                 int repetitions, std::size_t elements) {
  AO_REQUIRE(repetitions >= 1, "need at least one STREAM repetition");
  stream_thread_counts_ = std::move(thread_counts);
  stream_repetitions_ = repetitions;
  stream_elements_ = elements;
  return *this;
}

Campaign& Campaign::gpu_stream(int repetitions, std::size_t elements) {
  AO_REQUIRE(repetitions >= 1, "need at least one STREAM repetition");
  gpu_stream_ = true;
  gpu_stream_repetitions_ = repetitions;
  gpu_stream_elements_ = elements;
  return *this;
}

Campaign& Campaign::precision_study(std::vector<std::size_t> sizes,
                                    std::uint64_t seed) {
  precision_sizes_ = std::move(sizes);
  precision_seed_ = seed;
  return *this;
}

Campaign& Campaign::ane_inference(std::vector<std::size_t> sizes,
                                  bool functional) {
  ane_sizes_ = std::move(sizes);
  ane_functional_ = functional;
  return *this;
}

Campaign& Campaign::fp64_emulation(std::vector<std::size_t> sizes,
                                   std::uint64_t seed) {
  fp64emu_sizes_ = std::move(sizes);
  fp64emu_seed_ = seed;
  return *this;
}

Campaign& Campaign::sme_gemm(std::vector<std::size_t> sizes,
                             std::uint64_t seed) {
  sme_sizes_ = std::move(sizes);
  sme_seed_ = seed;
  return *this;
}

Campaign& Campaign::power_idle(double window_seconds) {
  AO_REQUIRE(window_seconds > 0.0, "power window must be positive");
  power_idle_ = true;
  power_window_seconds_ = window_seconds;
  return *this;
}

Campaign& Campaign::profiler(obs::TimelineProfiler* profiler) {
  profiler_ = profiler;
  return *this;
}

std::vector<Campaign::JobGroup> Campaign::groups() const {
  AO_REQUIRE(!chips_.empty(), "campaign needs at least one chip");
  std::vector<JobGroup> out;
  for (const auto chip : chips_) {
    for (const std::size_t n : sizes_) {
      for (const auto impl : impls_) {
        if (harness::paper_skips(impl, n)) {
          continue;  // the paper's skip rule is part of the sweep contract
        }
        ExperimentJob measure;
        measure.kind = JobKind::kGemmMeasure;
        // Large sizes first: the long-running points start while the small
        // ones backfill idle workers.
        measure.priority = static_cast<int>(n);
        measure.chip = chip;
        measure.impl = impl;
        measure.n = n;
        measure.expects_verify = harness::functional_at(options_, impl, n) &&
                                 n <= options_.verify_n_max;
        JobGroup group;
        group.jobs.push_back(measure);
        if (measure.expects_verify) {
          ExperimentJob verify;
          verify.kind = JobKind::kGemmVerify;
          verify.priority = measure.priority;
          verify.chip = chip;
          verify.impl = impl;
          verify.n = n;
          group.jobs.push_back(verify);
        }
        out.push_back(std::move(group));
      }
    }
    for (const int threads : stream_thread_counts_) {
      ExperimentJob job;
      job.kind = JobKind::kStream;
      job.chip = chip;
      job.stream_threads = threads;
      job.stream_repetitions = stream_repetitions_;
      job.stream_elements = stream_elements_;
      out.push_back({{job}});
    }
    if (gpu_stream_) {
      ExperimentJob job;
      job.kind = JobKind::kGpuStream;
      job.chip = chip;
      job.stream_repetitions = gpu_stream_repetitions_;
      job.stream_elements = gpu_stream_elements_;
      out.push_back({{job}});
    }
    for (const std::size_t n : precision_sizes_) {
      ExperimentJob job;
      job.kind = JobKind::kPrecisionStudy;
      job.chip = chip;
      job.n = n;
      job.study_seed = precision_seed_;
      out.push_back({{job}});
    }
    for (const std::size_t n : ane_sizes_) {
      ExperimentJob job;
      job.kind = JobKind::kAneInference;
      job.chip = chip;
      job.n = n;
      job.ane_functional = ane_functional_;
      out.push_back({{job}});
    }
    for (const std::size_t n : fp64emu_sizes_) {
      ExperimentJob job;
      job.kind = JobKind::kFp64Emulation;
      job.chip = chip;
      job.n = n;
      job.study_seed = fp64emu_seed_;
      out.push_back({{job}});
    }
    for (const std::size_t n : sme_sizes_) {
      ExperimentJob job;
      job.kind = JobKind::kSmeGemm;
      job.chip = chip;
      job.n = n;
      job.study_seed = sme_seed_;
      out.push_back({{job}});
    }
    if (power_idle_) {
      ExperimentJob job;
      job.kind = JobKind::kPowerIdle;
      job.chip = chip;
      job.power_window_seconds = power_window_seconds_;
      out.push_back({{job}});
    }
  }
  return out;
}

namespace {

void push_group(JobQueue& queue, const Campaign::JobGroup& group) {
  const JobId root = queue.push(group.jobs.front());
  for (std::size_t i = 1; i < group.jobs.size(); ++i) {
    ExperimentJob dependent = group.jobs[i];
    dependent.parent = root;
    queue.push(dependent, {root});
  }
}

}  // namespace

void push_groups(JobQueue& queue,
                 const std::vector<Campaign::JobGroup>& groups) {
  for (const Campaign::JobGroup& group : groups) {
    push_group(queue, group);
  }
}

void push_group_subset(JobQueue& queue,
                       const std::vector<Campaign::JobGroup>& groups,
                       const std::vector<std::size_t>& group_indices) {
  for (const std::size_t index : group_indices) {
    AO_REQUIRE(index < groups.size(), "shard group index out of range");
    push_group(queue, groups[index]);
  }
}

void Campaign::expand(JobQueue& queue) const { push_groups(queue, groups()); }

void Campaign::expand_subset(
    JobQueue& queue, const std::vector<std::size_t>& group_indices) const {
  push_group_subset(queue, groups(), group_indices);
}

std::size_t Campaign::job_count() const {
  std::size_t count = 0;
  for (const JobGroup& group : groups()) {
    count += group.jobs.size();
  }
  return count;
}

CampaignResult Campaign::run() {
  obs::TimelineProfiler::Scope root(profiler_, obs::Phase::kCampaign,
                                    /*parent=*/0, "campaign-run");
  JobQueue queue;
  {
    obs::TimelineProfiler::Scope schedule(profiler_, obs::Phase::kSchedule);
    expand(queue);
  }

  CampaignScheduler::Options scheduler_options;
  scheduler_options.concurrency = concurrency_;
  CampaignScheduler scheduler(options_, scheduler_options, cache_);
  scheduler.set_profile_sink(profiler_, root.id());
  if (cache_ != nullptr) {
    cache_->set_profiler(profiler_);
  }
  CampaignOutputs outputs = scheduler.run(queue);
  if (cache_ != nullptr) {
    cache_->set_profiler(nullptr);
  }

  CampaignResult result;
  result.gemm = std::move(outputs.gemm);
  result.stream = std::move(outputs.stream);
  result.precision = std::move(outputs.precision);
  result.ane = std::move(outputs.ane);
  result.power = std::move(outputs.power);
  result.fp64emu = std::move(outputs.fp64emu);
  result.sme = std::move(outputs.sme);
  result.stats = outputs.stats;
  return result;
}

}  // namespace ao::orchestrator
