#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/system.hpp"
#include "harness/experiment.hpp"
#include "obs/profiler.hpp"
#include "orchestrator/job.hpp"
#include "orchestrator/record.hpp"
#include "orchestrator/result_cache.hpp"
#include "util/aligned_buffer.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ao::orchestrator {

/// Thrown by CampaignScheduler::run() when its stop predicate cancelled the
/// campaign between jobs (abort command, expired deadline). Distinct from
/// util::Error so the service can reply with the predicate's protocol code
/// ("aborted", "deadline-exceeded") instead of a generic exec-failed.
class CampaignStopped : public util::Error {
 public:
  explicit CampaignStopped(std::string code)
      : util::Error("campaign stopped: " + code), code_(std::move(code)) {}

  /// The stop predicate's verdict — a stable protocol error code.
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// Pool of simulated Systems, one leased per running job.
///
/// A System's SimClock is strictly single-owner: two jobs interleaving on
/// one timeline would corrupt both measurements. Leasing hands each job a
/// System reset to boot state (clock at zero, package at ambient, activity
/// log empty — exactly the paper's reboot-and-idle protocol), so a
/// measurement is a pure function of (chip, impl, n, options) no matter how
/// many jobs run concurrently. Returned Systems are reset and reused, so a
/// campaign builds at most one System per chip per worker.
class SystemPool {
 public:
  class Lease {
   public:
    Lease(SystemPool& pool, std::unique_ptr<core::System> system);
    ~Lease();
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    core::System& system() { return *system_; }

    /// The SimClock boot epoch observed when the lease was taken. While the
    /// lease is held the clock's epoch must not move — a change means some
    /// other job reset or shared this System's timeline.
    std::uint64_t boot_epoch() const { return epoch_at_acquire_; }

   private:
    SystemPool* pool_;
    std::unique_ptr<core::System> system_;
    std::uint64_t epoch_at_acquire_;
  };

  Lease acquire(soc::ChipModel chip);

  /// Systems constructed over the pool's lifetime (not currently leased).
  std::size_t systems_built() const;

 private:
  void release(std::unique_ptr<core::System> system);

  mutable std::mutex mutex_;
  std::map<soc::ChipModel, std::vector<std::unique_ptr<core::System>>> free_;
  std::size_t built_ = 0;
};

/// Shared GEMM operands for every job of one matrix size: the page-aligned
/// left/right inputs are allocated (and filled) once, while each concurrent
/// measurement checks out its own output buffer from a small free list.
/// This extends the per-size sharing the serial suite does to a concurrent
/// setting — inputs are immutable after construction, outputs never alias.
class MatrixBatch {
 public:
  MatrixBatch(std::size_t n, bool fill, std::uint64_t seed);

  std::size_t n() const { return n_; }
  std::size_t memory_length() const { return left_.capacity(); }

  /// RAII checkout of one zeroed output buffer.
  class OutLease {
   public:
    OutLease(MatrixBatch& batch, std::unique_ptr<util::AlignedBuffer> out);
    ~OutLease();
    OutLease(const OutLease&) = delete;
    OutLease& operator=(const OutLease&) = delete;

    /// The full operand view for a measurement using this output buffer.
    harness::MatrixView view();

   private:
    MatrixBatch* batch_;
    std::unique_ptr<util::AlignedBuffer> out_;
  };

  std::unique_ptr<OutLease> acquire_out();

  /// Output buffers ever allocated (they are recycled between jobs).
  std::size_t out_buffers_built() const;

 private:
  void release_out(std::unique_ptr<util::AlignedBuffer> out);

  std::size_t n_;
  util::AlignedBuffer left_;
  util::AlignedBuffer right_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<util::AlignedBuffer>> free_outs_;
  std::size_t outs_built_ = 0;
};

/// Aggregate counters for one scheduler run.
struct CampaignStats {
  std::size_t jobs_total = 0;
  std::size_t jobs_executed = 0;    ///< ran on a leased System
  std::size_t cache_hits = 0;       ///< jobs serviced from the ResultCache
  std::size_t cache_misses = 0;     ///< cacheable jobs the cache lacked
  std::size_t verifications = 0;
  std::size_t batches_allocated = 0;
  std::size_t out_buffers_allocated = 0;
  std::size_t systems_built = 0;
};

/// Everything a scheduler run produced, one typed vector per record family
/// (the MeasurementRecord alternatives of orchestrator/record.hpp).
struct CampaignOutputs {
  std::vector<harness::GemmMeasurement> gemm;
  std::vector<StreamRecord> stream;  ///< CPU and GPU (`gpu` distinguishes)
  std::vector<PrecisionRecord> precision;
  std::vector<AneRecord> ane;
  std::vector<PowerRecord> power;
  std::vector<Fp64EmuRecord> fp64emu;
  std::vector<SmeRecord> sme;
  CampaignStats stats;
};

/// Streaming hook: invoked once per settled record — after a measurement
/// publishes (GEMM points with a dependent verify job wait for the verdict)
/// or a cache hit is served. `job` is the measurement job the record answers
/// (verify jobs are reported as their kGemmMeasure identity, so
/// key_for_job(job, fp) addresses the cache entry). Called from worker
/// threads with no lock held; the callee synchronizes its own sinks.
using RecordCallback = std::function<void(
    const ExperimentJob& job, const MeasurementRecord& record, bool from_cache)>;

/// Cooperative stop predicate, polled by scheduler workers *between* jobs
/// (never mid-measurement — a half-run job would poison the simulated
/// clock's determinism). Returns a stable protocol code ("aborted",
/// "deadline-exceeded") to cancel the run, "" to keep going. Called from
/// worker threads; must be thread-safe and cheap.
using StopFn = std::function<std::string()>;

/// Runs a JobQueue to completion on a private util::ThreadPool.
///
/// Workers pop ready jobs, lease a System for the job's chip, execute, and
/// mark the job done — unblocking dependents. Every cacheable job consults
/// the ResultCache (when attached) before executing and publishes its
/// record into it afterwards (GEMM measurements wait for their verification
/// to settle first); batched operands are allocated lazily on the first
/// non-cached job of a size and released when the last job of that size
/// completes.
class CampaignScheduler {
 public:
  struct Options {
    /// Worker count; 0 means hardware concurrency. 1 reproduces the serial
    /// suite's execution order.
    std::size_t concurrency = 0;
  };

  explicit CampaignScheduler(harness::GemmExperiment::Options experiment_options);
  CampaignScheduler(harness::GemmExperiment::Options experiment_options,
                    Options options, ResultCache* cache = nullptr);

  /// Drains `queue`, returning aggregated outputs. Every record family is
  /// sorted into a canonical order independent of completion order (GEMM by
  /// (chip, n, impl), the others by chip then their identifying fields).
  /// `on_record` (when set) streams each record as it settles — the campaign
  /// service's incremental result feed. `should_stop` (when set) is polled
  /// between jobs: a non-empty code drains the queue without executing and
  /// run() throws CampaignStopped carrying it — jobs already settled kept
  /// their cache entries, so a resubmit completes only the remainder. A
  /// scheduler may be reused across sequential run() calls (its SystemPool
  /// stays warm) but run() itself is not reentrant.
  CampaignOutputs run(JobQueue& queue, RecordCallback on_record = {},
                      StopFn should_stop = {});

  /// Attaches a timeline profiler for subsequent run() calls: every executed
  /// job records an `execute` span labelled with its kind, parented under
  /// `parent_span` (the caller's campaign or shard span — worker threads
  /// have no inherited scope). nullptr detaches.
  void set_profile_sink(obs::TimelineProfiler* profiler,
                        std::uint64_t parent_span = 0);

 private:
  struct MeasureState;  // per measure-job handoff to its verify job

  struct BatchState {
    std::shared_ptr<MatrixBatch> batch;  ///< allocated lazily on first miss
    bool fill = false;
    std::size_t jobs_remaining = 0;  ///< gemm jobs (measure + verify) of this n
  };

  void execute(const ExperimentJob& job, CampaignOutputs& outputs);
  void run_gemm_measure(const ExperimentJob& job, CampaignOutputs& outputs);
  void run_gemm_verify(const ExperimentJob& job, CampaignOutputs& outputs);
  void run_stream(const ExperimentJob& job, CampaignOutputs& outputs);
  void run_power_idle(const ExperimentJob& job, CampaignOutputs& outputs);
  void run_precision_study(const ExperimentJob& job, CampaignOutputs& outputs);
  void run_ane_inference(const ExperimentJob& job, CampaignOutputs& outputs);
  void run_fp64_emulation(const ExperimentJob& job, CampaignOutputs& outputs);
  void run_sme_gemm(const ExperimentJob& job, CampaignOutputs& outputs);

  std::shared_ptr<MatrixBatch> batch_for(std::size_t n);
  void batch_job_finished(std::size_t n);
  void publish(const ExperimentJob& job, const harness::GemmMeasurement& m,
               CampaignOutputs& outputs);

  /// Appends `record` to its typed output vector (caller must NOT hold
  /// state_mutex_).
  void append_record(const MeasurementRecord& record, CampaignOutputs& outputs);
  /// Serves a cacheable job from the attached cache; true on a hit (the
  /// cached record was appended to `outputs` and the job is finished).
  bool serve_from_cache(const ExperimentJob& job, CampaignOutputs& outputs);
  /// Publishes a non-GEMM record: inserts it into the cache and appends it
  /// to `outputs`.
  void publish_record(const ExperimentJob& job, const MeasurementRecord& record,
                      CampaignOutputs& outputs);

  harness::GemmExperiment::Options experiment_options_;
  Options options_;
  ResultCache* cache_;
  std::uint64_t fingerprint_;
  SystemPool systems_;
  RecordCallback on_record_;  ///< set for the duration of one run()
  std::atomic<bool> run_active_{false};  ///< run() reentrancy guard
  obs::TimelineProfiler* profiler_ = nullptr;
  std::uint64_t profile_parent_ = 0;

  /// Lock contract: state_mutex_ guards outputs, batches_, pending_verify_
  /// and stats_, and is only ever held for in-memory bookkeeping — never
  /// across a measurement, a cache_ call (ResultCache locks itself; nesting
  /// the two would couple every scheduler sharing the service's cache), or
  /// the on_record_ callback (the callee synchronizes its own sinks).
  std::mutex state_mutex_;
  std::map<std::size_t, BatchState> batches_;
  std::map<JobId, std::shared_ptr<MeasureState>> pending_verify_;
  CampaignStats stats_;
};

}  // namespace ao::orchestrator
