#include "orchestrator/result_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "orchestrator/store_index.hpp"

#include "stream/cpu_stream.hpp"
#include "stream/gpu_stream.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/hex.hpp"

namespace ao::orchestrator {
namespace {

// On-disk store framing (entry payloads are serialize_record() token
// streams; the full layout is specified in docs/orchestrator.md):
//
//   ao-result-cache v1
//   entry <kind> <chip> <impl> <n> <payload_fp> <options_fp> <record...> # <digest>
//
// One line per entry; every numeric token is lowercase hex; <digest> is the
// FNV-1a of the line up to (excluding) " # ". A truncated or bit-flipped
// line fails its digest and is skipped, so a crashed write-through run
// never poisons later loads.

std::string header_line() {
  return kStoreHeaderPrefix + std::to_string(ResultCache::kFormatVersion);
}

std::uint64_t mix_double(std::uint64_t h, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return util::fnv1a_mix(h, bits);
}

/// The record alternative each cacheable JobKind produces — an entry whose
/// record shape disagrees with its key is corrupt.
RecordKind expected_record_kind(JobKind kind) {
  switch (kind) {
    case JobKind::kGemmMeasure:
    case JobKind::kGemmVerify:
      return RecordKind::kGemm;
    case JobKind::kStream:
    case JobKind::kGpuStream:
      return RecordKind::kStream;
    case JobKind::kPowerIdle:
      return RecordKind::kPower;
    case JobKind::kPrecisionStudy:
      return RecordKind::kPrecision;
    case JobKind::kAneInference:
      return RecordKind::kAne;
    case JobKind::kFp64Emulation:
      return RecordKind::kFp64Emu;
    case JobKind::kSmeGemm:
      return RecordKind::kSme;
  }
  throw util::InvalidArgument("unknown JobKind");
}

std::string format_entry(const std::pair<CacheKey, MeasurementRecord>& entry) {
  const CacheKey& key = entry.first;
  std::string line = kStoreEntryPrefix;
  line += util::to_hex_u64(static_cast<std::uint64_t>(key.kind));
  line += ' ';
  line += util::to_hex_u64(static_cast<std::uint64_t>(key.chip));
  line += ' ';
  line += util::to_hex_u64(static_cast<std::uint64_t>(key.impl));
  line += ' ';
  line += util::to_hex_u64(key.n);
  line += ' ';
  line += util::to_hex_u64(key.payload_fingerprint);
  line += ' ';
  line += util::to_hex_u64(key.options_fingerprint);
  line += ' ';
  line += serialize_record(entry.second);
  line += kStoreDigestSeparator;
  const std::size_t payload_length =
      line.size() - std::strlen(kStoreDigestSeparator);
  line += util::to_hex_u64(store_digest(line.data(), payload_length));
  return line;
}

/// Upper bound on format_entry(entry).size(), mirroring it piece for piece:
/// the "entry " prefix, six key tokens (each at most 16 hex digits plus its
/// separator space), the record tokens, the digest separator and the
/// 16-digit digest.
std::size_t entry_size_bound(
    const std::pair<CacheKey, MeasurementRecord>& entry) {
  return std::strlen(kStoreEntryPrefix) + 6 * 17 +
         serialized_record_size_bound(entry.second) +
         std::strlen(kStoreDigestSeparator) + 16;
}

std::optional<std::pair<CacheKey, MeasurementRecord>> parse_entry(
    const std::string& line) {
  if (line.rfind(kStoreEntryPrefix, 0) != 0) {
    return std::nullopt;
  }
  const std::size_t digest_at = line.rfind(kStoreDigestSeparator);
  if (digest_at == std::string::npos) {
    return std::nullopt;
  }
  std::uint64_t digest = 0;
  if (!util::parse_hex_u64(
          line.substr(digest_at + std::strlen(kStoreDigestSeparator)),
          digest) ||
      digest != store_digest(line.data(), digest_at)) {
    return std::nullopt;
  }

  std::istringstream in(line.substr(
      std::strlen(kStoreEntryPrefix), digest_at - std::strlen(kStoreEntryPrefix)));
  std::uint64_t kind = 0;
  std::uint64_t chip = 0;
  std::uint64_t impl = 0;
  std::uint64_t n = 0;
  std::uint64_t payload_fp = 0;
  std::uint64_t options_fp = 0;
  std::string token;
  for (std::uint64_t* field : {&kind, &chip, &impl, &n, &payload_fp, &options_fp}) {
    if (!(in >> token) || !util::parse_hex_u64(token, *field)) {
      return std::nullopt;
    }
  }
  if (kind > static_cast<std::uint64_t>(JobKind::kSmeGemm) ||
      chip > static_cast<std::uint64_t>(soc::ChipModel::kM4) ||
      impl > static_cast<std::uint64_t>(soc::GemmImpl::kGpuMps)) {
    return std::nullopt;
  }

  CacheKey key;
  key.kind = static_cast<JobKind>(kind);
  key.chip = static_cast<soc::ChipModel>(chip);
  key.impl = static_cast<soc::GemmImpl>(impl);
  key.n = static_cast<std::size_t>(n);
  key.payload_fingerprint = payload_fp;
  key.options_fingerprint = options_fp;

  std::string record_tokens;
  std::getline(in, record_tokens);
  auto record = deserialize_record(record_tokens);
  if (!record.has_value() ||
      record_kind(*record) != expected_record_kind(key.kind)) {
    return std::nullopt;
  }
  return std::pair{key, std::move(*record)};
}

}  // namespace

std::uint64_t store_digest(const void* data, std::size_t size) {
  return util::fnv1a_bytes(data, size);
}

std::string format_store_entry(const CacheKey& key,
                               const MeasurementRecord& record) {
  return format_entry({key, record});
}

std::optional<std::pair<CacheKey, MeasurementRecord>> parse_store_entry(
    const std::string& line) {
  return parse_entry(line);
}

std::string store_header_line() { return header_line(); }

std::uint64_t CacheKey::fingerprint() const {
  std::uint64_t h = util::kFnv1aOffset;
  h = util::fnv1a_mix(h, static_cast<std::uint64_t>(kind));
  h = util::fnv1a_mix(h, static_cast<std::uint64_t>(chip));
  h = util::fnv1a_mix(h, static_cast<std::uint64_t>(impl));
  h = util::fnv1a_mix(h, static_cast<std::uint64_t>(n));
  h = util::fnv1a_mix(h, payload_fingerprint);
  h = util::fnv1a_mix(h, options_fingerprint);
  return h;
}

std::size_t CacheKeyHash::operator()(const CacheKey& key) const {
  return static_cast<std::size_t>(key.fingerprint());
}

CacheKey key_for_job(const ExperimentJob& job, std::uint64_t options_fp) {
  CacheKey key;
  key.kind = job.kind;
  key.chip = job.chip;
  std::uint64_t h = util::kFnv1aOffset;
  switch (job.kind) {
    case JobKind::kGemmMeasure:
    case JobKind::kGemmVerify:
      key.impl = job.impl;
      key.n = job.n;
      // Only the GEMM family depends on the experiment options; leaving the
      // other kinds' options_fingerprint at 0 lets their points hit across
      // campaigns that differ only in GEMM settings.
      key.options_fingerprint = options_fp;
      return key;
    case JobKind::kStream:
      h = util::fnv1a_mix(h, static_cast<std::uint64_t>(job.stream_threads));
      h = util::fnv1a_mix(h,
                          static_cast<std::uint64_t>(job.stream_repetitions));
      // Normalize the 0-means-default sentinel so an explicit default-sized
      // run hits the same entry as an implicit one.
      h = util::fnv1a_mix(h, job.stream_elements != 0
                                 ? job.stream_elements
                                 : stream::CpuStream::kDefaultElements);
      break;
    case JobKind::kGpuStream:
      h = util::fnv1a_mix(h,
                          static_cast<std::uint64_t>(job.stream_repetitions));
      h = util::fnv1a_mix(h, job.stream_elements != 0
                                 ? job.stream_elements
                                 : stream::GpuStream::kDefaultElements);
      break;
    case JobKind::kPowerIdle:
      h = mix_double(h, job.power_window_seconds);
      break;
    case JobKind::kPrecisionStudy:
      key.n = job.n;
      h = util::fnv1a_mix(h, job.study_seed);
      break;
    case JobKind::kAneInference:
      key.n = job.n;
      h = util::fnv1a_mix(h, job.ane_m != 0 ? job.ane_m : job.n);
      h = util::fnv1a_mix(h, job.ane_k != 0 ? job.ane_k : job.n);
      h = util::fnv1a_mix(h, job.ane_functional ? 1 : 0);
      // The functional operands (and so mean_output) come from this seed.
      h = util::fnv1a_mix(h, job.study_seed);
      break;
    case JobKind::kFp64Emulation:
    case JobKind::kSmeGemm:
      // Both run functionally on seed-generated operands at size n.
      key.n = job.n;
      h = util::fnv1a_mix(h, job.study_seed);
      break;
  }
  key.payload_fingerprint = h;
  return key;
}

std::uint64_t options_fingerprint(
    const harness::GemmExperiment::Options& options) {
  std::uint64_t h = util::kFnv1aOffset;
  h = util::fnv1a_mix(h, static_cast<std::uint64_t>(options.repetitions));
  h = util::fnv1a_mix(h, static_cast<std::uint64_t>(options.verify_n_max));
  h = util::fnv1a_mix(h, options.use_powermetrics ? 1 : 0);
  h = mix_double(h, options.warmup_seconds);
  h = util::fnv1a_mix(h, options.matrix_seed);
  // std::map iterates in key order, so the digest is independent of how the
  // caller built the ceiling table.
  for (const auto& [impl, ceiling] : options.functional_n_max) {
    h = util::fnv1a_mix(h, static_cast<std::uint64_t>(impl));
    h = util::fnv1a_mix(h, static_cast<std::uint64_t>(ceiling));
  }
  return h;
}

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(capacity), store_index_(std::make_unique<StoreIndex>()) {
  AO_REQUIRE(capacity >= 1, "ResultCache capacity must be positive");
}

ResultCache::~ResultCache() = default;

std::optional<MeasurementRecord> ResultCache::lookup(const CacheKey& key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void ResultCache::insert_locked(const CacheKey& key,
                                const MeasurementRecord& record,
                                bool write_through, std::string* line_out,
                                bool* compact_out) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = record;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    if (lru_.size() == capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++stats_.evictions;
      // The evicted entry may now live only in a store; an automatic
      // rewrite would delete it.
      store_covered_ = false;
      fully_loaded_path_.clear();
    }
    lru_.emplace_front(key, record);
    index_[key] = lru_.begin();
    ++stats_.insertions;
  }
  if (write_through && !persist_path_.empty()) {
    // The line is formatted (and counted) here, under mutex_, but written
    // by the caller under io_mutex_ only — concurrent lookups proceed while
    // the disk append runs.
    *line_out = format_entry(*lru_.begin());
    ++store_entries_;
    // Auto-compaction: duplicate keys accumulate in the append log until
    // the live/stored ratio crosses the policy line — but only while the
    // retained set covers the store, so the rewrite cannot lose an entry
    // that exists only on disk.
    if (store_covered_ && compact_min_live_ratio_ > 0.0 &&
        store_entries_ >= compact_min_entries_ &&
        static_cast<double>(lru_.size()) <
            compact_min_live_ratio_ * static_cast<double>(store_entries_)) {
      *compact_out = true;
    }
  }
}

void ResultCache::append_line(const std::string& line, const CacheKey& key) {
  if (line.empty()) {
    return;
  }
  std::lock_guard io(io_mutex_);
  if (persist_out_.is_open()) {
    // store_bytes_ tracks the file size exactly (every write goes through
    // this path or through a rebuild that resets it), so the new line's
    // offset is known without asking the stream.
    const std::uint64_t offset = store_bytes_;
    persist_out_ << line << '\n';
    persist_out_.flush();
    store_bytes_ += line.size() + 1;
    store_index_->add(key, offset, line.size());
  }
  // A detach can race the append decision; the entry stays in memory and
  // store_entries_ is reset by persist_to(), so nothing drifts.
}

void ResultCache::compact_if_attached() {
  std::lock_guard lock(mutex_);
  if (persist_path_.empty()) {
    return;  // detached between the decision and this call
  }
  save_locked(persist_path_);
  ++stats_.compactions;
}

void ResultCache::insert(const CacheKey& key, const MeasurementRecord& record) {
  std::string line;
  bool compact_now = false;
  {
    std::lock_guard lock(mutex_);
    insert_locked(key, record, /*write_through=*/true, &line, &compact_now);
  }
  // insert() returns only after the entry is flushed — the service tails
  // shard stores live, so a published record must be durable on return. A
  // concurrent compaction between the two locks at worst duplicates this
  // line in the store; duplicate keys are benign (last one wins on load).
  append_line(line, key);
  if (compact_now) {
    compact_if_attached();
  }
}

bool ResultCache::contains(const CacheKey& key) const {
  std::lock_guard lock(mutex_);
  return index_.find(key) != index_.end();
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

void ResultCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
  // The store (if any) now holds entries memory does not.
  store_covered_ = false;
  fully_loaded_path_.clear();
}

std::vector<ResultCache::Entry> ResultCache::entries() const {
  std::lock_guard lock(mutex_);
  return {lru_.begin(), lru_.end()};
}

CacheStats ResultCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t ResultCache::save(const std::string& path) {
  obs::TimelineProfiler::Scope span(profiler_, obs::Phase::kSerialize,
                                    obs::TimelineProfiler::kInheritParent,
                                    "save");
  std::lock_guard lock(mutex_);
  return save_locked(path);
}

std::size_t ResultCache::save_locked(const std::string& path) {
  const bool active = !persist_path_.empty() && path == persist_path_;
  std::vector<StoreRef> refs;
  std::uint64_t total_bytes = 0;
  // Snapshot into a sibling temp file, then rename over the target, so a
  // reader (or a crash) never observes a half-written store.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw util::Error("cannot write result-cache store: " + tmp);
    }
    write_store_locked(out, active ? &refs : nullptr, &total_bytes);
    if (!out) {
      throw util::Error("short write to result-cache store: " + tmp);
    }
  }
  // The rename and the stream reattach must exclude concurrent appends
  // (io_mutex_); an append that slipped onto the old inode just before is
  // harmless — its entry is retained in memory and in the rewritten store.
  std::lock_guard io(io_mutex_);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw util::Error("cannot move result-cache store into place: " + path);
  }
  if (persist_out_.is_open() && path == persist_path_) {
    // The rename unlinked the inode the write-through stream was appending
    // to; reattach it to the fresh (compacted) store so later insertions
    // keep landing on disk.
    persist_out_.close();
    persist_out_.open(path, std::ios::app);
    if (!persist_out_) {
      throw util::Error("cannot reopen result-cache store: " + path);
    }
    store_entries_ = lru_.size();
    store_covered_ = true;  // the store is now exactly the retained set
    store_bytes_ = total_bytes;
    // Every offset the old index held points into the unlinked inode; the
    // generation bump turns in-flight cursors into structured stale-cursor
    // errors instead of reads of reclaimed bytes.
    store_index_->rebuild(std::move(refs), ++next_generation_);
  }
  return lru_.size();
}

void ResultCache::write_store_locked(std::ostream& out,
                                     std::vector<StoreRef>* refs,
                                     std::uint64_t* total_bytes) const {
  const std::string header = header_line();
  out << header << '\n';
  std::uint64_t offset = header.size() + 1;
  // Least recent first: reloading replays insertions in recency order.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const std::string line = format_entry(*it);
    out << line << '\n';
    if (refs != nullptr) {
      refs->push_back(
          {it->first, offset, static_cast<std::uint32_t>(line.size())});
    }
    offset += line.size() + 1;
  }
  if (total_bytes != nullptr) {
    *total_bytes = offset;
  }
}

std::size_t ResultCache::serialize_size_hint_locked() const {
  std::size_t bound = header_line().size() + 1;
  for (const Entry& entry : lru_) {
    bound += entry_size_bound(entry) + 1;
  }
  return bound;
}

std::size_t ResultCache::serialize_size_hint() const {
  std::lock_guard lock(mutex_);
  return serialize_size_hint_locked();
}

std::string ResultCache::serialize_store() const {
  obs::TimelineProfiler::Scope span(profiler_, obs::Phase::kSerialize,
                                    obs::TimelineProfiler::kInheritParent,
                                    "wire");
  std::string out;
  std::lock_guard lock(mutex_);
  // One reserve up front (the hint bounds the final size), then append —
  // the repeated-append growth path never fires and the whole snapshot is
  // a single allocation.
  out.reserve(serialize_size_hint_locked());
  out += header_line();
  out += '\n';
  // Least recent first: reloading replays insertions in recency order.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    out += format_entry(*it);
    out += '\n';
  }
  return out;
}

std::size_t ResultCache::compact() {
  std::lock_guard lock(mutex_);
  AO_REQUIRE(!persist_path_.empty(),
             "compact() needs an attached write-through store");
  const std::size_t written = save_locked(persist_path_);
  ++stats_.compactions;
  return written;
}

void ResultCache::set_compaction_policy(double min_live_ratio,
                                        std::size_t min_entries) {
  AO_REQUIRE(min_live_ratio >= 0.0 && min_live_ratio <= 1.0,
             "compaction ratio must be in [0, 1]");
  std::lock_guard lock(mutex_);
  compact_min_live_ratio_ = min_live_ratio;
  compact_min_entries_ = std::max<std::size_t>(1, min_entries);
}

std::size_t ResultCache::store_entries() const {
  std::lock_guard lock(mutex_);
  return persist_path_.empty() ? 0 : store_entries_;
}

std::size_t ResultCache::load(const std::string& path) {
  return load_impl(path, /*write_through=*/false);
}

std::size_t ResultCache::merge_store(const std::string& path) {
  obs::TimelineProfiler::Scope span(profiler_, obs::Phase::kMerge,
                                    obs::TimelineProfiler::kInheritParent,
                                    "store");
  return load_impl(path, /*write_through=*/true);
}

std::size_t ResultCache::merge_buffer(const std::string& buffer) {
  obs::TimelineProfiler::Scope span(profiler_, obs::Phase::kMerge,
                                    obs::TimelineProfiler::kInheritParent,
                                    "wire");
  std::istringstream in(buffer);
  // No source path: a buffer never arms the fully-loaded-path bookkeeping
  // (there is no file a later persist_to() could be pointed at).
  return load_stream(in, /*write_through=*/true, /*source_path=*/{});
}

std::size_t ResultCache::load_impl(const std::string& path,
                                   bool write_through) {
  std::ifstream in(path);
  if (!in) {
    return 0;  // nothing persisted yet — a cold start, not an error
  }
  return load_stream(in, write_through, path);
}

std::size_t ResultCache::load_stream(std::istream& in, bool write_through,
                                     const std::string& source_path) {
  std::string line;
  if (!std::getline(in, line) || line != header_line()) {
    // A different format version (or not a cache store at all): refuse the
    // whole file rather than guess at its layout.
    std::lock_guard lock(mutex_);
    ++stats_.load_rejected;
    return 0;
  }
  std::size_t loaded = 0;
  std::vector<std::pair<CacheKey, std::string>> to_append;
  bool compact_after = false;
  {
    std::lock_guard lock(mutex_);
    const std::size_t evictions_before = stats_.evictions;
    while (std::getline(in, line)) {
      if (line.empty()) {
        continue;
      }
      if (auto entry = parse_entry(line)) {
        std::string formatted;
        insert_locked(entry->first, entry->second, write_through, &formatted,
                      &compact_after);
        if (!formatted.empty()) {
          to_append.emplace_back(entry->first, std::move(formatted));
        }
        ++loaded;
      } else {
        ++stats_.load_rejected;
      }
    }
    stats_.loaded += loaded;
    if (!source_path.empty() && stats_.evictions == evictions_before) {
      // Everything this file holds is now retained: persist_to(path) may
      // auto-compact it losslessly (rejected lines were corrupt anyway).
      fully_loaded_path_ = source_path;
    }
  }
  // merge_store propagation: the batch lands on disk in one io pass, and a
  // triggered auto-compaction runs once at the end instead of mid-merge.
  for (const auto& [key, formatted] : to_append) {
    append_line(formatted, key);
  }
  if (compact_after) {
    compact_if_attached();
  }
  return loaded;
}

void ResultCache::persist_to(const std::string& path) {
  std::lock_guard lock(mutex_);
  std::lock_guard io(io_mutex_);  // lock order: mutex_ then io_mutex_
  persist_out_.close();
  persist_path_.clear();
  store_entries_ = 0;
  store_bytes_ = 0;
  store_index_->reset(0);  // generation 0: no store attached
  if (path.empty()) {
    return;
  }
  bool needs_header = false;
  // A SIGKILLed writer can leave the file without a trailing newline; a
  // later append would then glue two lines together, corrupting both. The
  // scan detects that and the attach terminates the tail first.
  bool tail_unterminated = false;
  std::uint64_t scanned_bytes = 0;
  std::vector<StoreRef> refs;
  {
    std::ifstream existing(path, std::ios::binary);
    std::string first_line;
    if (!existing || !std::getline(existing, first_line)) {
      needs_header = true;  // absent or empty file: start a fresh store
    } else if (first_line != header_line()) {
      throw util::Error("refusing write-through to a foreign store: " + path);
    } else {
      // Cold index scan: count the pre-existing entry lines (the
      // auto-compaction ratio sees the whole store, not just this
      // process's appends) and record every valid line's byte offset —
      // queries start indexed without a store rewrite. Corrupt lines are
      // skipped here exactly as load() would skip them.
      tail_unterminated = existing.eof();
      scanned_bytes = first_line.size() + (tail_unterminated ? 0 : 1);
      std::string line;
      while (std::getline(existing, line)) {
        const bool terminated = !existing.eof();
        if (!line.empty()) {
          ++store_entries_;
          if (auto entry = parse_entry(line)) {
            refs.push_back({entry->first, scanned_bytes,
                            static_cast<std::uint32_t>(line.size())});
          }
        }
        scanned_bytes += line.size() + (terminated ? 1 : 0);
        tail_unterminated = !terminated;
      }
    }
  }
  persist_out_.open(path, std::ios::app);
  if (!persist_out_) {
    throw util::Error("cannot open result-cache store: " + path);
  }
  if (needs_header) {
    persist_out_ << header_line() << '\n';
    persist_out_.flush();
    scanned_bytes = header_line().size() + 1;
  } else if (tail_unterminated) {
    persist_out_ << '\n';
    persist_out_.flush();
    ++scanned_bytes;
  }
  store_bytes_ = scanned_bytes;
  store_index_->rebuild(std::move(refs), ++next_generation_);
  persist_path_ = path;
  // Covered (auto-compaction armed) only when a rewrite could not lose
  // anything: the store is fresh, or this cache fully loaded it and has
  // evicted nothing since.
  store_covered_ = store_entries_ == 0 || path == fully_loaded_path_;
}

std::uint64_t ResultCache::store_generation() const {
  return store_index_->generation();
}

std::optional<ResultCache::QueryPage> ResultCache::query(
    const QueryFilter& filter, std::size_t limit,
    const std::string& cursor_token, std::string* error_code) const {
  const auto fail = [&](const char* code) {
    if (error_code != nullptr) {
      *error_code = code;
    }
    return std::optional<QueryPage>{};
  };
  std::string path;
  {
    std::lock_guard lock(mutex_);
    path = persist_path_;
  }
  if (path.empty()) {
    return fail("no-store");
  }
  std::optional<CacheKey> after;
  std::optional<std::uint64_t> required_generation;
  if (!cursor_token.empty()) {
    const auto cursor = decode_query_cursor(cursor_token);
    if (!cursor.has_value()) {
      return fail("bad-cursor");
    }
    if (cursor->generation == 0) {
      return fail("stale-cursor");
    }
    required_generation = cursor->generation;
    after = cursor->last;
  }
  // Snapshot isolation: neither cache lock is held while the page's lines
  // are read back (writers never stall behind a scrape) — instead the store
  // generation is captured with the refs and re-checked after the reads. A
  // compaction in between moved the bytes, so the page is discarded: a
  // first page transparently retries against the new revision, a cursor
  // resume surfaces `stale-cursor`.
  for (int attempt = 0; attempt < 3; ++attempt) {
    const std::uint64_t generation = store_index_->generation();
    if (generation == 0) {
      return fail("no-store");
    }
    if (required_generation.has_value() && generation != *required_generation) {
      return fail("stale-cursor");
    }
    const StoreIndex::Selection selection =
        store_index_->collect(filter, after, limit);
    QueryPage page;
    page.generation = generation;
    page.matched = selection.matched;
    page.exhausted = selection.exhausted;
    bool torn = false;
    {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        torn = true;
      }
      std::string line;
      for (const StoreRef& ref : selection.refs) {
        if (torn) {
          break;
        }
        line.resize(ref.length);
        in.seekg(static_cast<std::streamoff>(ref.offset));
        if (!in.read(line.data(), static_cast<std::streamsize>(ref.length))) {
          torn = true;
          break;
        }
        ++page.entries_read;
        const auto parsed = parse_store_entry(line);
        if (!parsed.has_value() || !(parsed->first == ref.key)) {
          torn = true;  // the bytes under this offset were reclaimed
          break;
        }
        page.lines.push_back(line);
      }
    }
    if (torn || store_index_->generation() != generation) {
      if (required_generation.has_value()) {
        return fail("stale-cursor");
      }
      continue;
    }
    if (!page.exhausted && !selection.refs.empty()) {
      page.cursor = encode_query_cursor(generation, selection.refs.back().key);
    }
    return page;
  }
  return fail("stale-cursor");
}

std::optional<std::string> ResultCache::fetch_entry(const CacheKey& key) const {
  std::string path;
  {
    std::lock_guard lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      // Serve from memory without touching recency: format_entry is a pure
      // function of (key, record), so this is bit-identical to the line the
      // store holds for the same entry.
      return format_entry(*it->second);
    }
    path = persist_path_;
  }
  if (path.empty()) {
    return std::nullopt;
  }
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto ref = store_index_->find(key);
    if (!ref.has_value()) {
      return std::nullopt;
    }
    const std::uint64_t generation = store_index_->generation();
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::string line(ref->length, '\0');
      in.seekg(static_cast<std::streamoff>(ref->offset));
      if (in.read(line.data(), static_cast<std::streamsize>(ref->length))) {
        const auto parsed = parse_store_entry(line);
        if (parsed.has_value() && parsed->first == key) {
          return line;
        }
      }
    }
    if (store_index_->generation() == generation) {
      return std::nullopt;  // genuinely gone or corrupt, not a racing rewrite
    }
  }
  return std::nullopt;
}

}  // namespace ao::orchestrator
