#include "orchestrator/result_cache.hpp"

#include <cstring>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace ao::orchestrator {
namespace {

std::uint64_t mix_double(std::uint64_t h, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return util::fnv1a_mix(h, bits);
}

}  // namespace

std::size_t CacheKeyHash::operator()(const CacheKey& key) const {
  std::uint64_t h = util::kFnv1aOffset;
  h = util::fnv1a_mix(h, static_cast<std::uint64_t>(key.chip));
  h = util::fnv1a_mix(h, static_cast<std::uint64_t>(key.impl));
  h = util::fnv1a_mix(h, static_cast<std::uint64_t>(key.n));
  h = util::fnv1a_mix(h, key.options_fingerprint);
  return static_cast<std::size_t>(h);
}

std::uint64_t options_fingerprint(
    const harness::GemmExperiment::Options& options) {
  std::uint64_t h = util::kFnv1aOffset;
  h = util::fnv1a_mix(h, static_cast<std::uint64_t>(options.repetitions));
  h = util::fnv1a_mix(h, static_cast<std::uint64_t>(options.verify_n_max));
  h = util::fnv1a_mix(h, options.use_powermetrics ? 1 : 0);
  h = mix_double(h, options.warmup_seconds);
  h = util::fnv1a_mix(h, options.matrix_seed);
  // std::map iterates in key order, so the digest is independent of how the
  // caller built the ceiling table.
  for (const auto& [impl, ceiling] : options.functional_n_max) {
    h = util::fnv1a_mix(h, static_cast<std::uint64_t>(impl));
    h = util::fnv1a_mix(h, static_cast<std::uint64_t>(ceiling));
  }
  return h;
}

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  AO_REQUIRE(capacity >= 1, "ResultCache capacity must be positive");
}

std::optional<harness::GemmMeasurement> ResultCache::lookup(
    const CacheKey& key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void ResultCache::insert(const CacheKey& key,
                         const harness::GemmMeasurement& m) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = m;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() == capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.emplace_front(key, m);
  index_[key] = lru_.begin();
  ++stats_.insertions;
}

bool ResultCache::contains(const CacheKey& key) const {
  std::lock_guard lock(mutex_);
  return index_.find(key) != index_.end();
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

void ResultCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
}

CacheStats ResultCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace ao::orchestrator
