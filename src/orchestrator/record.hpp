#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "ane/neural_engine.hpp"
#include "harness/experiment.hpp"
#include "power/power_model.hpp"
#include "precision/precision_study.hpp"
#include "stream/stream_result.hpp"

namespace ao::orchestrator {

/// One STREAM measurement produced by a kStream / kGpuStream job.
struct StreamRecord {
  soc::ChipModel chip = soc::ChipModel::kM1;
  bool gpu = false;  ///< kGpuStream (threads in `run` are 0 for the GPU)
  stream::RunResult run;

  bool operator==(const StreamRecord&) const = default;
};

/// One mixed-precision GEMM study produced by a kPrecisionStudy job: the
/// full accuracy/throughput frontier (FP64, FP64-emulated, FP32, FP16) at
/// one size on one chip.
struct PrecisionRecord {
  soc::ChipModel chip = soc::ChipModel::kM1;
  std::size_t n = 0;
  std::uint64_t seed = 0;
  std::vector<precision::StudyResult> rows;

  bool operator==(const PrecisionRecord&) const = default;
};

/// One Core ML FP16 GEMM dispatch produced by a kAneInference job.
struct AneRecord {
  soc::ChipModel chip = soc::ChipModel::kM1;
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  ane::DispatchTarget target = ane::DispatchTarget::kNeuralEngine;
  double duration_ns = 0.0;
  double gflops = 0.0;
  double gflops_per_watt = 0.0;
  /// Mean output element of the functional run (0 when model-only) — the
  /// same spot check bench_ext_neural_engine performs.
  double mean_output = 0.0;

  bool operator==(const AneRecord&) const = default;
};

/// One idle-floor power sample produced by a kPowerIdle job.
struct PowerRecord {
  soc::ChipModel chip = soc::ChipModel::kM1;
  power::PowerSample sample;

  bool operator==(const PowerRecord&) const = default;
};

/// The result payload of any cacheable job kind. The ResultCache stores
/// these, the scheduler produces them, and the on-disk store serializes
/// them — one variant instead of a GEMM-only payload.
using MeasurementRecord =
    std::variant<harness::GemmMeasurement, StreamRecord, PrecisionRecord,
                 AneRecord, PowerRecord>;

/// Which alternative a MeasurementRecord holds, as a stable tag (the on-disk
/// format stores this, so the enumerator values are part of the format).
enum class RecordKind : std::uint8_t {
  kGemm = 0,
  kStream = 1,
  kPrecision = 2,
  kAne = 3,
  kPower = 4,
};

RecordKind record_kind(const MeasurementRecord& record);
std::string to_string(RecordKind kind);

/// Serializes a record to the space-separated token stream the on-disk
/// ResultCache stores (see docs/orchestrator.md for the layout). Numeric
/// fields are written as hexadecimal bit patterns, so floating-point values
/// round-trip exactly.
std::string serialize_record(const MeasurementRecord& record);

/// Parses a token stream produced by serialize_record(). Returns nullopt on
/// any malformed input (wrong tag, missing or trailing tokens) — the cache
/// loader treats that as a corrupt entry and skips it.
std::optional<MeasurementRecord> deserialize_record(const std::string& tokens);

}  // namespace ao::orchestrator
