#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "ane/neural_engine.hpp"
#include "harness/experiment.hpp"
#include "power/power_model.hpp"
#include "precision/precision_study.hpp"
#include "stream/stream_result.hpp"

namespace ao::orchestrator {

/// One STREAM measurement produced by a kStream / kGpuStream job.
struct StreamRecord {
  soc::ChipModel chip = soc::ChipModel::kM1;
  bool gpu = false;  ///< kGpuStream (threads in `run` are 0 for the GPU)
  stream::RunResult run;

  bool operator==(const StreamRecord&) const = default;
};

/// One mixed-precision GEMM study produced by a kPrecisionStudy job: the
/// full accuracy/throughput frontier (FP64, FP64-emulated, FP32, FP16) at
/// one size on one chip.
struct PrecisionRecord {
  soc::ChipModel chip = soc::ChipModel::kM1;
  std::size_t n = 0;
  std::uint64_t seed = 0;
  std::vector<precision::StudyResult> rows;

  bool operator==(const PrecisionRecord&) const = default;
};

/// One Core ML FP16 GEMM dispatch produced by a kAneInference job.
struct AneRecord {
  soc::ChipModel chip = soc::ChipModel::kM1;
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  ane::DispatchTarget target = ane::DispatchTarget::kNeuralEngine;
  double duration_ns = 0.0;
  double gflops = 0.0;
  double gflops_per_watt = 0.0;
  /// Mean output element of the functional run (0 when model-only) — the
  /// same spot check bench_ext_neural_engine performs.
  double mean_output = 0.0;

  bool operator==(const AneRecord&) const = default;
};

/// One idle-floor power sample produced by a kPowerIdle job.
struct PowerRecord {
  soc::ChipModel chip = soc::ChipModel::kM1;
  power::PowerSample sample;

  bool operator==(const PowerRecord&) const = default;
};

/// One emulated-FP64 GEMM study produced by a kFp64Emulation job: the
/// double-single shader's accuracy against an FP64 reference at size n, and
/// the modeled throughput cost of the emulation (the paper's Section 1/7
/// "can be emulated" extension study).
struct Fp64EmuRecord {
  soc::ChipModel chip = soc::ChipModel::kM1;
  std::size_t n = 0;
  std::uint64_t seed = 0;
  double emu_max_abs_error = 0.0;   ///< double-single shader vs FP64 host
  double fp32_max_abs_error = 0.0;  ///< plain FP32 accumulation vs FP64 host
  double emulated_gflops = 0.0;     ///< effective FP64-emulated rate (modeled)
  double fp32_gflops = 0.0;         ///< native FP32 GPU-MPS rate (modeled)

  bool operator==(const Fp64EmuRecord&) const = default;
};

/// One SME GEMM run produced by a kSmeGemm job: the FMOPA-tiled SGEMM's
/// agreement with the AMX reference (the "fairly similar to the AMX unit at
/// its core" claim, Section 2.1) plus the modeled AMX-class throughput.
struct SmeRecord {
  soc::ChipModel chip = soc::ChipModel::kM1;
  std::size_t n = 0;
  std::uint64_t seed = 0;
  double max_abs_diff = 0.0;  ///< |sme - amx| over every output element
  bool matches_amx = false;   ///< bit-identical to amx_sgemm
  double mean_output = 0.0;   ///< mean C element (functional spot check)
  double modeled_gflops = 0.0;

  bool operator==(const SmeRecord&) const = default;
};

/// The result payload of any cacheable job kind. The ResultCache stores
/// these, the scheduler produces them, and the on-disk store serializes
/// them — one variant instead of a GEMM-only payload.
using MeasurementRecord =
    std::variant<harness::GemmMeasurement, StreamRecord, PrecisionRecord,
                 AneRecord, PowerRecord, Fp64EmuRecord, SmeRecord>;

/// Which alternative a MeasurementRecord holds, as a stable tag (the on-disk
/// format stores this, so the enumerator values are part of the format).
enum class RecordKind : std::uint8_t {
  kGemm = 0,
  kStream = 1,
  kPrecision = 2,
  kAne = 3,
  kPower = 4,
  kFp64Emu = 5,
  kSme = 6,
};

RecordKind record_kind(const MeasurementRecord& record);
std::string to_string(RecordKind kind);

/// Serializes a record to the space-separated token stream the on-disk
/// ResultCache stores (see docs/orchestrator.md for the layout). Numeric
/// fields are written as hexadecimal bit patterns, so floating-point values
/// round-trip exactly.
std::string serialize_record(const MeasurementRecord& record);

/// Parses a token stream produced by serialize_record(). Returns nullopt on
/// any malformed input (wrong tag, missing or trailing tokens) — the cache
/// loader treats that as a corrupt entry and skips it.
std::optional<MeasurementRecord> deserialize_record(const std::string& tokens);

/// Upper bound on serialize_record(record).size(), computed without
/// formatting anything: token counts mirror the writers above (every
/// numeric token is at most a space plus 16 hex digits). Feeds the store
/// serializer's reserve path, so one allocation covers a whole snapshot.
std::size_t serialized_record_size_bound(const MeasurementRecord& record);

}  // namespace ao::orchestrator
