#include "orchestrator/job.hpp"

#include "util/error.hpp"

namespace ao::orchestrator {

std::string to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kGemmMeasure:
      return "gemm-measure";
    case JobKind::kGemmVerify:
      return "gemm-verify";
    case JobKind::kStream:
      return "stream";
    case JobKind::kPowerIdle:
      return "power-idle";
    case JobKind::kGpuStream:
      return "gpu-stream";
    case JobKind::kPrecisionStudy:
      return "precision-study";
    case JobKind::kAneInference:
      return "ane-inference";
    case JobKind::kFp64Emulation:
      return "fp64-emulation";
    case JobKind::kSmeGemm:
      return "sme-gemm";
  }
  throw util::InvalidArgument("unknown JobKind");
}

bool is_cacheable(JobKind kind) {
  return kind != JobKind::kGemmVerify;
}

JobId JobQueue::push(ExperimentJob job, const std::vector<JobId>& deps) {
  std::lock_guard lock(mutex_);
  const JobId id = next_id_++;
  job.id = id;

  Node node;
  node.job = std::move(job);
  for (const JobId dep : deps) {
    const auto it = nodes_.find(dep);
    AO_REQUIRE(it != nodes_.end(), "job depends on an unknown job");
    if (!it->second.done) {
      it->second.dependents.push_back(id);
      ++node.unmet_deps;
    }
  }
  const bool ready = node.unmet_deps == 0;
  const int priority = node.job.priority;
  nodes_.emplace(id, std::move(node));
  if (ready) {
    ready_.insert({-priority, id});
    ready_cv_.notify_one();
  }
  return id;
}

std::optional<ExperimentJob> JobQueue::take_ready_locked() {
  if (ready_.empty()) {
    return std::nullopt;
  }
  const auto it = ready_.begin();
  const JobId id = it->second;
  ready_.erase(it);
  Node& node = nodes_.at(id);
  node.popped = true;
  return node.job;
}

std::optional<ExperimentJob> JobQueue::pop_ready() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (auto job = take_ready_locked()) {
      return job;
    }
    if (done_count_ == nodes_.size()) {
      return std::nullopt;  // drained
    }
    // Jobs remain but none is ready: their deps are running on other
    // workers. Wait for a mark_done() (which may ready a dependent or
    // finish the queue).
    ready_cv_.wait(lock);
  }
}

std::optional<ExperimentJob> JobQueue::try_pop_ready() {
  std::lock_guard lock(mutex_);
  return take_ready_locked();
}

void JobQueue::mark_done(JobId id) {
  std::lock_guard lock(mutex_);
  const auto it = nodes_.find(id);
  AO_REQUIRE(it != nodes_.end(), "mark_done on an unknown job");
  Node& node = it->second;
  AO_REQUIRE(!node.done, "job marked done twice");
  node.done = true;
  ++done_count_;
  for (const JobId dependent : node.dependents) {
    Node& d = nodes_.at(dependent);
    AO_REQUIRE(d.unmet_deps > 0, "dependency bookkeeping underflow");
    if (--d.unmet_deps == 0 && !d.popped) {
      ready_.insert({-d.job.priority, dependent});
    }
  }
  // Wake everyone: dependents may now be ready, or the queue may be done.
  ready_cv_.notify_all();
  if (done_count_ == nodes_.size()) {
    done_cv_.notify_all();
  }
}

void JobQueue::wait_all_done() {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return done_count_ == nodes_.size(); });
}

std::size_t JobQueue::total() const {
  std::lock_guard lock(mutex_);
  return nodes_.size();
}

std::size_t JobQueue::done_count() const {
  std::lock_guard lock(mutex_);
  return done_count_;
}

bool JobQueue::all_done() const {
  std::lock_guard lock(mutex_);
  return done_count_ == nodes_.size();
}

std::vector<ExperimentJob> JobQueue::jobs() const {
  std::lock_guard lock(mutex_);
  std::vector<ExperimentJob> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) {
    out.push_back(node.job);
  }
  return out;
}

}  // namespace ao::orchestrator
