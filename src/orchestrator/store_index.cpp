#include "orchestrator/store_index.hpp"

#include <algorithm>
#include <tuple>

#include "util/hex.hpp"

namespace ao::orchestrator {
namespace {

constexpr char kQueryCursorMagic[] = "aoq1";

std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
           std::uint64_t, std::uint64_t>
key_tuple(const CacheKey& key) {
  return {static_cast<std::uint64_t>(key.kind),
          static_cast<std::uint64_t>(key.chip),
          static_cast<std::uint64_t>(key.impl),
          static_cast<std::uint64_t>(key.n),
          key.payload_fingerprint,
          key.options_fingerprint};
}

/// Smallest possible key of `kind` — the lower bound of a kind range.
CacheKey kind_floor(JobKind kind) {
  CacheKey key;
  key.kind = kind;
  key.chip = static_cast<soc::ChipModel>(0);
  key.impl = static_cast<soc::GemmImpl>(0);
  key.n = 0;
  key.payload_fingerprint = 0;
  key.options_fingerprint = 0;
  return key;
}

}  // namespace

bool cache_key_less(const CacheKey& a, const CacheKey& b) {
  return key_tuple(a) < key_tuple(b);
}

bool QueryFilter::matches(const CacheKey& key) const {
  if (kind.has_value() && key.kind != *kind) {
    return false;
  }
  if (chip.has_value() && key.chip != *chip) {
    return false;
  }
  if (impl.has_value() && key.impl != *impl) {
    return false;
  }
  if (n_min.has_value() && static_cast<std::uint64_t>(key.n) < *n_min) {
    return false;
  }
  if (n_max.has_value() && static_cast<std::uint64_t>(key.n) > *n_max) {
    return false;
  }
  return true;
}

void StoreIndex::reset(std::uint64_t generation) {
  std::lock_guard lock(mutex_);
  refs_.clear();
  generation_ = generation;
}

void StoreIndex::rebuild(std::vector<Ref> refs, std::uint64_t generation) {
  std::lock_guard lock(mutex_);
  refs_.clear();
  for (Ref& ref : refs) {
    const CacheKey key = ref.key;
    refs_.insert_or_assign(key, std::move(ref));
  }
  generation_ = generation;
}

void StoreIndex::add(const CacheKey& key, std::uint64_t offset,
                     std::size_t length) {
  std::lock_guard lock(mutex_);
  refs_.insert_or_assign(
      key, Ref{key, offset, static_cast<std::uint32_t>(length)});
}

std::uint64_t StoreIndex::generation() const {
  std::lock_guard lock(mutex_);
  return generation_;
}

std::size_t StoreIndex::size() const {
  std::lock_guard lock(mutex_);
  return refs_.size();
}

StoreIndex::Selection StoreIndex::collect(
    const QueryFilter& filter, const std::optional<CacheKey>& after,
    std::size_t limit) const {
  std::lock_guard lock(mutex_);
  Selection out;
  auto it = after.has_value() ? refs_.upper_bound(*after) : refs_.begin();
  if (filter.kind.has_value()) {
    // Kind is the major sort field, so a kind filter is one contiguous map
    // range — skip straight to it and stop at its end, never touching the
    // rest of the index.
    auto floor = refs_.lower_bound(kind_floor(*filter.kind));
    if (it != refs_.end() && floor != refs_.end() &&
        cache_key_less(it->first, floor->first)) {
      it = floor;  // only ever forward — a cursor must not rewind
    }
  }
  for (; it != refs_.end(); ++it) {
    if (filter.kind.has_value() && it->first.kind != *filter.kind) {
      if (static_cast<int>(it->first.kind) > static_cast<int>(*filter.kind)) {
        break;  // past the kind range; nothing further can match
      }
      continue;
    }
    if (!filter.matches(it->first)) {
      continue;
    }
    ++out.matched;
    if (out.refs.size() < limit) {
      out.refs.push_back(it->second);
    }
  }
  out.exhausted = out.matched == out.refs.size();
  return out;
}

std::optional<StoreIndex::Ref> StoreIndex::find(const CacheKey& key) const {
  std::lock_guard lock(mutex_);
  const auto it = refs_.find(key);
  if (it == refs_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<StoreIndex::Ref> StoreIndex::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<Ref> out;
  out.reserve(refs_.size());
  for (const auto& [key, ref] : refs_) {
    out.push_back(ref);
  }
  return out;
}

std::string encode_query_cursor(std::uint64_t generation,
                                const CacheKey& last) {
  std::string body = kQueryCursorMagic;
  for (const std::uint64_t field :
       {generation, static_cast<std::uint64_t>(last.kind),
        static_cast<std::uint64_t>(last.chip),
        static_cast<std::uint64_t>(last.impl),
        static_cast<std::uint64_t>(last.n), last.payload_fingerprint,
        last.options_fingerprint}) {
    body += '.';
    body += util::to_hex_u64(field);
  }
  return body + '.' + util::to_hex_u64(store_digest(body.data(), body.size()));
}

std::optional<QueryCursor> decode_query_cursor(const std::string& token) {
  // aoq1.<gen>.<kind>.<chip>.<impl>.<n>.<payload_fp>.<options_fp>.<digest>
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = token.find('.', start);
    if (dot == std::string::npos) {
      fields.push_back(token.substr(start));
      break;
    }
    fields.push_back(token.substr(start, dot - start));
    start = dot + 1;
  }
  if (fields.size() != 9 || fields[0] != kQueryCursorMagic) {
    return std::nullopt;
  }
  std::uint64_t digest = 0;
  const std::size_t body_length = token.rfind('.');
  if (!util::parse_hex_u64(fields[8], digest) ||
      digest != store_digest(token.data(), body_length)) {
    return std::nullopt;
  }
  std::uint64_t values[7] = {};
  for (std::size_t i = 0; i < 7; ++i) {
    if (!util::parse_hex_u64(fields[i + 1], values[i])) {
      return std::nullopt;
    }
  }
  if (values[1] > static_cast<std::uint64_t>(JobKind::kSmeGemm) ||
      values[2] > static_cast<std::uint64_t>(soc::ChipModel::kM4) ||
      values[3] > static_cast<std::uint64_t>(soc::GemmImpl::kGpuMps)) {
    return std::nullopt;
  }
  QueryCursor cursor;
  cursor.generation = values[0];
  cursor.last.kind = static_cast<JobKind>(values[1]);
  cursor.last.chip = static_cast<soc::ChipModel>(values[2]);
  cursor.last.impl = static_cast<soc::GemmImpl>(values[3]);
  cursor.last.n = static_cast<std::size_t>(values[4]);
  cursor.last.payload_fingerprint = values[5];
  cursor.last.options_fingerprint = values[6];
  return cursor;
}

}  // namespace ao::orchestrator
