#include "orchestrator/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <tuple>

#include "amx/amx_gemm.hpp"
#include "amx/sme_engine.hpp"
#include "ane/neural_engine.hpp"
#include "fp64emu/double_single.hpp"
#include "fp64emu/gemm_fp64_shader.hpp"
#include "gemm/gemm_interface.hpp"
#include "harness/matrix_workload.hpp"
#include "power/powermetrics.hpp"
#include "precision/precision_study.hpp"
#include "soc/perf_model.hpp"
#include "stream/cpu_stream.hpp"
#include "stream/gpu_stream.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ao::orchestrator {

// ------------------------------------------------------------ SystemPool ---

SystemPool::Lease::Lease(SystemPool& pool,
                         std::unique_ptr<core::System> system)
    : pool_(&pool),
      system_(std::move(system)),
      epoch_at_acquire_(system_->soc().clock().epoch()) {}

SystemPool::Lease::~Lease() {
  if (system_ != nullptr) {
    pool_->release(std::move(system_));
  }
}

SystemPool::Lease SystemPool::acquire(soc::ChipModel chip) {
  std::unique_ptr<core::System> system;
  {
    std::lock_guard lock(mutex_);
    auto& free_list = free_[chip];
    if (!free_list.empty()) {
      system = std::move(free_list.back());
      free_list.pop_back();
    }
  }
  if (system == nullptr) {
    system = std::make_unique<core::System>(chip);
    std::lock_guard lock(mutex_);
    ++built_;
  }
  // The lease hands out boot state — the paper's reboot-and-idle protocol.
  // A nonzero clock here would mean a previous job leaked out of its lease.
  AO_REQUIRE(system->soc().clock().now() == 0 &&
                 system->soc().activity().empty(),
             "leased System is not at boot state");
  return Lease(*this, std::move(system));
}

void SystemPool::release(std::unique_ptr<core::System> system) {
  system->soc().reset();  // next lease starts a fresh boot epoch
  std::lock_guard lock(mutex_);
  free_[system->soc().spec().model].push_back(std::move(system));
}

std::size_t SystemPool::systems_built() const {
  std::lock_guard lock(mutex_);
  return built_;
}

// ------------------------------------------------------------ MatrixBatch --

MatrixBatch::MatrixBatch(std::size_t n, bool fill, std::uint64_t seed)
    : n_(n),
      left_(n * n * sizeof(float)),
      right_(n * n * sizeof(float)) {
  if (fill) {
    // The canonical operand convention, so batched operands are
    // bit-identical to the serial suite's.
    harness::fill_left_operand(left_.as_span<float>().data(), n, seed);
    harness::fill_right_operand(right_.as_span<float>().data(), n, seed);
  }
}

MatrixBatch::OutLease::OutLease(MatrixBatch& batch,
                                std::unique_ptr<util::AlignedBuffer> out)
    : batch_(&batch), out_(std::move(out)) {}

MatrixBatch::OutLease::~OutLease() {
  if (out_ != nullptr) {
    batch_->release_out(std::move(out_));
  }
}

harness::MatrixView MatrixBatch::OutLease::view() {
  return {batch_->n(), batch_->memory_length(),
          batch_->left_.as_span<float>().data(),
          batch_->right_.as_span<float>().data(),
          out_->as_span<float>().data()};
}

std::unique_ptr<MatrixBatch::OutLease> MatrixBatch::acquire_out() {
  std::unique_ptr<util::AlignedBuffer> out;
  {
    std::lock_guard lock(mutex_);
    if (!free_outs_.empty()) {
      out = std::move(free_outs_.back());
      free_outs_.pop_back();
    } else {
      ++outs_built_;
    }
  }
  if (out == nullptr) {
    // Fresh AlignedBuffers are zeroed; recycled ones are re-zeroed on
    // release, so every lease starts as clear_out() leaves a MatrixSet.
    out = std::make_unique<util::AlignedBuffer>(n_ * n_ * sizeof(float));
  }
  return std::make_unique<OutLease>(*this, std::move(out));
}

void MatrixBatch::release_out(std::unique_ptr<util::AlignedBuffer> out) {
  std::memset(out->data(), 0, out->capacity());
  std::lock_guard lock(mutex_);
  free_outs_.push_back(std::move(out));
}

std::size_t MatrixBatch::out_buffers_built() const {
  std::lock_guard lock(mutex_);
  return outs_built_;
}

// ------------------------------------------------------ CampaignScheduler --

struct CampaignScheduler::MeasureState {
  harness::GemmMeasurement measurement;
  std::shared_ptr<MatrixBatch> batch;
  std::unique_ptr<MatrixBatch::OutLease> out;
};

CampaignScheduler::CampaignScheduler(
    harness::GemmExperiment::Options experiment_options)
    : CampaignScheduler(std::move(experiment_options), Options{}) {}

CampaignScheduler::CampaignScheduler(
    harness::GemmExperiment::Options experiment_options, Options options,
    ResultCache* cache)
    : experiment_options_(std::move(experiment_options)),
      options_(options),
      cache_(cache),
      fingerprint_(options_fingerprint(experiment_options_)) {}

void CampaignScheduler::set_profile_sink(obs::TimelineProfiler* profiler,
                                         std::uint64_t parent_span) {
  profiler_ = profiler;
  profile_parent_ = parent_span;
}

CampaignOutputs CampaignScheduler::run(JobQueue& queue,
                                       RecordCallback on_record,
                                       StopFn should_stop) {
  // A scheduler runs one campaign at a time; the multi-tenant service
  // enforces this by leasing schedulers exclusively, and this guard turns
  // any future violation into a loud failure instead of corrupted batches.
  AO_REQUIRE(!run_active_.exchange(true, std::memory_order_acq_rel),
             "CampaignScheduler::run() is not reentrant");
  struct RunGuard {
    std::atomic<bool>& active;
    ~RunGuard() { active.store(false, std::memory_order_release); }
  } run_guard{run_active_};

  CampaignOutputs outputs;
  stats_ = {};
  batches_.clear();
  pending_verify_.clear();
  on_record_ = std::move(on_record);
  // The callback's captures live on the caller's stack; never let a failed
  // run leave it dangling in this long-lived scheduler.
  struct CallbackGuard {
    RecordCallback& callback;
    ~CallbackGuard() { callback = {}; }
  } callback_guard{on_record_};

  // Plan the per-size batches: how many gemm jobs touch each size (so the
  // operands can be freed the moment the last one finishes) and whether any
  // of them executes numerically (so model-only sizes are never filled).
  const auto jobs = queue.jobs();
  stats_.jobs_total = jobs.size();
  for (const auto& job : jobs) {
    if (job.kind != JobKind::kGemmMeasure && job.kind != JobKind::kGemmVerify) {
      continue;
    }
    BatchState& bs = batches_[job.n];
    ++bs.jobs_remaining;
    if (job.kind == JobKind::kGemmMeasure &&
        harness::functional_at(experiment_options_, job.impl, job.n)) {
      bs.fill = true;
    }
  }

  // Workers on a private pool: jobs themselves fan subtasks (matrix fills,
  // simulated GPU threadgroups) onto util::global_pool(), so running jobs
  // on the global pool would let blocked jobs starve their own subtasks.
  std::size_t workers = options_.concurrency;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }

  std::mutex error_mutex;
  std::string first_error;
  std::string stop_code;  // guarded by error_mutex
  std::atomic<bool> failed{false};
  std::atomic<bool> stopped{false};
  {
    util::ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.submit([this, &queue, &outputs, &error_mutex, &first_error,
                   &stop_code, &failed, &stopped, &should_stop] {
        while (auto job = queue.pop_ready()) {
          // The cooperative stop point: abort commands and expired
          // deadlines take effect here, between jobs — never inside a
          // measurement, whose simulated timeline must settle whole.
          if (should_stop && !stopped.load(std::memory_order_acquire) &&
              !failed.load(std::memory_order_acquire)) {
            std::string code = should_stop();
            if (!code.empty()) {
              stopped.store(true, std::memory_order_release);
              std::lock_guard lock(error_mutex);
              if (stop_code.empty()) {
                stop_code = std::move(code);
              }
            }
          }
          // After the first failure (or a stop) the campaign's outputs are
          // discarded anyway; drain the queue without executing instead of
          // burning hours of simulated work.
          if (!failed.load(std::memory_order_acquire) &&
              !stopped.load(std::memory_order_acquire)) {
            try {
              // One `execute` span per job actually attempted, labelled by
              // kind and parented under the caller's campaign/shard span
              // (explicit — worker threads carry no inherited scope).
              obs::TimelineProfiler::Scope span(profiler_, obs::Phase::kExecute,
                                                profile_parent_,
                                                to_string(job->kind));
              execute(*job, outputs);
            } catch (const std::exception& e) {
              failed.store(true, std::memory_order_release);
              std::lock_guard lock(error_mutex);
              if (first_error.empty()) {
                first_error = e.what();
              }
            }
          }
          queue.mark_done(job->id);
        }
      });
    }
    queue.wait_all_done();
  }  // pool drains deterministically here; workers exit via pop_ready()

  if (!first_error.empty()) {
    throw util::Error("campaign job failed: " + first_error);
  }
  if (!stop_code.empty()) {
    throw CampaignStopped(stop_code);
  }

  stats_.systems_built = systems_.systems_built();
  // Canonical result order per family, independent of completion
  // interleaving.
  std::sort(outputs.gemm.begin(), outputs.gemm.end(),
            [](const harness::GemmMeasurement& a,
               const harness::GemmMeasurement& b) {
              return std::tuple(a.chip, a.n, a.impl) <
                     std::tuple(b.chip, b.n, b.impl);
            });
  std::sort(outputs.stream.begin(), outputs.stream.end(),
            [](const StreamRecord& a, const StreamRecord& b) {
              return std::tuple(a.chip, a.gpu, a.run.threads) <
                     std::tuple(b.chip, b.gpu, b.run.threads);
            });
  std::sort(outputs.precision.begin(), outputs.precision.end(),
            [](const PrecisionRecord& a, const PrecisionRecord& b) {
              return std::tuple(a.chip, a.n, a.seed) <
                     std::tuple(b.chip, b.n, b.seed);
            });
  std::sort(outputs.ane.begin(), outputs.ane.end(),
            [](const AneRecord& a, const AneRecord& b) {
              return std::tuple(a.chip, a.m, a.n, a.k) <
                     std::tuple(b.chip, b.m, b.n, b.k);
            });
  std::sort(outputs.power.begin(), outputs.power.end(),
            [](const PowerRecord& a, const PowerRecord& b) {
              return std::tuple(a.chip, a.sample.window_seconds) <
                     std::tuple(b.chip, b.sample.window_seconds);
            });
  std::sort(outputs.fp64emu.begin(), outputs.fp64emu.end(),
            [](const Fp64EmuRecord& a, const Fp64EmuRecord& b) {
              return std::tuple(a.chip, a.n, a.seed) <
                     std::tuple(b.chip, b.n, b.seed);
            });
  std::sort(outputs.sme.begin(), outputs.sme.end(),
            [](const SmeRecord& a, const SmeRecord& b) {
              return std::tuple(a.chip, a.n, a.seed) <
                     std::tuple(b.chip, b.n, b.seed);
            });
  outputs.stats = stats_;
  return outputs;
}

void CampaignScheduler::execute(const ExperimentJob& job,
                                CampaignOutputs& outputs) {
  switch (job.kind) {
    case JobKind::kGemmMeasure:
      run_gemm_measure(job, outputs);
      return;
    case JobKind::kGemmVerify:
      run_gemm_verify(job, outputs);
      return;
    case JobKind::kStream:
    case JobKind::kGpuStream:
      run_stream(job, outputs);
      return;
    case JobKind::kPowerIdle:
      run_power_idle(job, outputs);
      return;
    case JobKind::kPrecisionStudy:
      run_precision_study(job, outputs);
      return;
    case JobKind::kAneInference:
      run_ane_inference(job, outputs);
      return;
    case JobKind::kFp64Emulation:
      run_fp64_emulation(job, outputs);
      return;
    case JobKind::kSmeGemm:
      run_sme_gemm(job, outputs);
      return;
  }
  throw util::InvalidArgument("unknown JobKind");
}

void CampaignScheduler::append_record(const MeasurementRecord& record,
                                      CampaignOutputs& outputs) {
  std::lock_guard lock(state_mutex_);
  std::visit(
      [&outputs](const auto& value) {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, harness::GemmMeasurement>) {
          outputs.gemm.push_back(value);
        } else if constexpr (std::is_same_v<T, StreamRecord>) {
          outputs.stream.push_back(value);
        } else if constexpr (std::is_same_v<T, PrecisionRecord>) {
          outputs.precision.push_back(value);
        } else if constexpr (std::is_same_v<T, AneRecord>) {
          outputs.ane.push_back(value);
        } else if constexpr (std::is_same_v<T, PowerRecord>) {
          outputs.power.push_back(value);
        } else if constexpr (std::is_same_v<T, Fp64EmuRecord>) {
          outputs.fp64emu.push_back(value);
        } else {
          outputs.sme.push_back(value);
        }
      },
      record);
}

bool CampaignScheduler::serve_from_cache(const ExperimentJob& job,
                                         CampaignOutputs& outputs) {
  if (cache_ == nullptr || !is_cacheable(job.kind)) {
    return false;
  }
  // The cache lookup runs outside state_mutex_ (ResultCache locks itself);
  // only the stats tick needs the scheduler lock.
  auto cached = cache_->lookup(key_for_job(job, fingerprint_));
  {
    std::lock_guard lock(state_mutex_);
    if (cached.has_value()) {
      ++stats_.cache_hits;
    } else {
      ++stats_.cache_misses;
    }
  }
  if (!cached.has_value()) {
    return false;
  }
  append_record(*cached, outputs);
  if (on_record_) {
    on_record_(job, *cached, /*from_cache=*/true);
  }
  return true;
}

void CampaignScheduler::publish_record(const ExperimentJob& job,
                                       const MeasurementRecord& record,
                                       CampaignOutputs& outputs) {
  if (cache_ != nullptr && is_cacheable(job.kind)) {
    cache_->insert(key_for_job(job, fingerprint_), record);
  }
  append_record(record, outputs);
  if (on_record_) {
    on_record_(job, record, /*from_cache=*/false);
  }
}

std::shared_ptr<MatrixBatch> CampaignScheduler::batch_for(std::size_t n) {
  std::lock_guard lock(state_mutex_);
  const auto it = batches_.find(n);
  AO_REQUIRE(it != batches_.end(), "gemm job for an unplanned matrix size");
  BatchState& bs = it->second;
  if (bs.batch == nullptr) {
    bs.batch = std::make_shared<MatrixBatch>(n, bs.fill,
                                             experiment_options_.matrix_seed);
    ++stats_.batches_allocated;
  }
  return bs.batch;
}

void CampaignScheduler::batch_job_finished(std::size_t n) {
  std::lock_guard lock(state_mutex_);
  const auto it = batches_.find(n);
  if (it == batches_.end()) {
    return;
  }
  BatchState& bs = it->second;
  if (--bs.jobs_remaining == 0) {
    if (bs.batch != nullptr) {
      stats_.out_buffers_allocated += bs.batch->out_buffers_built();
    }
    // Last job of this size: drop the scheduler's reference. Outstanding
    // MeasureStates (if any) keep the allocation alive until consumed.
    batches_.erase(it);
  }
}

void CampaignScheduler::publish(const ExperimentJob& job,
                                const harness::GemmMeasurement& m,
                                CampaignOutputs& outputs) {
  // `job` may be the verify job; the cache entry (and the streamed record)
  // always carries the measurement's identity so later measure jobs find it.
  ExperimentJob measure = job;
  measure.kind = JobKind::kGemmMeasure;
  if (cache_ != nullptr) {
    cache_->insert(key_for_job(measure, fingerprint_), m);
  }
  {
    std::lock_guard lock(state_mutex_);
    outputs.gemm.push_back(m);
  }
  if (on_record_) {
    on_record_(measure, MeasurementRecord{m}, /*from_cache=*/false);
  }
}

void CampaignScheduler::run_gemm_measure(const ExperimentJob& job,
                                         CampaignOutputs& outputs) {
  // Every gemm job decrements the plan count exactly once, on every exit
  // path (including a throwing simulator) — otherwise the shared operands
  // of this size would be retained for the rest of the campaign.
  struct BatchFinisher {
    CampaignScheduler& scheduler;
    std::size_t n;
    ~BatchFinisher() { scheduler.batch_job_finished(n); }
  } finisher{*this, job.n};

  if (cache_ != nullptr) {
    const auto cached = cache_->lookup(key_for_job(job, fingerprint_));
    if (cached.has_value()) {
      const auto* m = std::get_if<harness::GemmMeasurement>(&*cached);
      AO_REQUIRE(m != nullptr, "gemm cache entry holds a foreign record");
      {
        std::lock_guard lock(state_mutex_);
        ++stats_.cache_hits;
        outputs.gemm.push_back(*m);
      }
      if (on_record_) {
        on_record_(job, *cached, /*from_cache=*/true);
      }
      // No MeasureState is stored: the dependent verify job (if any) sees
      // the missing entry and treats the point as settled.
      return;
    }
    std::lock_guard lock(state_mutex_);
    ++stats_.cache_misses;
  }

  auto batch = batch_for(job.n);
  auto out = batch->acquire_out();
  const harness::MatrixView view = out->view();

  auto lease = systems_.acquire(job.chip);
  gemm::GemmContext& ctx = lease.system().gemm_context();
  harness::GemmExperiment experiment(ctx, experiment_options_);
  auto impl = gemm::create_gemm(job.impl, ctx);

  {
    std::lock_guard lock(state_mutex_);
    ++stats_.jobs_executed;
  }
  if (job.expects_verify) {
    auto state = std::make_shared<MeasureState>();
    state->measurement = experiment.measure_timed(*impl, view);
    state->batch = std::move(batch);
    state->out = std::move(out);
    {
      std::lock_guard lock(state_mutex_);
      pending_verify_[job.id] = std::move(state);
    }
    // Publication and cache insertion wait for the verify job, so the
    // cached value always carries its verification verdict.
  } else {
    const harness::GemmMeasurement m = experiment.measure(*impl, view);
    publish(job, m, outputs);
  }
  // Per-job clock isolation: the lease's boot epoch must still be current —
  // a bump here would mean another job interleaved on this System's clock.
  AO_REQUIRE(lease.system().soc().clock().epoch() == lease.boot_epoch(),
             "clock epoch changed under a running job");
}

void CampaignScheduler::run_gemm_verify(const ExperimentJob& job,
                                        CampaignOutputs& outputs) {
  struct BatchFinisher {
    CampaignScheduler& scheduler;
    std::size_t n;
    ~BatchFinisher() { scheduler.batch_job_finished(n); }
  } finisher{*this, job.n};

  std::shared_ptr<MeasureState> state;
  {
    std::lock_guard lock(state_mutex_);
    const auto it = pending_verify_.find(job.parent);
    if (it != pending_verify_.end()) {
      state = std::move(it->second);
      pending_verify_.erase(it);
    }
  }
  if (state == nullptr) {
    // The measurement was serviced from cache (verdict included) or failed;
    // nothing to check.
    return;
  }
  harness::verify_measurement(state->measurement, state->out->view());
  {
    std::lock_guard lock(state_mutex_);
    ++stats_.verifications;
    ++stats_.jobs_executed;
  }
  publish(job, state->measurement, outputs);
  state->out.reset();    // recycle the output buffer
  state->batch.reset();  // and the operand reference
}

void CampaignScheduler::run_stream(const ExperimentJob& job,
                                   CampaignOutputs& outputs) {
  if (serve_from_cache(job, outputs)) {
    return;
  }
  auto lease = systems_.acquire(job.chip);
  StreamRecord record;
  record.chip = job.chip;
  record.gpu = job.kind == JobKind::kGpuStream;
  if (record.gpu) {
    stream::GpuStream gpu(lease.system().device(),
                          job.stream_elements != 0
                              ? job.stream_elements
                              : stream::GpuStream::kDefaultElements);
    record.run = gpu.run(job.stream_repetitions, /*functional=*/false);
  } else {
    stream::CpuStream cpu(lease.system().soc(),
                          job.stream_elements != 0
                              ? job.stream_elements
                              : stream::CpuStream::kDefaultElements);
    record.run = cpu.run(job.stream_threads, job.stream_repetitions,
                         /*functional=*/false);
  }
  {
    std::lock_guard lock(state_mutex_);
    ++stats_.jobs_executed;
  }
  publish_record(job, record, outputs);
}

void CampaignScheduler::run_power_idle(const ExperimentJob& job,
                                       CampaignOutputs& outputs) {
  if (serve_from_cache(job, outputs)) {
    return;
  }
  auto lease = systems_.acquire(job.chip);
  soc::Soc& soc = lease.system().soc();
  power::PowerMetrics monitor(soc, power::SamplerSet{true, true, true});
  monitor.start();
  soc.idle(job.power_window_seconds * 1e9);
  PowerRecord record;
  record.chip = job.chip;
  record.sample = monitor.siginfo();
  monitor.stop();
  {
    std::lock_guard lock(state_mutex_);
    ++stats_.jobs_executed;
  }
  publish_record(job, record, outputs);
}

void CampaignScheduler::run_precision_study(const ExperimentJob& job,
                                            CampaignOutputs& outputs) {
  if (serve_from_cache(job, outputs)) {
    return;
  }
  // The study builds its own Soc (it needs no leased timeline — accuracy is
  // host math, throughput comes from the calibrated model).
  PrecisionRecord record;
  record.chip = job.chip;
  record.n = job.n;
  record.seed = job.study_seed;
  record.rows =
      precision::run_gemm_precision_study(job.chip, job.n, job.study_seed);
  {
    std::lock_guard lock(state_mutex_);
    ++stats_.jobs_executed;
  }
  publish_record(job, record, outputs);
}

void CampaignScheduler::run_ane_inference(const ExperimentJob& job,
                                          CampaignOutputs& outputs) {
  if (serve_from_cache(job, outputs)) {
    return;
  }
  const std::size_t m = job.ane_m != 0 ? job.ane_m : job.n;
  const std::size_t n = job.n;
  const std::size_t k = job.ane_k != 0 ? job.ane_k : job.n;
  AO_REQUIRE(m > 0 && n > 0 && k > 0, "ANE job needs GEMM dimensions");

  // Model-only jobs never touch host memory; functional jobs use the same
  // deterministic operands in every process, so cached and fresh records
  // agree bit-for-bit.
  std::vector<float> a;
  std::vector<float> b;
  std::vector<float> c;
  if (job.ane_functional) {
    a.resize(m * k);
    b.resize(k * n);
    c.resize(m * n);
    util::fill_uniform(std::span<float>(a), job.study_seed);
    util::fill_uniform(std::span<float>(b), job.study_seed + 1);
  }

  auto lease = systems_.acquire(job.chip);
  ane::CoreMLRuntime runtime(lease.system().soc());
  const ane::Prediction prediction = runtime.predict_gemm(
      m, n, k, a.data(), b.data(), c.data(), job.ane_functional);

  AneRecord record;
  record.chip = job.chip;
  record.m = m;
  record.n = n;
  record.k = k;
  record.target = prediction.target;
  record.duration_ns = prediction.duration_ns;
  record.gflops = prediction.gflops;
  record.gflops_per_watt = record.gflops / prediction.watts;
  if (job.ane_functional) {
    double sum = 0.0;
    for (const float v : c) {
      sum += v;
    }
    record.mean_output = sum / static_cast<double>(c.size());
  }
  {
    std::lock_guard lock(state_mutex_);
    ++stats_.jobs_executed;
  }
  publish_record(job, record, outputs);
}

void CampaignScheduler::run_fp64_emulation(const ExperimentJob& job,
                                           CampaignOutputs& outputs) {
  if (serve_from_cache(job, outputs)) {
    return;
  }
  const std::size_t n = job.n;
  AO_REQUIRE(n > 0, "fp64-emulation job needs a matrix size");

  // Deterministic FP64 operands and host reference (the accuracy baseline).
  std::vector<double> a(n * n);
  std::vector<double> b(a.size());
  util::fill_uniform(std::span<double>(a), job.study_seed);
  util::fill_uniform(std::span<double>(b), job.study_seed + 1);
  std::vector<double> expected(a.size(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t kk = 0; kk < n; ++kk) {
      const double aik = a[i * n + kk];
      for (std::size_t j = 0; j < n; ++j) {
        expected[i * n + j] += aik * b[kk * n + j];
      }
    }
  }

  auto lease = systems_.acquire(job.chip);

  // Double-single GEMM on the simulated FP32-only GPU — the X3 extension
  // bench's dispatch, shared via run_emulated_gemm.
  const std::vector<double> emu =
      fp64emu::run_emulated_gemm(lease.system().device(), a.data(), b.data(),
                                 static_cast<std::uint32_t>(n));

  Fp64EmuRecord record;
  record.chip = job.chip;
  record.n = n;
  record.seed = job.study_seed;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc32 = 0.0f;
      for (std::size_t kk = 0; kk < n; ++kk) {
        acc32 += static_cast<float>(a[i * n + kk]) *
                 static_cast<float>(b[kk * n + j]);
      }
      const double ref = expected[i * n + j];
      record.emu_max_abs_error = std::max(record.emu_max_abs_error,
                                          std::abs(ref - emu[i * n + j]));
      record.fp32_max_abs_error =
          std::max(record.fp32_max_abs_error,
                   std::abs(ref - static_cast<double>(acc32)));
    }
  }
  // Throughput cost of the emulation: the FP32 roofline divided by the
  // per-ds_fma operation count (2 real flops delivered per emulated FMA).
  const soc::PerfModel perf(lease.system().soc());
  record.fp32_gflops = perf.gemm_gflops(soc::GemmImpl::kGpuMps, n);
  record.emulated_gflops =
      record.fp32_gflops / fp64emu::kFlopsPerDsFma * 2.0;
  {
    std::lock_guard lock(state_mutex_);
    ++stats_.jobs_executed;
  }
  publish_record(job, record, outputs);
}

void CampaignScheduler::run_sme_gemm(const ExperimentJob& job,
                                     CampaignOutputs& outputs) {
  if (serve_from_cache(job, outputs)) {
    return;
  }
  const std::size_t n = job.n;
  AO_REQUIRE(n > 0, "sme-gemm job needs a matrix size");

  std::vector<float> a(n * n);
  std::vector<float> b(a.size());
  util::fill_uniform(std::span<float>(a), job.study_seed);
  util::fill_uniform(std::span<float>(b), job.study_seed + 1);

  // FMOPA-tiled SGEMM through the SME engine vs the AMX emulator — the
  // Section 2.1 "fairly similar at its core" claim, checked bit-for-bit.
  std::vector<float> c_sme(a.size(), 0.0f);
  amx::sme_sgemm(n, n, n, a.data(), n, b.data(), n, c_sme.data(), n);
  std::vector<float> c_amx(a.size(), 0.0f);
  amx::amx_sgemm(n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c_amx.data(),
                 n, /*threads=*/1);

  SmeRecord record;
  record.chip = job.chip;
  record.n = n;
  record.seed = job.study_seed;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    record.max_abs_diff =
        std::max(record.max_abs_diff,
                 static_cast<double>(std::abs(c_sme[i] - c_amx[i])));
    sum += c_sme[i];
  }
  record.matches_amx = record.max_abs_diff == 0.0;
  record.mean_output = sum / static_cast<double>(a.size());

  auto lease = systems_.acquire(job.chip);
  const soc::PerfModel perf(lease.system().soc());
  // The M4's SME unit is AMX-class hardware behind the same Accelerate
  // calibration, so that curve models its throughput.
  record.modeled_gflops = perf.gemm_gflops(soc::GemmImpl::kCpuAccelerate, n);
  {
    std::lock_guard lock(state_mutex_);
    ++stats_.jobs_executed;
  }
  publish_record(job, record, outputs);
}

}  // namespace ao::orchestrator
