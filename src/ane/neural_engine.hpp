#pragma once

#include <cstddef>
#include <string>

#include "soc/soc.hpp"

namespace ao::ane {

/// Model of the 16-core Apple Neural Engine.
///
/// The paper does not benchmark the ANE ("A large gap left behind in this
/// research is the lack of Neural Engine testing", Section 7) — this module
/// implements that named future-work item. The ANE supports FP16/INT8 only,
/// runs independently of CPU and GPU, and cannot be programmed directly:
/// work reaches it through Core ML, which "does not provide granular control
/// nor guarantees that the Neural Engine is used" (Section 2.3).
///
/// Throughput anchors are the publicly stated TOPS figures per generation
/// (INT8), with FP16 modeled at half rate.
class NeuralEngine {
 public:
  explicit NeuralEngine(soc::Soc& soc);

  int core_count() const { return soc_->spec().neural_engine_cores; }

  /// Peak INT8 tera-ops and FP16 TFLOPS of this generation.
  double peak_int8_tops() const;
  double peak_fp16_tflops() const { return peak_int8_tops() / 2.0; }

  /// Sustained FP16 GEMM throughput (GFLOPS) the dispatch model yields —
  /// tensor workloads reach ~70% of peak.
  double sustained_fp16_gflops() const { return peak_fp16_tflops() * 1e3 * 0.7; }

  /// Package power while running tensor work, Watts (ANE is the most
  /// efficient unit on the die).
  double active_power_watts() const;

  /// Executes an m x n x k FP16 matrix multiplication *functionally* on the
  /// host (inputs/outputs FP32, internally rounded through FP16 the way the
  /// ANE's mixed-precision datapath does) and charges the simulated time and
  /// energy to the SoC. Returns the simulated duration in ns. Model-only
  /// calls (`functional = false`) never touch the operands, which may then
  /// be null.
  double run_gemm_fp16(std::size_t m, std::size_t n, std::size_t k,
                       const float* a, const float* b, float* c,
                       bool functional = true);

 private:
  soc::Soc* soc_;
};

/// MLComputeUnits-style dispatch preference.
enum class ComputeUnits { kAll, kCpuOnly, kCpuAndGpu, kCpuAndNeuralEngine };

std::string to_string(ComputeUnits units);

/// Where a Core ML prediction actually executed.
enum class DispatchTarget { kNeuralEngine, kGpu, kCpu };

std::string to_string(DispatchTarget target);

/// Outcome of one CoreMLRuntime::predict_gemm dispatch.
struct Prediction {
  DispatchTarget target = DispatchTarget::kNeuralEngine;
  double duration_ns = 0.0;  ///< simulated, dispatch overhead included
  double watts = 0.0;        ///< active power of the unit that executed
  double gflops = 0.0;       ///< effective rate over the whole dispatch
};

/// Minimal Core ML-like runtime: compiles a GEMM "model" and dispatches
/// predictions. The placement rule reproduces the opacity the paper calls
/// out: the ANE is used only when the preference allows it AND the operator
/// shape is ANE-compatible; otherwise work silently falls back to GPU/CPU.
class CoreMLRuntime {
 public:
  explicit CoreMLRuntime(soc::Soc& soc, ComputeUnits preference = ComputeUnits::kAll);

  /// The placement the runtime would choose for an m x n x k FP16 GEMM.
  /// ANE compatibility: all dimensions multiples of 16 and k <= 16384
  /// (tiling constraint of the tensor DMA in this model).
  DispatchTarget plan_gemm(std::size_t m, std::size_t n, std::size_t k) const;

  /// Plans AND executes an m x n x k FP16 GEMM: the numeric result is the
  /// same FP16-ingest / FP32-accumulate datapath wherever it lands, but the
  /// simulated time and power are charged to the unit the plan selected —
  /// the ANE at the engine's sustained rate, the GPU at the MPS FP16 rate,
  /// the CPU at the Accelerate rate. This is the silent-fallback behavior
  /// the paper calls out: the caller learns the placement only afterwards.
  Prediction predict_gemm(std::size_t m, std::size_t n, std::size_t k,
                          const float* a, const float* b, float* c,
                          bool functional = true);

  ComputeUnits preference() const { return preference_; }
  NeuralEngine& engine() { return engine_; }

 private:
  soc::Soc* soc_;
  ComputeUnits preference_;
  NeuralEngine engine_;
};

}  // namespace ao::ane
