#include "ane/neural_engine.hpp"

#include <vector>

#include "amx/float16.hpp"
#include "soc/perf_model.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ao::ane {
namespace {

/// Core ML's model-compilation-and-dispatch overhead per prediction.
constexpr double kDispatchOverheadNs = 25e3;

/// The FP16-ingest / FP32-accumulate datapath, on the host. Every dispatch
/// target computes this same result — what differs is where the simulated
/// time is charged.
void gemm_fp16_host(std::size_t m, std::size_t n, std::size_t k,
                    const float* a, const float* b, float* c) {
  std::vector<float> a16(m * k);
  std::vector<float> b16(k * n);
  for (std::size_t i = 0; i < m * k; ++i) {
    a16[i] = amx::half_to_float(amx::float_to_half(a[i]));
  }
  for (std::size_t i = 0; i < k * n; ++i) {
    b16[i] = amx::half_to_float(amx::float_to_half(b[i]));
  }
  util::global_pool().parallel_for(m, [&](std::size_t i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += a16[i * k + kk] * b16[kk * n + j];
      }
      c[i * n + j] = acc;
    }
  });
}

double gemm_fp16_flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
             static_cast<double>(k) -
         static_cast<double>(m) * static_cast<double>(n);
}

}  // namespace

NeuralEngine::NeuralEngine(soc::Soc& soc) : soc_(&soc) {}

double NeuralEngine::peak_int8_tops() const {
  // Apple's stated Neural Engine throughput per generation.
  switch (soc_->spec().model) {
    case soc::ChipModel::kM1:
      return 11.0;
    case soc::ChipModel::kM2:
      return 15.8;
    case soc::ChipModel::kM3:
      return 18.0;
    case soc::ChipModel::kM4:
      return 38.0;
  }
  return 0.0;
}

double NeuralEngine::active_power_watts() const {
  // The ANE runs tensor work at single-digit Watts across the series.
  switch (soc_->spec().model) {
    case soc::ChipModel::kM1:
      return 2.0;
    case soc::ChipModel::kM2:
      return 2.4;
    case soc::ChipModel::kM3:
      return 2.6;
    case soc::ChipModel::kM4:
      return 4.2;
  }
  return 0.0;
}

double NeuralEngine::run_gemm_fp16(std::size_t m, std::size_t n, std::size_t k,
                                   const float* a, const float* b, float* c,
                                   bool functional) {
  AO_REQUIRE(m > 0 && n > 0 && k > 0, "GEMM dimensions must be positive");
  if (functional) {
    AO_REQUIRE(a != nullptr && b != nullptr && c != nullptr,
               "GEMM operands must not be null");
    // Inputs round through FP16 (the ANE datapath ingests half precision);
    // accumulation is FP32, as on the real unit.
    gemm_fp16_host(m, n, k, a, b, c);
  }

  const double time_ns =
      kDispatchOverheadNs +
      gemm_fp16_flops(m, n, k) / sustained_fp16_gflops();  // GFLOPS == FLOP/ns
  soc_->execute(soc::ComputeUnit::kNeuralEngine, time_ns, active_power_watts(),
                0.7);
  return time_ns;
}

std::string to_string(ComputeUnits units) {
  switch (units) {
    case ComputeUnits::kAll:
      return "MLComputeUnitsAll";
    case ComputeUnits::kCpuOnly:
      return "MLComputeUnitsCPUOnly";
    case ComputeUnits::kCpuAndGpu:
      return "MLComputeUnitsCPUAndGPU";
    case ComputeUnits::kCpuAndNeuralEngine:
      return "MLComputeUnitsCPUAndNeuralEngine";
  }
  return "unknown";
}

std::string to_string(DispatchTarget target) {
  switch (target) {
    case DispatchTarget::kNeuralEngine:
      return "NeuralEngine";
    case DispatchTarget::kGpu:
      return "GPU";
    case DispatchTarget::kCpu:
      return "CPU";
  }
  return "unknown";
}

CoreMLRuntime::CoreMLRuntime(soc::Soc& soc, ComputeUnits preference)
    : soc_(&soc), preference_(preference), engine_(soc) {}

DispatchTarget CoreMLRuntime::plan_gemm(std::size_t m, std::size_t n,
                                        std::size_t k) const {
  const bool ane_allowed = preference_ == ComputeUnits::kAll ||
                           preference_ == ComputeUnits::kCpuAndNeuralEngine;
  const bool ane_compatible =
      m % 16 == 0 && n % 16 == 0 && k % 16 == 0 && k <= 16384;
  if (ane_allowed && ane_compatible) {
    return DispatchTarget::kNeuralEngine;
  }
  const bool gpu_allowed = preference_ == ComputeUnits::kAll ||
                           preference_ == ComputeUnits::kCpuAndGpu;
  return gpu_allowed ? DispatchTarget::kGpu : DispatchTarget::kCpu;
}

Prediction CoreMLRuntime::predict_gemm(std::size_t m, std::size_t n,
                                       std::size_t k, const float* a,
                                       const float* b, float* c,
                                       bool functional) {
  Prediction p;
  p.target = plan_gemm(m, n, k);
  if (p.target == DispatchTarget::kNeuralEngine) {
    p.duration_ns = engine_.run_gemm_fp16(m, n, k, a, b, c, functional);
    p.watts = engine_.active_power_watts();
    p.gflops = gemm_fp16_flops(m, n, k) / p.duration_ns;  // FLOP/ns == GFLOPS
    return p;
  }

  AO_REQUIRE(m > 0 && n > 0 && k > 0, "GEMM dimensions must be positive");
  if (functional) {
    AO_REQUIRE(a != nullptr && b != nullptr && c != nullptr,
               "GEMM operands must not be null");
    gemm_fp16_host(m, n, k, a, b, c);
  }
  // Fallback rates come from the calibrated GEMM model, with n standing in
  // for the square size: MPS at ~2x its FP32 rate for FP16, Accelerate at
  // its FP32 rate (AMX has no FP16 advantage on this path).
  const soc::PerfModel perf(*soc_);
  const bool gpu = p.target == DispatchTarget::kGpu;
  const auto impl =
      gpu ? soc::GemmImpl::kGpuMps : soc::GemmImpl::kCpuAccelerate;
  double gflops = perf.gemm_gflops(impl, n);
  if (gpu) {
    gflops *= 2.0;
  }
  p.duration_ns = kDispatchOverheadNs + gemm_fp16_flops(m, n, k) / gflops;
  p.watts = perf.gemm_power_watts(impl, n);
  p.gflops = gemm_fp16_flops(m, n, k) / p.duration_ns;
  soc_->execute(gpu ? soc::ComputeUnit::kGpu : soc::ComputeUnit::kCpuPCluster,
                p.duration_ns, p.watts, 0.7);
  return p;
}

}  // namespace ao::ane
