#pragma once

/// appleoranges — umbrella header.
///
/// Reproduction of "Apple vs. Oranges: Evaluating the Apple Silicon M-Series
/// SoCs for HPC Performance and Efficiency" (Hübner, Hu, Peng, Markidis;
/// IPPS 2025; arXiv:2502.05317) as a calibrated simulation on non-Apple
/// hardware. See DESIGN.md for the paper-to-module mapping and EXPERIMENTS.md
/// for the per-figure reproduction record.
///
/// Layering (each header can also be included individually):
///   util        — buffers, statistics, tables, charts, thread pool
///   soc         — chip specs (Table 1), devices (Table 3), clock, thermal,
///                 calibration anchors, the analytic performance model
///   mem         — unified memory, storage modes, controller, caches
///   metal       — Metal-like compute API (device/queue/buffer/pipeline)
///   shaders     — the MSL kernels (STREAM + GEMM) in simulator form
///   mps         — Metal Performance Shaders GEMM
///   amx         — Apple AMX coprocessor emulator
///   accelerate  — CBLAS / vDSP on AMX
///   ane         — Neural Engine + Core ML dispatch model
///   power       — powermetrics substrate
///   harness     — the paper's test library (suite runner, experiments)
///   stream      — CPU and GPU STREAM benchmarks
///   gemm        — the six Table-2 implementations
///   baseline    — GH200 / literature HPC reference points
///   core        — System: one fully wired simulated machine

#include "accelerate/cblas.hpp"
#include "accelerate/reference_blas.hpp"
#include "accelerate/vdsp.hpp"
#include "amx/amx_gemm.hpp"
#include "amx/amx_unit.hpp"
#include "amx/float16.hpp"
#include "ane/neural_engine.hpp"
#include "baseline/reference_systems.hpp"
#include "core/system.hpp"
#include "gemm/gemm_interface.hpp"
#include "harness/matrix_workload.hpp"
#include "mem/cache_model.hpp"
#include "mem/memory_controller.hpp"
#include "mem/storage_mode.hpp"
#include "mem/unified_memory.hpp"
#include "metal/compute_command_encoder.hpp"
#include "metal/device.hpp"
#include "mps/mps_gemm.hpp"
#include "mps/mps_matrix.hpp"
#include "power/power_model.hpp"
#include "power/powermetrics.hpp"
#include "shaders/default_library.hpp"
#include "shaders/gemm_shaders.hpp"
#include "shaders/stream_kernels.hpp"
#include "soc/benchmark_taxonomy.hpp"
#include "soc/calibration.hpp"
#include "soc/chip_spec.hpp"
#include "soc/device_info.hpp"
#include "soc/perf_model.hpp"
#include "soc/soc.hpp"
#include "stream/cpu_stream.hpp"
#include "stream/gpu_stream.hpp"
#include "util/aligned_buffer.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv_writer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"
