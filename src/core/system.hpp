#pragma once

#include <memory>

#include "gemm/gemm_interface.hpp"
#include "mem/unified_memory.hpp"
#include "metal/device.hpp"
#include "shaders/default_library.hpp"
#include "soc/perf_model.hpp"
#include "soc/soc.hpp"

namespace ao::core {

/// One fully wired simulated machine — the library's top-level entry point.
///
/// Construction order mirrors the physical stack: the SoC (clock, thermal
/// state, activity log), its unified memory pool, the Metal device over
/// both, a default command queue, and the shader library. Benchmarks,
/// examples and tests build everything else from here.
///
///   ao::core::System m4(ao::soc::ChipModel::kM4);
///   auto gemms = ao::gemm::create_all_gemms(m4.gemm_context());
class System {
 public:
  explicit System(soc::ChipModel model);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  soc::Soc& soc() { return soc_; }
  const soc::Soc& soc() const { return soc_; }
  mem::UnifiedMemory& memory() { return memory_; }
  metal::Device& device() { return device_; }
  metal::CommandQueuePtr default_queue() { return queue_; }
  const metal::Library& shader_library() const {
    return shaders::default_library();
  }
  const soc::PerfModel& perf() const { return perf_; }

  /// Context handed to the GEMM implementations (references this System).
  gemm::GemmContext& gemm_context() { return gemm_context_; }

  soc::ChipModel model() const { return soc_.spec().model; }
  std::string name() const { return soc_.spec().name; }

 private:
  soc::Soc soc_;
  mem::UnifiedMemory memory_;
  metal::Device device_;
  metal::CommandQueuePtr queue_;
  soc::PerfModel perf_;
  gemm::GemmContext gemm_context_;
};

}  // namespace ao::core
