#include "core/system.hpp"

namespace ao::core {

System::System(soc::ChipModel model)
    : soc_(model),
      memory_(soc_),
      device_(soc_, memory_),
      queue_(device_.new_command_queue()),
      perf_(soc_),
      gemm_context_{soc_, device_, queue_, shaders::default_library()} {}

}  // namespace ao::core
