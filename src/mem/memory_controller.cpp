#include "mem/memory_controller.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ao::mem {

MemoryController::MemoryController(const soc::Soc& soc) : soc_(&soc) {}

double MemoryController::link_ceiling_gbs(soc::MemoryAgent agent) const {
  const auto& s = soc_->calib().stream;
  switch (agent) {
    case soc::MemoryAgent::kCpu:
      return s.cpu_peak_gbs();
    case soc::MemoryAgent::kGpu:
      return s.gpu_peak_gbs();
    case soc::MemoryAgent::kNeuralEngine:
      return s.gpu_peak_gbs() * 0.6;
  }
  return 0.0;
}

double MemoryController::fabric_ceiling_gbs() const {
  return soc_->spec().memory_bandwidth_gbs;
}

double MemoryController::arbitrated_bandwidth_gbs(
    soc::MemoryAgent agent, const std::array<bool, 3>& active) const {
  const auto idx = static_cast<std::size_t>(agent);
  AO_REQUIRE(active[idx], "querying bandwidth for an inactive agent");

  constexpr std::array<soc::MemoryAgent, 3> kAgents = {
      soc::MemoryAgent::kCpu, soc::MemoryAgent::kGpu,
      soc::MemoryAgent::kNeuralEngine};

  double total_demand = 0.0;
  for (std::size_t i = 0; i < kAgents.size(); ++i) {
    if (active[i]) {
      total_demand += link_ceiling_gbs(kAgents[i]);
    }
  }
  const double own = link_ceiling_gbs(agent);
  const double fabric = fabric_ceiling_gbs();
  if (total_demand <= fabric) {
    return own;  // no contention: every link runs at its own ceiling
  }
  // Proportional-share scaling down to the fabric ceiling.
  return own * (fabric / total_demand);
}

double MemoryController::transfer_time_ns(soc::MemoryAgent agent,
                                          std::uint64_t bytes,
                                          const std::array<bool, 3>& active) const {
  const double gbs = arbitrated_bandwidth_gbs(agent, active);
  AO_REQUIRE(gbs > 0.0, "arbitrated bandwidth must be positive");
  return static_cast<double>(bytes) / gbs;  // bytes / (GB/s) == ns
}

}  // namespace ao::mem
