#pragma once

#include <array>
#include <cstdint>

#include "soc/benchmark_taxonomy.hpp"
#include "soc/soc.hpp"

namespace ao::mem {

/// Bandwidth arbitration model of the on-die memory controller.
///
/// The M-series memory controller "dynamically allocates resources across
/// different compute units" (Section 2.4). This model exposes per-agent link
/// ceilings (calibrated to the Figure-1 anchors), a fabric-wide ceiling (the
/// Table-1 theoretical bandwidth), and proportional-share arbitration when
/// several agents stream concurrently — used by the contention tests and the
/// storage-mode ablation.
class MemoryController {
 public:
  explicit MemoryController(const soc::Soc& soc);

  /// Peak sustained link bandwidth for one agent in isolation, GB/s (the
  /// best STREAM kernel for that agent).
  double link_ceiling_gbs(soc::MemoryAgent agent) const;

  /// Theoretical package bandwidth (the Figure-1 horizontal line).
  double fabric_ceiling_gbs() const;

  /// Effective bandwidth for `agent` when the set of simultaneously active
  /// agents is given by `active` flags (CPU, GPU, ANE in that order).
  /// Isolated agents get their link ceiling; concurrent demand is scaled so
  /// the sum never exceeds the fabric ceiling, preserving each agent's
  /// relative link capability.
  double arbitrated_bandwidth_gbs(soc::MemoryAgent agent,
                                  const std::array<bool, 3>& active) const;

  /// Time to move `bytes` for `agent` at the arbitrated rate, ns.
  double transfer_time_ns(soc::MemoryAgent agent, std::uint64_t bytes,
                          const std::array<bool, 3>& active) const;

 private:
  const soc::Soc* soc_;
};

}  // namespace ao::mem
