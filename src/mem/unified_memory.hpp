#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "mem/storage_mode.hpp"
#include "soc/soc.hpp"
#include "util/aligned_buffer.hpp"

namespace ao::mem {

class UnifiedMemory;

/// One allocation inside the unified memory pool. RAII: returning the bytes
/// to the pool on destruction. Allocations are page-aligned and page-granular
/// (16384-byte Apple pages), which is what lets ao::metal::Buffer wrap them
/// zero-copy the way the paper wraps aligned_alloc'd matrices.
class Region {
 public:
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;
  Region(Region&&) = delete;
  Region& operator=(Region&&) = delete;
  ~Region();

  std::uint64_t id() const { return id_; }
  StorageMode mode() const { return mode_; }
  /// Requested length in bytes.
  std::size_t length() const { return backing_.length(); }
  /// Reserved bytes (length rounded up to whole pages).
  std::size_t reserved() const { return backing_.capacity(); }

  /// Host pointer. Dereferencing is only legal if the mode is CPU-accessible;
  /// the GPU simulator accesses kPrivate regions through this pointer too
  /// (it *is* host memory underneath), but the API-level rule is enforced by
  /// ao::metal::Buffer::contents().
  void* data() { return backing_.data(); }
  const void* data() const { return backing_.data(); }

  template <typename T>
  std::span<T> as_span() {
    return backing_.as_span<T>();
  }
  template <typename T>
  std::span<const T> as_span() const {
    return backing_.as_span<T>();
  }

 private:
  friend class UnifiedMemory;
  Region(UnifiedMemory* pool, std::uint64_t id, std::size_t length,
         StorageMode mode);

  UnifiedMemory* pool_;
  std::uint64_t id_;
  StorageMode mode_;
  util::AlignedBuffer backing_;
};

/// The unified memory pool of one simulated SoC.
///
/// Tracks capacity (the Table-3 device configuration: 8 GB on the M1/M2
/// machines, 16 GB on M3/M4), enforces it, and keeps allocation accounting
/// for the tests and the storage-mode ablation bench. The pool must outlive
/// every Region it hands out.
class UnifiedMemory {
 public:
  explicit UnifiedMemory(soc::Soc& soc);
  ~UnifiedMemory();

  UnifiedMemory(const UnifiedMemory&) = delete;
  UnifiedMemory& operator=(const UnifiedMemory&) = delete;

  /// Allocates `length` bytes (rounded up to whole pages) with `mode`.
  /// Throws util::ResourceExhausted if the device capacity would be exceeded.
  std::unique_ptr<Region> allocate(std::size_t length, StorageMode mode);

  std::uint64_t capacity_bytes() const { return capacity_; }
  std::uint64_t allocated_bytes() const { return allocated_; }
  std::uint64_t peak_allocated_bytes() const { return peak_allocated_; }
  std::size_t live_allocations() const { return live_count_; }

  soc::Soc& soc() { return *soc_; }
  const soc::Soc& soc() const { return *soc_; }

  static constexpr std::size_t kPageSize = soc::ChipSpec::kPageSize;

 private:
  friend class Region;
  void release(std::size_t reserved_bytes);

  soc::Soc* soc_;
  std::uint64_t capacity_;
  std::uint64_t allocated_ = 0;
  std::uint64_t peak_allocated_ = 0;
  std::size_t live_count_ = 0;
  std::uint64_t next_id_ = 1;
};

}  // namespace ao::mem
