#include "mem/storage_mode.hpp"

namespace ao::mem {

std::string to_string(StorageMode mode) {
  switch (mode) {
    case StorageMode::kCpuMalloc:
      return "CpuMalloc";
    case StorageMode::kShared:
      return "Shared";
    case StorageMode::kPrivate:
      return "Private";
    case StorageMode::kManaged:
      return "Managed";
  }
  return "unknown";
}

bool cpu_accessible(StorageMode mode) {
  switch (mode) {
    case StorageMode::kCpuMalloc:
    case StorageMode::kShared:
    case StorageMode::kManaged:
      return true;
    case StorageMode::kPrivate:
      return false;
  }
  return false;
}

bool gpu_accessible(StorageMode mode) {
  switch (mode) {
    case StorageMode::kCpuMalloc:
      return false;
    case StorageMode::kShared:
    case StorageMode::kPrivate:
    case StorageMode::kManaged:
      return true;
  }
  return false;
}

bool requires_explicit_transfer(StorageMode mode) {
  switch (mode) {
    case StorageMode::kCpuMalloc:
    case StorageMode::kManaged:
      return true;
    case StorageMode::kShared:
    case StorageMode::kPrivate:
      return false;
  }
  return false;
}

}  // namespace ao::mem
