#pragma once

#include <string>

namespace ao::mem {

/// Storage modes of unified-memory allocations, mirroring Metal's
/// MTLResourceStorageMode options plus plain CPU malloc (Section 2.4):
///
///  - kCpuMalloc: standard malloc; visible to the CPU only. The GPU needs an
///    explicit transfer (or a re-wrap into a shared buffer).
///  - kShared:    page-aligned buffer visible to CPU and GPU at the same
///    physical address (MTLResourceStorageModeShared) — the zero-copy path
///    the paper's benchmarks use.
///  - kPrivate:   GPU-optimal placement, not directly CPU-accessible
///    (MTLResourceStorageModePrivate).
///  - kManaged:   mirrored pair kept coherent by explicit synchronization
///    (exists on Metal for discrete-GPU Macs; on Apple Silicon it degenerates
///    to shared storage but the API accepts it).
enum class StorageMode { kCpuMalloc, kShared, kPrivate, kManaged };

std::string to_string(StorageMode mode);

/// True if the CPU may dereference the allocation directly.
bool cpu_accessible(StorageMode mode);

/// True if the GPU may access the allocation directly (zero-copy).
bool gpu_accessible(StorageMode mode);

/// True if moving data between CPU and GPU requires an explicit copy.
bool requires_explicit_transfer(StorageMode mode);

}  // namespace ao::mem
