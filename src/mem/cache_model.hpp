#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "soc/chip_spec.hpp"

namespace ao::mem {

/// Memory access pattern classes the cache model distinguishes. STREAM is
/// kSequential; the naive GEMM's B-matrix walk is kStrided; pointer chasing
/// would be kRandom.
enum class AccessPattern { kSequential, kStrided, kRandom };

std::string to_string(AccessPattern pattern);

/// One cache level's geometry and timing.
struct CacheLevel {
  std::string name;          ///< "L1", "L2", "SLC"
  std::size_t capacity_bytes = 0;
  std::size_t line_bytes = 64;
  double latency_ns = 0.0;   ///< load-to-use
};

/// Analytic model of an M-series P-cluster cache hierarchy (L1 per core,
/// shared cluster L2, system-level cache in front of DRAM).
///
/// This substrate explains — rather than tabulates — the size-dependent
/// effects the paper reports: the naive CPU GEMM collapsing once three
/// matrices exceed the L2 (Figure 2) and STREAM arrays being sized to defeat
/// caching. Tests pin its monotonicity properties; the ablation benches use
/// it to show where the working-set knees fall per chip.
class CacheModel {
 public:
  /// Builds the hierarchy for `spec` (L1/L2 from Table 1; SLC modeled at
  /// 8 MiB with DRAM latency derived from the memory technology generation).
  explicit CacheModel(const soc::ChipSpec& spec);

  const std::vector<CacheLevel>& levels() const { return levels_; }
  double dram_latency_ns() const { return dram_latency_ns_; }

  /// Estimated hit fraction at `level` (0 = L1) for a working set of
  /// `working_set_bytes` accessed with `pattern`.
  double hit_rate(std::size_t level, std::size_t working_set_bytes,
                  AccessPattern pattern) const;

  /// Average latency per access for the working set / pattern, in ns.
  double average_latency_ns(std::size_t working_set_bytes,
                            AccessPattern pattern) const;

  /// Effective per-core streaming bandwidth implied by the hierarchy for the
  /// working set, in GB/s (element size 4 bytes assumed FP32).
  double effective_bandwidth_gbs(std::size_t working_set_bytes,
                                 AccessPattern pattern) const;

  /// The matrix size n at which three n x n FP32 matrices no longer fit in
  /// the cluster L2 — the knee of the naive GEMM curve.
  std::size_t gemm_l2_knee() const;

 private:
  std::vector<CacheLevel> levels_;
  double dram_latency_ns_;
};

}  // namespace ao::mem
