#include "mem/unified_memory.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/units.hpp"

namespace ao::mem {

Region::Region(UnifiedMemory* pool, std::uint64_t id, std::size_t length,
               StorageMode mode)
    : pool_(pool), id_(id), mode_(mode), backing_(length, UnifiedMemory::kPageSize) {}

Region::~Region() {
  if (pool_ != nullptr) {
    pool_->release(backing_.capacity());
  }
}

UnifiedMemory::UnifiedMemory(soc::Soc& soc)
    : soc_(&soc), capacity_(soc.memory_capacity_bytes()) {}

UnifiedMemory::~UnifiedMemory() = default;

std::unique_ptr<Region> UnifiedMemory::allocate(std::size_t length,
                                                StorageMode mode) {
  AO_REQUIRE(length > 0, "cannot allocate an empty region");
  const std::size_t reserved = util::AlignedBuffer::round_up(length, kPageSize);
  if (allocated_ + reserved > capacity_) {
    throw util::ResourceExhausted(
        "unified memory exhausted: requested " + util::format_bytes(reserved) +
        ", in use " + util::format_bytes(allocated_) + " of " +
        util::format_bytes(capacity_));
  }
  // Construct first (may throw bad_alloc) so accounting stays consistent.
  std::unique_ptr<Region> region(new Region(this, next_id_++, length, mode));
  allocated_ += reserved;
  peak_allocated_ = std::max(peak_allocated_, allocated_);
  ++live_count_;
  return region;
}

void UnifiedMemory::release(std::size_t reserved_bytes) {
  AO_REQUIRE(allocated_ >= reserved_bytes,
             "double release detected in pool accounting");
  allocated_ -= reserved_bytes;
  --live_count_;
}

}  // namespace ao::mem
