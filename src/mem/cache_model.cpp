#include "mem/cache_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace ao::mem {

std::string to_string(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::kSequential:
      return "sequential";
    case AccessPattern::kStrided:
      return "strided";
    case AccessPattern::kRandom:
      return "random";
  }
  return "unknown";
}

CacheModel::CacheModel(const soc::ChipSpec& spec) {
  levels_.push_back({"L1",
                     static_cast<std::size_t>(spec.l1_kb_per_p_core) * util::kKiB,
                     64, 1.0});
  levels_.push_back({"L2",
                     static_cast<std::size_t>(spec.l2_mb_p_cluster) * util::kMiB,
                     128, 5.0});
  levels_.push_back({"SLC", 8 * util::kMiB, 128, 18.0});
  // LPDDR4X (M1) has distinctly higher first-word latency than LPDDR5/5X.
  dram_latency_ns_ = spec.memory_technology == "LPDDR4X" ? 110.0 : 96.0;
}

double CacheModel::hit_rate(std::size_t level, std::size_t working_set_bytes,
                            AccessPattern pattern) const {
  AO_REQUIRE(level < levels_.size(), "cache level out of range");
  const CacheLevel& l = levels_[level];
  // Fraction of the working set resident in this level. A working set no
  // bigger than the level hits (nearly) always; beyond that, reuse decays
  // with the ratio. Streaming prefetchers rescue sequential misses, strided
  // access defeats part of the line utilization, random defeats most of it.
  const double resident = std::min(
      1.0, static_cast<double>(l.capacity_bytes) /
               static_cast<double>(std::max<std::size_t>(working_set_bytes, 1)));
  double pattern_factor = 1.0;
  switch (pattern) {
    case AccessPattern::kSequential:
      pattern_factor = 1.0;  // prefetch hides the rest
      break;
    case AccessPattern::kStrided:
      pattern_factor = 0.75;
      break;
    case AccessPattern::kRandom:
      pattern_factor = 0.5;
      break;
  }
  if (working_set_bytes <= l.capacity_bytes) {
    return pattern_factor;  // fully resident (cold misses amortized)
  }
  return resident * pattern_factor;
}

double CacheModel::average_latency_ns(std::size_t working_set_bytes,
                                      AccessPattern pattern) const {
  // Probability mass that filters past each level.
  double remaining = 1.0;
  double latency = 0.0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const double h = hit_rate(i, working_set_bytes, pattern);
    latency += remaining * h * levels_[i].latency_ns;
    remaining *= (1.0 - h);
  }
  latency += remaining * dram_latency_ns_;
  return latency;
}

double CacheModel::effective_bandwidth_gbs(std::size_t working_set_bytes,
                                           AccessPattern pattern) const {
  // One 64-byte line per average latency, per core; sequential streams issue
  // multiple outstanding misses (modeled as 8-deep MLP).
  const double latency = average_latency_ns(working_set_bytes, pattern);
  const double mlp = pattern == AccessPattern::kSequential ? 8.0
                     : pattern == AccessPattern::kStrided  ? 4.0
                                                           : 2.0;
  return 64.0 * mlp / latency;  // bytes per ns == GB/s
}

std::size_t CacheModel::gemm_l2_knee() const {
  const std::size_t l2 = levels_[1].capacity_bytes;
  // 3 matrices * n^2 * 4 bytes  >  L2  =>  n > sqrt(L2 / 12)
  return static_cast<std::size_t>(
      std::floor(std::sqrt(static_cast<double>(l2) / 12.0)));
}

}  // namespace ao::mem
