#include "baseline/reference_systems.hpp"

namespace ao::baseline {

const std::vector<StreamReference>& stream_references() {
  static const std::vector<StreamReference> refs = {
      {"Nvidia GH200 (Grace CPU)", "LPDDR5X", Gh200::kGraceStreamGbs,
       Gh200::kGraceStreamTheoreticalGbs,
       "measured, Nvidia HPC benchmark 24.9 (paper Section 5.1)"},
      {"Nvidia GH200 (Hopper GPU)", "HBM3", Gh200::kHopperHbm3StreamGbs,
       Gh200::kHopperHbm3TheoreticalGbs,
       "measured, Nvidia HPC benchmark 24.9 (paper Section 5.1)"},
      {"AMD MI250X", "HBM2e (fabric-limited path)", 28.0, 33.0,
       "literature [21]: 85% of its theoretical peak at only 28 GB/s"},
  };
  return refs;
}

const std::vector<GemmReference>& gemm_references() {
  static const std::vector<GemmReference> refs = {
      {"Nvidia GH200", "cublasSgemm / CUDA cores", "FP32",
       Gh200::kCudaSgemmTflops, 0.61, false,
       "measured, cuBLAS 12.4.2 (paper Section 5.2)"},
      {"Nvidia GH200", "cublasSgemm / Tensor Cores", "TF32",
       Gh200::kTensorTf32Tflops, 0.69, true,
       "measured, cuBLAS 12.4.2 (paper Section 5.2; mixed-precision caveat)"},
      {"Intel Xeon CPU Max 9468", "DGEMM (Sapphire Rapids + HBM)", "FP64", 5.7,
       0.0, false, "literature [24]"},
  };
  return refs;
}

const std::vector<EfficiencyReference>& efficiency_references() {
  static const std::vector<EfficiencyReference> refs = {
      {"Green500 #1 (Nov 2024)", "HPL", 72.0, 0.0, false, "Green500 list [27]"},
      {"Nvidia A100", "mma (Tensor Cores)", 700.0, 0.0, true,
       "literature [13]; mixed precision, not perfectly fair"},
      {"Nvidia RTX 4090", "dense MMA (Tensor Cores)", 510.0, 174.0, true,
       "literature [13]; 174 W at 0.51 TFLOPS/W"},
  };
  return refs;
}

}  // namespace ao::baseline
