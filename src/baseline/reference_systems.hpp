#pragma once

#include <string>
#include <vector>

namespace ao::baseline {

/// Reference points the paper quotes in its "HPC Perspective" boxes: the
/// internal Nvidia GH200 system the authors benchmarked, plus literature
/// values for MI250X, Xeon Max, A100, RTX 4090 and the Green500 leader.
/// These are published measurements, reproduced as data (this repository
/// does not simulate the comparison hardware beyond these anchors).

/// A STREAM-class bandwidth reference (Section 5.1 HPC Perspective).
struct StreamReference {
  std::string system;
  std::string memory;          ///< "LPDDR5X", "HBM3", ...
  double measured_gbs = 0.0;
  double theoretical_gbs = 0.0;
  std::string source;          ///< "measured (this paper)" or citation

  double efficiency() const { return measured_gbs / theoretical_gbs; }
};

/// A GEMM-class compute reference (Section 5.2 HPC Perspective).
struct GemmReference {
  std::string system;
  std::string path;            ///< "cublasSgemm / CUDA cores", ...
  std::string precision;       ///< "FP32", "TF32", "FP64"
  double measured_tflops = 0.0;
  double peak_fraction = 0.0;  ///< fraction of theoretical peak
  bool mixed_precision_caveat = false;  ///< tensor-core style comparison
  std::string source;
};

/// A power-efficiency reference (Section 5.3 HPC Perspective).
struct EfficiencyReference {
  std::string system;
  std::string workload;
  double gflops_per_watt = 0.0;
  double power_watts = 0.0;    ///< 0 when not reported
  bool mixed_precision_caveat = false;
  std::string source;
};

const std::vector<StreamReference>& stream_references();
const std::vector<GemmReference>& gemm_references();
const std::vector<EfficiencyReference>& efficiency_references();

/// GH200 anchors used directly in the comparison rows.
struct Gh200 {
  static constexpr double kGraceStreamGbs = 310.0;        ///< 81% of peak
  static constexpr double kGraceStreamTheoreticalGbs = 384.0;
  static constexpr double kHopperHbm3StreamGbs = 3700.0;  ///< 94% of peak
  static constexpr double kHopperHbm3TheoreticalGbs = 3936.0;
  static constexpr double kCudaSgemmTflops = 41.0;        ///< 61% of peak
  static constexpr double kTensorTf32Tflops = 338.0;      ///< 69% of peak
  static constexpr double kLpddr5xGb = 480.0;
  static constexpr double kHbm3Gb = 96.0;
};

}  // namespace ao::baseline
