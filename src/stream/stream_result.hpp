#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "soc/benchmark_taxonomy.hpp"

namespace ao::stream {

/// Result of one STREAM kernel across repetitions. STREAM methodology (and
/// the paper's): "only the maximum bandwidth is considered".
struct KernelResult {
  soc::StreamKernel kernel{};
  std::uint64_t bytes_per_pass = 0;
  double best_gbs = 0.0;      ///< max over repetitions
  double avg_gbs = 0.0;
  double min_time_ns = 0.0;

  bool operator==(const KernelResult&) const = default;
};

/// One full run: all four kernels.
struct RunResult {
  std::array<KernelResult, 4> kernels{};
  int threads = 1;  ///< CPU only; 0 for GPU

  bool operator==(const RunResult&) const = default;

  const KernelResult& of(soc::StreamKernel k) const {
    return kernels[static_cast<std::size_t>(k)];
  }
  double best_overall_gbs() const {
    double best = 0.0;
    for (const auto& k : kernels) {
      best = std::max(best, k.best_gbs);
    }
    return best;
  }
};

/// CPU thread sweep: best run per thread count plus the overall maximum per
/// kernel (what Figure 1 plots).
struct SweepResult {
  std::vector<RunResult> per_thread_count;
  std::array<double, 4> best_gbs_per_kernel{};
  int best_thread_count = 1;

  double best_overall_gbs() const {
    double best = 0.0;
    for (double v : best_gbs_per_kernel) {
      best = std::max(best, v);
    }
    return best;
  }
};

}  // namespace ao::stream
