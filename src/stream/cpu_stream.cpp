#include "stream/cpu_stream.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace ao::stream {

CpuStream::CpuStream(soc::Soc& soc, std::size_t elements)
    : soc_(&soc), perf_(soc), elements_(elements) {
  AO_REQUIRE(elements >= 1024, "STREAM arrays must not be trivially small");
}

void CpuStream::ensure_arrays() {
  if (a_.size() == elements_) {
    return;
  }
  a_.assign(elements_, 1.0);
  b_.assign(elements_, 2.0);
  c_.assign(elements_, 0.0);
}

void CpuStream::kernel_pass(soc::StreamKernel kernel, int threads,
                            bool functional) {
  const auto n = static_cast<long long>(elements_);
  if (functional) {
    ensure_arrays();
    double* a = a_.data();
    double* b = b_.data();
    double* c = c_.data();
    switch (kernel) {
      case soc::StreamKernel::kCopy:
#pragma omp parallel for num_threads(threads) schedule(static)
        for (long long i = 0; i < n; ++i) {
          c[i] = a[i];
        }
        break;
      case soc::StreamKernel::kScale:
#pragma omp parallel for num_threads(threads) schedule(static)
        for (long long i = 0; i < n; ++i) {
          b[i] = kScalar * c[i];
        }
        break;
      case soc::StreamKernel::kAdd:
#pragma omp parallel for num_threads(threads) schedule(static)
        for (long long i = 0; i < n; ++i) {
          c[i] = a[i] + b[i];
        }
        break;
      case soc::StreamKernel::kTriad:
#pragma omp parallel for num_threads(threads) schedule(static)
        for (long long i = 0; i < n; ++i) {
          a[i] = b[i] + kScalar * c[i];
        }
        break;
    }
  }

  const std::uint64_t bytes =
      static_cast<std::uint64_t>(soc::stream_arrays_touched(kernel)) *
      elements_ * sizeof(double);
  const double time_ns =
      perf_.stream_time_ns(soc::MemoryAgent::kCpu, kernel, bytes, threads);
  const double watts = perf_.stream_power_watts(soc::MemoryAgent::kCpu);
  const double utilization =
      std::min(1.0, static_cast<double>(threads) /
                        soc_->spec().total_cpu_cores());
  soc_->execute(soc::ComputeUnit::kCpuPCluster, time_ns, watts, utilization);
}

RunResult CpuStream::run(int threads, int repetitions, bool functional) {
  AO_REQUIRE(threads >= 1, "thread count must be >= 1");
  AO_REQUIRE(repetitions >= 1, "need at least one repetition");
  RunResult result;
  result.threads = threads;

  for (std::size_t k = 0; k < soc::kAllStreamKernels.size(); ++k) {
    result.kernels[k].kernel = soc::kAllStreamKernels[k];
    result.kernels[k].bytes_per_pass =
        static_cast<std::uint64_t>(
            soc::stream_arrays_touched(soc::kAllStreamKernels[k])) *
        elements_ * sizeof(double);
    result.kernels[k].min_time_ns = 0.0;
  }

  std::array<double, 4> best_gbs{};
  std::array<double, 4> sum_gbs{};
  std::array<double, 4> min_time{};
  min_time.fill(0.0);

  for (int rep = 0; rep < repetitions; ++rep) {
    for (std::size_t k = 0; k < soc::kAllStreamKernels.size(); ++k) {
      const auto kernel = soc::kAllStreamKernels[k];
      const std::uint64_t t0 = soc_->clock().now();
      kernel_pass(kernel, threads, functional);
      const auto dt = static_cast<double>(soc_->clock().now() - t0);
      const double gbs =
          util::gb_per_s(static_cast<double>(result.kernels[k].bytes_per_pass), dt);
      best_gbs[k] = std::max(best_gbs[k], gbs);
      sum_gbs[k] += gbs;
      min_time[k] = min_time[k] == 0.0 ? dt : std::min(min_time[k], dt);
    }
  }

  for (std::size_t k = 0; k < 4; ++k) {
    result.kernels[k].best_gbs = best_gbs[k];
    result.kernels[k].avg_gbs = sum_gbs[k] / repetitions;
    result.kernels[k].min_time_ns = min_time[k];
  }
  return result;
}

SweepResult CpuStream::sweep(int repetitions, bool functional) {
  SweepResult sweep;
  const int cores = soc_->spec().total_cpu_cores();
  double best_overall = 0.0;
  for (int t = 1; t <= cores; ++t) {
    RunResult run_result = run(t, repetitions, functional);
    for (std::size_t k = 0; k < 4; ++k) {
      sweep.best_gbs_per_kernel[k] = std::max(sweep.best_gbs_per_kernel[k],
                                              run_result.kernels[k].best_gbs);
    }
    if (run_result.best_overall_gbs() > best_overall) {
      best_overall = run_result.best_overall_gbs();
      sweep.best_thread_count = t;
    }
    sweep.per_thread_count.push_back(std::move(run_result));
  }
  return sweep;
}

double CpuStream::validate(int passes, int threads) {
  AO_REQUIRE(passes >= 1, "need at least one validation pass");
  if (threads <= 0) {
    threads = soc_->spec().total_cpu_cores();
  }
  // Reset and run functional passes.
  ensure_arrays();
  std::fill(a_.begin(), a_.end(), 1.0);
  std::fill(b_.begin(), b_.end(), 2.0);
  std::fill(c_.begin(), c_.end(), 0.0);
  for (int p = 0; p < passes; ++p) {
    for (const auto kernel : soc::kAllStreamKernels) {
      kernel_pass(kernel, threads, /*functional=*/true);
    }
  }
  // Closed-form evolution of the scalars (stream.c's checkSTREAMresults).
  double ea = 1.0;
  double eb = 2.0;
  double ec = 0.0;
  for (int p = 0; p < passes; ++p) {
    ec = ea;
    eb = kScalar * ec;
    ec = ea + eb;
    ea = eb + kScalar * ec;
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < elements_; ++i) {
    worst = std::max(worst, std::fabs(a_[i] - ea) / ea);
    worst = std::max(worst, std::fabs(b_[i] - eb) / eb);
    worst = std::max(worst, std::fabs(c_[i] - ec) / ec);
  }
  return worst;
}

}  // namespace ao::stream
