#pragma once

#include <memory>

#include "metal/compute_command_encoder.hpp"
#include "metal/device.hpp"
#include "stream/stream_result.hpp"

namespace ao::stream {

/// GPU STREAM — the paper's MSL port of the CUDA/HIP GPU STREAM
/// (stream_cpugpu.cpp [20, 22]): the Copy/Scale/Add/Triad kernels as compute
/// shaders over FP32 arrays in shared unified-memory buffers, driven by
/// command buffers; 20 repetitions, maximum bandwidth kept.
class GpuStream {
 public:
  /// 2^25 floats = 128 MiB per array, large enough to amortize launch
  /// overhead below 2%.
  static constexpr std::size_t kDefaultElements = 1u << 25;

  /// Allocates three FP32 device buffers of `elements` each in shared
  /// storage (zero-copy visible to CPU for validation).
  GpuStream(metal::Device& device, std::size_t elements = kDefaultElements);

  /// Runs `repetitions` of the four-kernel sequence.
  RunResult run(int repetitions, bool functional = false);

  /// Functional correctness check of all four kernels against expected
  /// values (a=1, b=2, c=0 start, one sequence pass). Returns worst absolute
  /// error.
  float validate();

  std::size_t elements() const { return elements_; }
  static constexpr float kScalar = 3.0f;

 private:
  void encode_kernel(soc::StreamKernel kernel, bool functional);
  void ensure_filled();

  metal::Device* device_;
  metal::CommandQueuePtr queue_;
  std::size_t elements_;
  bool filled_ = false;
  metal::BufferPtr a_;
  metal::BufferPtr b_;
  metal::BufferPtr c_;
  std::array<metal::ComputePipelineStatePtr, 4> pipelines_;
};

}  // namespace ao::stream
