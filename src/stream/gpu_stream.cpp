#include "stream/gpu_stream.hpp"

#include <algorithm>
#include <cmath>

#include "shaders/default_library.hpp"
#include "shaders/stream_kernels.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace ao::stream {

GpuStream::GpuStream(metal::Device& device, std::size_t elements)
    : device_(&device), queue_(device.new_command_queue()), elements_(elements) {
  AO_REQUIRE(elements >= 1024, "STREAM arrays must not be trivially small");
  const std::size_t bytes = elements_ * sizeof(float);
  a_ = device.new_buffer(bytes, mem::StorageMode::kShared);
  b_ = device.new_buffer(bytes, mem::StorageMode::kShared);
  c_ = device.new_buffer(bytes, mem::StorageMode::kShared);
  // The STREAM initial values are written lazily, on the first functional
  // pass — model-only runs (the orchestrator's bulk case) never touch the
  // hundreds of MiB the untouched buffers only reserve.

  const auto& lib = shaders::default_library();
  for (std::size_t k = 0; k < soc::kAllStreamKernels.size(); ++k) {
    pipelines_[k] = device.new_compute_pipeline_state(
        lib, shaders::stream_kernel_name(soc::kAllStreamKernels[k]));
  }
}

void GpuStream::ensure_filled() {
  if (filled_) {
    return;
  }
  auto* a = static_cast<float*>(a_->contents());
  auto* b = static_cast<float*>(b_->contents());
  auto* c = static_cast<float*>(c_->contents());
  std::fill(a, a + elements_, 1.0f);
  std::fill(b, b + elements_, 2.0f);
  std::fill(c, c + elements_, 0.0f);
  filled_ = true;
}

void GpuStream::encode_kernel(soc::StreamKernel kernel, bool functional) {
  if (functional) {
    ensure_filled();
  }
  auto cmd = queue_->command_buffer();
  auto enc = cmd->compute_command_encoder();
  enc->set_compute_pipeline_state(pipelines_[static_cast<std::size_t>(kernel)]);
  enc->set_buffer(a_.get(), 0, 0);
  enc->set_buffer(b_.get(), 0, 1);
  enc->set_buffer(c_.get(), 0, 2);
  enc->set_value<std::uint32_t>(static_cast<std::uint32_t>(elements_), 3);
  enc->set_value<float>(kScalar, 4);
  enc->set_functional_execution(functional);
  enc->dispatch_threads({static_cast<std::uint32_t>(elements_), 1, 1},
                        {256, 1, 1});
  enc->end_encoding();
  cmd->commit();
  cmd->wait_until_completed();
}

RunResult GpuStream::run(int repetitions, bool functional) {
  AO_REQUIRE(repetitions >= 1, "need at least one repetition");
  RunResult result;
  result.threads = 0;

  std::array<double, 4> best_gbs{};
  std::array<double, 4> sum_gbs{};
  std::array<double, 4> min_time{};
  min_time.fill(0.0);

  auto& clock = device_->soc().clock();
  for (int rep = 0; rep < repetitions; ++rep) {
    for (std::size_t k = 0; k < soc::kAllStreamKernels.size(); ++k) {
      const auto kernel = soc::kAllStreamKernels[k];
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(soc::stream_arrays_touched(kernel)) *
          elements_ * sizeof(float);
      const std::uint64_t t0 = clock.now();
      encode_kernel(kernel, functional);
      const auto dt = static_cast<double>(clock.now() - t0);
      const double gbs = util::gb_per_s(static_cast<double>(bytes), dt);
      best_gbs[k] = std::max(best_gbs[k], gbs);
      sum_gbs[k] += gbs;
      min_time[k] = min_time[k] == 0.0 ? dt : std::min(min_time[k], dt);
      result.kernels[k].kernel = kernel;
      result.kernels[k].bytes_per_pass = bytes;
    }
  }
  for (std::size_t k = 0; k < 4; ++k) {
    result.kernels[k].best_gbs = best_gbs[k];
    result.kernels[k].avg_gbs = sum_gbs[k] / repetitions;
    result.kernels[k].min_time_ns = min_time[k];
  }
  return result;
}

float GpuStream::validate() {
  filled_ = false;  // reset to the canonical initial values
  ensure_filled();
  auto* a = static_cast<float*>(a_->contents());
  auto* b = static_cast<float*>(b_->contents());
  auto* c = static_cast<float*>(c_->contents());

  for (const auto kernel : soc::kAllStreamKernels) {
    encode_kernel(kernel, /*functional=*/true);
  }
  // Expected after one pass: c=a(=1); b=3*c(=3); c=a+b(=4); a=b+3*c(=15).
  const float ea = 15.0f;
  const float eb = 3.0f;
  const float ec = 4.0f;
  float worst = 0.0f;
  for (std::size_t i = 0; i < elements_; ++i) {
    worst = std::max(worst, std::fabs(a[i] - ea));
    worst = std::max(worst, std::fabs(b[i] - eb));
    worst = std::max(worst, std::fabs(c[i] - ec));
  }
  return worst;
}

}  // namespace ao::stream
