#pragma once

#include <vector>

#include "soc/perf_model.hpp"
#include "soc/soc.hpp"
#include "stream/stream_result.hpp"

namespace ao::stream {

/// CPU STREAM — a port of John D. McCalpin's stream.c, "which utilizes
/// OpenMP to control the CPU threads used in the benchmark" (Section 3.1).
///
/// FP64 arrays (as in stream.c), the canonical kernel sequence
/// Copy/Scale/Add/Triad with scalar = 3.0, and the validation pass from the
/// original. The paper's methodology: run with OMP_NUM_THREADS from 1 to the
/// physical core count, repeat 10 times, keep the maximum bandwidth.
///
/// Functional execution really moves the bytes with OpenMP on the host;
/// reported time always comes from the calibrated model via the SoC clock.
class CpuStream {
 public:
  /// 2^23 doubles = 64 MiB per array satisfies STREAM's "4x the last-level
  /// cache" sizing rule for every chip in Table 1.
  static constexpr std::size_t kDefaultElements = 1u << 23;

  /// `elements` per array. The arrays themselves are allocated lazily, on
  /// the first functional pass — model-only runs (the orchestrator's bulk
  /// case) never touch host memory.
  explicit CpuStream(soc::Soc& soc, std::size_t elements = kDefaultElements);

  /// One configuration: `threads` OpenMP threads, `repetitions` passes of
  /// the four-kernel sequence.
  RunResult run(int threads, int repetitions, bool functional = false);

  /// The paper's full methodology: sweep 1..total_cpu_cores threads at 10
  /// repetitions each, return per-kernel maxima.
  SweepResult sweep(int repetitions = 10, bool functional = false);

  /// stream.c's validation: after `passes` functional four-kernel sequences
  /// starting from a=1, b=2, c=0, checks all three arrays against the
  /// closed-form expected values. Returns the worst relative error.
  double validate(int passes = 3, int threads = 0);

  std::size_t elements() const { return elements_; }
  std::uint64_t array_bytes() const { return elements_ * sizeof(double); }
  static constexpr double kScalar = 3.0;

 private:
  void kernel_pass(soc::StreamKernel kernel, int threads, bool functional);
  void ensure_arrays();

  soc::Soc* soc_;
  soc::PerfModel perf_;
  std::size_t elements_;
  std::vector<double> a_;
  std::vector<double> b_;
  std::vector<double> c_;
};

}  // namespace ao::stream
