#include "metal/command_buffer.hpp"

#include <memory>

#include "metal/command_queue.hpp"
#include "metal/compute_command_encoder.hpp"
#include "metal/device.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ao::metal {
namespace {

/// Executes one dispatch functionally on the host thread pool: threadgroups
/// are the unit of parallel work, matching how the TBDR GPU schedules
/// threadgroups onto its cores.
void run_functional(const DispatchCommand& cmd) {
  const Kernel& kernel = cmd.pipeline->kernel();
  const DispatchShape& shape = cmd.shape;
  const UInt3 groups = shape.threadgroups_per_grid;
  const std::uint64_t group_count = groups.volume();
  if (group_count == 0 || shape.threads_per_threadgroup.volume() == 0) {
    return;
  }

  auto group_coord = [&groups](std::uint64_t index) {
    UInt3 g;
    g.x = static_cast<std::uint32_t>(index % groups.x);
    g.y = static_cast<std::uint32_t>((index / groups.x) % groups.y);
    g.z = static_cast<std::uint32_t>(index / (static_cast<std::uint64_t>(groups.x) * groups.y));
    return g;
  };

  if (kernel.is_group_kernel()) {
    const auto& body = std::get<GroupKernelFn>(kernel.body);
    util::global_pool().parallel_for(group_count, [&](std::size_t gi) {
      // Each worker gets its own threadgroup-memory scratch.
      thread_local std::vector<std::byte> scratch;
      if (scratch.size() < cmd.threadgroup_memory_length) {
        scratch.resize(cmd.threadgroup_memory_length);
      }
      GroupContext ctx;
      ctx.threadgroup_position_in_grid = group_coord(gi);
      ctx.threads_per_threadgroup = shape.threads_per_threadgroup;
      ctx.threadgroups_per_grid = groups;
      ctx.threadgroup_memory = {scratch.data(), cmd.threadgroup_memory_length};
      body(cmd.arguments, ctx);
    });
    return;
  }

  const auto& body = std::get<ThreadKernelFn>(kernel.body);
  const UInt3 tpg = shape.threads_per_threadgroup;
  util::global_pool().parallel_for(group_count, [&](std::size_t gi) {
    const UInt3 g = group_coord(gi);
    ThreadContext ctx;
    ctx.threadgroup_position_in_grid = g;
    ctx.threads_per_threadgroup = tpg;
    ctx.threadgroups_per_grid = groups;
    for (std::uint32_t tz = 0; tz < tpg.z; ++tz) {
      for (std::uint32_t ty = 0; ty < tpg.y; ++ty) {
        for (std::uint32_t tx = 0; tx < tpg.x; ++tx) {
          ctx.thread_position_in_threadgroup = {tx, ty, tz};
          ctx.thread_position_in_grid = {g.x * tpg.x + tx, g.y * tpg.y + ty,
                                         g.z * tpg.z + tz};
          body(cmd.arguments, ctx);
        }
      }
    }
  });
}

}  // namespace

CommandBuffer::CommandBuffer(CommandQueue* queue) : queue_(queue) {}

Device& CommandBuffer::device() { return queue_->device(); }

std::shared_ptr<ComputeCommandEncoder> CommandBuffer::compute_command_encoder() {
  if (status_ != Status::kNotEnqueued) {
    throw util::StateError("cannot encode into a committed command buffer");
  }
  if (encoder_open_) {
    throw util::StateError("a compute command encoder is already open");
  }
  encoder_open_ = true;
  return std::shared_ptr<ComputeCommandEncoder>(
      new ComputeCommandEncoder(shared_from_this()));
}

void CommandBuffer::commit() {
  if (status_ != Status::kNotEnqueued) {
    throw util::StateError("command buffer was already committed");
  }
  if (encoder_open_) {
    throw util::StateError("commit with an open encoder: call end_encoding first");
  }
  status_ = Status::kCommitted;

  soc::Soc& soc = device().soc();
  const soc::PerfModel& perf = device().perf();
  start_ns_ = soc.clock().now();

  for (const DispatchCommand& cmd : commands_) {
    if (cmd.functional) {
      run_functional(cmd);
    }

    const WorkEstimate est =
        cmd.pipeline->kernel().estimator(cmd.arguments, cmd.shape);
    double time_ns = 0.0;
    double watts = 0.0;
    double utilization = 0.5;
    switch (est.timing) {
      case WorkEstimate::Timing::kGeneric:
        time_ns =
            perf.gpu_kernel_time_ns(est.flops, est.bytes, est.compute_efficiency);
        watts = perf.gpu_kernel_power_watts();
        break;
      case WorkEstimate::Timing::kGemm:
        time_ns = perf.gemm_time_ns(est.gemm_impl, est.gemm_n);
        watts = perf.gemm_power_watts(est.gemm_impl, est.gemm_n);
        utilization = perf.gemm_utilization(est.gemm_impl, est.gemm_n);
        break;
      case WorkEstimate::Timing::kStream:
        time_ns = perf.stream_time_ns(soc::MemoryAgent::kGpu, est.stream_kernel,
                                      est.stream_bytes, /*threads=*/1);
        watts = perf.stream_power_watts(soc::MemoryAgent::kGpu);
        utilization = 0.6;
        break;
    }
    soc.execute(soc::ComputeUnit::kGpu, time_ns, watts, utilization);
  }

  end_ns_ = soc.clock().now();
  status_ = Status::kCompleted;
  ++queue_->buffers_completed_;
}

void CommandBuffer::wait_until_completed() {
  if (status_ == Status::kNotEnqueued) {
    throw util::StateError("waitUntilCompleted before commit");
  }
  // commit() executes synchronously; by the time it returns the buffer is
  // complete, so this is a state check, mirroring Metal's blocking wait.
}

double CommandBuffer::gpu_time_ns() const {
  AO_REQUIRE(status_ == Status::kCompleted,
             "gpu_time_ns is only valid on a completed command buffer");
  return static_cast<double>(end_ns_ - start_ns_);
}

}  // namespace ao::metal
