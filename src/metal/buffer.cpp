#include "metal/buffer.hpp"

#include "metal/device.hpp"
#include "util/aligned_buffer.hpp"
#include "util/error.hpp"

namespace ao::metal {

Buffer::Buffer(Device* device, std::unique_ptr<mem::Region> region,
               mem::StorageMode mode)
    : device_(device),
      region_(std::move(region)),
      data_(region_->data()),
      length_(region_->length()),
      mode_(mode) {}

Buffer::Buffer(Device* device, void* wrapped, std::size_t length,
               mem::StorageMode mode)
    : device_(device), data_(wrapped), length_(length), mode_(mode) {}

Buffer::~Buffer() = default;

void* Buffer::contents() {
  if (!mem::cpu_accessible(mode_)) {
    throw util::StateError(
        "contents() on a private buffer: MTLResourceStorageModePrivate memory "
        "is not CPU-accessible");
  }
  return data_;
}

const void* Buffer::contents() const {
  return const_cast<Buffer*>(this)->contents();
}

}  // namespace ao::metal
