#include "metal/argument_table.hpp"

#include "metal/buffer.hpp"

namespace ao::metal {

void ArgumentTable::set_buffer(std::size_t index, Buffer* buffer,
                               std::size_t offset) {
  AO_REQUIRE(buffer != nullptr, "cannot bind a null buffer");
  AO_REQUIRE(offset < buffer->length(), "buffer offset out of range");
  Slot& s = mutable_slot(index);
  s.kind = Slot::Kind::kBuffer;
  s.buffer = buffer;
  s.offset = offset;
  s.bytes.clear();
}

void ArgumentTable::set_bytes(std::size_t index, const void* data,
                              std::size_t length) {
  AO_REQUIRE(data != nullptr && length > 0, "setBytes needs data");
  // Metal limits setBytes payloads to 4 KiB.
  AO_REQUIRE(length <= 4096, "inline constants limited to 4 KiB (use a buffer)");
  Slot& s = mutable_slot(index);
  s.kind = Slot::Kind::kBytes;
  s.buffer = nullptr;
  s.offset = 0;
  s.bytes.resize(length);
  std::memcpy(s.bytes.data(), data, length);
}

bool ArgumentTable::has_slot(std::size_t index) const {
  return index < slots_.size() && slots_[index].kind != Slot::Kind::kEmpty;
}

Buffer* ArgumentTable::buffer(std::size_t index) const {
  const Slot& s = slot(index);
  AO_REQUIRE(s.kind == Slot::Kind::kBuffer, "slot does not hold a buffer");
  return s.buffer;
}

std::size_t ArgumentTable::buffer_offset(std::size_t index) const {
  const Slot& s = slot(index);
  AO_REQUIRE(s.kind == Slot::Kind::kBuffer, "slot does not hold a buffer");
  return s.offset;
}

const ArgumentTable::Slot& ArgumentTable::slot(std::size_t index) const {
  AO_REQUIRE(index < slots_.size() && slots_[index].kind != Slot::Kind::kEmpty,
             "argument slot " + std::to_string(index) + " is not bound");
  return slots_[index];
}

ArgumentTable::Slot& ArgumentTable::mutable_slot(std::size_t index) {
  AO_REQUIRE(index < kMaxSlots, "argument slot index exceeds Metal's limit");
  if (index >= slots_.size()) {
    slots_.resize(index + 1);
  }
  return slots_[index];
}

template <typename T>
T* ArgumentTable::buffer_data(std::size_t index) const {
  const Slot& s = slot(index);
  AO_REQUIRE(s.kind == Slot::Kind::kBuffer, "slot does not hold a buffer");
  auto* base = static_cast<std::byte*>(s.buffer->gpu_contents());
  return reinterpret_cast<T*>(base + s.offset);
}

// The kernels in this repository bind FP32 and byte data.
template float* ArgumentTable::buffer_data<float>(std::size_t) const;
template const float* ArgumentTable::buffer_data<const float>(std::size_t) const;
template double* ArgumentTable::buffer_data<double>(std::size_t) const;
template const double* ArgumentTable::buffer_data<const double>(std::size_t) const;
template std::uint32_t* ArgumentTable::buffer_data<std::uint32_t>(std::size_t) const;
template std::byte* ArgumentTable::buffer_data<std::byte>(std::size_t) const;

}  // namespace ao::metal
