#pragma once

#include <functional>
#include <string>
#include <variant>

#include "metal/argument_table.hpp"
#include "metal/shader_types.hpp"
#include "soc/benchmark_taxonomy.hpp"

namespace ao::metal {

/// How the simulator prices a dispatch of this kernel. The calibrated GEMM
/// and STREAM paths route to their dedicated anchors (Figures 1-2); anything
/// else takes the generic GPU roofline.
struct WorkEstimate {
  enum class Timing { kGeneric, kGemm, kStream };

  Timing timing = Timing::kGeneric;

  // kGeneric
  double flops = 0.0;
  double bytes = 0.0;
  double compute_efficiency = 0.60;

  // kGemm
  soc::GemmImpl gemm_impl = soc::GemmImpl::kGpuNaive;
  std::size_t gemm_n = 0;

  // kStream
  soc::StreamKernel stream_kernel = soc::StreamKernel::kCopy;
  std::uint64_t stream_bytes = 0;

  static WorkEstimate generic(double flops, double bytes,
                              double efficiency = 0.60);
  static WorkEstimate gemm(soc::GemmImpl impl, std::size_t n);
  static WorkEstimate stream(soc::StreamKernel kernel, std::uint64_t bytes);
};

/// Per-thread kernel body (no threadgroup memory / barriers): STREAM kernels
/// and the naive GEMM shader.
using ThreadKernelFn =
    std::function<void(const ArgumentTable&, const ThreadContext&)>;

/// Per-threadgroup kernel body (threadgroup memory + barrier phases): the
/// Cutlass-style tiled GEMM shader. See GroupContext for the execution
/// contract.
using GroupKernelFn =
    std::function<void(const ArgumentTable&, const GroupContext&)>;

/// Cost estimator invoked at commit time with the bound arguments and the
/// dispatch geometry.
using WorkEstimator =
    std::function<WorkEstimate(const ArgumentTable&, const DispatchShape&)>;

/// A compiled compute function — the .metallib entry the paper's benchmarks
/// load by name before dispatching.
struct Kernel {
  std::string name;
  std::variant<ThreadKernelFn, GroupKernelFn> body;
  WorkEstimator estimator;

  bool is_group_kernel() const {
    return std::holds_alternative<GroupKernelFn>(body);
  }
};

}  // namespace ao::metal
