#include "metal/device.hpp"

#include "util/error.hpp"

namespace ao::metal {

Device::Device(soc::Soc& soc, mem::UnifiedMemory& memory)
    : soc_(&soc), memory_(&memory), perf_(soc) {}

std::string Device::name() const { return "Apple " + soc_->spec().name; }

CommandQueuePtr Device::new_command_queue() {
  return CommandQueuePtr(new CommandQueue(this));
}

BufferPtr Device::new_buffer(std::size_t length, mem::StorageMode mode) {
  AO_REQUIRE(mode != mem::StorageMode::kCpuMalloc,
             "Metal buffers require a Metal storage mode");
  auto region = memory_->allocate(length, mode);
  return BufferPtr(new Buffer(this, std::move(region), mode));
}

BufferPtr Device::new_buffer_with_bytes_no_copy(void* pointer, std::size_t length,
                                                mem::StorageMode mode) {
  AO_REQUIRE(pointer != nullptr, "no-copy buffer needs a pointer");
  AO_REQUIRE(mode == mem::StorageMode::kShared || mode == mem::StorageMode::kManaged,
             "newBufferWithBytesNoCopy requires shared (or managed) storage");
  if (!util::AlignedBuffer::is_aligned(pointer, mem::UnifiedMemory::kPageSize)) {
    throw util::InvalidArgument(
        "newBufferWithBytesNoCopy: pointer is not page-aligned (16384 B)");
  }
  if (length == 0 || length % mem::UnifiedMemory::kPageSize != 0) {
    throw util::InvalidArgument(
        "newBufferWithBytesNoCopy: length must be a positive multiple of the "
        "16384-byte page size");
  }
  return BufferPtr(new Buffer(this, pointer, length, mode));
}

ComputePipelineStatePtr Device::new_compute_pipeline_state(const Kernel& kernel) {
  return ComputePipelineStatePtr(new ComputePipelineState(this, kernel));
}

ComputePipelineStatePtr Device::new_compute_pipeline_state(
    const Library& library, const std::string& name) {
  return new_compute_pipeline_state(library.function(name));
}

}  // namespace ao::metal
