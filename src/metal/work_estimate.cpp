#include "metal/kernel.hpp"

namespace ao::metal {

WorkEstimate WorkEstimate::generic(double flops, double bytes, double efficiency) {
  WorkEstimate e;
  e.timing = Timing::kGeneric;
  e.flops = flops;
  e.bytes = bytes;
  e.compute_efficiency = efficiency;
  return e;
}

WorkEstimate WorkEstimate::gemm(soc::GemmImpl impl, std::size_t n) {
  WorkEstimate e;
  e.timing = Timing::kGemm;
  e.gemm_impl = impl;
  e.gemm_n = n;
  return e;
}

WorkEstimate WorkEstimate::stream(soc::StreamKernel kernel, std::uint64_t bytes) {
  WorkEstimate e;
  e.timing = Timing::kStream;
  e.stream_kernel = kernel;
  e.stream_bytes = bytes;
  return e;
}

}  // namespace ao::metal
