#include "metal/compute_command_encoder.hpp"

#include "metal/device.hpp"
#include "util/error.hpp"

namespace ao::metal {

ComputeCommandEncoder::ComputeCommandEncoder(std::shared_ptr<CommandBuffer> buffer)
    : buffer_(std::move(buffer)) {}

void ComputeCommandEncoder::set_compute_pipeline_state(
    ComputePipelineStatePtr pipeline) {
  AO_REQUIRE(pipeline != nullptr, "null pipeline state");
  AO_REQUIRE(is_open(), "encoder already ended");
  pipeline_ = std::move(pipeline);
}

void ComputeCommandEncoder::set_buffer(Buffer* buffer, std::size_t offset,
                                       std::size_t index) {
  AO_REQUIRE(is_open(), "encoder already ended");
  arguments_.set_buffer(index, buffer, offset);
}

void ComputeCommandEncoder::set_bytes(const void* bytes, std::size_t length,
                                      std::size_t index) {
  AO_REQUIRE(is_open(), "encoder already ended");
  arguments_.set_bytes(index, bytes, length);
}

void ComputeCommandEncoder::set_threadgroup_memory_length(std::size_t length) {
  AO_REQUIRE(is_open(), "encoder already ended");
  AO_REQUIRE(length <= ComputePipelineState::kMaxThreadgroupMemory,
             "threadgroup memory exceeds the 32 KiB budget");
  threadgroup_memory_length_ = length;
}

void ComputeCommandEncoder::dispatch_threadgroups(UInt3 threadgroups_per_grid,
                                                  UInt3 threads_per_threadgroup) {
  AO_REQUIRE(is_open(), "encoder already ended");
  AO_REQUIRE(pipeline_ != nullptr, "no pipeline state set before dispatch");
  AO_REQUIRE(threadgroups_per_grid.volume() > 0, "empty threadgroup grid");
  AO_REQUIRE(threads_per_threadgroup.volume() > 0, "empty threadgroup");
  AO_REQUIRE(threads_per_threadgroup.volume() <=
                 pipeline_->max_total_threads_per_threadgroup(),
             "threadgroup exceeds maxTotalThreadsPerThreadgroup");
  DispatchCommand cmd;
  cmd.pipeline = pipeline_;
  cmd.arguments = arguments_;
  cmd.shape = {threadgroups_per_grid, threads_per_threadgroup};
  cmd.threadgroup_memory_length = threadgroup_memory_length_;
  cmd.functional = functional_;
  buffer_->commands_.push_back(std::move(cmd));
}

void ComputeCommandEncoder::dispatch_threads(UInt3 threads_per_grid,
                                             UInt3 threads_per_threadgroup) {
  AO_REQUIRE(threads_per_threadgroup.volume() > 0, "empty threadgroup");
  auto div_up = [](std::uint32_t a, std::uint32_t b) { return (a + b - 1) / b; };
  const UInt3 groups = {div_up(threads_per_grid.x, threads_per_threadgroup.x),
                        div_up(threads_per_grid.y, threads_per_threadgroup.y),
                        div_up(threads_per_grid.z, threads_per_threadgroup.z)};
  dispatch_threadgroups(groups, threads_per_threadgroup);
}

void ComputeCommandEncoder::end_encoding() {
  AO_REQUIRE(is_open(), "end_encoding called twice");
  open_ = false;
  buffer_->encoder_open_ = false;
}

}  // namespace ao::metal
