#include "metal/library.hpp"

#include "util/error.hpp"

namespace ao::metal {

Library::Library(std::string name) : name_(std::move(name)) {}

void Library::add(Kernel kernel) {
  AO_REQUIRE(!kernel.name.empty(), "kernel must have a name");
  AO_REQUIRE(static_cast<bool>(kernel.estimator),
             "kernel must provide a work estimator");
  const auto [it, inserted] = kernels_.emplace(kernel.name, std::move(kernel));
  (void)it;
  AO_REQUIRE(inserted, "duplicate kernel name in library");
}

bool Library::contains(const std::string& kernel_name) const {
  return kernels_.count(kernel_name) != 0;
}

const Kernel& Library::function(const std::string& kernel_name) const {
  const auto it = kernels_.find(kernel_name);
  if (it == kernels_.end()) {
    throw util::InvalidArgument("no kernel named '" + kernel_name +
                                "' in library '" + name_ + "'");
  }
  return it->second;
}

std::vector<std::string> Library::function_names() const {
  std::vector<std::string> names;
  names.reserve(kernels_.size());
  for (const auto& [name, kernel] : kernels_) {
    (void)kernel;
    names.push_back(name);
  }
  return names;
}

}  // namespace ao::metal
