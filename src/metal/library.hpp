#pragma once

#include <map>
#include <string>
#include <vector>

#include "metal/kernel.hpp"

namespace ao::metal {

/// MTLLibrary equivalent: a named collection of compiled kernels. The
/// paper's shaders are "compiled into a .metallib library ... then loaded by
/// their respective implementations on startup"; here a Library is built
/// from Kernel descriptors (ao::shaders provides the default library) and
/// functions are looked up by name, as with newFunctionWithName:.
class Library {
 public:
  Library() = default;
  explicit Library(std::string name);

  const std::string& name() const { return name_; }

  /// Registers a kernel; duplicate names are rejected.
  void add(Kernel kernel);

  bool contains(const std::string& kernel_name) const;

  /// newFunctionWithName: — throws InvalidArgument for unknown names.
  const Kernel& function(const std::string& kernel_name) const;

  std::vector<std::string> function_names() const;
  std::size_t size() const { return kernels_.size(); }

 private:
  std::string name_ = "default";
  std::map<std::string, Kernel> kernels_;
};

}  // namespace ao::metal
