#pragma once

#include <memory>
#include <string>
#include <vector>

#include "metal/argument_table.hpp"
#include "metal/compute_pipeline.hpp"
#include "metal/shader_types.hpp"

namespace ao::metal {

class CommandQueue;
class Device;
class ComputeCommandEncoder;

/// One recorded compute dispatch.
struct DispatchCommand {
  ComputePipelineStatePtr pipeline;
  ArgumentTable arguments;
  DispatchShape shape;
  std::size_t threadgroup_memory_length = 0;
  /// When false the functional body is skipped (timing is still modeled).
  /// The GEMM drivers disable functional execution for problem sizes whose
  /// O(n^3) host cost would dwarf the simulation (the paper itself skips the
  /// slowest CPU paths at n >= 8192).
  bool functional = true;
};

/// MTLCommandBuffer equivalent with the same lifecycle the paper's listings
/// use: create from a queue, encode dispatches, commit, waitUntilCompleted.
class CommandBuffer : public std::enable_shared_from_this<CommandBuffer> {
 public:
  enum class Status { kNotEnqueued, kCommitted, kCompleted };

  /// computeCommandEncoder — begins encoding. Only one encoder may be open
  /// at a time.
  std::shared_ptr<ComputeCommandEncoder> compute_command_encoder();

  /// commit — submits the recorded work. Executes the dispatches on the
  /// simulated GPU: functional bodies run on the host pool; simulated time
  /// and power are charged to the SoC per the work estimates.
  void commit();

  /// waitUntilCompleted — blocks until execution finished. (Execution is
  /// synchronous inside commit(), so this validates state and returns.)
  void wait_until_completed();

  Status status() const { return status_; }

  /// Simulated GPU time consumed by this command buffer, ns (valid once
  /// completed) — the interval between its scheduled start and end on the
  /// simulated timeline.
  double gpu_time_ns() const;

  Device& device();

 private:
  friend class CommandQueue;
  friend class ComputeCommandEncoder;
  explicit CommandBuffer(CommandQueue* queue);

  CommandQueue* queue_;
  std::vector<DispatchCommand> commands_;
  bool encoder_open_ = false;
  Status status_ = Status::kNotEnqueued;
  std::uint64_t start_ns_ = 0;
  std::uint64_t end_ns_ = 0;
};

using CommandBufferPtr = std::shared_ptr<CommandBuffer>;

}  // namespace ao::metal
