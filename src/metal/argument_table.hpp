#pragma once

#include <cstddef>
#include <cstring>
#include <vector>

#include "util/error.hpp"

namespace ao::metal {

class Buffer;

/// The argument bindings of one dispatch: buffers set with setBuffer:offset:
/// atIndex: and inline constants set with setBytes:length:atIndex:. Kernels
/// read their inputs through this table, exactly as MSL kernels receive
/// device pointers and constant references by buffer index.
class ArgumentTable {
 public:
  static constexpr std::size_t kMaxSlots = 31;  // Metal's buffer-slot budget

  void set_buffer(std::size_t index, Buffer* buffer, std::size_t offset = 0);
  void set_bytes(std::size_t index, const void* data, std::size_t length);

  template <typename T>
  void set_value(std::size_t index, const T& value) {
    set_bytes(index, &value, sizeof(T));
  }

  bool has_slot(std::size_t index) const;

  /// The buffer bound at `index` (throws if the slot holds inline bytes or
  /// nothing).
  Buffer* buffer(std::size_t index) const;
  std::size_t buffer_offset(std::size_t index) const;

  /// Typed pointer into the bound buffer's contents (+offset).
  template <typename T>
  T* buffer_data(std::size_t index) const;

  /// Inline-constant accessor (setBytes slot).
  template <typename T>
  T value(std::size_t index) const {
    const Slot& s = slot(index);
    AO_REQUIRE(s.kind == Slot::Kind::kBytes, "slot does not hold inline bytes");
    AO_REQUIRE(s.bytes.size() == sizeof(T), "inline byte length mismatch");
    T out;
    std::memcpy(&out, s.bytes.data(), sizeof(T));
    return out;
  }

 private:
  struct Slot {
    enum class Kind { kEmpty, kBuffer, kBytes };
    Kind kind = Kind::kEmpty;
    Buffer* buffer = nullptr;
    std::size_t offset = 0;
    std::vector<std::byte> bytes;
  };

  const Slot& slot(std::size_t index) const;
  Slot& mutable_slot(std::size_t index);

  std::vector<Slot> slots_;
};

}  // namespace ao::metal
