#pragma once

#include <memory>
#include <string>

#include "mem/unified_memory.hpp"
#include "metal/buffer.hpp"
#include "metal/command_queue.hpp"
#include "metal/compute_pipeline.hpp"
#include "metal/library.hpp"
#include "soc/perf_model.hpp"
#include "soc/soc.hpp"

namespace ao::metal {

/// MTLDevice equivalent: the GPU of one simulated SoC.
///
/// Creation mirrors MTLCreateSystemDefaultDevice(): a Device is obtained
/// from the SoC it belongs to and hands out queues, buffers and pipeline
/// states. All simulated GPU time/energy flows through the SoC the device
/// wraps.
class Device {
 public:
  /// `memory` is the SoC's unified memory pool; both must outlive the device.
  Device(soc::Soc& soc, mem::UnifiedMemory& memory);

  /// Device name as Metal reports it ("Apple M1", ...).
  std::string name() const;

  soc::Soc& soc() { return *soc_; }
  const soc::Soc& soc() const { return *soc_; }
  mem::UnifiedMemory& memory() { return *memory_; }
  const soc::PerfModel& perf() const { return perf_; }

  /// newCommandQueue
  CommandQueuePtr new_command_queue();

  /// newBufferWithLength:options: — device-allocated unified memory.
  BufferPtr new_buffer(std::size_t length, mem::StorageMode mode);

  /// newBufferWithBytesNoCopy:length:options:deallocator: — wraps caller
  /// memory zero-copy. Enforces Metal's rules: page-aligned pointer,
  /// page-multiple length, and a storage mode the GPU can map (kPrivate
  /// cannot wrap host memory).
  BufferPtr new_buffer_with_bytes_no_copy(void* pointer, std::size_t length,
                                          mem::StorageMode mode);

  /// newComputePipelineStateWithFunction:
  ComputePipelineStatePtr new_compute_pipeline_state(const Kernel& kernel);

  /// Convenience: look the function up in `library` first.
  ComputePipelineStatePtr new_compute_pipeline_state(const Library& library,
                                                     const std::string& name);

  /// Number of GPU cores of this device (base model, fully enabled).
  int gpu_core_count() const { return soc_->spec().gpu_cores_max; }

 private:
  soc::Soc* soc_;
  mem::UnifiedMemory* memory_;
  soc::PerfModel perf_;
};

}  // namespace ao::metal
