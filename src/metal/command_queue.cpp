#include "metal/command_queue.hpp"

namespace ao::metal {

CommandBufferPtr CommandQueue::command_buffer() {
  ++buffers_created_;
  return CommandBufferPtr(new CommandBuffer(this));
}

}  // namespace ao::metal
