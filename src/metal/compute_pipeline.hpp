#pragma once

#include <memory>

#include "metal/kernel.hpp"

namespace ao::metal {

class Device;

/// MTLComputePipelineState equivalent: a kernel prepared for dispatch on a
/// device, exposing the execution-width limits the paper's shaders query
/// when choosing threadgroup sizes.
class ComputePipelineState {
 public:
  const Kernel& kernel() const { return kernel_; }
  Device& device() { return *device_; }

  /// Hardware limit on threads per threadgroup (1024 on Apple GPUs).
  std::uint32_t max_total_threads_per_threadgroup() const { return 1024; }

  /// SIMD-group width (32 on Apple GPUs).
  std::uint32_t thread_execution_width() const { return 32; }

  /// Metal's per-threadgroup memory budget (32 KiB).
  static constexpr std::size_t kMaxThreadgroupMemory = 32 * 1024;

 private:
  friend class Device;
  ComputePipelineState(Device* device, Kernel kernel)
      : device_(device), kernel_(std::move(kernel)) {}

  Device* device_;
  Kernel kernel_;
};

using ComputePipelineStatePtr = std::shared_ptr<ComputePipelineState>;

}  // namespace ao::metal
