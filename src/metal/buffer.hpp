#pragma once

#include <cstddef>
#include <memory>

#include "mem/storage_mode.hpp"
#include "mem/unified_memory.hpp"

namespace ao::metal {

class Device;

/// MTLBuffer equivalent.
///
/// Two creation paths, as in Metal:
///  - Device::new_buffer(length, mode): the device allocates unified memory.
///  - Device::new_buffer_with_bytes_no_copy(ptr, length, mode): wraps caller
///    memory zero-copy. Metal requires the pointer to be page-aligned and
///    the length a whole number of pages; the same rule is enforced here.
///    This is the path the paper uses for every matrix ("an MTL-shared
///    no-copy buffer is made to wrap around the matrix data").
class Buffer {
 public:
  ~Buffer();
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  std::size_t length() const { return length_; }
  mem::StorageMode storage_mode() const { return mode_; }
  Device& device() { return *device_; }

  /// Host pointer to the buffer contents, as MTLBuffer.contents. Throws
  /// StateError for kPrivate buffers, which the CPU must not touch.
  void* contents();
  const void* contents() const;

  /// Internal accessor for the GPU simulator: bypasses the CPU-visibility
  /// rule (the simulated GPU *is* host code).
  void* gpu_contents() { return data_; }
  const void* gpu_contents() const { return data_; }

  /// True if this buffer wraps caller-owned memory (no-copy).
  bool is_no_copy() const { return region_ == nullptr; }

 private:
  friend class Device;
  Buffer(Device* device, std::unique_ptr<mem::Region> region,
         mem::StorageMode mode);
  Buffer(Device* device, void* wrapped, std::size_t length,
         mem::StorageMode mode);

  Device* device_;
  std::unique_ptr<mem::Region> region_;  ///< null when wrapping no-copy
  void* data_;
  std::size_t length_;
  mem::StorageMode mode_;
};

using BufferPtr = std::shared_ptr<Buffer>;

}  // namespace ao::metal
