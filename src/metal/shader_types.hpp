#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ao::metal {

/// MSL-style 3-component unsigned vector (thread coordinates).
struct UInt3 {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint32_t z = 0;

  constexpr std::uint64_t volume() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
  friend constexpr bool operator==(const UInt3&, const UInt3&) = default;
};

/// MSL spelling, for kernels ported from Metal Shading Language.
using uint3 = UInt3;

/// Per-thread coordinates handed to a ThreadKernel — the attributes MSL
/// exposes as [[thread_position_in_grid]] and friends.
struct ThreadContext {
  UInt3 thread_position_in_grid;
  UInt3 thread_position_in_threadgroup;
  UInt3 threadgroup_position_in_grid;
  UInt3 threads_per_threadgroup;
  UInt3 threadgroups_per_grid;
};

/// Per-threadgroup coordinates handed to a GroupKernel.
///
/// The host-side simulator executes one threadgroup per worker task. Kernels
/// that need `threadgroup` shared memory and barrier phases (the Cutlass-
/// style tiled GEMM) are authored at threadgroup granularity: the kernel body
/// loops over the group's threads in explicit phases, each phase boundary
/// corresponding to a threadgroup_barrier(mem_flags::mem_threadgroup) in the
/// original MSL. This preserves the algorithm's structure and its shared-
/// memory blocking while staying executable on host threads.
struct GroupContext {
  UInt3 threadgroup_position_in_grid;
  UInt3 threads_per_threadgroup;
  UInt3 threadgroups_per_grid;
  /// Scratch equivalent to MSL `threadgroup` memory; sized by
  /// ComputeCommandEncoder::set_threadgroup_memory_length.
  std::span<std::byte> threadgroup_memory;

  template <typename T>
  std::span<T> threadgroup_span() const {
    return {reinterpret_cast<T*>(threadgroup_memory.data()),
            threadgroup_memory.size() / sizeof(T)};
  }
};

/// Dispatch geometry (dispatchThreadgroups:threadsPerThreadgroup:).
struct DispatchShape {
  UInt3 threadgroups_per_grid;
  UInt3 threads_per_threadgroup;

  std::uint64_t total_threadgroups() const {
    return threadgroups_per_grid.volume();
  }
  std::uint64_t total_threads() const {
    return threadgroups_per_grid.volume() * threads_per_threadgroup.volume();
  }
};

}  // namespace ao::metal
