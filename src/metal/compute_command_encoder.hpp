#pragma once

#include <memory>

#include "metal/command_buffer.hpp"

namespace ao::metal {

/// MTLComputeCommandEncoder equivalent: binds a pipeline and arguments, then
/// records dispatches into its command buffer.
class ComputeCommandEncoder {
 public:
  /// setComputePipelineState:
  void set_compute_pipeline_state(ComputePipelineStatePtr pipeline);

  /// setBuffer:offset:atIndex:
  void set_buffer(Buffer* buffer, std::size_t offset, std::size_t index);

  /// setBytes:length:atIndex:
  void set_bytes(const void* bytes, std::size_t length, std::size_t index);

  template <typename T>
  void set_value(const T& value, std::size_t index) {
    set_bytes(&value, sizeof(T), index);
  }

  /// setThreadgroupMemoryLength:atIndex: (single scratch slot supported).
  void set_threadgroup_memory_length(std::size_t length);

  /// Disables functional execution for subsequent dispatches (model-only).
  void set_functional_execution(bool enabled) { functional_ = enabled; }

  /// dispatchThreadgroups:threadsPerThreadgroup:
  void dispatch_threadgroups(UInt3 threadgroups_per_grid,
                             UInt3 threads_per_threadgroup);

  /// dispatchThreads:threadsPerThreadgroup: (grid-size variant; Metal rounds
  /// coverage via partial threadgroups — the simulator requires kernels to
  /// bounds-check, as MSL kernels must).
  void dispatch_threads(UInt3 threads_per_grid, UInt3 threads_per_threadgroup);

  /// endEncoding
  void end_encoding();

  bool is_open() const { return open_; }

 private:
  friend class CommandBuffer;
  explicit ComputeCommandEncoder(std::shared_ptr<CommandBuffer> buffer);

  std::shared_ptr<CommandBuffer> buffer_;
  ComputePipelineStatePtr pipeline_;
  ArgumentTable arguments_;
  std::size_t threadgroup_memory_length_ = 0;
  bool functional_ = true;
  bool open_ = true;
};

}  // namespace ao::metal
