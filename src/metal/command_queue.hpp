#pragma once

#include <cstdint>
#include <memory>

#include "metal/command_buffer.hpp"

namespace ao::metal {

class Device;

/// MTLCommandQueue equivalent. Command buffers created from one queue
/// execute in commit order (the simulated timeline advances monotonically,
/// which serializes them naturally).
class CommandQueue {
 public:
  /// commandBuffer — creates a fresh command buffer.
  CommandBufferPtr command_buffer();

  Device& device() { return *device_; }

  std::uint64_t buffers_created() const { return buffers_created_; }
  std::uint64_t buffers_completed() const { return buffers_completed_; }

 private:
  friend class Device;
  friend class CommandBuffer;
  explicit CommandQueue(Device* device) : device_(device) {}

  Device* device_;
  std::uint64_t buffers_created_ = 0;
  std::uint64_t buffers_completed_ = 0;
};

using CommandQueuePtr = std::shared_ptr<CommandQueue>;

}  // namespace ao::metal
