// Ablation A1: the M2 CPU Copy/Scale anomaly (paper Section 5.1).
//
// "The M2 CPU deviates with a 20-30 GB/s gap comparing the Copy and Scale to
// other kernels ... Since the theoretical peaks on M2 and M3 are the same
// and GPU-based kernels can achieve the same bandwidth on these two chips,
// CPU-to-memory connectivity is likely less efficient."
//
// This bench isolates the effect: per-kernel CPU bandwidth on every chip,
// the Copy-vs-Triad gap, and the same kernels on the GPU agent showing no
// gap — the paper's evidence that the anomaly lives in the CPU link.

#include <iostream>

#include "core/system.hpp"
#include "stream/cpu_stream.hpp"
#include "stream/gpu_stream.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

int main() {
  using namespace ao;

  util::TablePrinter table({"Chip", "Agent", "Copy", "Scale", "Add", "Triad",
                            "Triad-Copy gap", "Gap %"});
  for (const auto chip : soc::kAllChipModels) {
    core::System system(chip);

    stream::CpuStream cpu(system.soc(), 1u << 20);
    const auto sweep = cpu.sweep(/*repetitions=*/5);
    const auto& c = sweep.best_gbs_per_kernel;
    const double cpu_gap = c[3] - c[0];
    table.add_row({soc::to_string(chip), "CPU", util::format_fixed(c[0], 1),
                   util::format_fixed(c[1], 1), util::format_fixed(c[2], 1),
                   util::format_fixed(c[3], 1),
                   util::format_fixed(cpu_gap, 1) + " GB/s",
                   util::format_fixed(cpu_gap / c[3] * 100.0, 1) + "%"});

    stream::GpuStream gpu(system.device(), 1u << 22);
    const auto run = gpu.run(/*repetitions=*/5);
    const double g0 = run.kernels[0].best_gbs;
    const double g3 = run.kernels[3].best_gbs;
    table.add_row({soc::to_string(chip), "GPU",
                   util::format_fixed(run.kernels[0].best_gbs, 1),
                   util::format_fixed(run.kernels[1].best_gbs, 1),
                   util::format_fixed(run.kernels[2].best_gbs, 1),
                   util::format_fixed(run.kernels[3].best_gbs, 1),
                   util::format_fixed(g3 - g0, 1) + " GB/s",
                   util::format_fixed((g3 - g0) / g3 * 100.0, 1) + "%"});
  }
  table.print(std::cout,
              "Ablation A1: M2 CPU Copy/Scale anomaly (paper Section 5.1)");

  std::cout << "\nReading: only the M2 CPU row shows a 20-30 GB/s deficit on "
               "Copy/Scale; its GPU row does not, pointing at CPU-to-memory "
               "connectivity (the paper could not explain the root cause; "
               "the model encodes the observation, not a mechanism).\n";
  return 0;
}
