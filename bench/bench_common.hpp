#pragma once

#include <iostream>
#include <vector>

#include "core/system.hpp"
#include "harness/experiment.hpp"
#include "harness/matrix_workload.hpp"
#include "orchestrator/campaign.hpp"

namespace ao::bench {

/// The figure benches' shared experiment configuration: the paper's five
/// repetitions, power sampling on, model-only execution (figures cover n up
/// to 16384, where host-side O(n^3) would dominate the run).
inline harness::GemmExperiment::Options model_sweep_options(
    int repetitions = 5) {
  harness::GemmExperiment::Options opts;
  opts.repetitions = repetitions;
  for (auto& [impl, ceiling] : opts.functional_n_max) {
    ceiling = 0;
  }
  return opts;
}

/// Runs the paper's full GEMM sweep (all implementations x all sizes x all
/// chips) through the orchestrator: one campaign, all four chips measured
/// concurrently, batched per-size operands, results in canonical
/// (chip, n, impl) order. Pass a ResultCache to share points across
/// campaigns within one process.
inline std::vector<harness::GemmMeasurement> model_sweep(
    int repetitions = 5, orchestrator::ResultCache* cache = nullptr) {
  orchestrator::Campaign campaign;
  campaign.options(model_sweep_options(repetitions)).cache(cache);
  const auto result = campaign.run();
  std::cerr << "[campaign] " << result.stats.jobs_total << " jobs, "
            << result.stats.jobs_executed << " executed, "
            << result.stats.cache_hits << " from cache, "
            << result.stats.batches_allocated << " operand batches, "
            << result.stats.systems_built << " simulated systems\n";
  return result.gemm;
}

/// Functional spot-check at a small size: verifies every implementation
/// against the reference before the model sweep is reported. Prints one
/// status line; aborts if any implementation is wrong.
inline void verify_implementations(std::size_t n = 128) {
  core::System system(soc::ChipModel::kM1);
  harness::GemmExperiment::Options opts;
  opts.repetitions = 1;
  opts.verify_n_max = n;
  harness::GemmExperiment experiment(system.gemm_context(), opts);
  harness::MatrixSet matrices(n, true);
  for (const auto kind : soc::kAllGemmImpls) {
    auto impl = gemm::create_gemm(kind, system.gemm_context());
    matrices.clear_out();
    const auto m = experiment.measure(*impl, matrices);
    if (!m.verified) {
      std::cerr << "FATAL: " << soc::to_string(kind)
                << " failed verification at n=" << n
                << " (max error " << m.max_error << ")\n";
      std::exit(1);
    }
  }
  std::cout << "[verify] all 6 implementations match the reference SGEMM at n="
            << n << "\n\n";
}

}  // namespace ao::bench
