#pragma once

#include <iostream>
#include <vector>

#include "core/system.hpp"
#include "harness/experiment.hpp"
#include "harness/matrix_workload.hpp"

namespace ao::bench {

/// Runs the paper's full GEMM sweep (all implementations x all sizes x all
/// chips) in model-only mode — the configuration every figure bench shares.
/// `repetitions` mirrors the paper's five; power sampling is always on.
inline std::vector<harness::GemmMeasurement> model_sweep(int repetitions = 5) {
  std::vector<harness::GemmMeasurement> all;
  for (const auto chip : soc::kAllChipModels) {
    core::System system(chip);
    harness::GemmExperiment::Options opts;
    opts.repetitions = repetitions;
    for (auto& [impl, ceiling] : opts.functional_n_max) {
      ceiling = 0;  // figures cover n up to 16384: model-only
    }
    harness::GemmExperiment experiment(system.gemm_context(), opts);
    auto results = experiment.run_suite(
        {soc::kAllGemmImpls.begin(), soc::kAllGemmImpls.end()},
        harness::paper_sizes());
    all.insert(all.end(), results.begin(), results.end());
  }
  return all;
}

/// Functional spot-check at a small size: verifies every implementation
/// against the reference before the model sweep is reported. Prints one
/// status line; aborts if any implementation is wrong.
inline void verify_implementations(std::size_t n = 128) {
  core::System system(soc::ChipModel::kM1);
  harness::GemmExperiment::Options opts;
  opts.repetitions = 1;
  opts.verify_n_max = n;
  harness::GemmExperiment experiment(system.gemm_context(), opts);
  harness::MatrixSet matrices(n, true);
  for (const auto kind : soc::kAllGemmImpls) {
    auto impl = gemm::create_gemm(kind, system.gemm_context());
    matrices.clear_out();
    const auto m = experiment.measure(*impl, matrices);
    if (!m.verified) {
      std::cerr << "FATAL: " << soc::to_string(kind)
                << " failed verification at n=" << n
                << " (max error " << m.max_error << ")\n";
      std::exit(1);
    }
  }
  std::cout << "[verify] all 6 implementations match the reference SGEMM at n="
            << n << "\n\n";
}

}  // namespace ao::bench
