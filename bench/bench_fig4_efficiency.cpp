// Regenerates Figure 4: power efficiency (GFLOPS/W, log scale) of every
// implementation over sizes 2048..16384, plus the Section-5.3 peak table and
// the Green500 / A100 / RTX 4090 perspective rows.

#include <iostream>

#include "baseline/reference_systems.hpp"
#include "bench_common.hpp"
#include "harness/reporting.hpp"
#include "util/units.hpp"

int main() {
  using namespace ao;

  std::cout << "Figure 4 reproduction: power efficiency (GFLOPS per Watt), "
               "sizes 2048-16384\n\n";

  const auto all = bench::model_sweep();
  std::vector<harness::GemmMeasurement> results;
  for (const auto& r : all) {
    if (r.n >= 2048) {
      results.push_back(r);
    }
  }

  for (const auto chip : soc::kAllChipModels) {
    harness::figure4_table(chip, results)
        .print(std::cout, "Figure 4 panel - " + soc::to_string(chip) +
                              " (GFLOPS/W, higher is better)");
    std::cout << "\n";

    util::LinePlot plot("Efficiency - " + soc::to_string(chip), "n",
                        "GFLOPS/W");
    plot.set_log_x(true);
    plot.set_log_y(true);
    for (std::size_t i = 0; i < soc::kAllGemmImpls.size(); ++i) {
      const auto impl = soc::kAllGemmImpls[i];
      std::vector<double> xs;
      std::vector<double> ys;
      for (const auto& r : harness::for_chip(results, chip)) {
        if (r.impl == impl && r.gflops_per_watt > 0.0) {
          xs.push_back(static_cast<double>(r.n));
          ys.push_back(r.gflops_per_watt);
        }
      }
      if (!xs.empty()) {
        static constexpr std::array<char, 6> kMarkers = {'s', 'o', 'a',
                                                         'n', 'c', 'm'};
        plot.add_series(soc::to_string(impl), kMarkers[i], xs, ys);
      }
    }
    std::cout << plot.render() << "\n";
  }

  harness::peak_efficiency_table(results).print(
      std::cout,
      "Peak efficiency (Section 5.3: MPS 0.21/0.40/0.46/0.33 TFLOPS/W; "
      "Accelerate 0.25/0.20/0.27/0.23 TFLOPS/W)");

  std::cout << "\nCSV:\n" << harness::figure4_csv(results).to_string() << "\n";

  std::cout << "HPC Perspective (paper Section 5.3):\n";
  for (const auto& ref : baseline::efficiency_references()) {
    std::cout << "  " << ref.system << " (" << ref.workload
              << "): " << util::format_fixed(ref.gflops_per_watt, 0)
              << " GFLOPS/W";
    if (ref.power_watts > 0.0) {
      std::cout << " at " << util::format_fixed(ref.power_watts, 0) << " W";
    }
    if (ref.mixed_precision_caveat) {
      std::cout << " [mixed-precision caveat]";
    }
    std::cout << " - " << ref.source << "\n";
  }
  std::cout << "\nNote: powermetrics readings are software estimates; Apple "
               "advises against cross-device comparison (paper Section "
               "5.3).\n";
  return 0;
}
