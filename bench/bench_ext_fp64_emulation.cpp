// Extension X3: FP64 emulation on the FP32-only GPU (paper Section 1: the
// GPUs "lack native FP64 support (which can be emulated)"; Section 7 calls
// the FP64 gap a limitation for double-precision science).
//
// Runs GEMM three ways on each chip — native FP32 shader, double-single
// emulated FP64 shader, and CPU FP64 — and reports the accuracy/throughput
// trade-off of the emulation route.

#include <cmath>
#include <iostream>
#include <vector>

#include "core/system.hpp"
#include "fp64emu/double_single.hpp"
#include "fp64emu/gemm_fp64_shader.hpp"
#include "soc/perf_model.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

namespace {

using namespace ao;

struct AccuracyResult {
  double emu_max_err;
  double fp32_max_err;
};

/// Functional accuracy comparison at a small size on one system.
AccuracyResult measure_accuracy(core::System& system, std::uint32_t n) {
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  std::vector<double> b(a.size());
  util::fill_uniform(std::span<double>(a), 41);
  util::fill_uniform(std::span<double>(b), 42);

  std::vector<double> expected(a.size(), 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t kk = 0; kk < n; ++kk) {
      for (std::uint32_t j = 0; j < n; ++j) {
        expected[i * n + j] += a[i * n + kk] * b[kk * n + j];
      }
    }
  }

  // Emulated-FP64 GPU run.
  const std::vector<double> emu =
      fp64emu::run_emulated_gemm(system.device(), a.data(), b.data(), n);

  AccuracyResult r{0.0, 0.0};
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      float acc32 = 0.0f;
      for (std::uint32_t kk = 0; kk < n; ++kk) {
        acc32 += static_cast<float>(a[i * n + kk]) *
                 static_cast<float>(b[kk * n + j]);
      }
      r.emu_max_err =
          std::max(r.emu_max_err, std::fabs(expected[i * n + j] - emu[i * n + j]));
      r.fp32_max_err =
          std::max(r.fp32_max_err,
                   std::fabs(expected[i * n + j] - static_cast<double>(acc32)));
    }
  }
  return r;
}

}  // namespace

int main() {
  std::cout << "Extension X3: emulated FP64 GEMM on the FP32-only GPU "
               "(double-single arithmetic)\n\n";

  // Accuracy, once (identical numerics on every chip).
  core::System probe(soc::ChipModel::kM1);
  const AccuracyResult acc = measure_accuracy(probe, 64);
  std::cout << "Accuracy at n=64 vs FP64 reference:\n"
            << "  plain FP32 shader : max |err| = " << acc.fp32_max_err << "\n"
            << "  emulated FP64     : max |err| = " << acc.emu_max_err << " ("
            << util::format_fixed(acc.fp32_max_err / acc.emu_max_err, 0)
            << "x tighter)\n\n";

  // Throughput model per chip.
  util::TablePrinter table({"Chip", "FP32 GPU-MPS GFLOPS",
                            "Emulated FP64 GFLOPS (effective)",
                            "Slowdown vs FP32", "CPU FP64 GFLOPS (AMX/2)"});
  for (const auto chip : soc::kAllChipModels) {
    soc::Soc soc(chip);
    soc::PerfModel perf(soc);
    const double fp32 = perf.gemm_gflops(soc::GemmImpl::kGpuMps, 8192);
    // Effective emulated FP64 rate: FP32 roofline divided by the
    // ops-per-emulated-FMA cost (2 real flops delivered per ds_fma).
    const double emu = fp32 / fp64emu::kFlopsPerDsFma * 2.0;
    const double cpu_fp64 =
        soc::gemm_calibration(chip, soc::GemmImpl::kCpuAccelerate).peak_gflops /
        2.0;
    table.add_row({soc::to_string(chip), util::format_fixed(fp32, 0),
                   util::format_fixed(emu, 0),
                   util::format_fixed(fp32 / emu, 1) + "x",
                   util::format_fixed(cpu_fp64, 0)});
  }
  table.print(std::cout, "Throughput trade-off (modeled, n=8192)");

  std::cout << "\nReading: double-single emulation restores ~14 significant "
               "digits on the GPU but costs ~10x throughput, leaving the "
               "CPU/AMX FP64 path faster - quantifying why the paper flags "
               "missing native FP64 as the M-series' main HPC limitation.\n";
  return 0;
}
