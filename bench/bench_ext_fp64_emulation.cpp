// Extension X3: FP64 emulation on the FP32-only GPU (paper Section 1: the
// GPUs "lack native FP64 support (which can be emulated)"; Section 7 calls
// the FP64 gap a limitation for double-precision science).
//
// Runs GEMM three ways on each chip — native FP32 shader, double-single
// emulated FP64 shader, and CPU FP64 — and reports the accuracy/throughput
// trade-off of the emulation route.

#include <cmath>
#include <iostream>
#include <vector>

#include "core/system.hpp"
#include "fp64emu/double_single.hpp"
#include "fp64emu/gemm_fp64_shader.hpp"
#include "metal/compute_command_encoder.hpp"
#include "soc/perf_model.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

namespace {

using namespace ao;

struct AccuracyResult {
  double emu_max_err;
  double fp32_max_err;
};

/// Functional accuracy comparison at a small size on one system.
AccuracyResult measure_accuracy(core::System& system, std::uint32_t n) {
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  std::vector<double> b(a.size());
  util::fill_uniform(std::span<double>(a), 41);
  util::fill_uniform(std::span<double>(b), 42);

  std::vector<double> expected(a.size(), 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t kk = 0; kk < n; ++kk) {
      for (std::uint32_t j = 0; j < n; ++j) {
        expected[i * n + j] += a[i * n + kk] * b[kk * n + j];
      }
    }
  }

  // Emulated-FP64 GPU run.
  auto& device = system.device();
  const std::size_t bytes = a.size() * sizeof(float);
  auto mk = [&] { return device.new_buffer(bytes, mem::StorageMode::kShared); };
  auto a_hi = mk(), a_lo = mk(), b_hi = mk(), b_lo = mk(), c_hi = mk(),
       c_lo = mk();
  fp64emu::split_matrix(a.data(), static_cast<float*>(a_hi->contents()),
                        static_cast<float*>(a_lo->contents()), a.size());
  fp64emu::split_matrix(b.data(), static_cast<float*>(b_hi->contents()),
                        static_cast<float*>(b_lo->contents()), b.size());

  auto pipeline =
      device.new_compute_pipeline_state(fp64emu::make_gemm_fp64_emulated());
  auto queue = device.new_command_queue();
  auto cmd = queue->command_buffer();
  auto enc = cmd->compute_command_encoder();
  enc->set_compute_pipeline_state(pipeline);
  metal::Buffer* bufs[] = {a_hi.get(), a_lo.get(), b_hi.get(),
                           b_lo.get(), c_hi.get(), c_lo.get()};
  for (std::size_t s = 0; s < 6; ++s) {
    enc->set_buffer(bufs[s], 0, s);
  }
  enc->set_value<std::uint32_t>(n, 6);
  enc->dispatch_threads({n, n, 1}, {8, 8, 1});
  enc->end_encoding();
  cmd->commit();
  cmd->wait_until_completed();

  std::vector<double> emu(a.size());
  fp64emu::join_matrix(static_cast<const float*>(c_hi->contents()),
                       static_cast<const float*>(c_lo->contents()), emu.data(),
                       emu.size());

  AccuracyResult r{0.0, 0.0};
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      float acc32 = 0.0f;
      for (std::uint32_t kk = 0; kk < n; ++kk) {
        acc32 += static_cast<float>(a[i * n + kk]) *
                 static_cast<float>(b[kk * n + j]);
      }
      r.emu_max_err =
          std::max(r.emu_max_err, std::fabs(expected[i * n + j] - emu[i * n + j]));
      r.fp32_max_err =
          std::max(r.fp32_max_err,
                   std::fabs(expected[i * n + j] - static_cast<double>(acc32)));
    }
  }
  return r;
}

}  // namespace

int main() {
  std::cout << "Extension X3: emulated FP64 GEMM on the FP32-only GPU "
               "(double-single arithmetic)\n\n";

  // Accuracy, once (identical numerics on every chip).
  core::System probe(soc::ChipModel::kM1);
  const AccuracyResult acc = measure_accuracy(probe, 64);
  std::cout << "Accuracy at n=64 vs FP64 reference:\n"
            << "  plain FP32 shader : max |err| = " << acc.fp32_max_err << "\n"
            << "  emulated FP64     : max |err| = " << acc.emu_max_err << " ("
            << util::format_fixed(acc.fp32_max_err / acc.emu_max_err, 0)
            << "x tighter)\n\n";

  // Throughput model per chip.
  util::TablePrinter table({"Chip", "FP32 GPU-MPS GFLOPS",
                            "Emulated FP64 GFLOPS (effective)",
                            "Slowdown vs FP32", "CPU FP64 GFLOPS (AMX/2)"});
  for (const auto chip : soc::kAllChipModels) {
    soc::Soc soc(chip);
    soc::PerfModel perf(soc);
    const double fp32 = perf.gemm_gflops(soc::GemmImpl::kGpuMps, 8192);
    // Effective emulated FP64 rate: FP32 roofline divided by the
    // ops-per-emulated-FMA cost (2 real flops delivered per ds_fma).
    const double emu = fp32 / fp64emu::kFlopsPerDsFma * 2.0;
    const double cpu_fp64 =
        soc::gemm_calibration(chip, soc::GemmImpl::kCpuAccelerate).peak_gflops /
        2.0;
    table.add_row({soc::to_string(chip), util::format_fixed(fp32, 0),
                   util::format_fixed(emu, 0),
                   util::format_fixed(fp32 / emu, 1) + "x",
                   util::format_fixed(cpu_fp64, 0)});
  }
  table.print(std::cout, "Throughput trade-off (modeled, n=8192)");

  std::cout << "\nReading: double-single emulation restores ~14 significant "
               "digits on the GPU but costs ~10x throughput, leaving the "
               "CPU/AMX FP64 path faster - quantifying why the paper flags "
               "missing native FP64 as the M-series' main HPC limitation.\n";
  return 0;
}
