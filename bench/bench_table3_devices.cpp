// Regenerates Table 3: "Basic information of devices used."

#include <iostream>

#include "soc/device_info.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace ao;

  util::TablePrinter table({"Feature", "M1", "M2", "M3", "M4"});
  for (std::size_t c = 1; c <= 4; ++c) {
    table.set_align(c, util::TablePrinter::Align::kLeft);
  }

  auto row = [&table](const std::string& feature, auto getter) {
    std::vector<std::string> cells = {feature};
    for (const auto model : soc::kAllChipModels) {
      cells.push_back(getter(soc::device_info(model)));
    }
    table.add_row(std::move(cells));
  };

  row("Device", [](const soc::DeviceInfo& d) { return d.device; });
  row("Release",
      [](const soc::DeviceInfo& d) { return std::to_string(d.release_year); });
  row("Memory",
      [](const soc::DeviceInfo& d) { return std::to_string(d.memory_gb) + "GB"; });
  row("Cooling", [](const soc::DeviceInfo& d) { return to_string(d.cooling); });
  row("MacOS", [](const soc::DeviceInfo& d) { return d.macos_version; });

  table.print(std::cout, "Table 3. Basic information of devices used.");
  return 0;
}
