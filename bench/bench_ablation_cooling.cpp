// Ablation A2: cooling / power-strategy difference between laptops and
// desktops (paper Section 7: "Apple laptops with M1 and M3 SoCs have
// relatively lower Power Dissipation compared to desktops (M2, M4), which
// might show the impact of power strategy and cooling methods").
//
// Sustained GPU-MPS load (n = 8192, back to back for ~10 simulated minutes)
// on each chip: the passively cooled MacBook Airs heat-soak and throttle;
// the Mac minis hold clocks.

#include <iostream>

#include "core/system.hpp"
#include "gemm/gemm_interface.hpp"
#include "harness/matrix_workload.hpp"
#include "soc/perf_model.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

int main() {
  using namespace ao;
  constexpr std::size_t kN = 8192;
  constexpr double kRunSeconds = 600.0;

  util::TablePrinter table({"Chip", "Device", "Cooling", "Cold GFLOPS",
                            "Sustained GFLOPS", "Loss", "Final temp",
                            "Throttle"});
  table.set_align(1, util::TablePrinter::Align::kLeft);

  for (const auto chip : soc::kAllChipModels) {
    core::System system(chip);
    auto impl = gemm::create_gemm(soc::GemmImpl::kGpuMps, system.gemm_context());
    harness::MatrixSet matrices(kN, /*fill=*/false);
    soc::PerfModel perf(system.soc());

    const double flops = soc::gemm_flops(kN);
    double cold_gflops = 0.0;
    double last_gflops = 0.0;
    // Back-to-back multiplications until the simulated wall clock passes
    // kRunSeconds.
    const auto start = system.soc().clock().now();
    while ((system.soc().clock().now() - start) * 1e-9 < kRunSeconds) {
      const auto t0 = system.soc().clock().now();
      impl->multiply(kN, matrices.memory_length(), matrices.left(),
                     matrices.right(), matrices.out(), /*functional=*/false);
      const auto dt = static_cast<double>(system.soc().clock().now() - t0);
      last_gflops = flops / dt;
      if (cold_gflops == 0.0) {
        cold_gflops = last_gflops;
      }
    }

    const auto& dev = system.soc().device();
    table.add_row(
        {soc::to_string(chip), dev.device, to_string(dev.cooling),
         util::format_fixed(cold_gflops, 0), util::format_fixed(last_gflops, 0),
         util::format_fixed((1.0 - last_gflops / cold_gflops) * 100.0, 1) + "%",
         util::format_fixed(system.soc().thermal().temperature_celsius(), 1) +
             " C",
         util::format_fixed(system.soc().thermal().throttle_factor(), 3)});
  }

  table.print(std::cout,
              "Ablation A2: sustained GPU-MPS load (n=8192, 10 simulated "
              "minutes) - passive vs active cooling");
  std::cout << "\nReading: the MacBook Airs (M1, M3) shed a few percent of "
               "throughput under heat soak; the Mac minis (M2, M4) sustain "
               "their cold-start rate - the cooling-strategy effect the "
               "paper's discussion attributes to its device mix.\n";
  return 0;
}
