// Regenerates Figure 3: power dissipation (mW) of every implementation over
// matrix sizes 2048..16384, measured by the powermetrics substrate
// piggybacking on the performance runs (paper Section 3.3 methodology).

#include <iostream>

#include "bench_common.hpp"
#include "harness/reporting.hpp"
#include "util/ascii_chart.hpp"

int main() {
  using namespace ao;

  std::cout << "Figure 3 reproduction: power dissipation during GEMM, "
               "powermetrics piggyback, sizes 2048-16384\n\n";

  const auto all = bench::model_sweep();
  // Figure 3's size range.
  std::vector<harness::GemmMeasurement> results;
  for (const auto& r : all) {
    if (r.n >= 2048) {
      results.push_back(r);
    }
  }

  for (const auto chip : soc::kAllChipModels) {
    harness::figure3_table(chip, results)
        .print(std::cout, "Figure 3 panel - " + soc::to_string(chip) +
                              " (combined power, mW)");
    std::cout << "\n";

    util::BarChart chart("Power at n=16384 - " + soc::to_string(chip), "mW");
    chart.add_group(soc::to_string(chip));
    for (const auto& r : harness::for_chip(results, chip)) {
      if (r.n == 16384) {
        chart.add_bar(soc::to_string(r.impl), r.power_mw);
      }
    }
    std::cout << chart.render() << "\n";
  }

  std::cout << "CSV:\n" << harness::figure3_csv(results).to_string() << "\n";

  // The two headline observations of Section 5.3 / Section 7.
  double max_mw = 0.0;
  std::string max_label;
  for (const auto& r : results) {
    if (r.power_mw > max_mw) {
      max_mw = r.power_mw;
      max_label = soc::to_string(r.chip) + "/" + soc::to_string(r.impl);
    }
  }
  std::cout << "Highest draw: " << max_label << " at "
            << static_cast<int>(max_mw) << " mW (paper: M4 with the "
            << "Cutlass-style shader, ~20 W)\n";
  return 0;
}
