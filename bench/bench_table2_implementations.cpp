// Regenerates Table 2: "Overview of matrix multiplication implementations",
// then microbenchmarks the *functional* host-side cost of each
// implementation at n = 256 with google-benchmark. The microbenchmark
// measures this repository's simulation engines (host wall time), not the
// simulated Apple silicon — simulated results are the figure benches' job.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "core/system.hpp"
#include "gemm/gemm_interface.hpp"
#include "harness/matrix_workload.hpp"
#include "util/table_printer.hpp"

namespace {

constexpr std::size_t kMicroN = 256;

void print_table2() {
  using namespace ao;
  util::TablePrinter table({"Implementation", "Framework", "Hardware"});
  table.set_align(1, util::TablePrinter::Align::kLeft);
  table.set_align(2, util::TablePrinter::Align::kLeft);
  const std::vector<std::pair<soc::GemmImpl, std::string>> rows = {
      {soc::GemmImpl::kCpuSingle, "Naive algorithm"},
      {soc::GemmImpl::kCpuOmp, "Tiled loop (OpenMP)"},
      {soc::GemmImpl::kCpuAccelerate, "BLAS/vDSP"},
      {soc::GemmImpl::kGpuNaive, "Naive algorithm as shader"},
      {soc::GemmImpl::kGpuCutlass, "Cutlass-style tiled shader"},
      {soc::GemmImpl::kGpuMps, "Metal Performance Shaders (MPS)"},
  };
  for (const auto& [impl, description] : rows) {
    table.add_row({description, soc::gemm_framework(impl),
                   soc::gemm_hardware(impl)});
  }
  table.print(std::cout,
              "Table 2. Overview of matrix multiplication implementations.");
  std::cout << "\nHost-side functional microbenchmarks (n=" << kMicroN
            << ", simulation engine cost, not Apple-silicon time):\n";
}

void run_impl(benchmark::State& state, ao::soc::GemmImpl kind) {
  ao::core::System system(ao::soc::ChipModel::kM1);
  auto impl = ao::gemm::create_gemm(kind, system.gemm_context());
  ao::harness::MatrixSet matrices(kMicroN, true);
  for (auto _ : state) {
    impl->multiply(kMicroN, matrices.memory_length(), matrices.left(),
                   matrices.right(), matrices.out(), /*functional=*/true);
    benchmark::DoNotOptimize(matrices.out()[0]);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["flops"] = ao::soc::gemm_flops(kMicroN);
}

void BM_CpuSingle(benchmark::State& s) { run_impl(s, ao::soc::GemmImpl::kCpuSingle); }
void BM_CpuOmp(benchmark::State& s) { run_impl(s, ao::soc::GemmImpl::kCpuOmp); }
void BM_CpuAccelerate(benchmark::State& s) {
  run_impl(s, ao::soc::GemmImpl::kCpuAccelerate);
}
void BM_GpuNaive(benchmark::State& s) { run_impl(s, ao::soc::GemmImpl::kGpuNaive); }
void BM_GpuCutlass(benchmark::State& s) {
  run_impl(s, ao::soc::GemmImpl::kGpuCutlass);
}
void BM_GpuMps(benchmark::State& s) { run_impl(s, ao::soc::GemmImpl::kGpuMps); }

BENCHMARK(BM_CpuSingle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CpuOmp)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CpuAccelerate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GpuNaive)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GpuCutlass)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GpuMps)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
