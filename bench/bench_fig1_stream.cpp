// Regenerates Figure 1: STREAM bandwidth for CPU and GPU on every chip,
// against the theoretical-bandwidth line, with the paper's methodology:
// CPU thread sweep (1..cores, 10 reps, max kept), GPU 20 reps (max kept).
// A functional validation pass runs first so the numbers come from kernels
// that demonstrably compute STREAM correctly.
//
// The measurement sweep is routed through the orchestrator (like the
// fig2/fig4 benches): every (chip, thread count) CPU point and every GPU
// run is a first-class job on the campaign scheduler, and a shared
// ResultCache services repeated points.

#include <iostream>
#include <numeric>

#include "baseline/reference_systems.hpp"
#include "core/system.hpp"
#include "harness/reporting.hpp"
#include "orchestrator/campaign.hpp"
#include "stream/cpu_stream.hpp"
#include "stream/gpu_stream.hpp"
#include "util/units.hpp"

int main() {
  using namespace ao;

  std::cout << "Figure 1 reproduction: STREAM benchmark (Copy/Scale/Add/"
               "Triad), CPU and GPU, M1-M4\n\n";

  orchestrator::ResultCache cache;
  std::vector<harness::StreamFigureEntry> entries;
  for (const auto chip : soc::kAllChipModels) {
    core::System system(chip);

    // Functional validation on small arrays (stream.c's check + GPU check).
    stream::CpuStream validation_cpu(system.soc(), 1u << 16);
    const double cpu_err = validation_cpu.validate(3);
    stream::GpuStream validation_gpu(system.device(), 1u << 16);
    const float gpu_err = validation_gpu.validate();
    std::cout << "[validate] " << soc::to_string(chip)
              << ": CPU rel. err " << cpu_err << ", GPU abs. err " << gpu_err
              << "\n";

    // The paper's measurement configuration (modeled timing), as one
    // orchestrated campaign per chip: the thread sweep 1..cores at 10 reps,
    // plus the 20-rep GPU run.
    std::vector<int> thread_counts(system.soc().spec().total_cpu_cores());
    std::iota(thread_counts.begin(), thread_counts.end(), 1);
    orchestrator::Campaign campaign;
    campaign.chips({chip})
        .impls({})
        .sizes({})
        .stream_sweep(thread_counts, /*repetitions=*/10)
        .gpu_stream(/*repetitions=*/20)
        .cache(&cache);
    const auto result = campaign.run();

    harness::StreamFigureEntry e;
    e.chip = chip;
    e.theoretical_gbs = system.soc().spec().memory_bandwidth_gbs;
    for (const auto& point : result.stream) {
      for (std::size_t k = 0; k < 4; ++k) {
        auto& best = point.gpu ? e.gpu_gbs[k] : e.cpu_gbs[k];
        best = std::max(best, point.run.kernels[k].best_gbs);
      }
    }
    entries.push_back(e);
  }
  std::cout << "\n";

  harness::figure1_table(entries).print(
      std::cout, "Figure 1 data: STREAM bandwidth per chip (GB/s)");
  std::cout << "\n" << harness::figure1_chart(entries);
  std::cout << "CSV:\n" << harness::figure1_csv(entries).to_string() << "\n";

  // Section 5.1 HPC Perspective.
  std::cout << "HPC Perspective (paper Section 5.1):\n";
  for (const auto& ref : baseline::stream_references()) {
    std::cout << "  " << ref.system << " (" << ref.memory << "): "
              << util::format_fixed(ref.measured_gbs, 0) << " GB/s ("
              << util::format_fixed(ref.efficiency() * 100.0, 0)
              << "% of theoretical) - " << ref.source << "\n";
  }
  return 0;
}
