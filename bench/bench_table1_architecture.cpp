// Regenerates Table 1: "Comparison of Baseline Apple Silicon M Series
// Architecture" from the chip-spec registry.

#include <iostream>
#include <sstream>

#include "soc/chip_spec.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

int main() {
  using namespace ao;

  util::TablePrinter table({"Feature", "M1", "M2", "M3", "M4"});
  table.set_align(1, util::TablePrinter::Align::kLeft);
  table.set_align(2, util::TablePrinter::Align::kLeft);
  table.set_align(3, util::TablePrinter::Align::kLeft);
  table.set_align(4, util::TablePrinter::Align::kLeft);

  auto row = [&table](const std::string& feature, auto getter) {
    std::vector<std::string> cells = {feature};
    for (const auto& spec : soc::all_chip_specs()) {
      cells.push_back(getter(spec));
    }
    table.add_row(std::move(cells));
  };

  row("Process Technology (nm)",
      [](const soc::ChipSpec& s) { return s.process_technology; });
  row("CPU Architecture",
      [](const soc::ChipSpec& s) { return s.cpu_architecture; });
  row("Performance/Efficiency Cores", [](const soc::ChipSpec& s) {
    return std::to_string(s.performance_cores) + "/" +
           std::to_string(s.efficiency_cores);
  });
  row("Clock Frequency (GHz)", [](const soc::ChipSpec& s) {
    return util::format_fixed(s.p_clock_ghz, 2) + " (P)/" +
           util::format_fixed(s.e_clock_ghz, 2) + " (E)";
  });
  row("Vector Unit (name/size)", [](const soc::ChipSpec& s) {
    return s.vector_unit + "/" + std::to_string(s.vector_width_bits);
  });
  row("L1 Cache (KB)", [](const soc::ChipSpec& s) {
    return std::to_string(s.l1_kb_per_p_core) + " (P)/" +
           std::to_string(s.l1_kb_per_e_core) + " (E)";
  });
  row("L2 Cache (MB)", [](const soc::ChipSpec& s) {
    return std::to_string(s.l2_mb_p_cluster) + " (P)/" +
           std::to_string(s.l2_mb_e_cluster) + " (E)";
  });
  row("AMX Characteristics", [](const soc::ChipSpec& s) {
    return s.amx_precisions + (s.amx_is_sme ? " (SME)" : "");
  });
  row("GPU Cores", [](const soc::ChipSpec& s) {
    return std::to_string(s.gpu_cores_min) + "-" +
           std::to_string(s.gpu_cores_max);
  });
  row("Native Precision Support",
      [](const soc::ChipSpec& s) { return s.gpu_native_precisions; });
  row("GPU Clock Frequency (GHz)",
      [](const soc::ChipSpec& s) { return util::format_fixed(s.gpu_clock_ghz, 2); });
  row("Theoretical FP32 (TFLOPS)", [](const soc::ChipSpec& s) {
    if (s.theoretical_fp32_tflops_min == s.theoretical_fp32_tflops_max) {
      return util::format_fixed(s.theoretical_fp32_tflops_max, 2);
    }
    return util::format_fixed(s.theoretical_fp32_tflops_min, 2) + "-" +
           util::format_fixed(s.theoretical_fp32_tflops_max, 2);
  });
  row("Neural Engine Units (Core)", [](const soc::ChipSpec& s) {
    return std::to_string(s.neural_engine_cores);
  });
  row("Memory Technology",
      [](const soc::ChipSpec& s) { return s.memory_technology; });
  row("Max Unified Memory (GB)", [](const soc::ChipSpec& s) {
    std::ostringstream oss;
    for (std::size_t i = 0; i < s.unified_memory_gb_options.size(); ++i) {
      oss << (i > 0 ? "-" : "") << s.unified_memory_gb_options[i];
    }
    return oss.str();
  });
  row("Memory Bandwidth (GB/s)", [](const soc::ChipSpec& s) {
    return util::format_fixed(s.memory_bandwidth_gbs, 0);
  });

  table.print(std::cout,
              "Table 1. Comparison of Baseline Apple Silicon M Series "
              "Architecture.");
  return 0;
}
