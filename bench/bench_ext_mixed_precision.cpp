// Extension X4: the mixed-precision study the paper names as future work
// ("future studies could explore the impact of mixed-precision workloads on
// computational efficiency and accuracy", Section 7).
//
// For each chip: GEMM accuracy (vs FP64 reference) and modeled throughput at
// FP64-native, FP64-emulated, FP32 and FP16 — the full accuracy/performance
// frontier of the M-series units. The per-chip studies run as
// kPrecisionStudy jobs on the orchestrator, so the four chips proceed
// concurrently and repeated runs hit the ResultCache.

#include <iostream>

#include "orchestrator/campaign.hpp"
#include "precision/precision_study.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

int main() {
  using namespace ao;

  std::cout << "Extension X4: mixed-precision GEMM study (n=256, uniform "
               "[0,1) inputs, error vs FP64 reference)\n\n";

  orchestrator::ResultCache cache;
  orchestrator::Campaign campaign;
  campaign.chips({soc::kAllChipModels.begin(), soc::kAllChipModels.end()})
      .impls({})
      .sizes({})
      .precision_study({256})
      .cache(&cache);
  const auto result = campaign.run();

  for (const auto& study : result.precision) {
    util::TablePrinter table({"Format", "Unit", "max |err|", "mean |err|",
                              "sig. digits", "modeled GFLOPS"});
    table.set_align(1, util::TablePrinter::Align::kLeft);
    for (const auto& r : study.rows) {
      table.add_row({to_string(r.format), r.executing_unit,
                     r.max_abs_error == 0.0
                         ? "0 (reference)"
                         : util::format_fixed(r.max_abs_error, 12),
                     util::format_fixed(r.mean_abs_error, 12),
                     util::format_fixed(r.significant_digits, 1),
                     util::format_fixed(r.modeled_gflops, 0)});
    }
    table.print(std::cout, "Chip " + soc::to_string(study.chip));
    std::cout << "\n";
  }

  std::cout << "Reading: FP16 doubles throughput but keeps ~3 digits - fine "
               "for ML, unusable for most HPC (the paper's Neural Engine "
               "caveat); FP32 holds ~6 digits at full rate; double-single "
               "emulation recovers ~14 digits at a ~10x cost. This is the "
               "quantitative backdrop for the paper's conclusion that FP32 "
               "viability 'must be carefully evaluated depending on workload "
               "requirements'.\n";
  return 0;
}
