// Regenerates Figure 2: GFLOPS for all six implementations across matrix
// sizes 32..16384 on all four chips (log-log panels), plus the Section-5.2
// peak table and the GH200 / Xeon Max HPC-perspective rows.

#include <iostream>

#include "baseline/reference_systems.hpp"
#include "bench_common.hpp"
#include "harness/reporting.hpp"
#include "util/units.hpp"

int main() {
  using namespace ao;

  std::cout << "Figure 2 reproduction: GEMM FP32 performance, all "
               "implementations x sizes x chips\n\n";
  bench::verify_implementations(128);

  const auto results = bench::model_sweep();

  for (const auto chip : soc::kAllChipModels) {
    harness::figure2_table(chip, results)
        .print(std::cout, "Figure 2 panel - " + soc::to_string(chip) +
                              " (best GFLOPS over 5 repetitions)");
    std::cout << "\n" << harness::figure2_plot(chip, results) << "\n";
  }

  harness::peak_gflops_table(results).print(
      std::cout, "Peak measured FP32 performance (Section 5.2 headline "
                 "numbers)");

  std::cout << "\nCSV:\n" << harness::figure2_csv(results).to_string() << "\n";

  std::cout << "HPC Perspective (paper Section 5.2):\n";
  for (const auto& ref : baseline::gemm_references()) {
    std::cout << "  " << ref.system << ", " << ref.path << " ["
              << ref.precision << "]: "
              << util::format_fixed(ref.measured_tflops, 1) << " TFLOPS";
    if (ref.peak_fraction > 0.0) {
      std::cout << " (" << util::format_fixed(ref.peak_fraction * 100.0, 0)
                << "% of peak)";
    }
    if (ref.mixed_precision_caveat) {
      std::cout << " [mixed-precision caveat]";
    }
    std::cout << " - " << ref.source << "\n";
  }
  return 0;
}
