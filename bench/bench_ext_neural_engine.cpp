// Extension X1: Neural Engine testing — the paper's named future-work item
// ("A large gap left behind in this research is the lack of Neural Engine
// testing, which would better contextualize the M-Series with respect to
// TensorCore performance", Section 7).
//
// Runs FP16 GEMM through the Core ML dispatch model on every chip — as
// kAneInference jobs on the orchestrator — and places the ANE next to AMX
// (CPU-Accelerate) and GPU-MPS in throughput and efficiency: the M-series'
// closest analogue to the GH200's TF32 tensor path, with the same
// mixed-precision caveat the paper applies there.

#include <iostream>

#include "ane/neural_engine.hpp"
#include "core/system.hpp"
#include "orchestrator/campaign.hpp"
#include "soc/calibration.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

int main() {
  using namespace ao;

  // One functional 256x256x256 dispatch per chip through the campaign
  // scheduler. ANE-compatible shape (multiples of 16), so the plan places
  // every one of them on the Neural Engine.
  orchestrator::ResultCache cache;
  orchestrator::Campaign campaign;
  campaign.chips({soc::kAllChipModels.begin(), soc::kAllChipModels.end()})
      .impls({})
      .sizes({})
      .ane_inference({256})
      .cache(&cache);
  const auto result = campaign.run();

  // Functional spot check: the ANE path really multiplies (through FP16).
  // Uniform [0,1) operands make the expected mean element ~k/4.
  for (const auto& r : result.ane) {
    if (r.chip == soc::ChipModel::kM1) {
      std::cout << "[verify] " << to_string(r.target) << " FP16 GEMM produced "
                << "mean element " << util::format_fixed(r.mean_output, 3)
                << " (expected ~" << util::format_fixed(r.k / 4.0, 1) << ")\n\n";
    }
  }

  util::TablePrinter table({"Chip", "Dispatch", "ANE FP16 TFLOPS (sustained)",
                            "measured GFLOPS", "ANE power (W)", "ANE GFLOPS/W",
                            "AMX FP32 TFLOPS", "GPU-MPS FP32 TFLOPS",
                            "ANE vs MPS"});
  for (const auto& r : result.ane) {
    core::System system(r.chip);
    ane::NeuralEngine engine(system.soc());
    const double ane_gflops = engine.sustained_fp16_gflops();
    const double amx =
        soc::gemm_calibration(r.chip, soc::GemmImpl::kCpuAccelerate).peak_gflops;
    const double mps =
        soc::gemm_calibration(r.chip, soc::GemmImpl::kGpuMps).peak_gflops;
    table.add_row({soc::to_string(r.chip), to_string(r.target),
                   util::format_fixed(ane_gflops / 1e3, 2),
                   util::format_fixed(r.gflops, 0),
                   util::format_fixed(engine.active_power_watts(), 1),
                   util::format_fixed(r.gflops_per_watt, 0),
                   util::format_fixed(amx / 1e3, 2),
                   util::format_fixed(mps / 1e3, 2),
                   util::format_fixed(ane_gflops / mps, 2) + "x"});
  }
  table.print(std::cout,
              "Extension X1: Neural Engine FP16 GEMM vs AMX / GPU-MPS "
              "(mixed-precision caveat applies, as for TensorCores)");

  // Dispatch opacity demonstration (Section 2.3).
  std::cout << "\nCore ML dispatch plans (M4):\n";
  core::System m4(soc::ChipModel::kM4);
  ane::CoreMLRuntime runtime(m4.soc(), ane::ComputeUnits::kAll);
  struct Case {
    std::size_t m, n, k;
    const char* note;
  };
  for (const Case c : {Case{1024, 1024, 1024, "aligned GEMM"},
                       Case{1000, 1000, 1000, "unaligned GEMM"},
                       Case{256, 256, 32768, "deep-K GEMM"}}) {
    std::cout << "  " << c.m << "x" << c.n << "x" << c.k << " (" << c.note
              << ") -> " << to_string(runtime.plan_gemm(c.m, c.n, c.k))
              << "\n";
  }

  std::cout << "\nReading: the ANE's FP16 throughput sits 2-5x above GPU-MPS "
               "FP32 at several-fold better GFLOPS/W, mirroring the "
               "TensorCore-vs-CUDA-core relationship on the GH200 (338 vs 41 "
               "TFLOPS) - but Core ML may silently place work elsewhere, so "
               "none of it is guaranteed (paper Section 2.3).\n";
  return 0;
}
