// Regenerates the HPC-perspective reference rows (paper Sections 5.1-5.3):
// the authors' internal Nvidia GH200 measurements and the literature values
// for MI250X, Xeon Max 9468, A100, RTX 4090 and the Green500 leader, placed
// next to this reproduction's M-series model results.

#include <iostream>

#include "baseline/reference_systems.hpp"
#include "soc/calibration.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

int main() {
  using namespace ao;

  {
    util::TablePrinter table(
        {"System", "Memory", "Measured GB/s", "Theoretical GB/s", "Efficiency"});
    table.set_align(1, util::TablePrinter::Align::kLeft);
    for (const auto& ref : baseline::stream_references()) {
      table.add_row({ref.system, ref.memory,
                     util::format_fixed(ref.measured_gbs, 0),
                     util::format_fixed(ref.theoretical_gbs, 0),
                     util::format_fixed(ref.efficiency() * 100.0, 0) + "%"});
    }
    table.add_separator();
    for (const auto chip : soc::kAllChipModels) {
      const auto& spec = soc::chip_spec(chip);
      const auto& cal = soc::calibration(chip).stream;
      table.add_row({"Apple " + spec.name + " (this repro, CPU best)",
                     spec.memory_technology,
                     util::format_fixed(cal.cpu_peak_gbs(), 0),
                     util::format_fixed(spec.memory_bandwidth_gbs, 0),
                     util::format_fixed(cal.cpu_peak_gbs() /
                                            spec.memory_bandwidth_gbs * 100.0,
                                        0) +
                         "%"});
    }
    table.print(std::cout, "STREAM references (paper Section 5.1)");
  }
  std::cout << "\n";

  {
    util::TablePrinter table(
        {"System", "Path", "Precision", "TFLOPS", "% of peak", "Caveat"});
    table.set_align(1, util::TablePrinter::Align::kLeft);
    table.set_align(2, util::TablePrinter::Align::kLeft);
    for (const auto& ref : baseline::gemm_references()) {
      table.add_row({ref.system, ref.path, ref.precision,
                     util::format_fixed(ref.measured_tflops, 1),
                     ref.peak_fraction > 0
                         ? util::format_fixed(ref.peak_fraction * 100.0, 0) + "%"
                         : "-",
                     ref.mixed_precision_caveat ? "mixed precision" : "-"});
    }
    table.add_separator();
    for (const auto chip : soc::kAllChipModels) {
      const auto& mps = soc::gemm_calibration(chip, soc::GemmImpl::kGpuMps);
      const auto& spec = soc::chip_spec(chip);
      table.add_row(
          {"Apple " + spec.name + " (this repro)", "GPU-MPS", "FP32",
           util::format_fixed(mps.peak_gflops / 1e3, 2),
           util::format_fixed(
               mps.peak_gflops / spec.gpu_peak_fp32_gflops() * 100.0, 0) +
               "%",
           "-"});
    }
    table.print(std::cout, "GEMM references (paper Section 5.2)");
  }
  std::cout << "\n";

  {
    util::TablePrinter table({"System", "Workload", "GFLOPS/W", "Power", "Caveat"});
    table.set_align(1, util::TablePrinter::Align::kLeft);
    for (const auto& ref : baseline::efficiency_references()) {
      table.add_row({ref.system, ref.workload,
                     util::format_fixed(ref.gflops_per_watt, 0),
                     ref.power_watts > 0
                         ? util::format_fixed(ref.power_watts, 0) + " W"
                         : "-",
                     ref.mixed_precision_caveat ? "mixed precision" : "-"});
    }
    table.add_separator();
    for (const auto chip : soc::kAllChipModels) {
      const auto& mps = soc::gemm_calibration(chip, soc::GemmImpl::kGpuMps);
      table.add_row({"Apple " + soc::to_string(chip) + " (this repro)",
                     "GPU-MPS SGEMM",
                     util::format_fixed(mps.peak_gflops / mps.power_watts, 0),
                     util::format_fixed(mps.power_watts, 1) + " W", "-"});
    }
    table.print(std::cout, "Efficiency references (paper Section 5.3)");
  }

  std::cout << "\nPaper conclusion reproduced: the GH200 outperforms by 1-2 "
               "orders of magnitude in bandwidth and FP32 throughput, while "
               "the M-series sits in a different (power-efficiency) envelope "
               "- an apples-to-oranges comparison.\n";
  return 0;
}
