// Ablation X2: storage modes and data movement (paper Section 2.4).
//
// Compares the three ways to get a matrix to the GPU:
//   (a) malloc + explicit copy into a device buffer (the traditional path),
//   (b) MTLResourceStorageModeShared no-copy wrap (the paper's zero-copy
//       path: "This eliminates manual data transfers"),
//   (c) device-allocated shared buffer written in place.
// Reported cost: simulated data-movement time per matrix size, using the
// memory-controller model for the explicit copy.

#include <iostream>

#include "core/system.hpp"
#include "harness/matrix_workload.hpp"
#include "mem/memory_controller.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

int main() {
  using namespace ao;

  core::System system(soc::ChipModel::kM4);
  mem::MemoryController controller(system.soc());

  util::TablePrinter table({"n", "Matrix bytes", "malloc+copy (3 matrices)",
                            "Shared no-copy wrap", "Device-shared in-place"});

  for (const std::size_t n : {1024u, 2048u, 4096u, 8192u, 16384u}) {
    const std::uint64_t bytes =
        util::AlignedBuffer::round_up(n * n * sizeof(float), 16384);
    // (a) CPU writes the staging copy, then the copy engine moves it again:
    // 2x traffic for each of the 3 matrices, at the CPU link rate.
    const double copy_ns = 2.0 * 3.0 *
                           controller.transfer_time_ns(
                               soc::MemoryAgent::kCpu, bytes,
                               {true, false, false});
    // (b) wrapping is O(1): buffer-object creation only.
    const double wrap_ns = 3.0 * 1500.0;
    // (c) in-place initialization writes each matrix once at CPU link rate.
    const double inplace_ns = 3.0 * controller.transfer_time_ns(
                                        soc::MemoryAgent::kCpu, bytes,
                                        {true, false, false});
    table.add_row({std::to_string(n), util::format_bytes(bytes),
                   util::format_fixed(copy_ns / 1e6, 2) + " ms",
                   util::format_fixed(wrap_ns / 1e6, 4) + " ms",
                   util::format_fixed(inplace_ns / 1e6, 2) + " ms"});
  }
  table.print(std::cout,
              "Ablation X2: data-movement cost to make matrices GPU-visible "
              "(M4 model)");

  // Demonstrate the API-level rules with real buffers.
  harness::MatrixSet matrices(1024, /*fill=*/false);
  auto wrapped = system.device().new_buffer_with_bytes_no_copy(
      matrices.left(), matrices.memory_length(), mem::StorageMode::kShared);
  std::cout << "\nZero-copy check: wrapped buffer contents() == host pointer: "
            << (wrapped->contents() == matrices.left() ? "yes" : "NO") << "\n";

  auto priv = system.device().new_buffer(1 << 20, mem::StorageMode::kPrivate);
  bool cpu_blocked = false;
  try {
    (void)priv->contents();
  } catch (const util::Error&) {
    cpu_blocked = true;
  }
  std::cout << "Private-mode buffer rejects CPU access: "
            << (cpu_blocked ? "yes" : "NO") << "\n";
  std::cout << "\nReading: the paper's no-copy wrapping pays a fixed "
               "microsecond-scale cost regardless of size, while explicit "
               "staging pays twice the matrix traffic - the unified-memory "
               "advantage Section 2.4 describes.\n";
  return 0;
}
