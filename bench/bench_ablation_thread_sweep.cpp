// Ablation A3: the CPU STREAM thread sweep (paper Section 3.1: "every chip
// model was tested multiple times with OMP_NUM_THREADS threads set from one
// to the number of physical cores ... to get the maximum reachable CPU
// bandwidth").
//
// Shows the Triad bandwidth as a function of the OpenMP thread count for
// every chip: a single core cannot saturate the memory link, and the curve
// saturates before the full core count.

#include <iostream>

#include "soc/soc.hpp"
#include "stream/cpu_stream.hpp"
#include "util/ascii_chart.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

int main() {
  using namespace ao;

  // M4 has 10 cores; M1-M3 have 8.
  std::vector<std::string> headers = {"Threads"};
  for (const auto chip : soc::kAllChipModels) {
    headers.push_back(soc::to_string(chip) + " Triad GB/s");
  }
  util::TablePrinter table(headers);

  std::array<std::vector<double>, 4> series;
  int max_threads = 0;
  for (std::size_t i = 0; i < soc::kAllChipModels.size(); ++i) {
    soc::Soc soc(soc::kAllChipModels[i]);
    stream::CpuStream bench(soc, 1u << 20);
    const auto sweep = bench.sweep(/*repetitions=*/10);
    for (const auto& run : sweep.per_thread_count) {
      series[i].push_back(run.of(soc::StreamKernel::kTriad).best_gbs);
    }
    max_threads = std::max(max_threads, soc.spec().total_cpu_cores());
  }

  for (int t = 1; t <= max_threads; ++t) {
    std::vector<std::string> row = {std::to_string(t)};
    for (std::size_t i = 0; i < soc::kAllChipModels.size(); ++i) {
      row.push_back(static_cast<std::size_t>(t) <= series[i].size()
                        ? util::format_fixed(series[i][t - 1], 1)
                        : "-");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout,
              "Ablation A3: CPU STREAM Triad bandwidth vs OMP_NUM_THREADS "
              "(10 repetitions, max kept)");

  util::LinePlot plot("Triad bandwidth vs thread count", "threads", "GB/s");
  static constexpr std::array<char, 4> kMarkers = {'1', '2', '3', '4'};
  for (std::size_t i = 0; i < soc::kAllChipModels.size(); ++i) {
    std::vector<double> xs(series[i].size());
    for (std::size_t t = 0; t < xs.size(); ++t) {
      xs[t] = static_cast<double>(t + 1);
    }
    plot.add_series(soc::to_string(soc::kAllChipModels[i]), kMarkers[i], xs,
                    series[i]);
  }
  std::cout << "\n" << plot.render() << "\n";

  std::cout << "Reading: one thread reaches well under half the link; the "
               "curve saturates around 4-6 threads, so the paper's max-over-"
               "sweep methodology finds the plateau, not the core count.\n";
  return 0;
}
